//! Bit-identity of sharded batch ingestion against the sequential engine.
//!
//! The contract of [`scuba::ScubaOperator`]'s `process_batch` is strict:
//! for a batch in canonical `(time, entity)` order, the engine state after
//! sharded ingestion — clusters, memberships, grid registrations, epoch
//! stamps, counters, the id allocator — must be **bit-identical** to what
//! the per-update sequential loop produces, at every shard count and with
//! the join cache on or off. These tests drive both paths over identical
//! fixed-seed workloads and compare the full observable state plus every
//! evaluation's results.

use scuba::clustering::ClusterEngine;
use scuba::{ScubaOperator, ScubaParams};
use scuba_motion::{LocationUpdate, ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec};
use scuba_spatial::{Point, Rect, Time};
use scuba_stream::{ContinuousOperator, EvaluationReport};

const AREA: f64 = 1000.0;
const DELTA: u64 = 2;

/// SplitMix64: a tiny self-contained PRNG so workloads are fixed-seed
/// without depending on any external crate's stream.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

/// One entity of the synthetic workload: a random-walking position plus a
/// connection node, so entities drift across shard boundaries over time.
struct Walker {
    pos: Point,
    cn: Point,
    speed: f64,
}

/// Builds `ticks` batches of updates in canonical `(time, entity)` order.
///
/// Entities random-walk over the whole area (crossing column-stripe
/// boundaries freely); a fraction of them are range queries. `hotspot`
/// concentrates starting positions in the left edge of the area so one
/// shard sees most of the load.
fn workload(
    seed: u64,
    n_objects: u64,
    n_queries: u64,
    ticks: u64,
    hotspot: bool,
) -> Vec<Vec<LocationUpdate>> {
    let mut rng = Mix(seed);
    let spawn = |rng: &mut Mix| -> Point {
        if hotspot {
            Point::new(rng.in_range(0.0, AREA / 8.0), rng.in_range(0.0, AREA))
        } else {
            Point::new(rng.in_range(0.0, AREA), rng.in_range(0.0, AREA))
        }
    };
    let mut walkers: Vec<Walker> = (0..n_objects + n_queries)
        .map(|_| {
            let pos = spawn(&mut rng);
            Walker {
                pos,
                cn: Point::new(rng.in_range(0.0, AREA), rng.in_range(0.0, AREA)),
                speed: rng.in_range(0.0, 8.0),
            }
        })
        .collect();

    let mut batches = Vec::new();
    for t in 1..=ticks {
        let mut batch = Vec::new();
        for (i, w) in walkers.iter_mut().enumerate() {
            // Step toward the connection node with some jitter; retarget
            // when close, so direction (cn) churns like road travel.
            let (dx, dy) = (w.cn.x - w.pos.x, w.cn.y - w.pos.y);
            let dist = (dx * dx + dy * dy).sqrt().max(1e-9);
            let step = w.speed.min(dist);
            w.pos = Point::new(
                (w.pos.x + dx / dist * step + rng.in_range(-1.0, 1.0)).clamp(0.0, AREA),
                (w.pos.y + dy / dist * step + rng.in_range(-1.0, 1.0)).clamp(0.0, AREA),
            );
            if dist < 10.0 {
                w.cn = Point::new(rng.in_range(0.0, AREA), rng.in_range(0.0, AREA));
            }
            let u = if (i as u64) < n_objects {
                LocationUpdate::object(
                    ObjectId(i as u64),
                    w.pos,
                    t as Time,
                    w.speed,
                    w.cn,
                    ObjectAttrs::default(),
                )
            } else {
                LocationUpdate::query(
                    QueryId(i as u64 - n_objects),
                    w.pos,
                    t as Time,
                    w.speed,
                    w.cn,
                    QueryAttrs {
                        spec: QuerySpec::square_range(30.0),
                    },
                )
            };
            batch.push(u);
        }
        batch.sort_by_key(|u| (u.time, u.entity));
        batches.push(batch);
    }
    batches
}

fn params(shards: usize, cache: bool) -> ScubaParams {
    ScubaParams::default()
        .with_join_cache(cache)
        .with_ingest_shards(shards)
}

/// Runs the workload through one operator: batches in, an evaluation every
/// `DELTA` ticks, reports out.
fn drive(op: &mut ScubaOperator, batches: &[Vec<LocationUpdate>]) -> Vec<EvaluationReport> {
    let mut reports = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        op.process_batch(batch);
        let now = (i + 1) as Time;
        if now % DELTA == 0 {
            reports.push(op.evaluate(now));
        }
    }
    reports
}

/// Runs the reference: the plain per-update sequential loop.
fn drive_sequential(
    op: &mut ScubaOperator,
    batches: &[Vec<LocationUpdate>],
) -> Vec<EvaluationReport> {
    let mut reports = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        for u in batch {
            op.process_update(u);
        }
        let now = (i + 1) as Time;
        if now % DELTA == 0 {
            reports.push(op.evaluate(now));
        }
    }
    reports
}

/// Full observable-state comparison: every divergence the engine can
/// express is asserted on, not just the query answers.
fn assert_engines_identical(a: &ClusterEngine, b: &ClusterEngine, what: &str) {
    assert_eq!(
        a.next_cluster_id(),
        b.next_cluster_id(),
        "{what}: cluster id allocators diverged"
    );
    assert_eq!(
        a.updates_processed(),
        b.updates_processed(),
        "{what}: update counters diverged"
    );
    assert_eq!(a.stats(), b.stats(), "{what}: clustering stats diverged");
    assert_eq!(a.clusters(), b.clusters(), "{what}: cluster maps diverged");

    // Memberships, entity by entity.
    assert_eq!(
        a.home().len(),
        b.home().len(),
        "{what}: home sizes diverged"
    );
    for (id, _) in a.objects().iter() {
        assert_eq!(
            a.home().cluster_of(id.into()),
            b.home().cluster_of(id.into()),
            "{what}: object {id:?} lives in different clusters"
        );
    }
    for (id, _) in a.queries().iter() {
        assert_eq!(
            a.home().cluster_of(id.into()),
            b.home().cluster_of(id.into()),
            "{what}: query {id:?} lives in different clusters"
        );
    }

    // Grid: same cluster lists, in the same order, in every cell.
    let spec = a.grid().spec();
    assert_eq!(spec.cell_count(), b.grid().spec().cell_count());
    for linear in 0..spec.cell_count() as u32 {
        assert_eq!(
            a.grid().cell_linear(linear),
            b.grid().cell_linear(linear),
            "{what}: grid cell {linear} diverged"
        );
    }

    // Epochs: the join cache keys off these, so both the clock and every
    // cluster's stamp must line up.
    assert_eq!(
        a.epochs().clock(),
        b.epochs().clock(),
        "{what}: epoch clocks diverged"
    );
    for cid in a.clusters().keys() {
        let sa = a.slot_of(cid).expect("live cluster has a slot");
        let sb = b.slot_of(cid).expect("live cluster has a slot");
        assert_eq!(sa, sb, "{what}: slot of {cid:?} diverged");
        assert_eq!(
            a.epochs().mark(sa),
            b.epochs().mark(sb),
            "{what}: epoch stamp of {cid:?} diverged"
        );
    }
}

fn assert_results_identical(a: &[EvaluationReport], b: &[EvaluationReport], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: evaluation counts diverged");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.now, rb.now);
        assert_eq!(ra.results, rb.results, "{what}: results at t={}", ra.now);
    }
}

fn check_workload(seed: u64, n_objects: u64, n_queries: u64, ticks: u64, hotspot: bool) {
    let batches = workload(seed, n_objects, n_queries, ticks, hotspot);
    for cache in [true, false] {
        let mut reference = ScubaOperator::new(params(1, cache), Rect::square(AREA));
        let ref_reports = drive_sequential(&mut reference, &batches);
        for shards in [1usize, 2, 4, 8] {
            let what = format!("seed={seed} hotspot={hotspot} cache={cache} shards={shards}");
            let mut op = ScubaOperator::new(params(shards, cache), Rect::square(AREA));
            let reports = drive(&mut op, &batches);
            assert_results_identical(&ref_reports, &reports, &what);
            assert_engines_identical(reference.engine(), op.engine(), &what);
            op.engine().check_invariants();
        }
    }
}

#[test]
fn uniform_workload_is_bit_identical_across_shard_counts() {
    check_workload(0xC0FFEE, 120, 30, 12, false);
}

#[test]
fn hotspot_workload_is_bit_identical_across_shard_counts() {
    check_workload(0xBEEF, 120, 30, 12, true);
}

#[test]
fn dense_boundary_crossing_workload_is_bit_identical() {
    // More entities than cells-per-stripe at 8 shards: plenty of probe
    // disks straddle stripe boundaries, exercising the fixup pass hard.
    check_workload(0x5EED, 300, 60, 8, false);
}

#[test]
fn many_seeds_spot_check() {
    for seed in 1..=6u64 {
        check_workload(seed, 60, 15, 6, seed % 2 == 0);
    }
}

/// The batch may arrive in any order: sharded ingestion canonicalises
/// internally, so a shuffled batch must land in the same state as the
/// sequential loop over the *sorted* batch.
#[test]
fn shuffled_batches_canonicalise_to_sorted_order() {
    let batches = workload(0xD15C0, 100, 25, 8, false);
    let mut shuffled = batches.clone();
    let mut rng = Mix(99);
    for batch in &mut shuffled {
        // Fisher–Yates with the test's own PRNG.
        for i in (1..batch.len()).rev() {
            let j = (rng.next() % (i as u64 + 1)) as usize;
            batch.swap(i, j);
        }
    }

    let mut reference = ScubaOperator::new(params(1, true), Rect::square(AREA));
    let ref_reports = drive_sequential(&mut reference, &batches);
    let mut op = ScubaOperator::new(params(4, true), Rect::square(AREA));
    let reports = drive(&mut op, &shuffled);
    assert_results_identical(&ref_reports, &reports, "shuffled");
    assert_engines_identical(reference.engine(), op.engine(), "shuffled");
}

/// Sharded ingestion reports its own pipeline stages; the sequential loop
/// reports none. Either way the next evaluation carries them.
#[test]
fn ingest_stages_appear_in_evaluation_reports() {
    let batches = workload(7, 80, 20, 4, false);

    let mut op = ScubaOperator::new(params(4, true), Rect::square(AREA));
    let reports = drive(&mut op, &batches);
    for report in &reports {
        for stage in ["ingest-route", "ingest-shard", "ingest-fixup"] {
            let s = report
                .phases
                .get(stage)
                .unwrap_or_else(|| panic!("stage {stage} missing from report"));
            assert!(s.items_in > 0, "stage {stage} saw no updates");
        }
    }

    let mut seq = ScubaOperator::new(params(1, true), Rect::square(AREA));
    let seq_reports = drive(&mut seq, &batches);
    for report in &seq_reports {
        assert!(report.phases.get("ingest-route").is_none());
    }
}

/// `--no-batch-ingest` forces the sequential path even when shards are
/// configured.
#[test]
fn batch_ingest_opt_out_uses_sequential_path() {
    let batches = workload(11, 50, 10, 4, false);
    let p = params(8, true).with_batch_ingest(false);
    assert_eq!(p.effective_ingest_shards(), 1);
    let mut op = ScubaOperator::new(p, Rect::square(AREA));
    let reports = drive(&mut op, &batches);
    for report in &reports {
        assert!(report.phases.get("ingest-route").is_none());
    }
}
