//! Identity tests for the join kernels (ISSUE 7).
//!
//! The wide (SIMD-style) pre-filter kernel is a pure work optimisation:
//! on every tick it must produce bit-identical results *and counters* to
//! the scalar kernel, at every parallelism, with the join cache on or
//! off, over either spatial index. The property below drives the full
//! configuration cross product against one reference stream; the
//! deterministic companion pins the steady-state zero-allocation
//! contract of the reusable join scratch.

use proptest::prelude::*;

use scuba::{IndexKind, KernelKind, ScubaOperator, ScubaParams};
use scuba_motion::{LocationUpdate, ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec};
use scuba_spatial::{Point, Rect};
use scuba_stream::ContinuousOperator;

const AREA: f64 = 1000.0;

fn area() -> Rect {
    Rect::square(AREA)
}

/// Same compact generator as `tests/properties.rs`: bounded positions,
/// a handful of destination nodes so direction matches occur, mixed
/// objects and queries with varied range sides.
fn arb_updates(max_entities: usize) -> impl Strategy<Value = Vec<LocationUpdate>> {
    let nodes = [
        Point::new(0.0, 500.0),
        Point::new(1000.0, 500.0),
        Point::new(500.0, 0.0),
        Point::new(500.0, 1000.0),
    ];
    prop::collection::vec(
        (
            0u64..40,      // entity id
            any::<bool>(), // object or query
            0.0..AREA,     // x
            0.0..AREA,     // y
            5.0..50.0f64,  // speed
            0usize..4,     // destination node index
            5.0..80.0f64,  // query range side
        ),
        1..max_entities,
    )
    .prop_map(move |rows| {
        rows.into_iter()
            .map(|(id, is_query, x, y, speed, node, side)| {
                let loc = Point::new(x, y);
                let cn = nodes[node];
                if is_query {
                    LocationUpdate::query(
                        QueryId(id),
                        loc,
                        0,
                        speed,
                        cn,
                        QueryAttrs {
                            spec: QuerySpec::square_range(side),
                        },
                    )
                } else {
                    LocationUpdate::object(ObjectId(id), loc, 0, speed, cn, ObjectAttrs::default())
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `--kernel simd` is answer- and counter-invisible: at every tick it
    /// reproduces the scalar kernel's results, member comparisons, and
    /// pre-filter counters across parallelism {1, 2, 4} × join cache
    /// {on, off} × index {uniform, adaptive}. Only wall times and the
    /// lane-occupancy metrics may differ between the two kernels.
    #[test]
    fn simd_kernel_matches_scalar(
        batches in prop::collection::vec(arb_updates(40), 1..3),
    ) {
        let adaptive_base = ScubaParams::default()
            .with_index(IndexKind::Adaptive)
            .with_split_merge(4, 1);
        let configs: Vec<ScubaParams> = [1usize, 2, 4]
            .iter()
            .flat_map(|&p| {
                [true, false].iter().flat_map(move |&cache| {
                    [ScubaParams::default(), adaptive_base]
                        .into_iter()
                        .flat_map(move |base| {
                            [KernelKind::Scalar, KernelKind::Simd].map(|k| {
                                base.with_parallelism(p).with_join_cache(cache).with_kernel(k)
                            })
                        })
                })
            })
            .collect();
        let mut ops: Vec<ScubaOperator> = configs
            .iter()
            .map(|&params| ScubaOperator::new(params, area()))
            .collect();
        for (tick, batch) in batches.iter().enumerate() {
            let now = (tick as u64 + 1) * 2;
            let mut reference: Option<(Vec<scuba_stream::QueryMatch>, u64, u64)> = None;
            for (op, params) in ops.iter_mut().zip(&configs) {
                for u in batch {
                    op.process_update(u);
                }
                let report = op.evaluate(now);
                let observed = (report.results, report.comparisons, report.prefilter_tests);
                match &reference {
                    None => reference = Some(observed),
                    Some(expected) => prop_assert_eq!(
                        &observed,
                        expected,
                        "tick {}: kernel {} index {} parallelism {} cache {} diverged",
                        tick,
                        params.kernel,
                        params.index,
                        params.parallelism,
                        params.join_cache
                    ),
                }
            }
        }
    }
}

/// Steady-state evaluation allocates nothing: once the reusable join
/// scratch (pair keys, kernel tile, discovery buffer, materialisation
/// arena, worker buffers) has warmed up over a few churn ticks, its
/// total reserved capacity must stay byte-stable over many further
/// ticks of the same workload — on both kernels, over the adaptive
/// index whose pair discovery now reuses the per-walk leaf buffer.
#[test]
fn join_scratch_stops_growing_in_steady_state() {
    let nodes = [
        Point::new(0.0, 500.0),
        Point::new(1000.0, 500.0),
        Point::new(500.0, 0.0),
        Point::new(500.0, 1000.0),
    ];
    // Deterministic LCG: identical churn stream on every run.
    let make_updates = |tick: u64| -> Vec<LocationUpdate> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ tick;
        let mut next = move |bound: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % bound
        };
        (0..60u64)
            .map(|id| {
                // Clustered sites so real pair batches form each tick.
                let site = Point::new(
                    150.0 + (id % 3) as f64 * 300.0 + next(40) as f64,
                    150.0 + (id / 3 % 3) as f64 * 300.0 + next(40) as f64,
                );
                let cn = nodes[next(4) as usize];
                let speed = 5.0 + next(30) as f64;
                if id % 4 == 0 {
                    LocationUpdate::query(
                        QueryId(id),
                        site,
                        tick,
                        speed,
                        cn,
                        QueryAttrs {
                            spec: QuerySpec::square_range(20.0 + next(60) as f64),
                        },
                    )
                } else {
                    LocationUpdate::object(
                        ObjectId(id),
                        site,
                        tick,
                        speed,
                        cn,
                        ObjectAttrs::default(),
                    )
                }
            })
            .collect()
    };

    for kernel in [KernelKind::Scalar, KernelKind::Simd] {
        let params = ScubaParams::default()
            .with_index(IndexKind::Adaptive)
            .with_split_merge(4, 1)
            .with_kernel(kernel);
        let mut op = ScubaOperator::new(params, area());

        // The churn stream is periodic (period 4): one full period of
        // warm-up drives every buffer to its true high-water mark.
        let phase = |tick: u64| (tick - 1) % 4 + 1;
        for tick in 1..=4u64 {
            for u in make_updates(phase(tick)) {
                op.process_update(&u);
            }
            op.evaluate(tick * 2);
        }
        let settled = op.join_scratch_bytes();
        assert!(settled > 0, "kernel {kernel}: warm scratch holds buffers");

        // Steady state: replaying the same churn pattern must never
        // reallocate.
        for tick in 5..=12u64 {
            for u in make_updates(phase(tick)) {
                op.process_update(&u);
            }
            let report = op.evaluate(tick * 2);
            assert!(!report.results.is_empty(), "tick {tick} finds matches");
            assert_eq!(
                op.join_scratch_bytes(),
                settled,
                "kernel {kernel}: tick {tick} grew the join scratch"
            );
        }
    }
}
