//! N-shard ≡ single-shard identity (ISSUE 8).
//!
//! The sharded executor is a pure execution-strategy change: stripe
//! ownership, ghost replication and the owner-side cross-stripe join must
//! never alter the answer. The property below drives shards {1, 2, 4, 8}
//! × join cache {on, off} × index {uniform, adaptive} against the
//! single-store `ScubaOperator` on a boundary-heavy stream (positions
//! concentrated around the 8-way stripe borders so ghosts are exercised
//! constantly). The directed companion pins the hardest geometry: one
//! cluster whose circle spans three-plus stripes, matched by queries two
//! stripes away on both sides.

use proptest::prelude::*;

use scuba::{IndexKind, ScubaOperator, ScubaParams, ShardedScubaOperator};
use scuba_motion::{LocationUpdate, ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec};
use scuba_spatial::{Point, Rect};
use scuba_stream::{ContinuousOperator, QueryMatch};

const AREA: f64 = 1000.0;

fn area() -> Rect {
    Rect::square(AREA)
}

/// Boundary-heavy workload: half the positions land within ±40 units of
/// an 8-shard stripe border (x = 125·k), the rest are uniform; mixed
/// objects and range queries with varied sides, shared destination nodes
/// so clusters actually form.
fn arb_updates(max_entities: usize) -> impl Strategy<Value = Vec<LocationUpdate>> {
    let nodes = [
        Point::new(0.0, 500.0),
        Point::new(1000.0, 500.0),
        Point::new(500.0, 0.0),
        Point::new(500.0, 1000.0),
    ];
    let arb_x = prop_oneof![
        0.0..AREA,
        (1u32..8, -40.0..40.0f64).prop_map(|(b, off)| (125.0 * b as f64 + off).clamp(0.0, AREA)),
    ];
    prop::collection::vec(
        (
            0u64..40,      // entity id
            any::<bool>(), // object or query
            arb_x,
            0.0..AREA,    // y
            5.0..50.0f64, // speed
            0usize..4,    // destination node index
            5.0..80.0f64, // query range side
        ),
        1..max_entities,
    )
    .prop_map(move |rows| {
        rows.into_iter()
            .map(|(id, is_query, x, y, speed, node, side)| {
                let loc = Point::new(x, y);
                let cn = nodes[node];
                if is_query {
                    LocationUpdate::query(
                        QueryId(id),
                        loc,
                        0,
                        speed,
                        cn,
                        QueryAttrs {
                            spec: QuerySpec::square_range(side),
                        },
                    )
                } else {
                    LocationUpdate::object(ObjectId(id), loc, 0, speed, cn, ObjectAttrs::default())
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stripe partitioning is answer-invisible: at every tick the merged
    /// N-shard result set equals the single-store operator's, for shards
    /// {1, 2, 4, 8} × join cache {on, off} × index {uniform, adaptive}.
    #[test]
    fn sharded_executor_matches_single_store(
        batches in prop::collection::vec(arb_updates(40), 1..3),
    ) {
        let adaptive_base = ScubaParams::default()
            .with_index(IndexKind::Adaptive)
            .with_split_merge(4, 1);
        let configs: Vec<ScubaParams> = [1usize, 2, 4, 8]
            .iter()
            .flat_map(|&k| {
                [true, false].iter().flat_map(move |&cache| {
                    [ScubaParams::default(), adaptive_base]
                        .into_iter()
                        .map(move |base| base.with_shards(k).with_join_cache(cache))
                })
            })
            .collect();
        let mut single = ScubaOperator::new(ScubaParams::default(), area());
        let mut sharded: Vec<ShardedScubaOperator> = configs
            .iter()
            .map(|&params| ShardedScubaOperator::new(params, area()))
            .collect();
        for (tick, batch) in batches.iter().enumerate() {
            let now = (tick as u64 + 1) * 2;
            single.process_batch(batch);
            let expected = single.evaluate(now).results;
            for (op, params) in sharded.iter_mut().zip(&configs) {
                op.process_batch(batch);
                let observed = op.evaluate(now).results;
                prop_assert_eq!(
                    &observed,
                    &expected,
                    "tick {}: shards {} cache {} index {} diverged",
                    tick,
                    params.shards,
                    params.join_cache,
                    params.index
                );
            }
        }
    }
}

/// Directed regression for the widest geometry the ghost protocol must
/// cover: with Θ_D = 260 one object cluster on stripe 3 grows a circle
/// spanning three stripes, and matching queries sit across borders on
/// both sides (one of them two stripes away). Every cross-stripe match
/// must survive the exchange, at every shard count.
#[test]
fn three_stripe_straddling_cluster_matches_everywhere() {
    let cn = Point::new(500.0, 1000.0);
    let obj = |id: u64, x: f64, y: f64| {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            0,
            30.0,
            cn,
            ObjectAttrs::default(),
        )
    };
    let qry = |id: u64, x: f64, y: f64, side: f64| {
        LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            0,
            30.0,
            cn,
            QueryAttrs {
                spec: QuerySpec::square_range(side),
            },
        )
    };
    // One tall object cluster centred on stripe 3 (members share cn and
    // speed, spread ±180 in y): centroid ≈ (440, 500), radius ≈ 180, so
    // the cluster circle spans x ∈ [260, 620] — stripes 2, 3 and 4.
    let batch = vec![
        obj(1, 440.0, 320.0),
        obj(2, 440.0, 500.0),
        obj(3, 440.0, 680.0),
        // Stripe-4 query whose region [435, 585]×[425, 575] catches
        // object 2 across the 500-border.
        qry(10, 510.0, 500.0, 150.0),
        // Stripe-2 query with a 400-wide region reaching the whole
        // cluster column from two borders away.
        qry(11, 260.0, 490.0, 400.0),
        // Far-side control: matches nothing.
        qry(12, 900.0, 100.0, 30.0),
    ];
    let params = ScubaParams::default().with_thresholds(260.0, 10.0);
    let mut single = ScubaOperator::new(params, area());
    single.process_batch(&batch);
    let expected = single.evaluate(2).results;
    let wanted: Vec<QueryMatch> = vec![
        QueryMatch::new(QueryId(10), ObjectId(2)),
        QueryMatch::new(QueryId(11), ObjectId(1)),
        QueryMatch::new(QueryId(11), ObjectId(2)),
        QueryMatch::new(QueryId(11), ObjectId(3)),
    ];
    assert_eq!(
        expected, wanted,
        "single-store baseline answers the workload"
    );

    for shards in [1usize, 2, 4, 8] {
        let mut op = ShardedScubaOperator::new(params.with_shards(shards), area());
        op.process_batch(&batch);
        let report = op.evaluate(2);
        assert_eq!(report.results, expected, "{shards} shards diverged");
        if shards >= 4 {
            assert!(
                op.ghost_refreshes() > 0,
                "{shards} shards: the straddling cluster must ship ghosts"
            );
        }
    }
}
