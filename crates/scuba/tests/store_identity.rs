//! Identity tests for the generational cluster store.
//!
//! The store hands out dense [`scuba::ClusterSlot`] handles that are
//! **reused** after a dissolution, while the durable [`scuba::ClusterId`]
//! stays the public identity. Nothing observable may depend on the slot
//! layout: reports keep their canonical order, parallelism and the join
//! cache change nothing, and a snapshot taken across a dissolve→respawn
//! cycle restores to a state indistinguishable from the uninterrupted
//! run.

use scuba::clustering::ClusterEngine;
use scuba::join::JoinOutput;
use scuba::{EngineSnapshot, JoinCache, JoinContext, JoinScratch, ScubaParams};
use scuba_motion::{
    EntityRef, LocationUpdate, ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec,
};
use scuba_spatial::{Point, Rect};

const AREA: f64 = 1000.0;

/// Shared destination node far from every convoy, so speed-0 clusters
/// never pass it and stay alive across maintenance.
const CN: Point = Point { x: 0.0, y: 0.0 };

/// Convoy sites on a 300-unit lattice — farther apart than Θ_D, so each
/// convoy always forms its own cluster regardless of ingest order.
fn site(tag: u64) -> Point {
    Point::new(
        150.0 + (tag % 3) as f64 * 300.0,
        150.0 + (tag / 3 % 3) as f64 * 300.0,
    )
}

/// Ingests one stationary convoy: 3 objects plus one range query.
fn convoy(engine: &mut ClusterEngine, tag: u64, time: u64) {
    let centre = site(tag);
    for k in 0..3u64 {
        engine.process_update(&LocationUpdate::object(
            ObjectId(tag * 100 + k),
            Point::new(centre.x + k as f64, centre.y),
            time,
            0.0,
            CN,
            ObjectAttrs::default(),
        ));
    }
    engine.process_update(&LocationUpdate::query(
        QueryId(tag),
        Point::new(centre.x + 1.0, centre.y + 1.0),
        time,
        0.0,
        CN,
        QueryAttrs {
            spec: QuerySpec::square_range(40.0),
        },
    ));
}

/// Runs the join at a given parallelism, optionally through a cache.
fn joined(
    engine: &ClusterEngine,
    parallelism: usize,
    cache: Option<(&mut JoinCache, &mut JoinScratch)>,
) -> JoinOutput {
    let ctx = JoinContext {
        store: engine.store(),
        grid: engine.grid(),
        queries: engine.queries(),
        shedding: engine.params().shedding,
        theta_d: engine.params().theta_d,
        member_filter: engine.params().member_filter,
        parallelism,
        kernel: engine.params().kernel,
    };
    match cache {
        Some((cache, scratch)) => ctx.run_cached(Some(engine.epochs()), cache, scratch),
        None => ctx.run(),
    }
}

/// Dissolves the cluster the given query travels in, returning the slot
/// it occupied (which the next founding will reuse).
fn dissolve_convoy(engine: &mut ClusterEngine, tag: u64) -> scuba::ClusterSlot {
    let slot = engine
        .home()
        .cluster_of(EntityRef::Query(QueryId(tag)))
        .expect("convoy is clustered");
    let cid = engine.cluster_at(slot).expect("slot is live").cid;
    engine.dissolve(cid);
    slot
}

/// Report order and content are functions of the *durable* identities
/// only: an engine whose slots were churned by dissolve→respawn reports
/// exactly what a churn-free engine with the same live population does,
/// at every parallelism, cache on and off — and the order is canonical
/// (sorted), not slot-layout order.
#[test]
fn reports_are_slot_layout_independent() {
    // Churned: convoys 1..=4, then convoy 2 dissolves and convoy 5
    // founds into the freed slot.
    let mut churned = ClusterEngine::new(ScubaParams::default(), Rect::square(AREA));
    for tag in 1..=4 {
        convoy(&mut churned, tag, 0);
    }
    let freed = dissolve_convoy(&mut churned, 2);
    convoy(&mut churned, 5, 0);
    let reused = churned
        .home()
        .cluster_of(EntityRef::Query(QueryId(5)))
        .expect("convoy 5 is clustered");
    assert_eq!(reused, freed, "the founding reuses the freed slot");
    churned.check_invariants();

    // Pristine: the same live population, never churned — different slot
    // layout (convoy 5 gets a fresh slot at the end).
    let mut pristine = ClusterEngine::new(ScubaParams::default(), Rect::square(AREA));
    for tag in [1, 3, 4, 5] {
        convoy(&mut pristine, tag, 0);
    }

    let reference = joined(&churned, 1, None);
    assert!(!reference.results.is_empty());
    let mut sorted = reference.results.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(reference.results, sorted, "report order is canonical");

    assert_eq!(
        joined(&pristine, 1, None).results,
        reference.results,
        "slot layout leaked into the report"
    );
    for parallelism in [1, 2, 4] {
        let (mut cache, mut scratch) = (JoinCache::new(), JoinScratch::new());
        assert_eq!(
            joined(&churned, parallelism, None).results,
            reference.results,
            "parallelism {parallelism} changed the report"
        );
        // Cold then warm: replayed-from-cache epochs included.
        for round in 0..2 {
            assert_eq!(
                joined(&churned, parallelism, Some((&mut cache, &mut scratch))).results,
                reference.results,
                "cached round {round} at parallelism {parallelism} diverged"
            );
        }
    }
}

/// A snapshot taken right after a dissolve→respawn cycle restores into an
/// engine equal to the uninterrupted one: same reports, same re-captured
/// snapshot, and a fresh join cache that starts cold against the restored
/// epoch clocks (no entry can replay against a reused slot).
#[test]
fn snapshot_roundtrip_across_slot_reuse() {
    let mut live = ClusterEngine::new(ScubaParams::default(), Rect::square(AREA));
    for tag in 1..=3 {
        convoy(&mut live, tag, 0);
    }
    let freed = dissolve_convoy(&mut live, 2);
    convoy(&mut live, 4, 0);
    assert_eq!(
        live.home().cluster_of(EntityRef::Query(QueryId(4))),
        Some(freed),
        "convoy 4 reuses the freed slot"
    );

    let snapshot = EngineSnapshot::capture(&live);
    let mut restored = snapshot.restore().expect("snapshot restores");
    restored.check_invariants();

    // Both continue identically: another churn cycle on each side.
    for engine in [&mut live, &mut restored] {
        let freed = dissolve_convoy(engine, 3);
        convoy(engine, 6, 1);
        assert_eq!(
            engine.home().cluster_of(EntityRef::Query(QueryId(6))),
            Some(freed)
        );
    }
    assert_eq!(
        joined(&live, 1, None).results,
        joined(&restored, 1, None).results,
        "restored engine diverged from the uninterrupted run"
    );
    assert_eq!(
        EngineSnapshot::capture(&live),
        EngineSnapshot::capture(&restored),
        "re-captured snapshots differ"
    );

    // A fresh cache over the restored engine behaves coherently: all
    // misses cold, all hits warm, identical results throughout.
    let (mut cache, mut scratch) = (JoinCache::new(), JoinScratch::new());
    let reference = joined(&restored, 1, None);
    let cold = joined(&restored, 1, Some((&mut cache, &mut scratch)));
    assert_eq!(cold.results, reference.results);
    assert_eq!(cold.cache_hits, 0, "nothing replays against a fresh cache");
    assert!(cold.cache_misses > 0);
    let warm = joined(&restored, 1, Some((&mut cache, &mut scratch)));
    assert_eq!(warm.results, reference.results);
    assert_eq!(warm.cache_misses, 0, "quiet epoch replays everything");
    assert!(warm.cache_hits > 0);
}

/// Dissolving and refounding into the same slot between cached joins must
/// never replay the old occupant's entry: the reused slot is touched at a
/// fresh epoch clock, so every pair involving it recomputes.
#[test]
fn slot_reuse_never_replays_previous_occupants_entries() {
    let mut engine = ClusterEngine::new(ScubaParams::default(), Rect::square(AREA));
    for tag in 1..=2 {
        convoy(&mut engine, tag, 0);
    }
    let (mut cache, mut scratch) = (JoinCache::new(), JoinScratch::new());
    joined(&engine, 1, Some((&mut cache, &mut scratch)));
    let warm = joined(&engine, 1, Some((&mut cache, &mut scratch)));
    assert!(warm.cache_hits >= 2, "quiet epoch replays both convoys");

    // Convoy 2's cluster dissolves; convoy 5 founds into its slot at a
    // *different site* with different members.
    let freed = dissolve_convoy(&mut engine, 2);
    convoy(&mut engine, 5, 1);
    assert_eq!(
        engine.home().cluster_of(EntityRef::Query(QueryId(5))),
        Some(freed)
    );

    let after = joined(&engine, 1, Some((&mut cache, &mut scratch)));
    let reference = joined(&engine, 1, None);
    assert_eq!(after.results, reference.results);
    assert!(
        after.results.iter().any(|m| m.query == QueryId(5)),
        "the new occupant reports its own matches"
    );
    assert!(
        !after.results.iter().any(|m| m.query == QueryId(2)),
        "the previous occupant's matches are gone"
    );
    assert!(
        after.cache_misses >= 1,
        "the reused slot's pairs recompute instead of replaying"
    );
}
