//! Churned run ≡ active-interval oracle (ISSUE 10 correctness gate).
//!
//! Live register/deregister must be answer-exact: at every evaluation a
//! churned run's results are bit-identical, per query, to a from-scratch
//! oracle run that only ever contained each query during its active
//! interval. Because the join is exact (filter-then-refine on true
//! geometry) and every entity reports every tick, such an oracle can be
//! built per evaluation: a fresh operator fed only that tick's object
//! positions plus the currently active queries answers exactly what the
//! incremental churned engine must answer — if deregistration fully
//! retires cluster membership, cached join rows and registry state, and
//! registration re-admits a query with no residue. The property drives
//! random churn schedules across shards {1, 2, 4} × join cache
//! {on, off} × index {uniform, adaptive}, plus the single-store engine.
//!
//! The recovery property extends the gate through the durability layer:
//! killing a supervised churned run at an arbitrary tick (optionally
//! tearing the journal tail mid-frame, as a SIGKILL mid-append would)
//! and resuming over the same directory must reproduce the oracle's
//! evaluation stream, final snapshots and final registry — the active
//! query set is rebuilt from checkpoint + WAL-journalled control ops.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use scuba::{
    run_supervised, IndexKind, NoObserver, ScubaOperator, ScubaParams, ShardedScubaOperator,
    SuperviseConfig, SupervisedOutcome,
};
use scuba_motion::{
    ControlOp, LocationUpdate, ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec,
};
use scuba_spatial::{Point, Rect, Time};
use scuba_stream::executor::UpdateSource;
use scuba_stream::{ContinuousOperator, EvaluationReport, QueryMatch};

const N_OBJECTS: u64 = 28;
const N_QUERIES: u64 = 12;

const CN: Point = Point { x: 500.0, y: 0.0 };

fn area() -> Rect {
    Rect::square(1000.0)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scuba-churn-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Closed-form object position at tick `t`. The ¼-unit offset keeps
/// object/query distances off exact range boundaries (query coordinates
/// sit on ½-unit offsets and range half-sides are whole numbers).
fn object_update(i: u64, t: Time) -> LocationUpdate {
    let x = 20.25 + ((i * 53 + t * 17) % 960) as f64;
    let y = 20.25 + ((i * 31 + t * 13) % 960) as f64;
    LocationUpdate::object(
        ObjectId(i),
        Point::new(x, y),
        t,
        10.0 + (i % 4) as f64,
        CN,
        ObjectAttrs::default(),
    )
}

/// Closed-form query position and spec at tick `t`.
fn query_update(q: u64, t: Time) -> LocationUpdate {
    let x = 40.5 + ((q * 97 + t * 23) % 920) as f64;
    let y = 40.5 + ((q * 71 + t * 19) % 920) as f64;
    LocationUpdate::query(
        QueryId(q),
        Point::new(x, y),
        t,
        12.0 + (q % 3) as f64,
        CN,
        QueryAttrs {
            spec: QuerySpec::square_range(90.0 + (q % 4) as f64 * 40.0),
        },
    )
}

/// Simple xorshift so churn schedules are reproducible from a seed.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x1234_5678))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next() % den < num
    }
}

/// Per-tick churn plan: the control ops to apply before the tick's batch
/// and the resulting active flags per query. Every query starts active
/// and tick 1 never churns — controls apply *before* the batch, so a
/// tick-1 deregister would address a registry that has seen nothing yet
/// and dead-letter as unknown instead of deregistering. From tick 2 on,
/// active queries deregister with probability ¼ per tick and dead ones
/// revive with probability ⅖, so a handful of full
/// dead-interval-then-revival cycles fit in a short run.
fn churn_schedule(seed: u64, ticks: u64) -> Vec<(Vec<ControlOp>, Vec<bool>)> {
    let mut rng = XorShift::new(seed);
    let mut active = vec![true; N_QUERIES as usize];
    let mut out = Vec::with_capacity(ticks as usize);
    for t in 1..=ticks {
        let mut controls = Vec::new();
        if t == 1 {
            out.push((controls, active.clone()));
            continue;
        }
        for q in 0..N_QUERIES {
            let qi = q as usize;
            if active[qi] {
                if rng.chance(1, 4) {
                    active[qi] = false;
                    controls.push(ControlOp::Deregister(QueryId(q)));
                }
            } else if rng.chance(2, 5) {
                active[qi] = true;
                controls.push(ControlOp::Register(query_update(q, t)));
            }
        }
        out.push((controls, active.clone()));
    }
    out
}

/// The tick's data batch: every object reports, plus every *active*
/// query (a deregistered query stops reporting — a data-plane update
/// would implicitly re-register it).
fn batch_at(t: Time, active: &[bool]) -> Vec<LocationUpdate> {
    let mut batch: Vec<LocationUpdate> = (0..N_OBJECTS).map(|i| object_update(i, t)).collect();
    batch.extend(
        (0..N_QUERIES)
            .filter(|&q| active[q as usize])
            .map(|q| query_update(q, t)),
    );
    batch
}

/// The from-scratch oracle for one evaluation: a fresh operator that has
/// only ever seen this tick's objects and the currently active queries.
/// Results are exact geometry, so this equals any correct incremental
/// run regardless of clustering history.
fn oracle_results(t: Time, active: &[bool]) -> Vec<QueryMatch> {
    let mut oracle = ScubaOperator::new(ScubaParams::default(), area());
    oracle.process_batch(&batch_at(t, active));
    oracle.evaluate(t).results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole identity: a churned incremental run answers, per
    /// query and per tick, exactly like the active-interval oracle — for
    /// every execution strategy, with identical control gauges across
    /// all of them.
    #[test]
    fn churned_run_matches_active_interval_oracle(seed in 0u64..1000) {
        let ticks = 8u64;
        let schedule = churn_schedule(seed, ticks);

        let adaptive = ScubaParams::default()
            .with_index(IndexKind::Adaptive)
            .with_split_merge(4, 1);
        let configs: Vec<ScubaParams> = [1usize, 2, 4]
            .iter()
            .flat_map(|&k| {
                [true, false].iter().flat_map(move |&cache| {
                    [ScubaParams::default(), adaptive]
                        .into_iter()
                        .map(move |base| base.with_shards(k).with_join_cache(cache))
                })
            })
            .collect();
        let mut single = ScubaOperator::new(ScubaParams::default().with_join_cache(true), area());
        let mut sharded: Vec<ShardedScubaOperator> = configs
            .iter()
            .map(|&params| ShardedScubaOperator::new(params, area()))
            .collect();

        let mut expected_dereg = 0u64;
        let mut expected_reg = N_QUERIES; // first tick implicitly registers all
        for (tick0, (controls, active)) in schedule.iter().enumerate() {
            let t = tick0 as Time + 1;
            for op in controls {
                match op {
                    ControlOp::Deregister(_) => expected_dereg += 1,
                    ControlOp::Register(_) => expected_reg += 1,
                    ControlOp::Update(_) => {}
                }
            }
            let batch = batch_at(t, active);
            let expected = oracle_results(t, active);

            single.apply_control(controls, t);
            single.process_batch(&batch);
            prop_assert_eq!(
                &single.evaluate(t).results,
                &expected,
                "tick {}: single-store engine diverged from oracle",
                t
            );
            let gauges = single.control_gauges();
            prop_assert_eq!(
                gauges.active_queries as usize,
                active.iter().filter(|&&a| a).count(),
                "tick {}: active gauge off schedule",
                t
            );
            prop_assert_eq!(gauges.registered_total, expected_reg);
            prop_assert_eq!(gauges.deregistered_total, expected_dereg);
            prop_assert_eq!(gauges.unknown_total, 0);

            for (op, params) in sharded.iter_mut().zip(&configs) {
                op.apply_control(controls, t);
                op.process_batch(&batch);
                prop_assert_eq!(
                    &op.evaluate(t).results,
                    &expected,
                    "tick {}: shards {} cache {} index {} diverged from oracle",
                    t,
                    params.shards,
                    params.join_cache,
                    params.index
                );
                prop_assert_eq!(
                    op.control_gauges(),
                    gauges,
                    "tick {}: shards {} gauges diverged from single-store",
                    t,
                    params.shards
                );
            }
        }
        // A degenerate schedule proves nothing — require real churn.
        prop_assert!(expected_dereg > 0, "schedule produced no deregistrations");
    }
}

/// Restartable churned source for supervised runs: every construction
/// re-delivers the identical control and data streams, which is what
/// lets a resumed run refill ticks a killed process never made durable.
/// Controls are produced by `next_controls` (called before `next_tick`,
/// per the control-before-data contract) and advance the tick counter.
struct ChurnedSource {
    schedule: Vec<(Vec<ControlOp>, Vec<bool>)>,
    tick: usize,
}

impl ChurnedSource {
    fn new(seed: u64, ticks: u64) -> Self {
        ChurnedSource {
            schedule: churn_schedule(seed, ticks),
            tick: 0,
        }
    }
}

impl UpdateSource for ChurnedSource {
    fn next_tick(&mut self) -> Vec<LocationUpdate> {
        let (_, active) = &self.schedule[self.tick - 1];
        batch_at(self.tick as Time, active)
    }

    fn next_controls(&mut self) -> Vec<ControlOp> {
        self.tick += 1;
        self.schedule[self.tick - 1].0.clone()
    }
}

fn supervised(dir: &Path, params: ScubaParams, seed: u64, duration: Time) -> SupervisedOutcome {
    let cfg = SuperviseConfig {
        duration,
        checkpoint_every: 3,
        max_restarts: 3,
        backoff: std::time::Duration::from_millis(1),
        ..SuperviseConfig::default()
    };
    // The schedule spans the full run even when this stage stops early:
    // a later resume over the same directory must see the same stream.
    let mut source = ChurnedSource::new(seed, 16);
    run_supervised(
        &mut source,
        &params,
        area(),
        dir,
        &cfg,
        None,
        &mut NoObserver,
    )
    .expect("supervised churned run succeeds")
}

/// Keep-last-by-tick view of an evaluation stream (a resumed run
/// re-emits the evaluations it replayed from the journal).
fn by_tick(reports: &[&EvaluationReport]) -> BTreeMap<Time, Vec<QueryMatch>> {
    let mut map = BTreeMap::new();
    for r in reports {
        map.insert(r.now, r.results.clone());
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill-at-any-tick recovery under churn: stage one runs the first
    /// `kill` ticks and stops (optionally tearing the newest journal
    /// segment mid-frame); stage two resumes over the same directory and
    /// runs to the end. The merged evaluation stream, the final stripe
    /// snapshots AND the final query registry must equal an
    /// uninterrupted oracle run — the active set is reproduced from
    /// checkpoint + journalled control ops, not from the source alone.
    #[test]
    fn killed_churned_run_recovers_registry_and_results(
        seed in 0u64..500,
        kill in 1u64..10,
        shards_idx in 0usize..3,
        cache in any::<bool>(),
        tear_tail in any::<bool>(),
    ) {
        let shards = [1usize, 2, 4][shards_idx];
        let params = ScubaParams::default()
            .with_shards(shards)
            .with_join_cache(cache);
        let duration = 10u64;

        let oracle_dir = tmp_dir(&format!("oracle-{seed}-{kill}-{shards}-{cache}"));
        let oracle = supervised(&oracle_dir, params, seed, duration);
        prop_assert!(oracle.report.aborted.is_none());
        let oracle_gauges = oracle.operator.control_gauges();
        prop_assert!(
            oracle_gauges.deregistered_total > 0,
            "oracle run must actually churn: {:?}",
            oracle_gauges
        );

        let dir = tmp_dir(&format!("kill-{seed}-{kill}-{shards}-{cache}"));
        let first = supervised(&dir, params, seed, kill);

        if tear_tail {
            let mut journals: Vec<PathBuf> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| {
                    let p = e.unwrap().path();
                    (p.extension().is_some_and(|x| x == "wal")).then_some(p)
                })
                .collect();
            journals.sort();
            if let Some(newest) = journals.last() {
                let bytes = std::fs::read(newest).unwrap();
                if bytes.len() > 20 {
                    std::fs::write(newest, &bytes[..bytes.len() - 9]).unwrap();
                }
            }
        }

        let second = supervised(&dir, params, seed, duration);
        prop_assert!(second.report.aborted.is_none());

        let merged: Vec<&EvaluationReport> = first
            .report
            .evaluations
            .iter()
            .chain(&second.report.evaluations)
            .collect();
        let oracle_stream: Vec<&EvaluationReport> = oracle.report.evaluations.iter().collect();
        prop_assert_eq!(by_tick(&merged), by_tick(&oracle_stream));

        prop_assert_eq!(second.operator.capture(), oracle.operator.capture());
        prop_assert_eq!(
            second.operator.registry(),
            oracle.operator.registry(),
            "recovered active query set must match the oracle's"
        );
        prop_assert_eq!(second.operator.control_gauges(), oracle_gauges);

        let _ = std::fs::remove_dir_all(&oracle_dir);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Directed per-query regression: a query deregistered at tick 3 and
/// revived at tick 6 must be absent from every evaluation in [3, 5] and
/// present again from tick 6 — on the single-store engine and on a
/// sharded, cache-on executor alike. A companion object shadows the
/// query's position so "present" always means at least one match.
#[test]
fn dead_interval_is_invisible_per_query() {
    const Q: u64 = 3;
    const SHADOW: u64 = 100;

    let shadow = |t: Time| {
        let q = query_update(Q, t);
        LocationUpdate::object(
            ObjectId(SHADOW),
            Point::new(q.loc.x + 1.0, q.loc.y + 1.0),
            t,
            10.0,
            CN,
            ObjectAttrs::default(),
        )
    };

    let mut single = ScubaOperator::new(ScubaParams::default(), area());
    let mut sharded = ShardedScubaOperator::new(
        ScubaParams::default().with_shards(2).with_join_cache(true),
        area(),
    );

    for t in 1u64..=8 {
        let controls: Vec<ControlOp> = match t {
            3 => vec![ControlOp::Deregister(QueryId(Q))],
            6 => vec![ControlOp::Register(query_update(Q, t))],
            _ => Vec::new(),
        };
        let alive = !(3..6).contains(&t);
        let active: Vec<bool> = (0..N_QUERIES).map(|q| q != Q || alive).collect();
        let mut batch = batch_at(t, &active);
        batch.push(shadow(t));

        for results in [
            {
                single.apply_control(&controls, t);
                single.process_batch(&batch);
                single.evaluate(t).results
            },
            {
                sharded.apply_control(&controls, t);
                sharded.process_batch(&batch);
                sharded.evaluate(t).results
            },
        ] {
            let answered = results.iter().any(|m| m.query == QueryId(Q));
            assert_eq!(
                answered, alive,
                "tick {t}: query {Q} answered={answered}, expected alive={alive}"
            );
        }
    }
    assert_eq!(single.control_gauges(), sharded.control_gauges());
    assert_eq!(single.control_gauges().deregistered_total, 1);
}
