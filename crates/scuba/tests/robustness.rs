//! Robustness integration tests: adaptive overload control, fault
//! injection, and crash recovery (ISSUE 4).
//!
//! Three claims are exercised end to end:
//!
//! 1. The deadline controller escalates shedding under sustained load and
//!    de-escalates once the load drops, and the shedding is actually
//!    applied to the engine mid-run.
//! 2. SCUBA with a validating front-end survives every fault type the
//!    injector produces — no panics, no invariant violations — and its
//!    results are bit-identical to a trusting pipeline fed only the
//!    surviving well-formed updates (quarantine equivalence).
//! 3. After a mid-stream crash, restoring the latest snapshot and
//!    replaying the remaining (identically faulted) stream reaches the
//!    same state and the same answers as the uninterrupted run.

use std::time::Duration;

use scuba::{EngineSnapshot, ScubaOperator, ScubaParams, SheddingMode, ValidationPolicy};
use scuba_motion::{LocationUpdate, ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec};
use scuba_spatial::{Point, Rect, Time};
use scuba_stream::{
    ContinuousOperator, Executor, ExecutorConfig, FaultInjector, FaultPlan, QueryMatch,
    UpdateValidator, Verdict,
};

const AREA: f64 = 1000.0;

/// How deep a shedding mode sits on the ladder, as a shed fraction.
fn shed_fraction(mode: SheddingMode) -> f64 {
    match mode {
        SheddingMode::None => 0.0,
        SheddingMode::Partial { eta } => eta,
        SheddingMode::Full => 1.0,
    }
}

/// SplitMix64 so the workload is seeded without external crates.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

/// A drifting workload of `n_objects` objects and `n_queries` queries,
/// one batch per tick, everything seeded.
fn build_batches(
    seed: u64,
    n_objects: u64,
    n_queries: u64,
    ticks: u64,
) -> Vec<Vec<LocationUpdate>> {
    let mut rng = Mix(seed);
    let total = n_objects + n_queries;
    let mut pos: Vec<Point> = (0..total)
        .map(|_| Point::new(rng.in_range(0.0, AREA), rng.in_range(0.0, AREA)))
        .collect();
    let cn: Vec<Point> = pos
        .iter()
        .map(|p| {
            Point::new(
                p.x + rng.in_range(-80.0, 80.0),
                p.y + rng.in_range(-80.0, 80.0),
            )
        })
        .collect();
    let mut batches = Vec::with_capacity(ticks as usize);
    for t in 1..=ticks {
        let mut batch = Vec::with_capacity(total as usize);
        for i in 0..total as usize {
            pos[i] = Point::new(
                (pos[i].x + rng.in_range(-15.0, 15.0)).clamp(0.0, AREA),
                (pos[i].y + rng.in_range(-15.0, 15.0)).clamp(0.0, AREA),
            );
            let u = if (i as u64) < n_objects {
                LocationUpdate::object(
                    ObjectId(i as u64),
                    pos[i],
                    t as Time,
                    rng.in_range(0.0, 10.0),
                    cn[i],
                    ObjectAttrs::default(),
                )
            } else {
                LocationUpdate::query(
                    QueryId(i as u64 - n_objects),
                    pos[i],
                    t as Time,
                    rng.in_range(0.0, 10.0),
                    cn[i],
                    QueryAttrs {
                        spec: QuerySpec::square_range(80.0),
                    },
                )
            };
            batch.push(u);
        }
        batch.sort_by_key(|u| (u.time, u.entity));
        batches.push(batch);
    }
    batches
}

/// Replays pre-built batches through an operator, evaluating every
/// `delta` ticks; returns the sorted per-interval result sets.
fn replay(
    op: &mut ScubaOperator,
    batches: &[Vec<LocationUpdate>],
    first_tick: u64,
    delta: u64,
) -> Vec<Vec<QueryMatch>> {
    let mut results = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        op.process_batch(batch);
        let now = first_tick + i as u64;
        if now % delta == 0 {
            let mut r = op.evaluate(now).results;
            r.sort();
            results.push(r);
        }
    }
    results
}

// ---------------------------------------------------------------------
// 1. Adaptive overload control, end to end.
// ---------------------------------------------------------------------

/// Scripted heavy-then-light tick costs drive the controller up the
/// ladder and back down, and escalation actually sheds engine state.
#[test]
fn controller_escalates_under_load_then_relaxes() {
    let batches = build_batches(7, 60, 10, 20);
    // Deadline 1ms; the script spends 5ms per tick for the first 8 ticks
    // and 50µs afterwards, independent of the host machine. Eight misses
    // climb the full ladder (escalate every 2); twelve clean ticks unwind
    // all four rungs (relax every 3).
    let mut costs = vec![Duration::from_millis(5); 8];
    costs.extend(vec![Duration::from_micros(50); 12]);
    let params = ScubaParams::default().with_deadline_us(Some(1_000));
    let mut op = ScubaOperator::new(params, Rect::square(AREA)).with_scripted_tick_costs(costs);

    let mut deepest = SheddingMode::None;
    let mut saw_active = false;
    for (i, batch) in batches.iter().enumerate() {
        op.process_batch(batch);
        op.evaluate((i + 1) as Time);
        let mode = op.current_shedding();
        if mode.is_active() {
            saw_active = true;
        }
        if shed_fraction(mode) > shed_fraction(deepest) {
            deepest = mode;
        }
        op.engine().check_invariants();
    }

    let counters = op.overload_counters().expect("controller attached");
    assert!(saw_active, "sustained misses must activate shedding");
    assert!(
        shed_fraction(deepest) >= 0.25,
        "escalation should reach at least the first partial rung, got {deepest:?}"
    );
    assert!(counters.escalations >= 1, "counters: {counters:?}");
    assert!(
        counters.relaxations >= 1,
        "clean ticks must relax: {counters:?}"
    );
    assert_eq!(
        op.current_shedding(),
        SheddingMode::None,
        "after the load drops the controller must walk back to None"
    );
    assert_eq!(counters.ticks, 20);
    assert_eq!(counters.misses, 8);
    assert_eq!(counters.escalations, 4, "None → .25 → .5 → .75 → Full");
    assert_eq!(counters.relaxations, 4, "and all the way back down");
}

/// Identical scripted timings produce identical controller trajectories —
/// the mode sequence is a pure function of the observed costs.
#[test]
fn scripted_timings_make_shedding_deterministic() {
    let batches = build_batches(11, 50, 8, 16);
    let script: Vec<Duration> = (0..16)
        .map(|i| {
            if i % 5 < 3 {
                Duration::from_millis(4)
            } else {
                Duration::from_micros(40)
            }
        })
        .collect();
    let params = ScubaParams::default().with_deadline_us(Some(500));

    let mut trajectories = Vec::new();
    for _ in 0..2 {
        let mut op =
            ScubaOperator::new(params, Rect::square(AREA)).with_scripted_tick_costs(script.clone());
        let mut modes = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            op.process_batch(batch);
            op.evaluate((i + 1) as Time);
            modes.push(op.current_shedding());
        }
        trajectories.push((modes, op.overload_counters().unwrap()));
    }
    assert_eq!(trajectories[0].0, trajectories[1].0);
    assert_eq!(trajectories[0].1, trajectories[1].1);
}

// ---------------------------------------------------------------------
// 2. Fault injection: no panics, no divergence on survivors.
// ---------------------------------------------------------------------

/// All five fault types at three seeds: the validating operator finishes
/// every run without panicking or corrupting engine invariants, and
/// malformed updates are quarantined rather than ingested.
#[test]
fn chaos_faults_never_panic_or_break_invariants() {
    for seed in [1u64, 2, 3] {
        let batches = build_batches(seed, 60, 10, 24);
        let params = ScubaParams::default().with_validation(ValidationPolicy::Reject);
        let mut op = ScubaOperator::new(params, Rect::square(AREA));
        let mut tick = 0usize;
        let mut source = || {
            let b = batches.get(tick).cloned().unwrap_or_default();
            tick += 1;
            b
        };
        let executor = Executor::new(ExecutorConfig {
            delta: 2,
            duration: 24,
        });
        let mut injector = FaultInjector::new(FaultPlan::chaos(seed));
        let report = executor.run_with_faults(&mut source, &mut op, &mut injector);

        assert!(
            report.aborted.is_none(),
            "seed {seed}: {:?}",
            report.aborted
        );
        op.engine().check_invariants();
        let stats = injector.stats();
        assert!(stats.corrupted > 0, "chaos plan must corrupt something");
        let vstats = op.validator().unwrap().stats();
        assert!(
            vstats.rejected_total() >= stats.corrupted,
            "every corrupted update must be quarantined (seed {seed}): \
             {vstats:?} vs {stats:?}"
        );
    }
}

/// Quarantine equivalence: SCUBA(Reject) over the faulted stream answers
/// exactly like SCUBA(Off) fed only the survivors a standalone validator
/// accepts. Rejection must not perturb anything the engine computes.
#[test]
fn reject_pipeline_matches_reference_on_survivors() {
    for seed in [1u64, 2, 3] {
        let batches = build_batches(seed + 100, 50, 8, 20);
        let delta = 2u64;

        // Faulted delivery, reproduced identically for both pipelines.
        let mut injector = FaultInjector::new(FaultPlan::chaos(seed));
        let faulted: Vec<Vec<LocationUpdate>> = batches
            .iter()
            .map(|b| injector.apply_tick(b.clone()))
            .collect();

        // Pipeline A: validating operator sees the raw faulted stream.
        let reject = ScubaParams::default().with_validation(ValidationPolicy::Reject);
        let mut op_a = ScubaOperator::new(reject, Rect::square(AREA));
        let results_a = replay(&mut op_a, &faulted, 1, delta);

        // Pipeline B: a standalone validator filters the survivors, which
        // feed a trusting operator.
        let mut validator = UpdateValidator::new(ValidationPolicy::Reject, Rect::square(AREA));
        let survivors: Vec<Vec<LocationUpdate>> = faulted
            .iter()
            .map(|batch| {
                batch
                    .iter()
                    .filter_map(|u| match validator.check(u) {
                        Verdict::Accept(u) => Some(u),
                        Verdict::Reject(_) | Verdict::Fatal(_) => None,
                    })
                    .collect()
            })
            .collect();
        let mut op_b = ScubaOperator::new(ScubaParams::default(), Rect::square(AREA));
        let results_b = replay(&mut op_b, &survivors, 1, delta);

        assert_eq!(
            results_a, results_b,
            "seed {seed}: quarantine changed answers"
        );
        // The two engines differ only in the configured validation policy;
        // normalise it so the comparison covers the clustered state alone.
        let mut snap_a = EngineSnapshot::capture(op_a.engine());
        snap_a.params.validation = ValidationPolicy::Off;
        assert_eq!(
            snap_a,
            EngineSnapshot::capture(op_b.engine()),
            "seed {seed}: engine state diverged"
        );
        // The operator's embedded validator and the standalone one saw the
        // same stream, so their ledgers agree too.
        let a = op_a.validator().unwrap().stats();
        let b = validator.stats();
        assert_eq!(a.seen, b.seen);
        assert_eq!(a.rejected_by_reason(), b.rejected_by_reason());
    }
}

/// Same plan, same seed, run twice: fault schedule, validator ledger and
/// answers are all bit-identical.
#[test]
fn fault_injection_is_deterministic() {
    let run = || {
        let batches = build_batches(42, 40, 8, 16);
        let mut injector = FaultInjector::new(FaultPlan::chaos(9));
        let faulted: Vec<Vec<LocationUpdate>> = batches
            .iter()
            .map(|b| injector.apply_tick(b.clone()))
            .collect();
        let params = ScubaParams::default().with_validation(ValidationPolicy::Reject);
        let mut op = ScubaOperator::new(params, Rect::square(AREA));
        let results = replay(&mut op, &faulted, 1, 2);
        (
            injector.stats(),
            op.validator().unwrap().stats().seen,
            results,
        )
    };
    assert_eq!(run(), run());
}

/// Under `Reject`, a batch of exclusively malformed updates leaves the
/// engine byte-identical to never having seen it.
#[test]
fn malformed_batch_leaves_engine_untouched() {
    let batches = build_batches(5, 30, 5, 4);
    let params = ScubaParams::default().with_validation(ValidationPolicy::Reject);
    let mut op = ScubaOperator::new(params, Rect::square(AREA));
    replay(&mut op, &batches, 1, 2);

    let before = EngineSnapshot::capture(op.engine());
    let poison: Vec<LocationUpdate> = (0..10)
        .map(|k| {
            LocationUpdate::object(
                ObjectId(900 + k),
                Point::new(f64::NAN, f64::INFINITY),
                5,
                1.0,
                Point::new(0.0, 0.0),
                ObjectAttrs::default(),
            )
        })
        .collect();
    op.process_batch(&poison);
    assert_eq!(before, EngineSnapshot::capture(op.engine()));
    assert_eq!(op.validator().unwrap().stats().rejected_total(), 10);
    assert_eq!(op.validator().unwrap().dead_letter_len(), 10);
}

// ---------------------------------------------------------------------
// 3. Crash recovery from a snapshot checkpoint.
// ---------------------------------------------------------------------

/// Crash mid-stream, restore the latest checkpoint, replay the remaining
/// faulted ticks: the recovered run answers exactly like the run that
/// never crashed, and ends in the identical engine state.
#[test]
fn crash_recovery_replays_to_identical_state() {
    for seed in [1u64, 2, 3] {
        let ticks = 20u64;
        let crash_at = 10usize; // ticks consumed before the crash
        let delta = 2u64;
        let batches = build_batches(seed + 200, 50, 8, ticks);

        // The delivery faults are part of the recorded history: both runs
        // see the identical lossy stream.
        let mut injector = FaultInjector::new(FaultPlan::lossy(seed));
        let faulted: Vec<Vec<LocationUpdate>> = batches
            .iter()
            .map(|b| injector.apply_tick(b.clone()))
            .collect();

        // Uninterrupted run.
        let mut uninterrupted = ScubaOperator::new(ScubaParams::default(), Rect::square(AREA));
        let all_results = replay(&mut uninterrupted, &faulted, 1, delta);

        // Crashed run: consume the first half, checkpoint, "crash".
        let mut doomed = ScubaOperator::new(ScubaParams::default(), Rect::square(AREA));
        replay(&mut doomed, &faulted[..crash_at], 1, delta);
        let checkpoint = EngineSnapshot::capture(doomed.engine());
        drop(doomed);

        // Recovery: restore the checkpoint and replay the rest.
        let engine = checkpoint.restore().expect("checkpoint restores");
        let mut recovered = ScubaOperator::from_engine(engine);
        let tail_results = replay(
            &mut recovered,
            &faulted[crash_at..],
            crash_at as u64 + 1,
            delta,
        );
        recovered.engine().check_invariants();

        let evals_before_crash = (1..=crash_at as u64).filter(|t| t % delta == 0).count();
        assert_eq!(
            tail_results,
            all_results[evals_before_crash..],
            "seed {seed}: post-recovery answers diverged"
        );
        assert_eq!(
            EngineSnapshot::capture(recovered.engine()),
            EngineSnapshot::capture(uninterrupted.engine()),
            "seed {seed}: recovered engine state diverged"
        );
    }
}
