//! Property-based tests for the SCUBA core.
//!
//! The central property is **result equivalence**: with no load shedding
//! and every entity reporting, SCUBA's two-phase cluster join must produce
//! exactly the same result set as the regular grid-based join over the same
//! updates — the pre-filter may only prune pairs that cannot match.

use proptest::prelude::*;

use scuba::baseline::RegularGridOperator;
use scuba::{
    IncrementalGridOperator, QueryIndexOperator, ScubaOperator, ScubaParams, SheddingMode,
    VciConfig, VciOperator,
};
use scuba_motion::{LocationUpdate, ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec};
use scuba_spatial::{Point, Rect};
use scuba_stream::ContinuousOperator;

const AREA: f64 = 1000.0;

/// A compact generator of update batches: positions on a bounded area,
/// speeds in a small range, destinations drawn from a handful of "nodes"
/// (so direction matches actually occur).
fn arb_updates(max_entities: usize) -> impl Strategy<Value = Vec<LocationUpdate>> {
    let nodes = [
        Point::new(0.0, 500.0),
        Point::new(1000.0, 500.0),
        Point::new(500.0, 0.0),
        Point::new(500.0, 1000.0),
    ];
    prop::collection::vec(
        (
            0u64..40,      // entity id
            any::<bool>(), // object or query
            0.0..AREA,     // x
            0.0..AREA,     // y
            5.0..50.0f64,  // speed
            0usize..4,     // destination node index
            5.0..80.0f64,  // query range side
        ),
        1..max_entities,
    )
    .prop_map(move |rows| {
        rows.into_iter()
            .map(|(id, is_query, x, y, speed, node, side)| {
                let loc = Point::new(x, y);
                let cn = nodes[node];
                if is_query {
                    LocationUpdate::query(
                        QueryId(id),
                        loc,
                        0,
                        speed,
                        cn,
                        QueryAttrs {
                            spec: QuerySpec::square_range(side),
                        },
                    )
                } else {
                    LocationUpdate::object(ObjectId(id), loc, 0, speed, cn, ObjectAttrs::default())
                }
            })
            .collect()
    })
}

fn area() -> Rect {
    Rect::square(AREA)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SCUBA without shedding ≡ REGULAR ≡ Q-INDEX ≡ SINA-GRID ≡ VCI on a
    /// single evaluation: five structurally different strategies, one
    /// answer.
    #[test]
    fn exact_operators_agree_single_interval(
        updates in arb_updates(60),
        grid_cells in 1u32..40,
    ) {
        let params = ScubaParams::default().with_grid_cells(grid_cells);
        let mut scuba = ScubaOperator::new(params, area());
        let mut regular = RegularGridOperator::new(grid_cells, area());
        let mut qindex = QueryIndexOperator::new();
        let mut sina = IncrementalGridOperator::new(grid_cells, area());
        let mut vci = VciOperator::new(VciConfig::default());
        for u in &updates {
            scuba.process_update(u);
            regular.process_update(u);
            qindex.process_update(u);
            sina.process_update(u);
            vci.process_update(u);
        }
        let s = scuba.evaluate(2).results;
        let r = regular.evaluate(2).results;
        let q = qindex.evaluate(2).results;
        let i = sina.evaluate(2).results;
        let v = vci.evaluate(2).results;
        prop_assert_eq!(&s, &r);
        prop_assert_eq!(&s, &q);
        prop_assert_eq!(&s, &i);
        prop_assert_eq!(&s, &v);
    }

    /// Equivalence also holds across several intervals when every entity
    /// re-reports each interval (so SCUBA's relocated clusters are always
    /// refreshed with exact positions before the next join).
    #[test]
    fn scuba_equals_regular_across_intervals(
        batches in prop::collection::vec(arb_updates(40), 1..4),
    ) {
        let params = ScubaParams::default();
        let mut scuba = ScubaOperator::new(params, area());
        let mut regular = RegularGridOperator::new(params.grid_cells, area());
        // Track latest state per entity; re-report everything per interval.
        let mut latest: std::collections::BTreeMap<_, LocationUpdate> =
            std::collections::BTreeMap::new();
        for (i, batch) in batches.iter().enumerate() {
            for u in batch {
                latest.insert(u.entity, *u);
            }
            for u in latest.values() {
                scuba.process_update(u);
                regular.process_update(u);
            }
            let now = (i as u64 + 1) * 2;
            let s = scuba.evaluate(now).results;
            let r = regular.evaluate(now).results;
            prop_assert_eq!(s, r, "interval {}", i);
        }
    }

    /// The cluster invariants hold after arbitrary update sequences.
    #[test]
    fn clustering_invariants_hold(updates in arb_updates(80)) {
        let mut scuba = ScubaOperator::new(ScubaParams::default(), area());
        for u in &updates {
            scuba.process_update(u);
        }
        scuba.engine().check_invariants();
        scuba.evaluate(2);
        scuba.engine().check_invariants();
    }

    /// Every member's admission respected Θ_D at the time it joined: the
    /// radius of any cluster is bounded by Θ_D plus accumulated centroid
    /// drift, which itself is bounded by Θ_D per absorption — so radius can
    /// never exceed member count × Θ_D (a sanity bound, not tight).
    #[test]
    fn radius_is_bounded(updates in arb_updates(60)) {
        let mut scuba = ScubaOperator::new(ScubaParams::default(), area());
        for u in &updates {
            scuba.process_update(u);
        }
        for c in scuba.engine().clusters().values() {
            let bound = (c.len() as f64) * scuba.engine().params().theta_d + 1e-6;
            prop_assert!(c.radius() <= bound, "radius {} members {}", c.radius(), c.len());
        }
    }

    /// Shed members are approximated by their cluster centroid, so when
    /// every entity of a cluster sits at the same point (degenerate,
    /// radius-0 clusters) the approximation is exact: full shedding must
    /// produce exactly the unshed results.
    #[test]
    fn full_shedding_exact_on_point_clusters(
        spots in prop::collection::hash_map(
            0usize..16,
            (0usize..4, 1usize..5, 1usize..4),
            1..6,
        ),
    ) {
        let nodes = [
            Point::new(0.0, 500.0),
            Point::new(1000.0, 500.0),
            Point::new(500.0, 0.0),
            Point::new(500.0, 1000.0),
        ];
        // Co-located groups: objects and queries stacked on single points.
        // Spots sit on a 250-unit lattice (> Θ_D = 100), so groups at
        // different spots can never share a cluster and every cluster is a
        // true point cluster.
        let mut updates = Vec::new();
        let mut oid = 0u64;
        let mut qid = 0u64;
        for (&idx, &(node, n_obj, n_qry)) in &spots {
            let loc = Point::new(
                125.0 + (idx % 4) as f64 * 250.0,
                125.0 + (idx / 4) as f64 * 250.0,
            );
            let cn = nodes[node];
            for _ in 0..n_obj {
                updates.push(LocationUpdate::object(
                    ObjectId(oid), loc, 0, 20.0, cn, ObjectAttrs::default(),
                ));
                oid += 1;
            }
            for _ in 0..n_qry {
                updates.push(LocationUpdate::query(
                    QueryId(qid), loc, 0, 20.0, cn,
                    QueryAttrs { spec: QuerySpec::square_range(40.0) },
                ));
                qid += 1;
            }
        }
        let exact_params = ScubaParams::default();
        let shed_params = exact_params.with_shedding(SheddingMode::Full);
        let mut exact = ScubaOperator::new(exact_params, area());
        let mut shed = ScubaOperator::new(shed_params, area());
        for u in &updates {
            exact.process_update(u);
            shed.process_update(u);
        }
        let truth = exact.evaluate(2).results;
        let measured = shed.evaluate(2).results;
        prop_assert_eq!(truth, measured);
    }

    /// The store-backed engine's reports are a pure function of the
    /// durable entity state: parallelism {1, 2, 4} × join cache {on, off}
    /// all agree on every tick — the dense slot tables, the sorted pair
    /// dedup and the epoch-keyed cache change work, never answers.
    #[test]
    fn parallelism_and_cache_do_not_change_results(
        batches in prop::collection::vec(arb_updates(40), 1..3),
    ) {
        let configs: Vec<ScubaParams> = [1usize, 2, 4]
            .iter()
            .flat_map(|&p| {
                [true, false].iter().map(move |&cache| {
                    ScubaParams::default()
                        .with_parallelism(p)
                        .with_join_cache(cache)
                })
            })
            .collect();
        let mut ops: Vec<ScubaOperator> = configs
            .iter()
            .map(|&params| ScubaOperator::new(params, area()))
            .collect();
        for (tick, batch) in batches.iter().enumerate() {
            let now = (tick as u64 + 1) * 2;
            let mut reference: Option<Vec<scuba_stream::QueryMatch>> = None;
            for (op, params) in ops.iter_mut().zip(&configs) {
                for u in batch {
                    op.process_update(u);
                }
                let results = op.evaluate(now).results;
                match &reference {
                    None => reference = Some(results),
                    Some(expected) => prop_assert_eq!(
                        &results,
                        expected,
                        "tick {}: parallelism {} cache {} diverged",
                        tick,
                        params.parallelism,
                        params.join_cache
                    ),
                }
            }
        }
    }

    /// The adaptive split/merge grid is answer-invisible: at every tick it
    /// produces exactly the uniform grid's results across parallelism
    /// {1, 2, 4} × join cache {on, off}. Refinement redirects candidate
    /// discovery (work), never results — the ISSUE 6 identity contract.
    #[test]
    fn adaptive_index_matches_uniform(
        batches in prop::collection::vec(arb_updates(40), 1..3),
    ) {
        use scuba::IndexKind;
        // Aggressive thresholds so random batches actually split cells.
        let adaptive_base = ScubaParams::default()
            .with_index(IndexKind::Adaptive)
            .with_split_merge(4, 1);
        let configs: Vec<ScubaParams> = [1usize, 2, 4]
            .iter()
            .flat_map(|&p| {
                [true, false].iter().flat_map(move |&cache| {
                    [ScubaParams::default(), adaptive_base]
                        .map(|base| base.with_parallelism(p).with_join_cache(cache))
                })
            })
            .collect();
        let mut ops: Vec<ScubaOperator> = configs
            .iter()
            .map(|&params| ScubaOperator::new(params, area()))
            .collect();
        for (tick, batch) in batches.iter().enumerate() {
            let now = (tick as u64 + 1) * 2;
            let mut reference: Option<Vec<scuba_stream::QueryMatch>> = None;
            for (op, params) in ops.iter_mut().zip(&configs) {
                for u in batch {
                    op.process_update(u);
                }
                let results = op.evaluate(now).results;
                op.engine().check_invariants();
                match &reference {
                    None => reference = Some(results),
                    Some(expected) => prop_assert_eq!(
                        &results,
                        expected,
                        "tick {}: index {} parallelism {} cache {} diverged",
                        tick,
                        params.index,
                        params.parallelism,
                        params.join_cache
                    ),
                }
            }
        }
    }

    /// Partial shedding with η = 0 behaves exactly like no shedding.
    #[test]
    fn zero_eta_is_exact(updates in arb_updates(40)) {
        let a = ScubaParams::default();
        let b = a.with_shedding(SheddingMode::Partial { eta: 0.0 });
        let mut exact = ScubaOperator::new(a, area());
        let mut zero = ScubaOperator::new(b, area());
        for u in &updates {
            exact.process_update(u);
            zero.process_update(u);
        }
        prop_assert_eq!(exact.evaluate(2).results, zero.evaluate(2).results);
    }

    /// Accuracy accounting: comparing any result set against itself is
    /// perfect, and against the empty set penalises every tuple.
    #[test]
    fn accuracy_report_axioms(updates in arb_updates(40)) {
        let mut scuba = ScubaOperator::new(ScubaParams::default(), area());
        for u in &updates {
            scuba.process_update(u);
        }
        let results = scuba.evaluate(2).results;
        let self_cmp = scuba::AccuracyReport::compare(&results, &results);
        prop_assert_eq!(self_cmp.accuracy(), 1.0);
        let empty_cmp = scuba::AccuracyReport::compare(&results, &[]);
        prop_assert_eq!(empty_cmp.false_negatives, results.len());
        if results.is_empty() {
            prop_assert_eq!(empty_cmp.accuracy(), 1.0);
        } else {
            prop_assert_eq!(empty_cmp.accuracy(), 0.0);
        }
    }

    /// Ablation soundness: disabling the member-level reach filter and the
    /// radius tightening changes work, never answers.
    #[test]
    fn ablation_knobs_do_not_change_results(updates in arb_updates(60)) {
        let base = ScubaParams::default();
        let mut plain = ScubaOperator::new(base, area());
        let mut unfiltered = ScubaOperator::new(
            ScubaParams { member_filter: false, ..base },
            area(),
        );
        let mut untightened = ScubaOperator::new(
            ScubaParams { tighten_radii: false, ..base },
            area(),
        );
        for u in &updates {
            plain.process_update(u);
            unfiltered.process_update(u);
            untightened.process_update(u);
        }
        let truth = plain.evaluate(2);
        let unf = unfiltered.evaluate(2);
        let unt = untightened.evaluate(2);
        prop_assert_eq!(&truth.results, &unf.results);
        prop_assert_eq!(&truth.results, &unt.results);
        // The filter can only reduce exact comparisons.
        prop_assert!(truth.comparisons <= unf.comparisons);
    }

    /// The own-cell probe (the literal §3.2 reading) also never changes
    /// answers — clustering granularity affects work, not the exact join.
    #[test]
    fn own_cell_probe_same_results(updates in arb_updates(50)) {
        use scuba::params::ProbeScope;
        let base = ScubaParams::default();
        let mut disk = ScubaOperator::new(base, area());
        let mut cell = ScubaOperator::new(
            ScubaParams { probe_scope: ProbeScope::OwnCell, ..base },
            area(),
        );
        for u in &updates {
            disk.process_update(u);
            cell.process_update(u);
        }
        let a = disk.evaluate(2);
        let b = cell.evaluate(2);
        prop_assert_eq!(a.results, b.results);
        // Fragmentation: the own-cell probe can only produce at least as
        // many clusters (it sees a subset of the disk probe's candidates).
        prop_assert!(
            cell.engine().cluster_count() >= disk.engine().cluster_count()
        );
    }

    /// The join-between pre-filter only ever prunes (never adds) work:
    /// comparisons with the pre-filter are a subset of the all-pairs count.
    #[test]
    fn prefilter_reduces_comparisons(updates in arb_updates(60)) {
        let mut scuba = ScubaOperator::new(ScubaParams::default(), area());
        for u in &updates {
            scuba.process_update(u);
        }
        let objects: usize = scuba
            .engine()
            .clusters()
            .values()
            .map(|c| c.object_count())
            .sum();
        let queries: usize = scuba
            .engine()
            .clusters()
            .values()
            .map(|c| c.query_count())
            .sum();
        let report = scuba.evaluate(2);
        prop_assert!(report.comparisons <= (objects * queries) as u64);
    }


    /// Engine snapshots round-trip through JSON on arbitrary engine states
    /// and restore to an engine with identical join results.
    #[test]
    fn snapshot_roundtrip_preserves_results(updates in arb_updates(60)) {
        use scuba::EngineSnapshot;
        let mut op = ScubaOperator::new(ScubaParams::default(), area());
        for u in &updates {
            op.process_update(u);
        }
        let snapshot = EngineSnapshot::capture(op.engine());
        let parsed = EngineSnapshot::from_json(&snapshot.to_json()).unwrap();
        prop_assert_eq!(&parsed, &snapshot);
        let restored = parsed.restore().unwrap();
        restored.check_invariants();

        let mut restored_op = ScubaOperator::from_engine(restored);
        let a = op.evaluate(2).results;
        let b = restored_op.evaluate(2).results;
        prop_assert_eq!(a, b);
    }

    /// DeltaTracker: replaying the emitted deltas from the initial state
    /// always reconstructs the latest snapshot (observe/replay inverse).
    #[test]
    fn delta_replay_inverts_observe(
        batches in prop::collection::vec(arb_updates(30), 1..5),
    ) {
        use scuba::DeltaTracker;
        let mut op = ScubaOperator::new(ScubaParams::default(), area());
        let mut tracker = DeltaTracker::new();
        let mut deltas = Vec::new();
        let mut last = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            for u in batch {
                op.process_update(u);
            }
            let results = op.evaluate((i as u64 + 1) * 2).results;
            deltas.push(tracker.observe_sorted((i as u64 + 1) * 2, results.clone()));
            last = results;
        }
        prop_assert_eq!(DeltaTracker::replay(&[], &deltas), last);
    }


    /// Exactness is clustering-independent: joining over *offline K-means*
    /// clusters gives the same answers as the incremental engine and the
    /// grid baseline — the two-phase join is correct for any clustering.
    #[test]
    fn kmeans_join_is_exact(updates in arb_updates(50), k in 1usize..12, iters in 1u32..4) {
        use scuba::kmeans::{kmeans_cluster, KMeansConfig};
        let params = ScubaParams::default();

        let outcome = kmeans_cluster(
            &updates,
            KMeansConfig { iterations: iters, k: Some(k) },
            &params,
            area(),
        );
        let via_kmeans = outcome.join(&params).results;

        let mut regular = RegularGridOperator::new(params.grid_cells, area());
        // K-means dedups to the latest update per entity; feed the baseline
        // the same way (later updates overwrite earlier ones anyway).
        for u in &updates {
            regular.process_update(u);
        }
        let truth = regular.evaluate(2).results;
        prop_assert_eq!(via_kmeans, truth);
    }

    /// The epoch-coherent join cache is invisible: an operator carrying
    /// its [`scuba::JoinCache`] across Δ-epochs produces bit-identical
    /// results to a from-scratch (cache-disabled) operator at every epoch
    /// and every worker count. Each case drives 3–5 epochs of fresh churn
    /// at parallelism 1/2/4/8 — across the 64 cases the property covers
    /// hundreds of randomized epochs.
    #[test]
    fn incremental_join_matches_full_recomputation(
        batches in prop::collection::vec(arb_updates(30), 3..6),
    ) {
        for workers in [1usize, 2, 4, 8] {
            let base = ScubaParams::default().with_parallelism(workers);
            let mut cached = ScubaOperator::new(base.with_join_cache(true), area());
            let mut uncached = ScubaOperator::new(base.with_join_cache(false), area());
            for (e, batch) in batches.iter().enumerate() {
                // Feed only this epoch's churn — clusters the batch does
                // not touch stay clean, so the cached operator genuinely
                // replays entries rather than recomputing everything.
                for u in batch {
                    cached.process_update(u);
                    uncached.process_update(u);
                }
                let now = (e as u64 + 1) * 2;
                let hot = cached.evaluate(now);
                let cold = uncached.evaluate(now);
                prop_assert_eq!(
                    &hot.results, &cold.results,
                    "workers {} epoch {}", workers, e
                );
                // The cache only ever removes work, never adds it.
                prop_assert!(
                    hot.comparisons <= cold.comparisons,
                    "workers {} epoch {}: cached did more member work", workers, e
                );
            }
        }
    }

    /// Join-within parallelism is invisible: every worker count yields the
    /// identical sorted result set and identical work counters — the merge
    /// stage erases thread interleaving, and the per-pair counters are
    /// independent of which worker ran the pair.
    #[test]
    fn parallelism_does_not_change_results(updates in arb_updates(60)) {
        let base = ScubaParams::default();
        let mut serial = ScubaOperator::new(base.with_parallelism(1), area());
        let mut parallel: Vec<(usize, ScubaOperator)> = [2usize, 4, 8]
            .iter()
            .map(|&w| (w, ScubaOperator::new(base.with_parallelism(w), area())))
            .collect();
        for u in &updates {
            serial.process_update(u);
            for (_, op) in &mut parallel {
                op.process_update(u);
            }
        }
        let truth = serial.evaluate(2);
        for (workers, op) in &mut parallel {
            let report = op.evaluate(2);
            prop_assert_eq!(&truth.results, &report.results, "workers {}", workers);
            prop_assert_eq!(truth.comparisons, report.comparisons, "workers {}", workers);
            prop_assert_eq!(
                truth.prefilter_tests, report.prefilter_tests,
                "workers {}", workers
            );
        }
    }
}

/// Pinned regression for the staged pipeline: at the default
/// `parallelism = 1` the join-within runs the serial path, and on a fixed
/// seeded workload SCUBA must keep reproducing the exact grid-baseline
/// answers (the pre-pipeline behaviour).
#[test]
fn parallelism_one_matches_baseline_on_seeded_workload() {
    let nodes = [
        Point::new(0.0, 500.0),
        Point::new(1000.0, 500.0),
        Point::new(500.0, 0.0),
        Point::new(500.0, 1000.0),
    ];
    // Deterministic LCG so the workload is identical on every run.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };

    let params = ScubaParams::default().with_parallelism(1);
    let mut scuba = ScubaOperator::new(params, area());
    let mut regular = RegularGridOperator::new(params.grid_cells, area());
    // One guaranteed co-located object/query pair so the run is never
    // vacuously empty.
    let seed_loc = Point::new(500.0, 500.0);
    let mut updates = vec![
        LocationUpdate::object(
            ObjectId(999),
            seed_loc,
            0,
            20.0,
            nodes[1],
            ObjectAttrs::default(),
        ),
        LocationUpdate::query(
            QueryId(999),
            seed_loc,
            0,
            20.0,
            nodes[1],
            QueryAttrs {
                spec: QuerySpec::square_range(50.0),
            },
        ),
    ];
    for id in 0..80u64 {
        let loc = Point::new(next(1000) as f64, next(1000) as f64);
        let cn = nodes[next(4) as usize];
        let speed = 5.0 + next(40) as f64;
        if next(2) == 0 {
            updates.push(LocationUpdate::object(
                ObjectId(id),
                loc,
                0,
                speed,
                cn,
                ObjectAttrs::default(),
            ));
        } else {
            updates.push(LocationUpdate::query(
                QueryId(id),
                loc,
                0,
                speed,
                cn,
                QueryAttrs {
                    spec: QuerySpec::square_range(10.0 + next(70) as f64),
                },
            ));
        }
    }
    for u in &updates {
        scuba.process_update(u);
        regular.process_update(u);
    }
    let s = scuba.evaluate(2);
    let r = regular.evaluate(2);
    assert!(!s.results.is_empty(), "seeded workload produces matches");
    assert_eq!(s.results, r.results);
    // The staged breakdown is present and consistent with the legacy
    // accessors.
    assert!(!s.phases.is_empty());
    assert_eq!(s.total_time(), s.join_time() + s.maintenance_time());
}

/// Deterministic low-churn companion to
/// `incremental_join_matches_full_recomputation`: four stationary convoys
/// are ingested once; from the second epoch on only one of them re-reports.
/// The three silent convoys must replay from the cache on every later
/// epoch (hits strictly positive), the churned convoy must recompute
/// (misses strictly positive), and every epoch's results must match a
/// cache-disabled twin bit-for-bit.
#[test]
fn incremental_join_low_churn_replays_from_cache() {
    use scuba::join::STAGE_JOIN_WITHIN;

    let centres = [
        Point::new(200.0, 200.0),
        Point::new(200.0, 700.0),
        Point::new(700.0, 200.0),
        Point::new(700.0, 700.0),
    ];
    // Speed-0 convoy far from its destination node: `advance` never moves
    // the centroid, so the cluster stays epoch-clean while silent.
    let cn = Point::new(0.0, 0.0);
    let convoy = |tag: u64, centre: Point, time: u64| -> Vec<LocationUpdate> {
        let mut updates: Vec<LocationUpdate> = (0..5u64)
            .map(|k| {
                LocationUpdate::object(
                    ObjectId(tag * 10 + k),
                    Point::new(centre.x + k as f64, centre.y),
                    time,
                    0.0,
                    cn,
                    ObjectAttrs::default(),
                )
            })
            .collect();
        updates.push(LocationUpdate::query(
            QueryId(tag),
            Point::new(centre.x + 2.0, centre.y + 1.0),
            time,
            0.0,
            cn,
            QueryAttrs {
                spec: QuerySpec::square_range(40.0),
            },
        ));
        updates
    };

    let base = ScubaParams::default();
    let mut cached = ScubaOperator::new(base.with_join_cache(true), area());
    let mut uncached = ScubaOperator::new(base.with_join_cache(false), area());
    let mut total_hits = 0u64;
    for epoch in 1..=6u64 {
        let now = epoch * 2;
        if epoch == 1 {
            for (tag, centre) in centres.iter().enumerate() {
                for u in convoy(tag as u64 + 1, *centre, 0) {
                    cached.process_update(&u);
                    uncached.process_update(&u);
                }
            }
        } else {
            // Low churn: only convoy 1 re-reports (same positions — the
            // refresh dirties its cluster without changing the answer).
            for u in convoy(1, centres[0], now - 1) {
                cached.process_update(&u);
                uncached.process_update(&u);
            }
        }
        let hot = cached.evaluate(now);
        let cold = uncached.evaluate(now);
        assert_eq!(hot.results, cold.results, "epoch {epoch}");
        assert!(!hot.results.is_empty(), "epoch {epoch} finds matches");
        let within = hot.phases.get(STAGE_JOIN_WITHIN).expect("within stage");
        if epoch >= 2 {
            assert!(
                within.cache_hits > 0,
                "epoch {epoch}: silent convoys replay from the cache"
            );
            assert!(
                within.cache_misses > 0,
                "epoch {epoch}: the churned convoy recomputes"
            );
        }
        total_hits += within.cache_hits;
    }
    assert!(
        total_hits >= 3 * 5,
        "three convoys × five warm epochs replay"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adaptive shedding is a pure function of the observed tick costs:
    /// two controllers fed the identical timing stream take identical
    /// decisions at every tick and end with identical ledgers. This is
    /// what makes overload incidents replayable from a recorded trace.
    #[test]
    fn overload_controller_is_deterministic(
        costs in prop::collection::vec(0u64..5_000, 1..64),
        deadline_us in 1u64..2_500,
    ) {
        use std::time::Duration;
        use scuba::{OverloadConfig, OverloadController};

        let config = OverloadConfig::with_deadline(Duration::from_micros(deadline_us));
        let mut a = OverloadController::new(config.clone());
        let mut b = OverloadController::new(config);
        for &us in &costs {
            let cost = Duration::from_micros(us);
            prop_assert_eq!(a.observe(cost), b.observe(cost));
            prop_assert_eq!(a.current(), b.current());
        }
        prop_assert_eq!(a.counters(), b.counters());
    }

    /// A stream that always meets its deadline never sheds: the
    /// controller records only clean ticks and the mode stays `None`.
    #[test]
    fn overload_controller_idles_on_clean_streams(
        costs in prop::collection::vec(0u64..=1_000, 1..64),
    ) {
        use std::time::Duration;
        use scuba::{OverloadConfig, OverloadController, SheddingMode};

        let mut ctrl = OverloadController::new(OverloadConfig::with_deadline(
            Duration::from_micros(1_000),
        ));
        for &us in &costs {
            ctrl.observe(Duration::from_micros(us));
            prop_assert_eq!(ctrl.current(), SheddingMode::None);
        }
        let k = ctrl.counters();
        prop_assert_eq!(k.misses, 0);
        prop_assert_eq!(k.escalations, 0);
    }
}
