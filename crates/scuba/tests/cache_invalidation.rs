//! Edge-case tests for [`scuba::JoinCache`] invalidation.
//!
//! The cache's contract is simple — a pair replays iff **both** clusters
//! are clean since the entry was computed — but the mutations that dirty a
//! cluster arrive from many directions: explicit dissolution, load-shedding
//! escalation, staleness eviction, snapshot restoration. Each test here
//! drives [`scuba::clustering::ClusterEngine`] (or the full operator)
//! through one such mutation mid-stream and asserts two things: the cached
//! run still matches a from-scratch join bit-for-bit, and the cache
//! counters show the invalidation actually happened (no silent stale
//! replay).

use scuba::clustering::ClusterEngine;
use scuba::join::{JoinOutput, STAGE_JOIN_WITHIN};
use scuba::{
    EngineSnapshot, JoinCache, JoinContext, JoinScratch, ScubaOperator, ScubaParams, SheddingMode,
};
use scuba_motion::{
    ControlOp, EntityRef, LocationUpdate, ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec,
};
use scuba_spatial::{Point, Rect};
use scuba_stream::ContinuousOperator;

const AREA: f64 = 1000.0;

/// Shared destination node, far from every convoy: speed-0 clusters never
/// pass it, so silent convoys stay epoch-clean across evaluations.
const CN: Point = Point { x: 0.0, y: 0.0 };

/// Ingests one stationary convoy: `n_objects` objects clustered around
/// `centre` plus one range query, all sharing [`CN`].
fn convoy(engine: &mut ClusterEngine, tag: u64, centre: Point, n_objects: u64, time: u64) {
    for k in 0..n_objects {
        engine.process_update(&LocationUpdate::object(
            ObjectId(tag * 100 + k),
            Point::new(centre.x + k as f64, centre.y),
            time,
            0.0,
            CN,
            ObjectAttrs::default(),
        ));
    }
    engine.process_update(&LocationUpdate::query(
        QueryId(tag),
        Point::new(centre.x + 1.0, centre.y + 1.0),
        time,
        0.0,
        CN,
        QueryAttrs {
            spec: QuerySpec::square_range(40.0),
        },
    ));
}

/// Runs the cached join over the engine's current state and asserts the
/// core invariant in passing: the cached output always equals a
/// from-scratch [`JoinContext::run`] over the same state.
fn joined(engine: &ClusterEngine, cache: &mut JoinCache, scratch: &mut JoinScratch) -> JoinOutput {
    let ctx = JoinContext {
        store: engine.store(),
        grid: engine.grid(),
        queries: engine.queries(),
        shedding: engine.params().shedding,
        theta_d: engine.params().theta_d,
        member_filter: engine.params().member_filter,
        parallelism: 1,
        kernel: engine.params().kernel,
    };
    let fresh = ctx.run();
    let out = ctx.run_cached(Some(engine.epochs()), cache, scratch);
    assert_eq!(
        out.results, fresh.results,
        "cached join diverged from from-scratch recomputation"
    );
    out
}

/// A cluster dissolved between evaluations must neither replay from the
/// cache nor leave its entry behind: its members are homeless, its matches
/// vanish, and the orphaned entry is swept (counted as an invalidation).
#[test]
fn dissolve_mid_epoch_invalidates_cached_pair() {
    let mut engine = ClusterEngine::new(ScubaParams::default(), Rect::square(AREA));
    convoy(&mut engine, 1, Point::new(200.0, 200.0), 4, 0);
    convoy(&mut engine, 2, Point::new(700.0, 700.0), 4, 0);
    let (mut cache, mut scratch) = (JoinCache::new(), JoinScratch::new());

    let cold = joined(&engine, &mut cache, &mut scratch);
    assert!(!cold.results.is_empty(), "both convoys produce matches");
    assert_eq!(cold.cache_hits, 0, "first epoch is all misses");
    assert!(cold.cache_misses >= 2, "one pair per convoy computed");

    let warm = joined(&engine, &mut cache, &mut scratch);
    assert_eq!(warm.results, cold.results);
    assert!(warm.cache_hits >= 2, "silent epoch replays every pair");
    assert_eq!(warm.cache_misses, 0);

    let slot = engine
        .home()
        .cluster_of(EntityRef::Query(QueryId(2)))
        .expect("query 2 is clustered");
    let cid = engine.cluster_at(slot).expect("slot is live").cid;
    engine.dissolve(cid);
    engine.check_invariants();

    let after = joined(&engine, &mut cache, &mut scratch);
    assert!(
        after.results.len() < warm.results.len(),
        "the dissolved convoy's matches disappear"
    );
    assert!(after.cache_hits >= 1, "the surviving convoy still replays");
    assert!(
        after.cache_invalidations >= 1,
        "the dissolved pair's entry is swept, not kept"
    );
}

/// Load-shedding escalation none → partial → full dirties exactly the
/// clusters it strips positions from: each escalation that discards
/// something forces a recompute (no stale replay of pre-shed matches),
/// and the recomputed results still match a from-scratch join over the
/// shed state.
#[test]
fn shedding_escalation_dirties_cached_pairs() {
    let mut engine = ClusterEngine::new(ScubaParams::default(), Rect::square(AREA));
    // One convoy with members at mixed radii (≈25 and ≈55 from the
    // centroid) so partial shedding strips the inner ring and full
    // shedding still finds outer positions to discard.
    engine.process_update(&LocationUpdate::object(
        ObjectId(1),
        Point::new(500.0, 500.0),
        0,
        0.0,
        CN,
        ObjectAttrs::default(),
    ));
    engine.process_update(&LocationUpdate::object(
        ObjectId(2),
        Point::new(570.0, 500.0),
        0,
        0.0,
        CN,
        ObjectAttrs::default(),
    ));
    engine.process_update(&LocationUpdate::object(
        ObjectId(3),
        Point::new(500.0, 570.0),
        0,
        0.0,
        CN,
        ObjectAttrs::default(),
    ));
    engine.process_update(&LocationUpdate::query(
        QueryId(1),
        Point::new(501.0, 501.0),
        0,
        0.0,
        CN,
        QueryAttrs {
            spec: QuerySpec::square_range(200.0),
        },
    ));
    let (mut cache, mut scratch) = (JoinCache::new(), JoinScratch::new());

    let cold = joined(&engine, &mut cache, &mut scratch);
    assert!(!cold.results.is_empty());
    let warm = joined(&engine, &mut cache, &mut scratch);
    assert!(warm.cache_hits >= 1, "unshed convoy replays");

    // none → partial: the inner ring (within η·Θ_D of the centroid) loses
    // its exact positions — a join-relevant mutation.
    engine.set_shedding(SheddingMode::Partial { eta: 0.4 });
    assert!(
        engine.shed_now() > 0,
        "partial shedding strips the inner ring"
    );
    let partial = joined(&engine, &mut cache, &mut scratch);
    assert_eq!(partial.cache_hits, 0, "no stale replay of pre-shed matches");
    assert!(partial.cache_misses >= 1);
    assert!(partial.cache_invalidations >= 1);

    // A quiet epoch under partial shedding is clean again.
    let partial_warm = joined(&engine, &mut cache, &mut scratch);
    assert!(
        partial_warm.cache_hits >= 1,
        "shed state itself is cacheable"
    );

    // partial → full: the outer members lose their positions too.
    engine.set_shedding(SheddingMode::Full);
    assert!(
        engine.shed_now() > 0,
        "full shedding strips the outer members"
    );
    let full = joined(&engine, &mut cache, &mut scratch);
    assert_eq!(full.cache_hits, 0, "escalation invalidates again");
    assert!(full.cache_misses >= 1);
    assert!(full.cache_invalidations >= 1);
    engine.check_invariants();
}

/// [`ClusterEngine::evict_stale`] removing a cached pair's cluster: the
/// silent convoy empties out and dissolves, so its cached matches must
/// vanish rather than replay — an entity that stopped reporting is gone,
/// not merely mispositioned.
#[test]
fn evict_stale_drops_cached_pairs_cluster() {
    let mut engine = ClusterEngine::new(ScubaParams::default(), Rect::square(AREA));
    convoy(&mut engine, 1, Point::new(200.0, 200.0), 4, 0);
    convoy(&mut engine, 2, Point::new(700.0, 700.0), 4, 0);
    let (mut cache, mut scratch) = (JoinCache::new(), JoinScratch::new());

    let cold = joined(&engine, &mut cache, &mut scratch);
    let warm = joined(&engine, &mut cache, &mut scratch);
    assert_eq!(warm.results, cold.results);
    assert!(warm.cache_hits >= 2);

    // Convoy 1 keeps reporting (same positions, fresh timestamps); convoy
    // 2 has been silent since t=0.
    convoy(&mut engine, 1, Point::new(200.0, 200.0), 4, 15);
    let evicted = engine.evict_stale(20, 8);
    assert!(evicted >= 5, "convoy 2's members all age out");
    engine.check_invariants();

    let after = joined(&engine, &mut cache, &mut scratch);
    assert!(
        after.results.len() < warm.results.len(),
        "the evicted convoy's matches disappear"
    );
    assert!(
        after.cache_invalidations >= 1,
        "the dissolved pair's entry is dropped"
    );
    // Convoy 1 was refreshed (fresh timestamps dirty its cluster), so it
    // recomputes this epoch and is replayable again on the next.
    assert!(after.cache_misses >= 1);
    let settled = joined(&engine, &mut cache, &mut scratch);
    assert!(settled.cache_hits >= 1, "the survivor warms back up");
}

/// [`ClusterEngine::remove_entity`] on a member of a cached pair's cluster
/// is a join-relevant mutation: the departed object's matches must vanish
/// on the next epoch instead of replaying from the stale entry, while
/// untouched clusters keep replaying.
#[test]
fn remove_entity_invalidates_cached_pair() {
    let mut engine = ClusterEngine::new(ScubaParams::default(), Rect::square(AREA));
    convoy(&mut engine, 1, Point::new(200.0, 200.0), 4, 0);
    convoy(&mut engine, 2, Point::new(700.0, 700.0), 4, 0);
    let (mut cache, mut scratch) = (JoinCache::new(), JoinScratch::new());

    let cold = joined(&engine, &mut cache, &mut scratch);
    assert!(!cold.results.is_empty());
    let warm = joined(&engine, &mut cache, &mut scratch);
    assert_eq!(warm.results, cold.results);
    assert!(warm.cache_hits >= 2, "both convoys replay when quiet");

    // An object of convoy 2 deregisters (left the system, not merely
    // silent). Its cluster is dirtied; convoy 1 is untouched.
    let gone = EntityRef::Object(ObjectId(200));
    let slot = engine.home().cluster_of(gone).expect("object is clustered");
    let cid = engine.cluster_at(slot).expect("slot is live").cid;
    assert!(engine.remove_entity(gone), "entity was known");
    assert!(
        engine.home().cluster_of(gone).is_none(),
        "membership is gone"
    );
    engine.check_invariants();

    let after = joined(&engine, &mut cache, &mut scratch);
    assert!(
        after.results.len() < warm.results.len(),
        "the removed object's matches disappear"
    );
    assert!(
        !after.results.iter().any(|m| m.object == ObjectId(200)),
        "no stale match for the departed object"
    );
    assert!(
        after.cache_misses >= 1,
        "the mutated cluster's pair recomputes"
    );
    assert!(after.cache_hits >= 1, "the untouched convoy still replays");

    // The shrunken cluster is itself cacheable again once quiet.
    assert!(
        engine.cluster(cid).is_some(),
        "cluster survives the removal"
    );
    let settled = joined(&engine, &mut cache, &mut scratch);
    assert_eq!(settled.results, after.results);
    assert!(settled.cache_hits >= 2, "everything replays when quiet");
}

/// A query deregistered through the control plane mid-tick: its cluster
/// shrinks (the other members stay), its cached join rows are purged —
/// never replayed — and the untouched convoy keeps replaying. Dirties
/// exactly the mutated cluster, not the whole cache.
#[test]
fn deregister_mid_tick_shrinks_cluster_and_purges_rows() {
    let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(AREA));
    let mut batch = Vec::new();
    // Convoy 1 around (200,200) with query 1; convoy 2 around (700,700)
    // with query 2 — the query clusters with its convoy's objects.
    for (tag, centre) in [(1u64, Point::new(200.0, 200.0)), (2, Point::new(700.0, 700.0))] {
        for k in 0..4u64 {
            batch.push(LocationUpdate::object(
                ObjectId(tag * 100 + k),
                Point::new(centre.x + k as f64, centre.y),
                1,
                0.0,
                CN,
                ObjectAttrs::default(),
            ));
        }
        batch.push(LocationUpdate::query(
            QueryId(tag),
            Point::new(centre.x + 1.0, centre.y + 1.0),
            1,
            0.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(40.0),
            },
        ));
    }
    op.process_batch(&batch);
    let cold = op.evaluate(2);
    assert!(cold.results.iter().any(|m| m.query == QueryId(2)));
    let warm = op.evaluate(4);
    assert!(
        warm.phases.get(STAGE_JOIN_WITHIN).unwrap().cache_hits > 0,
        "quiet epoch replays"
    );

    let slot = op
        .engine()
        .home()
        .cluster_of(EntityRef::Query(QueryId(2)))
        .expect("query 2 is clustered");
    op.apply_control(&[ControlOp::Deregister(QueryId(2))], 5);
    assert_eq!(op.control_gauges().deregistered_total, 1);
    assert_eq!(
        op.engine().home().cluster_of(EntityRef::Query(QueryId(2))),
        None,
        "membership dissolved on deregister"
    );
    assert!(
        op.engine().cluster_at(slot).is_some(),
        "the cluster survives — its objects still live there"
    );

    let after = op.evaluate(6);
    assert!(
        !after.results.iter().any(|m| m.query == QueryId(2)),
        "no stale match for the deregistered query"
    );
    assert!(
        after.results.iter().any(|m| m.query == QueryId(1)),
        "the untouched convoy keeps answering"
    );
    let within = after.phases.get(STAGE_JOIN_WITHIN).unwrap();
    assert!(
        within.cache_hits > 0,
        "convoy 1 replays — deregister dirtied only query 2's cluster"
    );
    op.engine().check_invariants();
}

/// Deregistering the last member of a cluster dissolves it outright, and
/// the freed slot is safely reused by a query registered afterwards: the
/// new query computes its pairs fresh (no inherited rows) and the answers
/// stay bit-identical to a cache-free twin through the whole lifecycle.
#[test]
fn deregister_last_member_dissolves_and_slot_reuse_is_clean() {
    let params = ScubaParams::default();
    let mut cached = ScubaOperator::new(params.with_join_cache(true), Rect::square(AREA));
    let mut twin = ScubaOperator::new(params.with_join_cache(false), Rect::square(AREA));

    // An object convoy, and a lone query far away in its own singleton
    // cluster (beyond Θ_D of everything).
    let mut batch: Vec<LocationUpdate> = (0..3u64)
        .map(|k| {
            LocationUpdate::object(
                ObjectId(k),
                Point::new(200.0 + k as f64, 200.0),
                1,
                0.0,
                CN,
                ObjectAttrs::default(),
            )
        })
        .collect();
    batch.push(LocationUpdate::query(
        QueryId(7),
        Point::new(900.0, 900.0),
        1,
        0.0,
        CN,
        QueryAttrs {
            spec: QuerySpec::square_range(40.0),
        },
    ));
    cached.process_batch(&batch);
    twin.process_batch(&batch);
    assert_eq!(cached.evaluate(2).results, twin.evaluate(2).results);

    let lone_slot = cached
        .engine()
        .home()
        .cluster_of(EntityRef::Query(QueryId(7)))
        .expect("lone query is clustered");
    let clusters_before = cached.engine().cluster_count();
    let ops = [ControlOp::Deregister(QueryId(7))];
    cached.apply_control(&ops, 3);
    twin.apply_control(&ops, 3);
    assert_eq!(
        cached.engine().cluster_count(),
        clusters_before - 1,
        "deregistering the last member dissolves the cluster"
    );
    assert!(
        cached.engine().cluster_at(lone_slot).is_none(),
        "the dissolved cluster's slot is vacated for reuse"
    );
    assert_eq!(cached.evaluate(4).results, twin.evaluate(4).results);

    // A new query registers right where the objects are; the store's LIFO
    // free list hands it the slot the dissolved cluster vacated.
    let ops = [ControlOp::Register(LocationUpdate::query(
        QueryId(8),
        Point::new(201.0, 201.0),
        5,
        0.0,
        CN,
        QueryAttrs {
            spec: QuerySpec::square_range(40.0),
        },
    ))];
    cached.apply_control(&ops, 5);
    twin.apply_control(&ops, 5);
    assert!(
        cached
            .engine()
            .home()
            .cluster_of(EntityRef::Query(QueryId(8)))
            .is_some(),
        "new query is clustered"
    );
    let a = cached.evaluate(6);
    let b = twin.evaluate(6);
    assert_eq!(a.results, b.results, "slot reuse never leaks stale rows");
    assert!(
        a.results.iter().any(|m| m.query == QueryId(8)),
        "the reused slot answers for its new occupant"
    );
    assert!(
        !a.results.iter().any(|m| m.query == QueryId(7)),
        "nothing answers for the dissolved query"
    );
    assert_eq!(cached.control_gauges().active_queries, 1);
    assert_eq!(cached.control_gauges().registered_total, 2);
    cached.engine().check_invariants();
}

/// Restoring from a snapshot resets the cache: the restored operator
/// starts cold (its first epoch recomputes every pair — no entries can
/// outlive the engine they were computed against), produces the same
/// results as the live operator, and then warms back up normally.
#[test]
fn snapshot_restore_resets_cache() {
    let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(AREA));
    for k in 0..5u64 {
        op.process_update(&LocationUpdate::object(
            ObjectId(k),
            Point::new(500.0 + k as f64, 500.0),
            0,
            0.0,
            CN,
            ObjectAttrs::default(),
        ));
    }
    op.process_update(&LocationUpdate::query(
        QueryId(1),
        Point::new(502.0, 501.0),
        0,
        0.0,
        CN,
        QueryAttrs {
            spec: QuerySpec::square_range(20.0),
        },
    ));
    op.evaluate(2);
    let warm = op.evaluate(4);
    assert!(
        warm.phases.get(STAGE_JOIN_WITHIN).unwrap().cache_hits > 0,
        "live operator replays from its cache"
    );
    assert!(!op.join_cache().is_empty());

    let snapshot = EngineSnapshot::capture(op.engine());
    let restored = EngineSnapshot::from_json(&snapshot.to_json())
        .unwrap()
        .restore()
        .unwrap();
    let mut restored_op = ScubaOperator::from_engine(restored);
    assert!(
        restored_op.join_cache().is_empty(),
        "a restored operator starts with an empty cache"
    );

    let cold = restored_op.evaluate(6);
    let live = op.evaluate(6);
    assert_eq!(cold.results, live.results, "restore preserves answers");
    let cold_within = cold.phases.get(STAGE_JOIN_WITHIN).unwrap();
    assert_eq!(
        cold_within.cache_hits, 0,
        "first post-restore epoch is cold"
    );
    assert!(cold_within.cache_misses > 0);

    let rewarm = restored_op.evaluate(8);
    assert!(
        rewarm.phases.get(STAGE_JOIN_WITHIN).unwrap().cache_hits > 0,
        "the restored operator warms back up"
    );
}

/// The deadline controller escalating *mid-tick* while TTL eviction runs
/// in the same evaluation: the cached operator must stay bit-identical to
/// a cache-free twin through the whole episode — escalation plus eviction
/// never leaves a dangling nucleus member or a stale cache entry behind.
#[test]
fn adaptive_escalation_with_ttl_eviction_never_replays_stale() {
    use std::time::Duration;

    /// One stationary convoy as a tick batch (object ids `tag*100 + k`).
    fn convoy_batch(tag: u64, centre: Point, n_objects: u64, time: u64) -> Vec<LocationUpdate> {
        let mut batch: Vec<LocationUpdate> = (0..n_objects)
            .map(|k| {
                LocationUpdate::object(
                    ObjectId(tag * 100 + k),
                    Point::new(centre.x + k as f64, centre.y),
                    time,
                    0.0,
                    CN,
                    ObjectAttrs::default(),
                )
            })
            .collect();
        batch.push(LocationUpdate::query(
            QueryId(tag),
            Point::new(centre.x + 1.0, centre.y + 1.0),
            time,
            0.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(40.0),
            },
        ));
        batch
    }

    // Every scripted tick misses the 1ms deadline, so the controller
    // climbs a rung every 2 evaluations while convoy 2 (silent after
    // t=2) ages out under the 6-tick TTL.
    let params = ScubaParams {
        entity_ttl: Some(6),
        ..ScubaParams::default()
    }
    .with_deadline_us(Some(1_000));
    let script = vec![Duration::from_millis(5); 12];
    let mut cached = ScubaOperator::new(params.with_join_cache(true), Rect::square(AREA))
        .with_scripted_tick_costs(script.clone());
    let mut twin = ScubaOperator::new(params.with_join_cache(false), Rect::square(AREA))
        .with_scripted_tick_costs(script);

    let mut saw_active = false;
    for t in 1..=12u64 {
        let mut batch = convoy_batch(1, Point::new(200.0, 200.0), 4, t);
        if t <= 2 {
            batch.extend(convoy_batch(2, Point::new(700.0, 700.0), 4, t));
        }
        cached.process_batch(&batch);
        twin.process_batch(&batch);
        let mut a = cached.evaluate(t).results;
        let mut b = twin.evaluate(t).results;
        a.sort();
        b.sort();
        assert_eq!(a, b, "t={t}: cached operator diverged from cache-free twin");
        assert_eq!(cached.current_shedding(), twin.current_shedding());
        saw_active |= cached.current_shedding().is_active();
        cached.engine().check_invariants();
    }

    assert!(saw_active, "the scripted misses must activate shedding");
    assert!(
        cached
            .engine()
            .home()
            .cluster_of(EntityRef::Object(ObjectId(200)))
            .is_none(),
        "the silent convoy is evicted despite concurrent escalation"
    );
    // Identical state modulo the one deliberately different knob.
    let mut snap = EngineSnapshot::capture(cached.engine());
    snap.params.join_cache = false;
    assert_eq!(snap, EngineSnapshot::capture(twin.engine()));
}

/// A controller-driven escalation, an entity removal and a staleness
/// sweep all landing between two evaluations: the next cached join must
/// recompute (no stale replay of the pre-shed pairs), report nothing for
/// the departed entities, and leave the cache warm again once quiet.
#[test]
fn escalation_with_removal_and_eviction_invalidates_cleanly() {
    use std::time::Duration;

    use scuba::{OverloadConfig, OverloadController};

    let mut engine = ClusterEngine::new(ScubaParams::default(), Rect::square(AREA));
    convoy(&mut engine, 1, Point::new(200.0, 200.0), 4, 0);
    convoy(&mut engine, 2, Point::new(700.0, 700.0), 4, 0);
    let (mut cache, mut scratch) = (JoinCache::new(), JoinScratch::new());

    let cold = joined(&engine, &mut cache, &mut scratch);
    assert!(!cold.results.is_empty());
    let warm = joined(&engine, &mut cache, &mut scratch);
    assert!(warm.cache_hits >= 2, "both convoys replay when quiet");

    // Two deadline misses escalate the controller; the decision is
    // applied exactly as the operator applies it: set the mode, then
    // shed immediately.
    let mut ctrl =
        OverloadController::new(OverloadConfig::with_deadline(Duration::from_micros(500)));
    ctrl.observe(Duration::from_millis(2));
    let decision = ctrl.observe(Duration::from_millis(2));
    assert!(decision.escalated());
    engine.set_shedding(decision.mode_after);
    assert!(engine.shed_now() > 0, "escalation strips member positions");

    // Same inter-evaluation window: one object deregisters, convoy 1 is
    // refreshed, and the staleness sweep evicts the rest of convoy 2.
    assert!(engine.remove_entity(EntityRef::Object(ObjectId(200))));
    convoy(&mut engine, 1, Point::new(200.0, 200.0), 4, 15);
    assert!(engine.evict_stale(20, 8) >= 4, "silent convoy 2 ages out");
    engine.check_invariants();

    let after = joined(&engine, &mut cache, &mut scratch);
    assert_eq!(after.cache_hits, 0, "nothing replays across the upheaval");
    assert!(after.cache_invalidations >= 1);
    assert!(
        !after.results.iter().any(|m| m.object.0 >= 200),
        "no stale match for removed or evicted convoy-2 objects"
    );
    assert!(
        engine
            .home()
            .cluster_of(EntityRef::Object(ObjectId(200)))
            .is_none(),
        "no dangling membership for the removed object"
    );

    // Quiet again: the shed, shrunken state is itself cacheable.
    let settled = joined(&engine, &mut cache, &mut scratch);
    assert_eq!(settled.results, after.results);
    assert!(settled.cache_hits >= 1, "the survivor warms back up");
}
