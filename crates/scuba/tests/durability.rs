//! Crash-recovery identity and corruption robustness (ISSUE 9).
//!
//! The durability layer's contract is that killing a supervised run at an
//! arbitrary tick and recovering over the same directory is answer- and
//! state-invisible: the merged evaluation stream and the final engine
//! snapshots are bit-identical to an uninterrupted run. The property
//! below drives random workloads × kill points (including torn mid-frame
//! journal tails) × shards {1, 2, 4} × join cache {on, off}. The fuzz
//! companion truncates and bit-flips checkpoint and journal files at
//! random offsets: recovery must either succeed identically (falling back
//! to older durable state) or fail with a clean typed error — never
//! panic, never return divergent answers.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use proptest::prelude::*;

use scuba::{
    recover, resume, run_supervised, NoObserver, ScubaParams, SuperviseConfig, SupervisedOutcome,
};
use scuba_motion::{
    LocationUpdate, ObjectAttrs, ObjectClass, ObjectId, QueryAttrs, QueryId, QuerySpec,
};
use scuba_spatial::{Point, Rect, Time};
use scuba_stream::executor::UpdateSource;
use scuba_stream::{EvaluationReport, PanicInjector, PanicPlan, QueryMatch};

const CN: Point = Point {
    x: 1000.0,
    y: 500.0,
};

fn area() -> Rect {
    Rect::square(1000.0)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("scuba-durability-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One deterministic mixed object/query update, varied by a workload seed
/// so different proptest cases exercise different geometries.
fn update(seed: u64, i: u64, t: Time) -> LocationUpdate {
    let x = 30.0 + ((i * 37 + t * 11 + seed * 13) % 940) as f64;
    let y = 30.0 + ((i * 61 + t * 7 + seed * 29) % 940) as f64;
    let speed = 15.0 + ((i + seed) % 5) as f64;
    if i % 4 == 3 {
        LocationUpdate::query(
            QueryId(i),
            Point::new(x, y),
            t,
            speed,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(12.0 + ((i + seed) % 5) as f64),
            },
        )
    } else {
        LocationUpdate::object(
            ObjectId(i),
            Point::new(x, y),
            t,
            speed,
            CN,
            ObjectAttrs {
                class: ObjectClass::ALL[((i + seed) % 6) as usize],
            },
        )
    }
}

/// A restartable deterministic source: every construction re-delivers the
/// identical tick sequence, which is what lets a resumed run refill the
/// ticks a killed process never made durable.
struct DetSource {
    seed: u64,
    per_tick: u64,
    tick: Time,
}

impl DetSource {
    fn new(seed: u64, per_tick: u64) -> Self {
        DetSource {
            seed,
            per_tick,
            tick: 0,
        }
    }
}

impl UpdateSource for DetSource {
    fn next_tick(&mut self) -> Vec<LocationUpdate> {
        self.tick += 1;
        let t = self.tick;
        (0..self.per_tick)
            .map(|i| update(self.seed, i, t))
            .collect()
    }
}

fn supervised(
    dir: &Path,
    params: ScubaParams,
    seed: u64,
    per_tick: u64,
    duration: Time,
    checkpoint_every: u64,
    injector: Option<&Arc<PanicInjector>>,
) -> SupervisedOutcome {
    let cfg = SuperviseConfig {
        duration,
        checkpoint_every,
        max_restarts: 3,
        backoff: std::time::Duration::from_millis(1),
        ..SuperviseConfig::default()
    };
    let mut source = DetSource::new(seed, per_tick);
    run_supervised(
        &mut source,
        &params,
        area(),
        dir,
        &cfg,
        injector,
        &mut NoObserver,
    )
    .expect("supervised run succeeds")
}

/// Keep-last-by-tick view of an evaluation stream: a resumed run re-emits
/// the evaluations it replayed from the journal, so consumers (and this
/// identity check) dedup on tick, trusting the later emission.
fn by_tick(reports: &[&EvaluationReport]) -> std::collections::BTreeMap<Time, Vec<QueryMatch>> {
    let mut map = std::collections::BTreeMap::new();
    for r in reports {
        map.insert(r.now, r.results.clone());
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill-at-arbitrary-tick recovery identity: stage one runs the first
    /// `kill` ticks and stops (optionally tearing the journal tail
    /// mid-frame, as a SIGKILL mid-append would); stage two resumes over
    /// the same directory and runs to the end. The merged evaluation
    /// stream and the final stripe snapshots must equal an uninterrupted
    /// oracle run — across shard counts and with the join cache on or
    /// off.
    #[test]
    fn kill_and_recover_is_identical_to_uninterrupted_run(
        seed in 0u64..1000,
        kill in 1u64..10,
        shards_idx in 0usize..3,
        cache in any::<bool>(),
        tear_tail in any::<bool>(),
    ) {
        let shards = [1usize, 2, 4][shards_idx];
        let params = ScubaParams::default()
            .with_shards(shards)
            .with_join_cache(cache);
        let duration = 10u64;
        let per_tick = 24u64;

        // Uninterrupted oracle over its own directory.
        let oracle_dir = tmp_dir(&format!("oracle-{seed}-{kill}-{shards}-{cache}"));
        let oracle = supervised(&oracle_dir, params, seed, per_tick, duration, 3, None);
        prop_assert!(oracle.report.aborted.is_none());

        // Stage one: run to the kill point, then "die".
        let dir = tmp_dir(&format!("kill-{seed}-{kill}-{shards}-{cache}"));
        let first = supervised(&dir, params, seed, per_tick, kill, 3, None);

        if tear_tail {
            // Simulate a SIGKILL mid-append: chop bytes off the newest
            // journal segment so its last frame is torn.
            let mut journals: Vec<PathBuf> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| {
                    let p = e.unwrap().path();
                    (p.extension().is_some_and(|x| x == "wal")).then_some(p)
                })
                .collect();
            journals.sort();
            if let Some(newest) = journals.last() {
                let bytes = std::fs::read(newest).unwrap();
                if bytes.len() > 20 {
                    std::fs::write(newest, &bytes[..bytes.len() - 9]).unwrap();
                }
            }
        }

        // Stage two: resume over the same directory with a fresh source.
        let second = supervised(&dir, params, seed, per_tick, duration, 3, None);
        prop_assert!(second.report.aborted.is_none());

        // The merged evaluation stream matches the oracle's exactly.
        let merged: Vec<&EvaluationReport> = first
            .report
            .evaluations
            .iter()
            .chain(&second.report.evaluations)
            .collect();
        let oracle_stream: Vec<&EvaluationReport> = oracle.report.evaluations.iter().collect();
        prop_assert_eq!(by_tick(&merged), by_tick(&oracle_stream));

        // And the final durable state is bit-identical.
        prop_assert_eq!(second.operator.capture(), oracle.operator.capture());

        let _ = std::fs::remove_dir_all(&oracle_dir);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Injected worker panics (every armed site fires once) are absorbed by
/// the supervisor: the run restarts the poisoned epoch from durable state
/// and finishes with answers identical to a fault-free run.
#[test]
fn injected_panics_leave_answers_identical() {
    let params = ScubaParams::default().with_shards(2);
    let clean_dir = tmp_dir("panic-clean");
    let clean = supervised(&clean_dir, params, 7, 24, 10, 3, None);
    assert!(clean.report.aborted.is_none());

    let faulty_dir = tmp_dir("panic-faulty");
    let injector = Arc::new(PanicInjector::new(PanicPlan {
        seed: 7,
        panic_prob: 1.0,
        rearm: false,
    }));
    let faulty = supervised(&faulty_dir, params, 7, 24, 10, 3, Some(&injector));

    assert!(
        faulty.report.aborted.is_none(),
        "{:?}",
        faulty.report.aborted
    );
    assert!(injector.fired() > 0, "the drill must actually fire");
    assert!(faulty.report.restarts > 0);
    let clean_stream: Vec<&EvaluationReport> = clean.report.evaluations.iter().collect();
    let faulty_stream: Vec<&EvaluationReport> = faulty.report.evaluations.iter().collect();
    assert_eq!(by_tick(&faulty_stream), by_tick(&clean_stream));
    assert_eq!(faulty.operator.capture(), clean.operator.capture());

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&faulty_dir);
}

/// Every durable file in `dir`, newest-last, with its pristine bytes.
fn snapshot_files(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let bytes = std::fs::read(&p).unwrap();
            (p, bytes)
        })
        .collect()
}

fn restore_files(files: &[(PathBuf, Vec<u8>)]) {
    for (path, bytes) in files {
        std::fs::write(path, bytes).unwrap();
    }
}

/// Fuzz the durable files: truncate or bit-flip checkpoints and journal
/// segments at pseudo-random offsets. Recovery must never panic — every
/// outcome is either a successful resume whose replayed evaluations agree
/// with the oracle at the same ticks, or a clean typed error.
#[test]
fn corrupted_durable_state_recovers_or_fails_cleanly() {
    let params = ScubaParams::default();
    let dir = tmp_dir("fuzz");
    let oracle = supervised(&dir, params, 11, 24, 10, 2, None);
    assert!(oracle.report.aborted.is_none());
    let oracle_stream: Vec<&EvaluationReport> = oracle.report.evaluations.iter().collect();
    let oracle_ticks = by_tick(&oracle_stream);
    let pristine = snapshot_files(&dir);
    assert!(
        pristine
            .iter()
            .any(|(p, _)| p.extension().is_some_and(|x| x == "ckpt")),
        "run must leave checkpoints to fuzz"
    );

    // Simple xorshift so corruption sites are reproducible.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    for round in 0..60 {
        restore_files(&pristine);
        let (path, bytes) = &pristine[(next() % pristine.len() as u64) as usize];
        if bytes.is_empty() {
            continue;
        }
        let offset = (next() % bytes.len() as u64) as usize;
        if next() % 2 == 0 {
            std::fs::write(path, &bytes[..offset]).unwrap();
        } else {
            let mut mutated = bytes.clone();
            mutated[offset] ^= 1 << (next() % 8);
            std::fs::write(path, &mutated).unwrap();
        }

        match resume(&dir) {
            Ok(Some(resumed)) => {
                for report in &resumed.reports {
                    let expected = oracle_ticks.get(&report.now).unwrap_or_else(|| {
                        panic!("round {round}: replay invented tick {}", report.now)
                    });
                    assert_eq!(
                        &report.results,
                        expected,
                        "round {round}: divergent replay at t={} after corrupting {}",
                        report.now,
                        path.display()
                    );
                }
            }
            // Older durable state entirely gone or unusable: a typed
            // error (printable, non-panicking) is the contract.
            Ok(None) => {}
            Err(e) => {
                let _ = e.to_string();
            }
        }
        // recover() must hold the same no-panic contract.
        match recover(&dir) {
            Ok(_) => {}
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A restart budget of zero with a rearming injector cannot make
/// progress: the run gives up with a typed abort instead of looping.
#[test]
fn exhausted_budget_reports_abort() {
    let params = ScubaParams::default().with_shards(2);
    let dir = tmp_dir("budget");
    let injector = Arc::new(PanicInjector::new(PanicPlan {
        seed: 3,
        panic_prob: 1.0,
        rearm: true,
    }));
    let cfg = SuperviseConfig {
        duration: 6,
        checkpoint_every: 2,
        max_restarts: 0,
        backoff: std::time::Duration::from_millis(1),
        ..SuperviseConfig::default()
    };
    let mut source = DetSource::new(3, 24);
    let outcome = run_supervised(
        &mut source,
        &params,
        area(),
        &dir,
        &cfg,
        Some(&injector),
        &mut NoObserver,
    )
    .expect("an exhausted budget aborts, it does not error");
    let reason = outcome.report.aborted.expect("run must abort");
    assert!(reason.contains("restart budget"), "{reason}");
    let _ = std::fs::remove_dir_all(&dir);
}
