//! The query registry: the durable record of the active query set.
//!
//! SCUBA treats queries as moving entities, but *which* queries exist at
//! any instant is control-plane state, not clustering state: a query can
//! be between clusters (just registered, not yet reported), load-shed, or
//! owned by a different stripe than the one answering for it. The
//! [`QueryRegistry`] owns that truth — `QueryId` → registration time,
//! spec, owner stripe — and is fed from two directions:
//!
//! * **explicitly**, by [`ControlOp::Register`] / [`ControlOp::Deregister`]
//!   ops flowing on the control stream beside the data plane
//!   ([`scuba_motion::control`]);
//! * **implicitly**, by data-plane query location updates: a query that
//!   reports is active, whether or not anyone announced it. This keeps
//!   fixed-population runs (no control stream at all) truthful without
//!   requiring every caller to adopt the control plane.
//!
//! The registry is carried inside durable checkpoints and its mutations
//! are implied by the journalled control ops, so `resume()` reproduces the
//! exact active set — see [`crate::durability`].
//!
//! [`ControlOp::Register`]: scuba_motion::ControlOp::Register
//! [`ControlOp::Deregister`]: scuba_motion::ControlOp::Deregister

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use scuba_motion::{QueryId, QuerySpec};
use scuba_spatial::Time;

/// What the registry knows about one active query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRecord {
    /// Time of the update that first registered the query (its
    /// registration epoch). Taken from the update's own timestamp, never
    /// from the consumer's clock, so journal replay reproduces it exactly.
    pub registered_at: Time,
    /// The query's spec at its most recent registration or refresh.
    pub spec: QuerySpec,
    /// The stripe that owns the query under sharded execution; `None` on
    /// single-store operators.
    pub owner: Option<u16>,
}

/// Control-plane gauges for health lines, event logs and bench output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlGauges {
    /// Queries currently active (registered and not yet deregistered).
    pub active_queries: u64,
    /// Lifetime count of registrations (explicit and implicit).
    pub registered_total: u64,
    /// Lifetime count of deregistrations (explicit, and reconciled
    /// engine-side evictions).
    pub deregistered_total: u64,
    /// Control ops addressed at an entity nothing knows (deregister of an
    /// unknown or already-dead query, a register carrying a non-query
    /// update). These also land in the dead-letter buffer when a
    /// validator is attached.
    pub unknown_total: u64,
}

/// The active query set plus lifetime churn counters.
///
/// Iteration order is `QueryId` order (a `BTreeMap`), so captures of equal
/// registries encode byte-identically — the property the checkpoint
/// identity tests lean on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryRegistry {
    active: BTreeMap<QueryId, QueryRecord>,
    registered_total: u64,
    deregistered_total: u64,
    unknown_total: u64,
}

impl QueryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a registry from checkpointed parts.
    pub fn from_parts(
        entries: Vec<(QueryId, QueryRecord)>,
        registered_total: u64,
        deregistered_total: u64,
        unknown_total: u64,
    ) -> Self {
        QueryRegistry {
            active: entries.into_iter().collect(),
            registered_total,
            deregistered_total,
            unknown_total,
        }
    }

    /// Records that `qid` is active: registers it if new (returning
    /// `true`), otherwise refreshes its spec and owner. `at` must come
    /// from the triggering update's timestamp so replay is deterministic.
    pub fn observe(&mut self, qid: QueryId, at: Time, spec: QuerySpec, owner: Option<u16>) -> bool {
        match self.active.entry(qid) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(QueryRecord {
                    registered_at: at,
                    spec,
                    owner,
                });
                self.registered_total += 1;
                true
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let rec = o.get_mut();
                rec.spec = spec;
                rec.owner = owner;
                false
            }
        }
    }

    /// Updates the owner stripe of an active query (entity migration).
    pub fn set_owner(&mut self, qid: QueryId, owner: Option<u16>) {
        if let Some(rec) = self.active.get_mut(&qid) {
            rec.owner = owner;
        }
    }

    /// Deregisters `qid`, returning its record if it was active. Unknown
    /// deregisters are **not** counted here — callers decide whether the
    /// entity was known to any layer before calling
    /// [`QueryRegistry::note_unknown`].
    pub fn deregister(&mut self, qid: QueryId) -> Option<QueryRecord> {
        let rec = self.active.remove(&qid);
        if rec.is_some() {
            self.deregistered_total += 1;
        }
        rec
    }

    /// Counts one control op addressed at an entity nothing knows.
    pub fn note_unknown(&mut self) {
        self.unknown_total += 1;
    }

    /// Drops every active entry `keep` rejects, counting the drops as
    /// deregistrations (engine-side evictions reconciled back into the
    /// registry); returns how many fell.
    pub fn retain<F: FnMut(QueryId, &QueryRecord) -> bool>(&mut self, mut keep: F) -> usize {
        let before = self.active.len();
        self.active.retain(|qid, rec| keep(*qid, rec));
        let dropped = before - self.active.len();
        self.deregistered_total += dropped as u64;
        dropped
    }

    /// The record of an active query.
    pub fn get(&self, qid: QueryId) -> Option<&QueryRecord> {
        self.active.get(&qid)
    }

    /// Whether `qid` is currently active.
    pub fn contains(&self, qid: QueryId) -> bool {
        self.active.contains_key(&qid)
    }

    /// Number of active queries.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Whether no query is active.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Active entries in `QueryId` order.
    pub fn iter(&self) -> impl Iterator<Item = (QueryId, &QueryRecord)> + '_ {
        self.active.iter().map(|(qid, rec)| (*qid, rec))
    }

    /// The current gauge values.
    pub fn gauges(&self) -> ControlGauges {
        ControlGauges {
            active_queries: self.active.len() as u64,
            registered_total: self.registered_total,
            deregistered_total: self.deregistered_total,
            unknown_total: self.unknown_total,
        }
    }

    /// Estimated heap footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        // BTreeMap nodes carry ~constant overhead per entry on top of the
        // key/value payload.
        self.active.len()
            * (std::mem::size_of::<QueryId>() + std::mem::size_of::<QueryRecord>() + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(side: f64) -> QuerySpec {
        QuerySpec::square_range(side)
    }

    #[test]
    fn observe_registers_once_then_refreshes() {
        let mut r = QueryRegistry::new();
        assert!(r.observe(QueryId(1), 5, spec(10.0), None));
        assert!(!r.observe(QueryId(1), 9, spec(20.0), Some(2)));
        let rec = r.get(QueryId(1)).unwrap();
        assert_eq!(rec.registered_at, 5, "registration epoch is sticky");
        assert_eq!(rec.spec, spec(20.0), "spec refreshes");
        assert_eq!(rec.owner, Some(2), "owner refreshes");
        assert_eq!(r.gauges().registered_total, 1);
        assert_eq!(r.gauges().active_queries, 1);
    }

    #[test]
    fn deregister_counts_only_known_queries() {
        let mut r = QueryRegistry::new();
        r.observe(QueryId(1), 1, spec(10.0), None);
        assert!(r.deregister(QueryId(1)).is_some());
        assert!(r.deregister(QueryId(1)).is_none());
        r.note_unknown();
        let g = r.gauges();
        assert_eq!(g.active_queries, 0);
        assert_eq!(g.deregistered_total, 1);
        assert_eq!(g.unknown_total, 1);
    }

    #[test]
    fn retain_counts_drops_as_deregistrations() {
        let mut r = QueryRegistry::new();
        for i in 0..4u64 {
            r.observe(QueryId(i), i, spec(10.0), None);
        }
        let dropped = r.retain(|qid, _| qid.0 % 2 == 0);
        assert_eq!(dropped, 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.gauges().deregistered_total, 2);
    }

    #[test]
    fn iteration_is_id_ordered_and_roundtrips_through_parts() {
        let mut r = QueryRegistry::new();
        for &i in &[7u64, 3, 9, 1] {
            r.observe(QueryId(i), i, spec(i as f64), Some((i % 3) as u16));
        }
        r.deregister(QueryId(9));
        r.note_unknown();
        let ids: Vec<u64> = r.iter().map(|(q, _)| q.0).collect();
        assert_eq!(ids, vec![1, 3, 7]);

        let entries: Vec<_> = r.iter().map(|(q, rec)| (q, *rec)).collect();
        let g = r.gauges();
        let rebuilt = QueryRegistry::from_parts(
            entries,
            g.registered_total,
            g.deregistered_total,
            g.unknown_total,
        );
        assert_eq!(rebuilt, r);
        assert_eq!(rebuilt.gauges(), g);
    }

    #[test]
    fn estimated_bytes_grows_with_population() {
        let mut r = QueryRegistry::new();
        assert_eq!(r.estimated_bytes(), 0);
        r.observe(QueryId(1), 1, spec(5.0), None);
        assert!(r.estimated_bytes() > 0);
    }
}
