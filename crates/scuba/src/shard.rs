//! Sharded multi-worker executor: stripe-owned `ClusterStore`s with
//! boundary-ghost handoff (ROADMAP item 1; DESIGN §4.8).
//!
//! The coverage area is split into K contiguous **column stripes** of the
//! ClusterGrid — the same stripe geometry the sharded batch-ingestion
//! planner uses ([`crate::ingest`]) — and each stripe is owned by one
//! worker holding a full [`ClusterEngine`]: its own `ClusterStore`, its
//! own spatial index, its own epoch clock and [`JoinCache`]. A router
//! classifies every location update by the stripe of its reported
//! position and hands it to the owner; when an entity's new position
//! crosses a stripe border, the router emits a remove on the old owner
//! before the update lands on the new one, so every entity lives on
//! exactly one shard at all times.
//!
//! Per evaluation (every Δ) the workers run the regular three-phase SCUBA
//! pipeline locally, with one extra step between the local join and
//! post-join maintenance: **ghost exchange**. Clusters whose halo
//! (effective radius + the global maximum effective radius) reaches into a
//! lower-indexed stripe are replicated there as read-only ghosts —
//! centroid, circle, exact member positions and query regions, mirroring
//! exactly what join-within materialises. The receiving shard joins its
//! local clusters against each ghost with the same exact predicate, so
//! every cross-boundary cluster pair is evaluated exactly once, on the
//! lower-indexed (min-stripe) side. Per-shard results are concatenated,
//! sorted and deduplicated into the canonical report.
//!
//! ## Identity
//!
//! With load shedding off, the merged result set is **bit-identical** to
//! the single-store [`crate::ScubaOperator`] on the same update stream:
//! the match predicate (query rectangle contains exact member position)
//! depends only on reported positions and query specs — never on which
//! cluster, store, or shard a member landed in — and the ghost halo is
//! provably wide enough to deliver every cluster pair that could produce
//! a match (see DESIGN §4.8 for the argument). kNN queries are answered
//! shard-locally and therefore only match the single-store engine at one
//! shard; identity workloads use range queries.
//!
//! Robustness features that mutate results (shedding ladders, validation,
//! deadlines, memory budgets) are single-store concerns and are not
//! driven by this executor.
//!
//! ## Supervision
//!
//! Worker bodies run inside `catch_unwind`: a panicking worker poisons the
//! epoch barrier (so siblings parked at an exchange rendezvous wake and
//! bail instead of deadlocking) and the whole epoch is **quarantined** —
//! [`ShardedScubaOperator::try_evaluate`] returns a typed
//! [`WorkerFailure`] and discards every stripe's output, because the
//! panicking worker may have died mid-mutation. The caller is expected to
//! restore all stripes from durable state ([`crate::durability`]) before
//! retrying; the plain [`ContinuousOperator::evaluate`] path records the
//! failure as a fatal [`ContinuousOperator::fault`] so an unsupervised
//! executor aborts cleanly rather than continuing on suspect state.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use scuba_motion::{ControlOp, EntityRef, LocationUpdate, ObjectId, QueryId, QuerySpec};
use scuba_spatial::{Circle, FxHashMap, GridSpec, Point, Rect, Time};
use scuba_stream::{
    ContinuousOperator, EvaluationReport, PanicInjector, PhaseBreakdown, QueryMatch, StageStats,
    Stopwatch,
};

use crate::cluster::MovingCluster;
use crate::clustering::ClusterEngine;
use crate::engine::{STAGE_GRID_REBALANCE, STAGE_KNN, STAGE_POST_JOIN, STAGE_PRE_JOIN_TIGHTEN};
use crate::join::{JoinCache, JoinContext, JoinScratch};
use crate::params::ScubaParams;
use crate::registry::{ControlGauges, QueryRegistry};
use crate::snapshot::{EngineSnapshot, SnapshotError};
use crate::store::ClusterSlot;
use crate::tables::QueriesTable;

/// A shard worker died mid-epoch. The epoch's outputs are quarantined:
/// the panicking worker may have been interrupted mid-mutation, so every
/// stripe engine must be considered suspect until restored from durable
/// state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// Index of the stripe whose worker panicked.
    pub shard: usize,
    /// The evaluation time at which the epoch failed.
    pub now: Time,
    /// The panic payload, when it carried a message.
    pub message: String,
}

impl std::fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard worker {} panicked at t={}: {}",
            self.shard, self.now, self.message
        )
    }
}

impl std::error::Error for WorkerFailure {}

/// Marker returned up a worker's call chain when a *sibling* poisoned the
/// epoch: the worker abandons its remaining stages instead of waiting on
/// rendezvous that will never complete.
struct EpochAborted;

/// A reusable rendezvous like [`std::sync::Barrier`], plus poisoning: a
/// panicking worker calls [`EpochBarrier::poison`] and every current and
/// future waiter returns `Err(EpochAborted)` immediately instead of
/// blocking for a participant that will never arrive.
struct EpochBarrier {
    state: Mutex<BarrierState>,
    cvar: Condvar,
    participants: usize,
}

struct BarrierState {
    waiting: usize,
    generation: u64,
    poisoned: bool,
}

impl EpochBarrier {
    fn new(participants: usize) -> Self {
        EpochBarrier {
            state: Mutex::new(BarrierState {
                waiting: 0,
                generation: 0,
                poisoned: false,
            }),
            cvar: Condvar::new(),
            participants,
        }
    }

    /// Blocks until all participants arrive (or the barrier is poisoned).
    fn wait(&self) -> Result<(), EpochAborted> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.poisoned {
            return Err(EpochAborted);
        }
        state.waiting += 1;
        if state.waiting == self.participants {
            state.waiting = 0;
            state.generation += 1;
            self.cvar.notify_all();
            return Ok(());
        }
        let generation = state.generation;
        while state.generation == generation && !state.poisoned {
            state = self
                .cvar
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if state.poisoned {
            Err(EpochAborted)
        } else {
            Ok(())
        }
    }

    /// Marks the epoch dead and wakes every parked waiter.
    fn poison(&self) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.poisoned = true;
        self.cvar.notify_all();
    }
}

/// Stage name: update routing and cross-stripe handoff (maintenance
/// bucket). `items_in` = updates routed since the last evaluation,
/// `items_out` = updates that stayed on their previous owner, `tests` =
/// stripe migrations (remove on old owner + insert on new).
pub const STAGE_SHARD_ROUTE: &str = "shard-route";
/// Stage name: boundary-ghost exchange plus the owner-side cross-stripe
/// join (join bucket). `items_in` = ghosts received, `items_out` =
/// (local, ghost) cluster pairs that survived the circle pre-filter,
/// `tests` = exact cross-join comparisons.
pub const STAGE_SHARD_EXCHANGE: &str = "shard-exchange";
/// Stage name: merging per-shard result sets into the canonical report
/// (join bucket). `items_in` = concatenated matches, `items_out` =
/// matches after sort + dedup.
pub const STAGE_SHARD_MERGE: &str = "shard-merge";

/// A routed operation in a shard's ordered apply queue.
#[derive(Debug, Clone)]
enum ShardOp {
    /// Ingest this update on the owning shard.
    Update(LocationUpdate),
    /// The entity migrated away: drop its membership and registration.
    Remove(EntityRef),
}

/// One stripe-owning worker's private state.
#[derive(Debug)]
struct ShardState {
    engine: ClusterEngine,
    cache: JoinCache,
    scratch: JoinScratch,
    /// Removes whose entity the stripe engine no longer knew (TTL-evicted
    /// between updates, or a deregister racing an eviction). Drained into
    /// the registry's unknown counter after each apply pass so dead
    /// removes are counted, never silently dropped.
    unknown_removes: u64,
}

/// An exact range query replicated inside a ghost (mirrors the arena's
/// exact-query entries in [`crate::join`]).
#[derive(Debug, Clone, Copy)]
struct GhostQuery {
    qid: QueryId,
    pos: Point,
    region: Rect,
    bounding_radius: f64,
}

/// A group of shed queries sharing one centroid-centred region.
#[derive(Debug, Clone)]
struct GhostGroup {
    region: Rect,
    qids: Vec<QueryId>,
}

/// Read-only replica of one boundary cluster, shipped to neighbouring
/// stripes each Δ. Carries exactly what join-within materialises: exact
/// member positions, shed members at the centroid, and per-query regions.
#[derive(Debug, Clone)]
struct Ghost {
    /// Cluster circle (centroid + covering radius) at exchange time.
    region: Circle,
    /// Effective radius: covering radius + widest query bounding radius.
    reach: f64,
    centroid: Point,
    objs: Vec<(ObjectId, Point)>,
    shed_objs: Vec<ObjectId>,
    queries: Vec<GhostQuery>,
    groups: Vec<GhostGroup>,
}

/// Exact-work counters of the cross-stripe join, merged into the report's
/// global `comparisons` / `prefilter_tests`.
#[derive(Debug, Default, Clone, Copy)]
struct CrossCounters {
    comparisons: u64,
    prefilter_tests: u64,
}

/// What one worker hands back to the merge step.
struct ShardOutput {
    results: Vec<QueryMatch>,
    phases: PhaseBreakdown,
    comparisons: u64,
    prefilter_tests: u64,
    memory_bytes: usize,
    ghosts_sent: u64,
    ghosts_received: u64,
}

/// The N-shard SCUBA executor: a router in front of K stripe-owned
/// [`ClusterEngine`]s evaluated by scoped worker threads (see the module
/// docs for the protocol and the identity argument).
#[derive(Debug)]
pub struct ShardedScubaOperator {
    params: ScubaParams,
    name: String,
    shards: Vec<ShardState>,
    /// Routing spec: same area/granularity as every shard's grid.
    spec: GridSpec,
    /// Grid column → owning stripe (the ingest-planner stripe map).
    col_shard: Vec<u16>,
    /// Stripe x-intervals for halo tests. Border stripes extend to ±∞,
    /// matching [`GridSpec::cell_of`]'s clamping of outside points.
    stripe_lo: Vec<f64>,
    stripe_hi: Vec<f64>,
    /// Current owner stripe of every known entity.
    owner: FxHashMap<EntityRef, u16>,
    /// The control-plane truth of the active query set. Fed implicitly by
    /// routed query updates and explicitly by [`ControlOp`]s; owners track
    /// the routing decision, so the registry mirrors the stripe map.
    registry: QueryRegistry,
    /// Reusable per-shard ordered apply queues.
    routes: Vec<Vec<ShardOp>>,
    evaluations: u64,
    /// Router counters accumulated since the last evaluation.
    route_updates: u64,
    route_handoffs: u64,
    route_wall: Duration,
    /// Lifetime ghost-refresh counter (ghost replicas shipped, summed
    /// over all exchanges).
    ghosts_sent_total: u64,
    /// Ghosts shipped / received during the most recent evaluation.
    last_ghosts_sent: u64,
    last_ghosts_received: u64,
    /// Deterministic worker-panic injection, for supervision tests.
    panics: Option<Arc<PanicInjector>>,
    /// A worker failure observed by the plain [`ContinuousOperator`]
    /// evaluate path; reported through [`ContinuousOperator::fault`].
    fatal: Option<String>,
}

impl ShardedScubaOperator {
    /// Creates an executor with `params.shards` stripe-owned engines over
    /// `area`. The shard count is clamped to the grid's column count (a
    /// stripe is at least one column), exactly like ingest sharding.
    pub fn new(params: ScubaParams, area: Rect) -> Self {
        let spec = GridSpec::new(area, params.grid_cells);
        let cols = spec.cells_per_side() as usize;
        let k = params.shards.clamp(1, cols);

        let mut col_shard = vec![0u16; cols];
        let mut stripe_lo = Vec::with_capacity(k);
        let mut stripe_hi = Vec::with_capacity(k);
        for s in 0..k {
            // Contiguous column stripes: shard s covers columns
            // [s·n/K, (s+1)·n/K) — the crate::ingest stripe map.
            let start = s * cols / k;
            let end = (s + 1) * cols / k;
            for col in &mut col_shard[start..end] {
                *col = s as u16;
            }
            stripe_lo.push(if s == 0 {
                f64::NEG_INFINITY
            } else {
                area.min.x + start as f64 * spec.cell_width()
            });
            stripe_hi.push(if s == k - 1 {
                f64::INFINITY
            } else {
                area.min.x + end as f64 * spec.cell_width()
            });
        }

        let shards = (0..k)
            .map(|_| ShardState {
                engine: ClusterEngine::new(params, area),
                cache: JoinCache::new(),
                scratch: JoinScratch::new(),
                unknown_removes: 0,
            })
            .collect();
        ShardedScubaOperator {
            params,
            name: format!("SCUBA[shards={k}]"),
            shards,
            spec,
            col_shard,
            stripe_lo,
            stripe_hi,
            owner: FxHashMap::default(),
            registry: QueryRegistry::new(),
            routes: (0..k).map(|_| Vec::new()).collect(),
            evaluations: 0,
            route_updates: 0,
            route_handoffs: 0,
            route_wall: Duration::ZERO,
            ghosts_sent_total: 0,
            last_ghosts_sent: 0,
            last_ghosts_received: 0,
            panics: None,
            fatal: None,
        }
    }

    /// Attaches a deterministic worker-panic injector: each worker asks
    /// `injector.arm(now, shard)` once per evaluation (right before the
    /// ghost exchange, after the engine has already been mutated by
    /// tightening — so surviving an injected panic genuinely requires a
    /// restore) and panics when it fires.
    pub fn with_panic_injector(mut self, injector: Arc<PanicInjector>) -> Self {
        self.panics = Some(injector);
        self
    }

    /// Attaches (or detaches, with `None`) the panic injector in place —
    /// the supervised loop re-attaches the shared injector after restoring
    /// an operator from durable state, so re-armed fault sites keep firing
    /// across restarts.
    pub fn set_panic_injector(&mut self, injector: Option<Arc<PanicInjector>>) {
        self.panics = injector;
    }

    /// The parameters this executor was built with.
    pub fn params(&self) -> &ScubaParams {
        &self.params
    }

    /// The number of stripe-owned shards actually running (requested count
    /// clamped to the grid's column count).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Lifetime count of ghost replicas shipped across stripe borders.
    pub fn ghost_refreshes(&self) -> u64 {
        self.ghosts_sent_total
    }

    /// Ghost replicas (shipped, received) during the most recent
    /// evaluation. Received can only differ from shipped transiently —
    /// every ghost is both sent and drained within one exchange.
    pub fn last_exchange(&self) -> (u64, u64) {
        (self.last_ghosts_sent, self.last_ghosts_received)
    }

    /// Read access to the per-stripe clustering engines, in stripe order
    /// (diagnostics, tests).
    pub fn engines(&self) -> impl Iterator<Item = &ClusterEngine> {
        self.shards.iter().map(|s| &s.engine)
    }

    /// Captures every stripe engine as a snapshot, in stripe order — the
    /// sharded counterpart of [`EngineSnapshot::capture`]. Operator
    /// transients (per-stripe join caches, the epoch clocks' cache
    /// warmth) are not part of the capture; they only affect work
    /// counters, never results.
    pub fn capture_stripes(&self) -> Vec<EngineSnapshot> {
        self.shards
            .iter()
            .map(|s| EngineSnapshot::capture(&s.engine))
            .collect()
    }

    /// Rebuilds a sharded operator from per-stripe snapshots produced by
    /// [`ShardedScubaOperator::capture_stripes`]. Geometry (`params`,
    /// `area`) is taken from the snapshots themselves, so the restored
    /// router reproduces the stripe map the capture ran under; the
    /// entity→owner map is rebuilt from cluster membership. Per-stripe
    /// join caches start cold, which changes work counters but not
    /// results (the cache identity property).
    ///
    /// Note: entities evicted by a TTL between their last update and the
    /// capture are absent from membership and therefore from the rebuilt
    /// owner map, exactly as they are absent from a restored single-store
    /// engine.
    pub fn from_stripes(stripes: &[EngineSnapshot]) -> Result<Self, SnapshotError> {
        let first = stripes.first().ok_or(SnapshotError::ShardMismatch {
            found: 0,
            expected: 1,
        })?;
        let mut op = ShardedScubaOperator::new(first.params, first.area);
        if stripes.len() != op.shards.len() {
            return Err(SnapshotError::ShardMismatch {
                found: stripes.len(),
                expected: op.shards.len(),
            });
        }
        for (idx, snap) in stripes.iter().enumerate() {
            let engine = snap.restore()?;
            for cluster in engine.clusters().values() {
                for member in cluster.members() {
                    op.owner.insert(member.entity, idx as u16);
                }
            }
            // Seed the registry from the stripe's registered queries so a
            // bare snapshot restore is truthful; a durable restore then
            // installs the checkpointed registry (exact registration
            // epochs and lifetime counters) via `set_registry`.
            for (qid, attrs) in engine.queries().iter() {
                op.registry.observe(qid, 0, attrs.spec, Some(idx as u16));
            }
            op.shards[idx].engine = engine;
        }
        Ok(op)
    }

    /// The control-plane view of the active query set.
    pub fn registry(&self) -> &QueryRegistry {
        &self.registry
    }

    /// Current control-plane gauges (health lines, event logs).
    pub fn control_gauges(&self) -> ControlGauges {
        self.registry.gauges()
    }

    /// Installs a registry restored from durable state, replacing the
    /// membership-seeded one.
    pub fn set_registry(&mut self, registry: QueryRegistry) {
        self.registry = registry;
    }

    /// Deregisters a query across every layer: drops its ownership, queues
    /// a remove on the owning stripe (applied with the next route drain,
    /// so its cluster shrinks or dissolves and the stripe's cached join
    /// rows for that cluster are purged), and retires it from the
    /// registry. Returns whether any layer knew the query; unknown
    /// deregisters are counted, never silently dropped.
    pub fn deregister_query(&mut self, qid: QueryId) -> bool {
        let entity = EntityRef::Query(qid);
        let owned = self.owner.remove(&entity);
        if let Some(prev) = owned {
            self.routes[prev as usize].push(ShardOp::Remove(entity));
        }
        let in_registry = self.registry.deregister(qid).is_some();
        let known = owned.is_some() || in_registry;
        if !known {
            self.registry.note_unknown();
        }
        known
    }

    /// The stripe owning a position (by its grid column).
    fn shard_of(&self, p: &Point) -> usize {
        self.col_shard[self.spec.cell_of(p).col as usize] as usize
    }

    /// Routes one update: records a handoff on the old owner when the
    /// entity crossed a stripe border, then assigns the new owner.
    /// Returns the owning shard.
    fn route(&mut self, update: &LocationUpdate) -> usize {
        let target = self.shard_of(&update.loc) as u16;
        self.route_updates += 1;
        if let Some(prev) = self.owner.insert(update.entity, target) {
            if prev != target {
                self.route_handoffs += 1;
                self.routes[prev as usize].push(ShardOp::Remove(update.entity));
            }
        }
        // A reporting query is an active query: register it implicitly (or
        // refresh its spec) and keep its owner stripe current, mirroring
        // the single-store operator's implicit registration.
        if let (Some(qid), Some(spec)) = (update.entity.as_query(), update.query_spec()) {
            self.registry.observe(qid, update.time, spec, Some(target));
        }
        self.routes[target as usize].push(ShardOp::Update(*update));
        target as usize
    }

    /// Applies every queued op, in queue order per shard, shards in
    /// parallel. Cross-shard interleaving is irrelevant: the queues touch
    /// disjoint engines.
    fn apply_routes(&mut self) {
        if self.shards.len() == 1 {
            let state = &mut self.shards[0];
            for op in self.routes[0].drain(..) {
                match op {
                    ShardOp::Update(u) => {
                        state.engine.process_update(&u);
                    }
                    ShardOp::Remove(e) => {
                        apply_remove(state, e);
                    }
                }
            }
        } else {
            std::thread::scope(|scope| {
                for (state, ops) in self.shards.iter_mut().zip(self.routes.iter()) {
                    if ops.is_empty() {
                        continue;
                    }
                    scope.spawn(move || {
                        for op in ops {
                            match op {
                                ShardOp::Update(u) => {
                                    state.engine.process_update(u);
                                }
                                ShardOp::Remove(e) => {
                                    apply_remove(state, *e);
                                }
                            }
                        }
                    });
                }
            });
            for queue in &mut self.routes {
                queue.clear();
            }
        }
        for state in &mut self.shards {
            let dead = std::mem::take(&mut state.unknown_removes);
            for _ in 0..dead {
                self.registry.note_unknown();
            }
        }
    }
}

/// Applies one [`ShardOp::Remove`] on its owning stripe: captures the
/// entity's cluster slot, removes the entity from the engine, and purges
/// that slot's cached join rows so a deregistered query's results can
/// never be served from a stale cache entry (and a reused slot starts
/// clean). A remove whose entity the engine no longer knows is counted in
/// [`ShardState::unknown_removes`] instead of being silently dropped.
fn apply_remove(state: &mut ShardState, entity: EntityRef) {
    let slot = state.engine.home().cluster_of(entity);
    let known = state.engine.remove_entity(entity);
    if let Some(slot) = slot {
        state.cache.purge_slot(slot);
    }
    if !known {
        state.unknown_removes += 1;
    }
}

impl ContinuousOperator for ShardedScubaOperator {
    /// Applies this Δ's control ops ahead of the data batch: registers and
    /// updates are routed like ordinary updates (the carried query update
    /// lands on its owner stripe), deregisters retire the query across the
    /// router, owner engine, stripe cache and registry. A register
    /// carrying a non-query update is a malformed control op and is
    /// counted as unknown.
    fn apply_control(&mut self, ops: &[ControlOp], _now: Time) {
        if self.fatal.is_some() {
            return;
        }
        let sw = Stopwatch::start();
        for op in ops {
            match op {
                ControlOp::Register(u) | ControlOp::Update(u) => {
                    if u.entity.as_query().is_some() {
                        self.route(u);
                    } else {
                        self.registry.note_unknown();
                    }
                }
                ControlOp::Deregister(qid) => {
                    self.deregister_query(*qid);
                }
            }
        }
        self.route_wall += sw.elapsed();
        self.apply_routes();
    }

    fn process_update(&mut self, update: &LocationUpdate) {
        let sw = Stopwatch::start();
        self.route(update);
        self.route_wall += sw.elapsed();
        self.apply_routes();
    }

    fn process_batch(&mut self, updates: &[LocationUpdate]) {
        let sw = Stopwatch::start();
        for update in updates {
            self.route(update);
        }
        self.route_wall += sw.elapsed();
        self.apply_routes();
    }

    /// Delegates to [`ShardedScubaOperator::try_evaluate`]; a worker
    /// failure is recorded as a fatal fault (surfaced through
    /// [`ContinuousOperator::fault`], aborting a plain executor run) and
    /// an empty report is returned for the quarantined epoch.
    fn evaluate(&mut self, now: Time) -> EvaluationReport {
        match self.try_evaluate(now) {
            Ok(report) => report,
            Err(failure) => {
                self.fatal = Some(failure.to_string());
                EvaluationReport {
                    now,
                    ..Default::default()
                }
            }
        }
    }

    fn fault(&self) -> Option<String> {
        self.fatal.clone()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.engine.estimated_bytes()).sum()
    }

    fn clusters_live(&self) -> Option<usize> {
        Some(self.shards.iter().map(|s| s.engine.cluster_count()).sum())
    }
}

impl ShardedScubaOperator {
    /// Runs one evaluation epoch across all stripe workers, returning a
    /// typed [`WorkerFailure`] instead of propagating a worker panic. On
    /// failure the whole epoch is quarantined: no stripe's output is
    /// merged (the panicking worker may have died mid-mutation) and the
    /// engines must be restored from durable state before the tick is
    /// retried — see [`crate::durability::run_supervised`].
    pub fn try_evaluate(&mut self, now: Time) -> Result<EvaluationReport, WorkerFailure> {
        self.evaluations += 1;
        let mut phases = PhaseBreakdown::new();
        phases.push(
            StageStats::maintenance(STAGE_SHARD_ROUTE)
                .with_wall(self.route_wall)
                .with_items(self.route_updates, self.route_updates - self.route_handoffs)
                .with_tests(self.route_handoffs),
        );
        self.route_updates = 0;
        self.route_handoffs = 0;
        self.route_wall = Duration::ZERO;

        let k = self.shards.len();
        let params = self.params;
        let barrier = EpochBarrier::new(k);
        // Global maximum effective cluster radius this Δ, as non-negative
        // f64 bits (bit order == value order for non-negative floats).
        let max_reach_bits = AtomicU64::new(0);
        // mailboxes[dest][src]: each sender owns an uncontended slot, each
        // receiver drains its row in stripe order — deterministic without
        // sorting.
        let mailboxes: Vec<Vec<Mutex<Vec<Ghost>>>> = (0..k)
            .map(|_| (0..k).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let stripe_lo = &self.stripe_lo;
        let stripe_hi = &self.stripe_hi;
        let injector = self.panics.as_deref();

        // Worker protocol: a panic is caught, poisons the barrier (waking
        // siblings parked at a rendezvous) and surfaces as `Err(Some(msg))`;
        // a sibling that bails on the poisoned barrier surfaces as
        // `Err(None)`. `join()` itself can no longer panic.
        let worker_results: Vec<Result<ShardOutput, Option<String>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .enumerate()
                    .map(|(s, state)| {
                        let barrier = &barrier;
                        let max_reach_bits = &max_reach_bits;
                        let mailboxes = &mailboxes;
                        scope.spawn(move || {
                            match catch_unwind(AssertUnwindSafe(|| {
                                shard_evaluate(
                                    s,
                                    state,
                                    now,
                                    &params,
                                    barrier,
                                    max_reach_bits,
                                    mailboxes,
                                    stripe_lo,
                                    stripe_hi,
                                    injector,
                                )
                            })) {
                                Ok(Ok(output)) => Ok(output),
                                Ok(Err(EpochAborted)) => Err(None),
                                Err(payload) => {
                                    barrier.poison();
                                    Err(Some(panic_message(payload.as_ref())))
                                }
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("supervised worker wrapper never panics"))
                    .collect()
            });

        let mut outputs = Vec::with_capacity(k);
        let mut failure: Option<WorkerFailure> = None;
        for (s, result) in worker_results.into_iter().enumerate() {
            match result {
                Ok(output) => outputs.push(output),
                Err(message) => {
                    // Prefer the shard that actually panicked over siblings
                    // that merely bailed on the poisoned epoch.
                    let panicked = message.is_some();
                    let candidate = WorkerFailure {
                        shard: s,
                        now,
                        message: message
                            .unwrap_or_else(|| "epoch aborted by a sibling worker's panic".into()),
                    };
                    match &failure {
                        Some(prev) if panicked && prev.message.starts_with("epoch aborted") => {
                            failure = Some(candidate)
                        }
                        Some(_) => {}
                        None => failure = Some(candidate),
                    }
                }
            }
        }
        if let Some(failure) = failure {
            return Err(failure);
        }

        // Reconcile: post-join maintenance may have TTL-evicted queries
        // from the stripe engines; retire them from the registry (counted
        // as deregistrations) so the active set never outlives the data.
        {
            let shards = &self.shards;
            self.registry.retain(|qid, _| {
                shards
                    .iter()
                    .any(|state| state.engine.queries().get(qid).is_some())
            });
        }

        let sw = Stopwatch::start();
        let mut results: Vec<QueryMatch> = Vec::new();
        let mut comparisons = 0u64;
        let mut prefilter_tests = 0u64;
        let mut memory_bytes = 0usize;
        let mut sent = 0u64;
        let mut received = 0u64;
        for out in outputs {
            results.extend(out.results);
            phases.absorb(&out.phases);
            comparisons += out.comparisons;
            prefilter_tests += out.prefilter_tests;
            memory_bytes += out.memory_bytes;
            sent += out.ghosts_sent;
            received += out.ghosts_received;
        }
        self.ghosts_sent_total += sent;
        self.last_ghosts_sent = sent;
        self.last_ghosts_received = received;
        let before = results.len() as u64;
        results.sort_unstable();
        results.dedup();
        phases.push(
            StageStats::join(STAGE_SHARD_MERGE)
                .with_wall(sw.elapsed())
                .with_items(before, results.len() as u64),
        );

        Ok(EvaluationReport {
            now,
            results,
            phases,
            memory_bytes,
            comparisons,
            prefilter_tests,
        })
    }
}

/// Renders a caught panic payload for [`WorkerFailure::message`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One worker's per-Δ pipeline: the single-store evaluation stages plus
/// the ghost exchange, in an order that keeps positions exact — ghosts are
/// built and the cross-join runs strictly *before* post-join maintenance
/// advances anything. Returns `Err(EpochAborted)` when a sibling poisoned
/// the epoch barrier mid-rendezvous.
#[allow(clippy::too_many_arguments)]
fn shard_evaluate(
    s: usize,
    state: &mut ShardState,
    now: Time,
    params: &ScubaParams,
    barrier: &EpochBarrier,
    max_reach_bits: &AtomicU64,
    mailboxes: &[Vec<Mutex<Vec<Ghost>>>],
    stripe_lo: &[f64],
    stripe_hi: &[f64],
    injector: Option<&PanicInjector>,
) -> Result<ShardOutput, EpochAborted> {
    let engine = &mut state.engine;
    let mut phases = PhaseBreakdown::new();
    let clusters_before = engine.cluster_count() as u64;

    let sw = Stopwatch::start();
    if params.tighten_radii {
        engine.pre_join_tighten();
    }
    phases.push(
        StageStats::maintenance(STAGE_PRE_JOIN_TIGHTEN)
            .with_wall(sw.elapsed())
            .with_items(clusters_before, clusters_before),
    );

    let sw = Stopwatch::start();
    engine.rebalance_index();
    phases.push(
        StageStats::maintenance(STAGE_GRID_REBALANCE)
            .with_wall(sw.elapsed())
            .with_items(clusters_before, clusters_before),
    );

    // Deterministic panic injection, placed after the engine has already
    // been mutated (tighten/rebalance) and before the first rendezvous:
    // surviving the injected panic genuinely requires restoring the
    // stripes, and parked siblings exercise the poison path.
    if let Some(inj) = injector {
        if inj.arm(now, s as u64) {
            panic!("injected worker panic: shard {s}, tick {now}");
        }
    }

    // Exchange, step 1: agree on the halo width. Every true cross-stripe
    // match needs the partner within reach + M_global of this cluster's
    // centroid (DESIGN §4.8), where M_global is the widest effective
    // radius anywhere this Δ.
    let sw_exchange = Stopwatch::start();
    let mut local_max = 0.0f64;
    for (_, cluster) in engine.store().iter() {
        local_max = local_max.max(cluster.radius() + cluster.max_query_radius());
    }
    max_reach_bits.fetch_max(local_max.to_bits(), Ordering::Relaxed);
    barrier.wait()?;
    let m_global = f64::from_bits(max_reach_bits.load(Ordering::Relaxed));

    // Exchange, step 2: ship ghosts. Pairs are evaluated once, on the
    // lower-indexed stripe, so replicas only flow downward.
    let mut ghosts_sent = 0u64;
    for (_, cluster) in engine.store().iter() {
        let reach = cluster.radius() + cluster.max_query_radius();
        let halo = reach + m_global;
        let cx = cluster.centroid().x;
        let mut ghost: Option<Ghost> = None;
        for dest in 0..s {
            let dist = (stripe_lo[dest] - cx).max(cx - stripe_hi[dest]).max(0.0);
            if dist > halo {
                continue;
            }
            let g = ghost.get_or_insert_with(|| build_ghost(cluster, engine.queries()));
            // A mailbox lock poisoned by a panicked sibling is still
            // usable — the epoch is quarantined wholesale anyway.
            mailboxes[dest][s]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(g.clone());
            ghosts_sent += 1;
        }
    }
    barrier.wait()?;
    let mut ghosts: Vec<Ghost> = Vec::new();
    for src in mailboxes[s].iter() {
        ghosts.append(
            &mut src
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
    }
    let exchange_prep = sw_exchange.elapsed();

    // Local join: the standard staged pipeline over this stripe's store,
    // incremental across epochs through the per-shard cache.
    let ctx = JoinContext {
        store: engine.store(),
        grid: engine.grid(),
        queries: engine.queries(),
        shedding: engine.params().shedding,
        theta_d: engine.params().theta_d,
        member_filter: engine.params().member_filter,
        parallelism: engine.params().parallelism,
        kernel: engine.params().kernel,
    };
    let epochs = params.join_cache.then(|| engine.epochs());
    let mut join = ctx.run_cached(epochs, &mut state.cache, &mut state.scratch);
    phases.extend(std::mem::take(&mut join.stages));

    // Exchange, step 3: owner-side cross-stripe join — local clusters
    // against received ghosts, exact predicate, both member directions.
    let sw_cross = Stopwatch::start();
    let mut counters = CrossCounters::default();
    let mut pairs_joined = 0u64;
    if !ghosts.is_empty() {
        let mut views: FxHashMap<ClusterSlot, Ghost> = FxHashMap::default();
        for (slot, cluster) in engine.store().iter() {
            let local_reach = cluster.radius() + cluster.max_query_radius();
            let centroid = cluster.centroid();
            for ghost in &ghosts {
                counters.prefilter_tests += 1;
                let dx = centroid.x - ghost.centroid.x;
                let dy = centroid.y - ghost.centroid.y;
                let rr = local_reach + ghost.reach;
                if dx * dx + dy * dy > rr * rr {
                    continue;
                }
                pairs_joined += 1;
                let view = views
                    .entry(slot)
                    .or_insert_with(|| build_ghost(cluster, engine.queries()));
                cross_join(
                    view,
                    ghost,
                    params.member_filter,
                    &mut join.results,
                    &mut counters,
                );
            }
        }
    }
    join.comparisons += counters.comparisons;
    join.prefilter_tests += counters.prefilter_tests;
    phases.push(
        StageStats::join(STAGE_SHARD_EXCHANGE)
            .with_wall(exchange_prep + sw_cross.elapsed())
            .with_items(ghosts.len() as u64, pairs_joined)
            .with_tests(counters.comparisons),
    );

    // kNN queries are answered over this stripe's clusters only (module
    // docs); zero-cost when the workload has none.
    let sw = Stopwatch::start();
    let knn = crate::knn::evaluate_continuous(engine);
    let knn_found = knn.len() as u64;
    if !knn.is_empty() {
        join.results.extend(knn);
        join.results.sort_unstable();
        join.results.dedup();
    }
    phases.push(
        StageStats::join(STAGE_KNN)
            .with_wall(sw.elapsed())
            .with_items(knn_found, knn_found),
    );

    let sw = Stopwatch::start();
    engine.post_join_maintenance(now);
    phases.push(
        StageStats::maintenance(STAGE_POST_JOIN)
            .with_wall(sw.elapsed())
            .with_items(clusters_before, engine.cluster_count() as u64),
    );

    Ok(ShardOutput {
        results: join.results,
        phases,
        comparisons: join.comparisons,
        prefilter_tests: join.prefilter_tests,
        memory_bytes: engine.estimated_bytes(),
        ghosts_sent,
        ghosts_received: ghosts.len() as u64,
    })
}

/// Replicates one cluster into a [`Ghost`], mirroring join-within's member
/// materialisation exactly: exact members at their drift-compensated
/// reported positions, shed members at the centroid, kNN and unregistered
/// queries skipped.
fn build_ghost(cluster: &MovingCluster, queries: &QueriesTable) -> Ghost {
    let centroid = cluster.centroid();
    let mut ghost = Ghost {
        region: cluster.region(),
        reach: cluster.radius() + cluster.max_query_radius(),
        centroid,
        objs: Vec::new(),
        shed_objs: Vec::new(),
        queries: Vec::new(),
        groups: Vec::new(),
    };
    for member in cluster.members() {
        let pos = cluster.member_position(member);
        match member.entity {
            EntityRef::Object(oid) => match pos {
                Some(p) => ghost.objs.push((oid, p)),
                None => ghost.shed_objs.push(oid),
            },
            EntityRef::Query(qid) => {
                let Some(attrs) = queries.get(qid) else {
                    continue;
                };
                let QuerySpec::Range { .. } = attrs.spec else {
                    continue;
                };
                match pos {
                    Some(p) => ghost.queries.push(GhostQuery {
                        qid,
                        pos: p,
                        region: attrs
                            .spec
                            .region_at(p)
                            .expect("range spec always has a region"),
                        bounding_radius: attrs.spec.bounding_radius(),
                    }),
                    None => {
                        let region = attrs
                            .spec
                            .region_at(centroid)
                            .expect("range spec always has a region");
                        match ghost.groups.iter_mut().find(|g| g.region == region) {
                            Some(g) => g.qids.push(qid),
                            None => ghost.groups.push(GhostGroup {
                                region,
                                qids: vec![qid],
                            }),
                        }
                    }
                }
            }
        }
    }
    ghost
}

/// Joins a surviving cross-stripe cluster pair in both member directions,
/// with the same predicate and sound reach filters as join-within.
fn cross_join(
    a: &Ghost,
    b: &Ghost,
    member_filter: bool,
    out: &mut Vec<QueryMatch>,
    counters: &mut CrossCounters,
) {
    join_direction(a, b, member_filter, out, counters);
    join_direction(b, a, member_filter, out, counters);
}

/// `objects_of`'s objects against `queries_of`'s queries — the scalar
/// join-within member loop ([`crate::join`]) over ghost views. The reach
/// filters are sound (they only skip pairs the exact predicate rejects),
/// so results are independent of `member_filter`.
fn join_direction(
    objects_of: &Ghost,
    queries_of: &Ghost,
    member_filter: bool,
    out: &mut Vec<QueryMatch>,
    counters: &mut CrossCounters,
) {
    let has_objects = !objects_of.objs.is_empty() || !objects_of.shed_objs.is_empty();
    let has_queries = !queries_of.queries.is_empty() || !queries_of.groups.is_empty();
    if !has_objects || !has_queries {
        return;
    }

    // Exact queries that can reach the object cluster at all.
    let mut active: Vec<usize> = Vec::with_capacity(queries_of.queries.len());
    for (qi, q) in queries_of.queries.iter().enumerate() {
        if member_filter {
            counters.prefilter_tests += 1;
            let reach = Circle::new(
                objects_of.region.center,
                objects_of.region.radius + q.bounding_radius,
            );
            if !reach.contains(&q.pos) {
                continue;
            }
        }
        active.push(qi);
    }

    // 1. Exact objects × exact queries.
    if !active.is_empty() {
        let query_reach = Circle::new(queries_of.region.center, queries_of.reach);
        for &(oid, p) in &objects_of.objs {
            if member_filter {
                counters.prefilter_tests += 1;
                if !query_reach.contains(&p) {
                    continue;
                }
            }
            for &qi in &active {
                let q = &queries_of.queries[qi];
                counters.comparisons += 1;
                if q.region.contains(&p) {
                    out.push(QueryMatch::new(q.qid, oid));
                }
            }
        }
    }

    // 2. Shed objects (all at the centroid) × exact queries.
    if !objects_of.shed_objs.is_empty() {
        for &qi in &active {
            let q = &queries_of.queries[qi];
            counters.comparisons += 1;
            if q.region.contains(&objects_of.centroid) {
                for &oid in &objects_of.shed_objs {
                    out.push(QueryMatch::new(q.qid, oid));
                }
            }
        }
    }

    // 3. Shed query groups (regions centred on the query cluster's
    //    centroid).
    for group in &queries_of.groups {
        for &(oid, p) in &objects_of.objs {
            counters.comparisons += 1;
            if group.region.contains(&p) {
                for &qid in &group.qids {
                    out.push(QueryMatch::new(qid, oid));
                }
            }
        }
        if !objects_of.shed_objs.is_empty() {
            counters.comparisons += 1;
            if group.region.contains(&objects_of.centroid) {
                for &qid in &group.qids {
                    for &oid in &objects_of.shed_objs {
                        out.push(QueryMatch::new(qid, oid));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScubaOperator;
    use scuba_motion::{ObjectAttrs, ObjectId, QueryAttrs, QueryId};

    const CN: Point = Point {
        x: 1000.0,
        y: 500.0,
    };

    fn obj(id: u64, x: f64, y: f64) -> LocationUpdate {
        obj_at(id, x, y, 0)
    }

    fn obj_at(id: u64, x: f64, y: f64, t: Time) -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            t,
            30.0,
            CN,
            ObjectAttrs::default(),
        )
    }

    fn qry(id: u64, x: f64, y: f64, side: f64) -> LocationUpdate {
        LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            0,
            30.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(side),
            },
        )
    }

    fn area() -> Rect {
        Rect::square(1000.0)
    }

    #[test]
    fn one_shard_matches_single_store_engine() {
        let params = ScubaParams::default();
        let mut single = ScubaOperator::new(params, area());
        let mut sharded = ShardedScubaOperator::new(params.with_shards(1), area());
        assert_eq!(sharded.shard_count(), 1);
        for round in 0..4u64 {
            let batch: Vec<LocationUpdate> = (0..40u64)
                .map(|i| {
                    let x = 50.0 + ((i * 37 + round * 11) % 900) as f64;
                    let y = 50.0 + ((i * 61) % 900) as f64;
                    if i % 2 == 0 {
                        obj(i, x, y)
                    } else {
                        qry(i, x, y, 40.0)
                    }
                })
                .collect();
            single.process_batch(&batch);
            sharded.process_batch(&batch);
            let a = single.evaluate(round * 2 + 2);
            let b = sharded.evaluate(round * 2 + 2);
            assert_eq!(a.results, b.results, "round {round}");
            assert_eq!(a.comparisons, b.comparisons, "round {round}");
        }
    }

    #[test]
    fn boundary_straddling_pair_matches_across_stripes() {
        // 4 stripes over a 1000-unit square: borders at x = 250/500/750.
        // An object just left of x=500 and a query just right of it land on
        // different shards; only the ghost exchange can join them.
        let params = ScubaParams::default().with_shards(4);
        let mut sharded = ShardedScubaOperator::new(params, area());
        sharded.process_update(&obj(1, 495.0, 500.0));
        sharded.process_update(&qry(1, 505.0, 500.0, 40.0));
        assert_eq!(sharded.shard_of(&Point::new(495.0, 500.0)), 1);
        assert_eq!(sharded.shard_of(&Point::new(505.0, 500.0)), 2);
        let report = sharded.evaluate(2);
        assert_eq!(
            report.results,
            vec![QueryMatch::new(QueryId(1), ObjectId(1))]
        );
        assert!(sharded.ghost_refreshes() > 0, "exchange actually ran");
        let row = report.phases.get(STAGE_SHARD_EXCHANGE).expect("stage row");
        assert!(row.items_in > 0, "a ghost was received");
        assert!(row.tests > 0, "cross-join comparisons happened");
    }

    #[test]
    fn migration_hands_entity_to_the_new_owner() {
        let params = ScubaParams::default().with_shards(2);
        let mut sharded = ShardedScubaOperator::new(params, area());
        sharded.process_update(&obj_at(7, 100.0, 500.0, 0));
        sharded.process_update(&obj_at(7, 900.0, 500.0, 1));
        // Exactly one engine may know the entity, and it is the new owner.
        let holders: Vec<usize> = sharded
            .engines()
            .enumerate()
            .filter(|(_, e)| e.cluster_count() > 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(holders, vec![1]);
        let report = sharded.evaluate(2);
        let route = report.phases.get(STAGE_SHARD_ROUTE).expect("route row");
        assert_eq!(route.items_in, 2);
        assert_eq!(route.tests, 1, "one stripe migration");
        for engine in sharded.engines() {
            engine.check_invariants();
        }
    }

    #[test]
    fn stripe_capture_restore_preserves_results() {
        let params = ScubaParams::default().with_shards(4);
        let mut original = ShardedScubaOperator::new(params, area());
        for i in 0..60u64 {
            let x = 30.0 + (i * 37 % 940) as f64;
            let y = 30.0 + (i * 61 % 940) as f64;
            let u = if i % 2 == 0 {
                obj(i, x, y)
            } else {
                qry(i, x, y, 50.0)
            };
            original.process_update(&u);
        }
        let stripes = original.capture_stripes();
        assert_eq!(stripes.len(), original.shard_count());
        let mut restored = ShardedScubaOperator::from_stripes(&stripes).expect("restores");
        assert_eq!(restored.shard_count(), original.shard_count());

        // Continue both with the same stream; results must stay identical
        // (the restored side starts with cold caches — counters may
        // differ, answers may not).
        for round in 1..=3u64 {
            let batch: Vec<LocationUpdate> = (0..60u64)
                .map(|i| {
                    let x = 30.0 + ((i * 37 + round * 13) % 940) as f64;
                    let y = 30.0 + ((i * 61 + round * 7) % 940) as f64;
                    obj_at(i * 2, x, y, round)
                })
                .collect();
            original.process_batch(&batch);
            restored.process_batch(&batch);
            let a = original.evaluate(round * 2);
            let b = restored.evaluate(round * 2);
            assert_eq!(a.results, b.results, "round {round}");
        }
        // Capturing the restored operator reproduces the evolved state.
        assert_eq!(original.capture_stripes(), restored.capture_stripes());
    }

    #[test]
    fn from_stripes_rejects_wrong_stripe_count() {
        let params = ScubaParams::default().with_shards(2);
        let op = ShardedScubaOperator::new(params, area());
        let mut stripes = op.capture_stripes();
        stripes.pop();
        assert!(matches!(
            ShardedScubaOperator::from_stripes(&stripes),
            Err(SnapshotError::ShardMismatch {
                found: 1,
                expected: 2
            })
        ));
        assert!(matches!(
            ShardedScubaOperator::from_stripes(&[]),
            Err(SnapshotError::ShardMismatch { .. })
        ));
    }

    #[test]
    fn injected_panic_surfaces_as_typed_failure() {
        use scuba_stream::{PanicInjector, PanicPlan};
        let params = ScubaParams::default().with_shards(4);
        let injector = Arc::new(PanicInjector::new(PanicPlan {
            seed: 3,
            panic_prob: 1.0,
            rearm: false,
        }));
        let mut sharded =
            ShardedScubaOperator::new(params, area()).with_panic_injector(Arc::clone(&injector));
        for i in 0..40u64 {
            let x = 30.0 + (i * 37 % 940) as f64;
            sharded.process_update(&obj(i, x, 500.0));
        }
        let failure = sharded.try_evaluate(2).expect_err("all workers panic");
        assert_eq!(failure.now, 2);
        assert!(failure.message.contains("injected worker panic"));
        assert!(injector.fired() > 0);
        // Transient sites: the retry fires nothing new, and on restored
        // state it would succeed — here the un-restored retry still runs
        // to completion because panics were one-shot.
        assert!(sharded.try_evaluate(2).is_ok());
    }

    #[test]
    fn unsupervised_evaluate_reports_worker_failure_as_fault() {
        use scuba_stream::{PanicInjector, PanicPlan};
        let params = ScubaParams::default().with_shards(2);
        let injector = Arc::new(PanicInjector::new(PanicPlan {
            seed: 7,
            panic_prob: 1.0,
            rearm: true,
        }));
        let mut sharded = ShardedScubaOperator::new(params, area()).with_panic_injector(injector);
        sharded.process_update(&obj(1, 100.0, 500.0));
        assert_eq!(sharded.fault(), None);
        let report = sharded.evaluate(2);
        assert!(
            report.results.is_empty(),
            "quarantined epoch yields nothing"
        );
        let fault = sharded.fault().expect("failure recorded");
        assert!(fault.contains("panicked at t=2"), "got: {fault}");
    }

    #[test]
    fn control_lifecycle_registers_and_deregisters_across_stripes() {
        let params = ScubaParams::default().with_shards(2);
        let mut sharded = ShardedScubaOperator::new(params, area());
        sharded.apply_control(&[ControlOp::Register(qry(9, 204.0, 500.0, 40.0))], 1);
        sharded.process_update(&obj(1, 200.0, 500.0));
        let g = sharded.control_gauges();
        assert_eq!(g.active_queries, 1);
        assert_eq!(g.registered_total, 1);
        let report = sharded.evaluate(2);
        assert_eq!(
            report.results,
            vec![QueryMatch::new(QueryId(9), ObjectId(1))]
        );

        sharded.apply_control(&[ControlOp::Deregister(QueryId(9))], 3);
        let g = sharded.control_gauges();
        assert_eq!(g.active_queries, 0);
        assert_eq!(g.deregistered_total, 1);
        assert_eq!(g.unknown_total, 0, "a known deregister is not unknown");
        let report = sharded.evaluate(4);
        assert!(report.results.is_empty(), "deregistered query answers nothing");
        for engine in sharded.engines() {
            engine.check_invariants();
        }
    }

    #[test]
    fn deregister_follows_a_migrated_query_to_its_new_owner() {
        let params = ScubaParams::default().with_shards(2);
        let mut sharded = ShardedScubaOperator::new(params, area());
        sharded.process_update(&qry(5, 100.0, 500.0, 40.0));
        assert_eq!(
            sharded.registry().get(QueryId(5)).map(|r| r.owner),
            Some(Some(0)),
            "data-plane query update registers implicitly on its stripe"
        );
        sharded.process_update(&qry(5, 900.0, 500.0, 40.0));
        assert_eq!(
            sharded.registry().get(QueryId(5)).map(|r| r.owner),
            Some(Some(1)),
            "owner follows the stripe migration"
        );
        sharded.apply_control(&[ControlOp::Deregister(QueryId(5))], 1);
        assert!(sharded.registry().is_empty());
        assert_eq!(sharded.clusters_live(), Some(0), "last member dissolves");
        assert_eq!(sharded.control_gauges().unknown_total, 0);
        for engine in sharded.engines() {
            engine.check_invariants();
        }
    }

    #[test]
    fn unknown_deregister_is_counted_not_dropped() {
        let params = ScubaParams::default().with_shards(2);
        let mut sharded = ShardedScubaOperator::new(params, area());
        sharded.apply_control(&[ControlOp::Deregister(QueryId(77))], 1);
        let g = sharded.control_gauges();
        assert_eq!(g.unknown_total, 1);
        assert_eq!(g.deregistered_total, 0);
        // A register carrying a non-query update is malformed: counted too.
        sharded.apply_control(&[ControlOp::Register(obj(3, 100.0, 100.0))], 1);
        assert_eq!(sharded.control_gauges().unknown_total, 2);
    }

    #[test]
    fn shard_count_clamps_to_grid_columns() {
        let params = ScubaParams::default().with_grid_cells(4).with_shards(64);
        let sharded = ShardedScubaOperator::new(params, area());
        assert_eq!(sharded.shard_count(), 4);
    }

    #[test]
    fn merged_report_carries_shard_stages() {
        let params = ScubaParams::default().with_shards(2);
        let mut sharded = ShardedScubaOperator::new(params, area());
        sharded.process_update(&obj(1, 200.0, 500.0));
        sharded.process_update(&qry(2, 204.0, 500.0, 20.0));
        sharded.process_update(&obj(3, 800.0, 500.0));
        let report = sharded.evaluate(2);
        assert_eq!(report.results.len(), 1);
        for stage in [STAGE_SHARD_ROUTE, STAGE_SHARD_EXCHANGE, STAGE_SHARD_MERGE] {
            assert!(report.phases.get(stage).is_some(), "missing {stage}");
        }
        assert!(report.phases.get(crate::join::STAGE_JOIN_WITHIN).is_some());
        assert_eq!(sharded.clusters_live(), Some(2));
        assert!(sharded.memory_bytes() > 0);
        assert_eq!(sharded.name(), "SCUBA[shards=2]");
    }
}
