//! Batched filter-then-refine join kernels over the SoA cluster columns.
//!
//! The join-between stage (Algorithm 2) used to test candidate pairs one
//! at a time: unpack a key, branch on the joinable-kind check, rebuild two
//! [`Circle`](scuba_spatial::Circle)s per direction and short-circuit the
//! two overlap tests. This module restructures that hot loop from
//! pair-at-a-time to **batch-at-a-time**:
//!
//! 1. **Gather** — candidate pairs stream through a cache-sized
//!    [`PairTile`]. The cheap scalar prologue (same-slot handling, the
//!    joinable-kind check on the count columns) runs during the gather;
//!    surviving cross pairs deposit three derived `f64` lanes plus their
//!    packed key — the centroid delta `(dx, dy)` and the squared overlap
//!    threshold `tsq = max(t1, t2)²` with `t1 = max(radius_l,0) +
//!    max(eff_r,0)`, `t2 = max(radius_r,0) + max(eff_l,0)` — read through
//!    the store's unchecked column getters.
//! 2. **Filter** — once the tile fills (or the key stream ends), the
//!    overlap pre-filter runs as a wide kernel over the tile's fixed-width
//!    lane arrays: [`LANES`]-wide chunks with a branchless body
//!    (`mask = dx·dx + dy·dy ≤ tsq`) that the compiler autovectorizes.
//! 3. **Emit** — set mask lanes push their unpacked pair onto the survivor
//!    list in tile order, which is key order — exactly the order the
//!    scalar loop produces.
//!
//! ## Why results are bit-identical
//!
//! The scalar decision for a cross pair is
//! `Circle::new(l, r_l).overlaps(Circle::new(r, e_r)) ||
//!  Circle::new(r, r_r).overlaps(Circle::new(l, e_l))`, which expands to
//! `d² ≤ (max(r_l,0)+max(e_r,0))²` or-else `d'² ≤ (max(r_r,0)+max(e_l,0))²`
//! where `d²` and `d'²` are the same `dx·dx + dy·dy` evaluated with
//! opposite-sign deltas — bitwise equal under IEEE 754 (`(-a)·(-a) ≡ a·a`).
//! Both thresholds `t1`, `t2` are non-negative and never NaN (`f64::max`
//! returns the non-NaN operand, so the [`Circle::new`] clamps yield
//! numbers, and sums of non-negative numbers stay numbers), so squaring is
//! monotone over them and
//! `d² ≤ t1² || d² ≤ t2²  ⇔  d² ≤ max(t1, t2)²` — including a NaN `d²`,
//! which fails every comparison on both sides. The gather therefore folds
//! the two directions into the single `tsq = max(t1, t2)²` lane with the
//! identical operations (`f64::max` clamps, add, `f64::max`, multiply) and
//! the wide compare agrees with the scalar short-circuit `||` for every
//! input. Pairs failing the kind check never reach the tile and never
//! touch a counter, exactly like the scalar loop. Same-slot pairs ride the
//! tile as sentinel lanes whose geometry forces the right verdict (never
//! counted as tests), so emission — a branchless compaction over the
//! mask — keeps the survivor list in key order, matching the scalar
//! emission order element for element.
//!
//! The scalar path ([`KernelKind::Scalar`]) *is* the previous code, kept
//! verbatim as both the fallback and the reference the identity tests and
//! the `simd` bench compare against. Building without the `simd` cargo
//! feature collapses [`KernelKind::Simd`] to the scalar path at runtime
//! ([`KernelKind::effective`]).
//!
//! [`Circle::new`]: scuba_spatial::Circle::new

use std::str::FromStr;

use serde::{Deserialize, Serialize};

use scuba_spatial::{Circle, Point};

use crate::store::{ClusterSlot, StoreColumns};

/// Lane width of the wide kernels: 8 `f64`s, two cache lines — wide enough
/// to fill 2/4/8-lane vector units after autovectorization, small enough
/// that the masked tail stays cheap.
pub const LANES: usize = 8;

/// Candidate pairs gathered per [`PairTile`] before the wide filter runs.
/// Three `f64` lanes plus keys and masks ≈ 16.5 KiB — sized to sit in L1
/// while the filter sweeps it.
pub const TILE_PAIRS: usize = 512;

/// Which join-kernel implementation the evaluate pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "lowercase")]
pub enum KernelKind {
    /// The pair-at-a-time loop (the previous code path, and the reference
    /// the wide kernel is asserted against).
    #[default]
    Scalar,
    /// The tiled, lane-parallel filter-then-refine kernel. Requires the
    /// `simd` cargo feature (on by default); without it, requests for
    /// this kind run the scalar path ([`KernelKind::effective`]).
    Simd,
}

impl KernelKind {
    /// The kind that will actually run: [`KernelKind::Simd`] collapses to
    /// [`KernelKind::Scalar`] when the crate was built without the `simd`
    /// feature, so a `--kernel simd` request degrades gracefully instead
    /// of failing.
    pub fn effective(self) -> KernelKind {
        #[cfg(feature = "simd")]
        {
            self
        }
        #[cfg(not(feature = "simd"))]
        {
            let _ = self;
            KernelKind::Scalar
        }
    }
}

impl FromStr for KernelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(KernelKind::Scalar),
            "simd" => Ok(KernelKind::Simd),
            other => Err(format!(
                "unknown kernel kind '{other}' (expected 'scalar' or 'simd')"
            )),
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelKind::Scalar => f.write_str("scalar"),
            KernelKind::Simd => f.write_str("simd"),
        }
    }
}

/// Packs an unordered slot pair into one sortable key (min slot in the
/// high half, so sorted keys group by the smaller slot first).
#[inline]
pub fn pack_pair(a: ClusterSlot, b: ClusterSlot) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    ((lo as u64) << 32) | hi as u64
}

/// Inverse of [`pack_pair`].
#[inline]
pub fn unpack_pair(key: u64) -> (ClusterSlot, ClusterSlot) {
    (ClusterSlot((key >> 32) as u32), ClusterSlot(key as u32))
}

/// Work and selectivity counters of one join-between pre-filter pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefilterStats {
    /// Cluster-pair overlap tests performed (same-slot pairs and pairs
    /// failing the joinable-kind check are not tested, matching the
    /// scalar accounting).
    pub tests: u64,
    /// Pairs rejected by the overlap test.
    pub pruned: u64,
    /// Pairs surviving to join-within.
    pub joined: u64,
    /// Lane slots the wide kernel processed, tail padding included
    /// (zero on the scalar path).
    pub lane_slots: u64,
    /// Lane slots that carried a live pair; `lane_slots - lanes_used` is
    /// padding waste (zero on the scalar path).
    pub lanes_used: u64,
}

/// Cache-sized gather tile for the wide pre-filter: parallel lane arrays
/// holding up to [`TILE_PAIRS`] candidate pairs' derived geometry, plus
/// the packed keys for survivor emission. The buffers are allocated once
/// at [`TILE_PAIRS`] and written by index behind a length counter — no
/// per-pair capacity checks, no reallocation ever. Owned by the join
/// scratch and reused every round.
#[derive(Debug)]
pub struct PairTile {
    /// Live pairs currently gathered (`≤ TILE_PAIRS`).
    len: usize,
    /// Same-slot sentinel lanes among `len` (see [`PairTile::push_special`]).
    specials: usize,
    /// Sentinel lanes whose pair emits (mixed same-slot clusters).
    special_hits: usize,
    /// The gathered pairs' packed keys ([`pack_pair`] layout), unpacked
    /// again at emission.
    keys: Vec<u64>,
    /// Centroid delta lanes.
    dx: Vec<f64>,
    dy: Vec<f64>,
    /// Squared overlap threshold `max(t1, t2)²` per lane (see the module
    /// docs for why one fused lane decides both overlap directions).
    tsq: Vec<f64>,
    /// Filter verdict per lane (1 = survives).
    mask: Vec<u8>,
    /// Per-slot gather table rebuilt each pass ([`PairTile::pack`]): the
    /// pair-independent column data folded into one cache line per slot.
    packed: Vec<SlotGeom>,
    /// Per-slot kind bits (bit 0 = has objects, bit 1 = has queries),
    /// rebuilt alongside `packed`.
    kinds: Vec<u8>,
}

/// One slot's pair-independent geometry — centroid and *clamped* radii
/// `(x, y, max(radius, 0), max(eff_radius, 0))` — packed and 32-byte
/// aligned so a random slot gather touches exactly one cache line instead
/// of four column arrays.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C, align(32))]
struct SlotGeom {
    x: f64,
    y: f64,
    /// `radius.max(0.0)` — the `Circle::new` clamp, pre-applied.
    rc: f64,
    /// `eff_radius.max(0.0)` — likewise.
    ec: f64,
}

impl Default for PairTile {
    fn default() -> Self {
        PairTile::new()
    }
}

impl PairTile {
    /// An empty tile with all lane buffers at their fixed [`TILE_PAIRS`]
    /// size.
    pub fn new() -> Self {
        PairTile {
            len: 0,
            specials: 0,
            special_hits: 0,
            keys: vec![0; TILE_PAIRS],
            dx: vec![0.0; TILE_PAIRS],
            dy: vec![0.0; TILE_PAIRS],
            tsq: vec![0.0; TILE_PAIRS],
            mask: vec![0; TILE_PAIRS],
            packed: Vec::new(),
            kinds: Vec::new(),
        }
    }

    /// Rebuilds the per-slot gather table from the live columns: one pass
    /// of checked, sequential reads per slot, amortised over every pair
    /// that slot appears in. The clamps here are the only place the wide
    /// path applies them (see the module docs).
    fn pack(&mut self, cols: &StoreColumns<'_>) {
        let len = cols.len();
        self.packed.clear();
        self.kinds.clear();
        self.packed.reserve(len);
        self.kinds.reserve(len);
        for i in 0..len {
            self.packed.push(SlotGeom {
                x: cols.cx[i],
                y: cols.cy[i],
                rc: cols.radius[i].max(0.0),
                ec: cols.eff_radius[i].max(0.0),
            });
            self.kinds.push(
                u8::from(cols.object_count[i] > 0) | (u8::from(cols.query_count[i] > 0) << 1),
            );
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    /// Bytes of heap currently reserved by the tile's buffers.
    pub fn capacity_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u64>()
            + (self.dx.capacity() + self.dy.capacity() + self.tsq.capacity())
                * std::mem::size_of::<f64>()
            + self.mask.capacity()
            + self.packed.capacity() * std::mem::size_of::<SlotGeom>()
            + self.kinds.capacity()
    }

    /// Deposits one cross pair's lanes. The caller keeps `len <
    /// TILE_PAIRS` by flushing full tiles, so the index is always in
    /// bounds of the fixed-size buffers.
    #[allow(unsafe_code)]
    #[inline]
    fn push(&mut self, key: u64, dx: f64, dy: f64, tsq: f64) {
        let i = self.len;
        debug_assert!(i < TILE_PAIRS, "tile overfilled: flush before push");
        // SAFETY: the buffers are fixed at TILE_PAIRS elements and the
        // gather loop flushes whenever len reaches TILE_PAIRS, so i <
        // TILE_PAIRS here (debug-asserted above).
        unsafe {
            *self.keys.get_unchecked_mut(i) = key;
            *self.dx.get_unchecked_mut(i) = dx;
            *self.dy.get_unchecked_mut(i) = dy;
            *self.tsq.get_unchecked_mut(i) = tsq;
        }
        self.len = i + 1;
    }

    /// Gathers a same-slot pair as a **sentinel lane** so the tile never
    /// has to flush mid-stream just to keep emission order: the lane's
    /// geometry forces the filter verdict (`d² = 0 ≤ 0` when the pair
    /// emits, `0 ≤ NaN` — false — when it doesn't), so branchless
    /// compaction emits it exactly where the scalar loop would, while the
    /// counters treat it as the scalar loop does: never a test, never
    /// pruned, never joined.
    #[inline]
    fn push_special(&mut self, key: u64, emit: bool) {
        self.specials += 1;
        self.special_hits += usize::from(emit);
        self.push(key, 0.0, 0.0, if emit { 0.0 } else { f64::NAN });
    }

    fn clear(&mut self) {
        self.len = 0;
        self.specials = 0;
        self.special_hits = 0;
    }

    /// Runs the wide overlap filter over the gathered lanes, emits the
    /// survivors onto `tasks` in gather (= key) order, updates the
    /// counters and resets the tile.
    ///
    /// Emission is **branchless compaction**: every pair is written to the
    /// (pre-grown) tail of `tasks` unconditionally and the write cursor
    /// advances by its mask bit, so the filter verdict never feeds a
    /// branch — on mixed workloads the scalar loop's data-dependent
    /// mispredictions are what this kernel exists to remove.
    #[allow(unsafe_code)]
    fn flush(&mut self, stats: &mut PrefilterStats, tasks: &mut Vec<(ClusterSlot, ClusterSlot)>) {
        let n = self.len;
        if n == 0 {
            return;
        }
        overlap_mask(
            &self.dx[..n],
            &self.dy[..n],
            &self.tsq[..n],
            &mut self.mask[..n],
        );
        let real = (n - self.specials) as u64;
        stats.tests += real;
        stats.lanes_used += real;
        stats.lane_slots += (n.div_ceil(LANES) * LANES) as u64;
        let base = tasks.len();
        tasks.reserve(n);
        let spare = tasks.spare_capacity_mut();
        let mut w = 0usize;
        for i in 0..n {
            // SAFETY: i < n = len ≤ TILE_PAIRS bounds the lane reads; the
            // write cursor advances at most once per lane, so w < n ≤
            // spare.len() throughout. Every slot below the final cursor
            // was initialised by a write before the cursor left it, which
            // is what the set_len below exposes.
            unsafe {
                spare
                    .get_unchecked_mut(w)
                    .write(unpack_pair(*self.keys.get_unchecked(i)));
                w += usize::from(*self.mask.get_unchecked(i) != 0);
            }
        }
        // SAFETY: slots base..base + w hold initialised pairs (see above).
        unsafe { tasks.set_len(base + w) };
        let joined = (w - self.special_hits) as u64;
        stats.joined += joined;
        stats.pruned += real - joined;
        self.clear();
    }
}

/// The wide circle/circle overlap verdict: `mask[i] = dx·dx + dy·dy ≤
/// tsq`, computed in [`LANES`]-wide branchless chunks (the remainder runs
/// the same expression scalar). All slices are the same length.
fn overlap_mask(dx: &[f64], dy: &[f64], tsq: &[f64], mask: &mut [u8]) {
    let n = dx.len();
    debug_assert!(dy.len() == n && tsq.len() == n && mask.len() == n);
    let chunks = n / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        // Fixed-width sub-slices: the bounds are compile-time constants
        // inside the lane loop, so the body compiles branch-free and
        // vectorizes under the baseline target features.
        let dxc = &dx[base..base + LANES];
        let dyc = &dy[base..base + LANES];
        let tc = &tsq[base..base + LANES];
        let mc = &mut mask[base..base + LANES];
        for k in 0..LANES {
            mc[k] = (dxc[k] * dxc[k] + dyc[k] * dyc[k] <= tc[k]) as u8;
        }
    }
    for k in chunks * LANES..n {
        mask[k] = (dx[k] * dx[k] + dy[k] * dy[k] <= tsq[k]) as u8;
    }
}

/// The join-between pre-filter (Algorithm 2) over sorted, deduplicated
/// pair keys, dispatching on the (effective) kernel kind. Clears and
/// fills `tasks` with the surviving pairs in key order — both kernels
/// produce byte-identical `tasks` and counters; see the module docs.
pub fn join_between_filter(
    cols: &StoreColumns<'_>,
    keys: &[u64],
    kernel: KernelKind,
    tile: &mut PairTile,
    tasks: &mut Vec<(ClusterSlot, ClusterSlot)>,
) -> PrefilterStats {
    tasks.clear();
    match kernel.effective() {
        KernelKind::Scalar => scalar_filter(cols, keys, tasks),
        KernelKind::Simd => wide_filter(cols, keys, tile, tasks),
    }
}

/// The pair-at-a-time reference path — the previous join-between loop,
/// verbatim.
fn scalar_filter(
    cols: &StoreColumns<'_>,
    keys: &[u64],
    tasks: &mut Vec<(ClusterSlot, ClusterSlot)>,
) -> PrefilterStats {
    let mut stats = PrefilterStats::default();
    for &key in keys {
        let (left, right) = unpack_pair(key);
        let (li, ri) = (left.index(), right.index());

        if left == right {
            // Same-cluster join-within only for mixed clusters.
            if cols.object_count[li] > 0 && cols.query_count[li] > 0 {
                tasks.push((left, right));
            }
            continue;
        }

        // Only cross-kind pairs can produce results (Algorithm 1,
        // step 18).
        let joinable = (cols.object_count[li] > 0 && cols.query_count[ri] > 0)
            || (cols.query_count[li] > 0 && cols.object_count[ri] > 0);
        if !joinable {
            continue;
        }

        // The overlap pre-filter, with the query side inflated by its
        // widest range so pruned pairs really cannot produce results
        // (see MovingCluster::effective_region). The circles are
        // rebuilt from the SoA columns — bit-identical to the cluster
        // methods, since the columns re-sync on every mutation.
        stats.tests += 1;
        let l_center = Point::new(cols.cx[li], cols.cy[li]);
        let r_center = Point::new(cols.cx[ri], cols.cy[ri]);
        let can_match = Circle::new(l_center, cols.radius[li])
            .overlaps(&Circle::new(r_center, cols.eff_radius[ri]))
            || Circle::new(r_center, cols.radius[ri])
                .overlaps(&Circle::new(l_center, cols.eff_radius[li]));
        if !can_match {
            stats.pruned += 1;
            continue;
        }
        stats.joined += 1;
        tasks.push((left, right));
    }
    stats
}

/// Dense streams repack the columns first ([`PairTile::pack`]): the pass
/// costs one sequential sweep over every slot, so it pays for itself once
/// the stream touches each slot this many times on average.
const PACK_KEYS_PER_SLOT: usize = 4;

/// The tiled wide path: scalar gather of derived lanes, lane-parallel
/// filter per tile.
///
/// The sorted key stream groups all pairs sharing their smaller slot into
/// one run (`pack_pair` puts the min slot in the high half), so the gather
/// hoists the left cluster's kind bits, centroid and clamped radii out of
/// the run — roughly halving the random loads per pair compared to the
/// scalar loop, on top of the branchless filter/emission. Dense streams
/// (≥ [`PACK_KEYS_PER_SLOT`] keys per slot) additionally fold the six
/// live column arrays into the tile's packed per-slot gather table, so
/// each right-side gather touches one cache line instead of six; sparse
/// streams skip the repack and gather straight from the columns through
/// the store's unchecked getters. Both gathers compute the identical
/// lanes — the dispatch is invisible to results and counters.
fn wide_filter(
    cols: &StoreColumns<'_>,
    keys: &[u64],
    tile: &mut PairTile,
    tasks: &mut Vec<(ClusterSlot, ClusterSlot)>,
) -> PrefilterStats {
    let mut stats = PrefilterStats::default();
    tile.clear();
    if keys.len() >= cols.len().saturating_mul(PACK_KEYS_PER_SLOT) {
        wide_gather_packed(cols, keys, tile, &mut stats, tasks);
    } else {
        wide_gather_direct(cols, keys, tile, &mut stats, tasks);
    }
    tile.flush(&mut stats, tasks);
    stats
}

/// Dense-stream gather via the packed per-slot table.
#[allow(unsafe_code)]
fn wide_gather_packed(
    cols: &StoreColumns<'_>,
    keys: &[u64],
    tile: &mut PairTile,
    stats: &mut PrefilterStats,
    tasks: &mut Vec<(ClusterSlot, ClusterSlot)>,
) {
    tile.pack(cols);
    let len = tile.packed.len();
    let n_keys = keys.len();
    let mut i = 0usize;
    while i < n_keys {
        // One run: every key whose high half is `left_u`.
        let left_u = (keys[i] >> 32) as u32;
        let li = left_u as usize;
        // Safety contract of the unchecked gathers below: both slot
        // indexes are checked against the packed table before any
        // unchecked access. (Keys come from grid registrations, which
        // only hold slots the store handed out, so these never fire in
        // practice — and they predict perfectly, unlike the per-column
        // bounds checks they replace.)
        assert!(
            li < len,
            "pair key references slot {li} beyond the store columns ({len})"
        );
        // SAFETY: li < len, asserted above.
        let l = unsafe { *tile.packed.get_unchecked(li) };
        let lk = unsafe { *tile.kinds.get_unchecked(li) };
        while i < n_keys && (keys[i] >> 32) as u32 == left_u {
            let key = keys[i];
            let ri = key as u32 as usize;
            i += 1;
            if ri == li {
                // Same-slot join-within only for mixed clusters; rides the
                // tile as a sentinel lane to keep emission in key order.
                tile.push_special(key, lk == 0b11);
            } else {
                assert!(
                    ri < len,
                    "pair key references slot {ri} beyond the store columns ({len})"
                );
                // SAFETY: ri < len, asserted above.
                let rk = unsafe { *tile.kinds.get_unchecked(ri) };
                // Only cross-kind pairs can produce results (Algorithm 1,
                // step 18): left objects against right queries or the
                // other way around.
                if lk & (rk >> 1) & 0b01 == 0 && (lk >> 1) & rk & 0b01 == 0 {
                    continue;
                }
                // SAFETY: as above.
                let r = unsafe { *tile.packed.get_unchecked(ri) };
                let t = (l.rc + r.ec).max(r.rc + l.ec);
                tile.push(key, l.x - r.x, l.y - r.y, t * t);
            }
            if tile.len() == TILE_PAIRS {
                tile.flush(stats, tasks);
            }
        }
    }
}

/// Sparse-stream gather straight from the live columns: no repack pass,
/// at the price of touching up to six column arrays per right slot. The
/// deposited lanes are identical to [`wide_gather_packed`]'s — same
/// clamps, same fold, same order.
#[allow(unsafe_code)]
fn wide_gather_direct(
    cols: &StoreColumns<'_>,
    keys: &[u64],
    tile: &mut PairTile,
    stats: &mut PrefilterStats,
    tasks: &mut Vec<(ClusterSlot, ClusterSlot)>,
) {
    let len = cols.len();
    let n_keys = keys.len();
    let mut i = 0usize;
    while i < n_keys {
        // One run: every key whose high half is `left_u`.
        let left_u = (keys[i] >> 32) as u32;
        let li = left_u as usize;
        // Safety contract of the unchecked getters: both slot indexes are
        // checked against the columns before any unchecked access.
        assert!(
            li < len,
            "pair key references slot {li} beyond the store columns ({len})"
        );
        // SAFETY: li < len, asserted above.
        let (l_oc, l_qc) = unsafe { cols.counts_at_unchecked(li) };
        let (lx, ly, lr, le) = unsafe { cols.circle_at_unchecked(li) };
        let (l_has_obj, l_has_qry) = (l_oc > 0, l_qc > 0);
        // The `.max(0.0)` clamps replicate `Circle::new`; see the module
        // docs for the identity argument.
        let (lrc, lec) = (lr.max(0.0), le.max(0.0));
        while i < n_keys && (keys[i] >> 32) as u32 == left_u {
            let key = keys[i];
            let ri = key as u32 as usize;
            i += 1;
            if ri == li {
                tile.push_special(key, l_has_obj && l_has_qry);
            } else {
                assert!(
                    ri < len,
                    "pair key references slot {ri} beyond the store columns ({len})"
                );
                // SAFETY: ri < len, asserted above.
                let (r_oc, r_qc) = unsafe { cols.counts_at_unchecked(ri) };
                if !((l_has_obj && r_qc > 0) || (l_has_qry && r_oc > 0)) {
                    continue;
                }
                // SAFETY: as above.
                let (rx, ry, rr, re) = unsafe { cols.circle_at_unchecked(ri) };
                let t = (lrc + re.max(0.0)).max(rr.max(0.0) + lec);
                tile.push(key, lx - rx, ly - ry, t * t);
            }
            if tile.len() == TILE_PAIRS {
                tile.flush(stats, tasks);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterId;
    use crate::cluster::MovingCluster;
    use crate::store::ClusterStore;
    use scuba_motion::{LocationUpdate, ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec};

    fn store_with(clusters: Vec<MovingCluster>) -> ClusterStore {
        let mut s = ClusterStore::new();
        for c in clusters {
            s.insert(c);
        }
        s
    }

    fn obj_cluster(id: u64, x: f64, y: f64) -> MovingCluster {
        let u = LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            0,
            10.0,
            Point::new(1000.0, y),
            ObjectAttrs::default(),
        );
        MovingCluster::found(ClusterId(id), &u, false)
    }

    fn query_cluster(id: u64, x: f64, y: f64, side: f64) -> MovingCluster {
        let u = LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            0,
            10.0,
            Point::new(1000.0, y),
            QueryAttrs {
                spec: QuerySpec::square_range(side),
            },
        );
        MovingCluster::found(ClusterId(id), &u, false)
    }

    fn all_pair_keys(n: u32) -> Vec<u64> {
        let mut keys = Vec::new();
        for a in 0..n {
            for b in a..n {
                keys.push(pack_pair(ClusterSlot(a), ClusterSlot(b)));
            }
        }
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Both kernels must agree on tasks and every counter, for a store
    /// mixing overlapping, disjoint, same-slot and non-joinable pairs.
    #[test]
    fn wide_filter_matches_scalar_filter() {
        let mut clusters = Vec::new();
        for i in 0..40u64 {
            let x = 37.0 * i as f64 % 900.0;
            let y = 61.0 * i as f64 % 900.0;
            if i % 3 == 0 {
                clusters.push(query_cluster(i, x, y, 10.0 + (i % 7) as f64 * 30.0));
            } else {
                clusters.push(obj_cluster(i, x, y));
            }
        }
        let store = store_with(clusters);
        let cols = store.columns();
        let keys = all_pair_keys(store.len() as u32);

        let mut tile = PairTile::new();
        let mut scalar_tasks = Vec::new();
        let mut wide_tasks = Vec::new();
        let s = join_between_filter(
            &cols,
            &keys,
            KernelKind::Scalar,
            &mut tile,
            &mut scalar_tasks,
        );
        let w = join_between_filter(&cols, &keys, KernelKind::Simd, &mut tile, &mut wide_tasks);
        assert_eq!(
            scalar_tasks, wide_tasks,
            "survivor lists must match in order"
        );
        assert_eq!((s.tests, s.pruned, s.joined), (w.tests, w.pruned, w.joined));
        assert!(
            s.tests > 0 && s.joined > 0 && s.pruned > 0,
            "mixed outcomes"
        );
        if KernelKind::Simd.effective() == KernelKind::Simd {
            assert!(w.lanes_used == w.tests && w.lane_slots >= w.lanes_used);
        }
    }

    /// Degenerate geometry: zero-radius clusters and coincident centroids
    /// must take the inclusive (≤) branch identically on both kernels.
    #[test]
    fn zero_radius_and_coincident_centroids_agree() {
        let store = store_with(vec![
            obj_cluster(0, 100.0, 100.0),
            query_cluster(1, 100.0, 100.0, 0.0), // coincident, zero reach
            query_cluster(2, 100.0, 130.0, 0.0), // zero reach, 30 apart
            obj_cluster(3, 500.0, 500.0),
        ]);
        let cols = store.columns();
        let keys = all_pair_keys(4);
        let mut tile = PairTile::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let s = join_between_filter(&cols, &keys, KernelKind::Scalar, &mut tile, &mut a);
        let w = join_between_filter(&cols, &keys, KernelKind::Simd, &mut tile, &mut b);
        assert_eq!(a, b);
        assert_eq!((s.tests, s.pruned, s.joined), (w.tests, w.pruned, w.joined));
        // The coincident zero-radius pair survives (distance 0 ≤ 0)...
        assert!(a.contains(&(ClusterSlot(0), ClusterSlot(1))));
        // ...while the separated zero-reach pair is pruned.
        assert!(!a.contains(&(ClusterSlot(0), ClusterSlot(2))));
    }

    /// A pair engineered to sit exactly on the overlap boundary
    /// (d² == (radius + eff_radius)²): the inclusive comparison must admit
    /// it on both kernels.
    #[test]
    fn exact_boundary_pair_is_inclusive_on_both_kernels() {
        // Query with square range side 2s has bounding radius s·√2; choose
        // side so radius + eff land on an exactly representable boundary:
        // an object cluster (radius 0) at distance 8 from a query cluster
        // whose eff_radius is exactly 8 would be the boundary, but
        // eff_radius = side/2·√2 is irrational — instead place the pair at
        // the *computed* eff_radius distance so d equals it bit-for-bit.
        let q = query_cluster(1, 0.0, 0.0, 16.0);
        let eff = q.radius() + q.max_query_radius();
        let store = store_with(vec![obj_cluster(0, eff, 0.0), q]);
        let cols = store.columns();
        assert_eq!(cols.eff_radius[1], eff);
        let keys = vec![pack_pair(ClusterSlot(0), ClusterSlot(1))];
        let mut tile = PairTile::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        join_between_filter(&cols, &keys, KernelKind::Scalar, &mut tile, &mut a);
        join_between_filter(&cols, &keys, KernelKind::Simd, &mut tile, &mut b);
        assert_eq!(a, b);
        // d² = eff² exactly (axis-aligned, dy = 0), so ≤ admits the pair.
        assert_eq!(a, vec![(ClusterSlot(0), ClusterSlot(1))]);
    }

    /// Tiles flush mid-stream: survivor order must still be key order.
    #[test]
    fn multi_tile_streams_preserve_order() {
        // Enough pairs to span several tiles: one query cluster against
        // many object clusters at varying distances.
        let mut clusters = vec![query_cluster(0, 500.0, 500.0, 100.0)];
        for i in 1..60u64 {
            clusters.push(obj_cluster(i, 500.0 + (i as f64) * 13.0, 500.0));
        }
        let store = store_with(clusters);
        let cols = store.columns();
        let keys = all_pair_keys(store.len() as u32);
        assert!(keys.len() > TILE_PAIRS, "spans multiple tiles");
        let mut tile = PairTile::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let s = join_between_filter(&cols, &keys, KernelKind::Scalar, &mut tile, &mut a);
        let w = join_between_filter(&cols, &keys, KernelKind::Simd, &mut tile, &mut b);
        assert_eq!(a, b);
        assert_eq!((s.tests, s.pruned, s.joined), (w.tests, w.pruned, w.joined));
    }

    /// The two wide gathers (packed table vs direct columns) sit behind a
    /// density heuristic; both must deposit identical lanes. Drive each
    /// explicitly over the same mixed store and compare against scalar.
    #[test]
    fn packed_and_direct_gathers_agree() {
        let mut clusters = Vec::new();
        for i in 0..30u64 {
            let x = 41.0 * i as f64 % 700.0;
            let y = 83.0 * i as f64 % 700.0;
            if i % 4 == 0 {
                clusters.push(query_cluster(i, x, y, 15.0 + (i % 5) as f64 * 40.0));
            } else {
                clusters.push(obj_cluster(i, x, y));
            }
        }
        let store = store_with(clusters);
        let cols = store.columns();
        let keys = all_pair_keys(store.len() as u32);

        let mut tile = PairTile::new();
        let mut scalar_tasks = Vec::new();
        let scalar = scalar_filter(&cols, &keys, &mut scalar_tasks);
        for packed in [true, false] {
            let mut stats = PrefilterStats::default();
            let mut tasks = Vec::new();
            tile.clear();
            if packed {
                wide_gather_packed(&cols, &keys, &mut tile, &mut stats, &mut tasks);
            } else {
                wide_gather_direct(&cols, &keys, &mut tile, &mut stats, &mut tasks);
            }
            tile.flush(&mut stats, &mut tasks);
            assert_eq!(tasks, scalar_tasks, "packed={packed} survivor order");
            assert_eq!(
                (stats.tests, stats.pruned, stats.joined),
                (scalar.tests, scalar.pruned, scalar.joined),
                "packed={packed} counters"
            );
        }
    }

    #[test]
    fn kernel_kind_parses_and_displays() {
        assert_eq!("scalar".parse::<KernelKind>(), Ok(KernelKind::Scalar));
        assert_eq!("simd".parse::<KernelKind>(), Ok(KernelKind::Simd));
        assert!("avx".parse::<KernelKind>().is_err());
        assert_eq!(KernelKind::Scalar.to_string(), "scalar");
        assert_eq!(KernelKind::Simd.to_string(), "simd");
        assert_eq!(KernelKind::default(), KernelKind::Scalar);
        assert_eq!(KernelKind::Scalar.effective(), KernelKind::Scalar);
        #[cfg(feature = "simd")]
        assert_eq!(KernelKind::Simd.effective(), KernelKind::Simd);
        #[cfg(not(feature = "simd"))]
        assert_eq!(KernelKind::Simd.effective(), KernelKind::Scalar);
    }

    #[test]
    fn pair_keys_pack_and_unpack() {
        let a = ClusterSlot(7);
        let b = ClusterSlot(3);
        let key = pack_pair(a, b);
        assert_eq!(key, pack_pair(b, a), "keys are order-insensitive");
        assert_eq!(unpack_pair(key), (ClusterSlot(3), ClusterSlot(7)));
        let self_key = pack_pair(a, a);
        assert_eq!(unpack_pair(self_key), (a, a));
    }
}
