//! The Query-Indexing baseline (paper §7 related work, \[29\]).
//!
//! "Query Indexing indexes queries using an R-tree-like structure. At each
//! evaluation step, only those objects that have moved since the previous
//! evaluation step are evaluated against the Q-index."
//!
//! Faithful consequences of that design, which the benchmarks make visible:
//!
//! * objects that did not report since the last evaluation keep their
//!   previous matches (incremental evaluation — cheap when few move);
//! * the R-tree over query *regions* must be rebuilt whenever queries move
//!   — and in SCUBA's setting the queries are themselves moving entities
//!   reporting every time unit, so the rebuild happens every interval.
//!   This is precisely the weakness that motivated shared-execution
//!   approaches (and SCUBA) for *moving* queries.
//!
//! The operator is exact: over identical inputs it produces the same
//! results as [`crate::baseline::RegularGridOperator`] (tested).

use scuba_motion::{EntityAttrs, EntityRef, LocationUpdate, ObjectId, QueryId, QuerySpec};
use scuba_spatial::{FxHashMap, FxHashSet, Point, RTree, Rect, Time};
use scuba_stream::{
    ContinuousOperator, EvaluationReport, PhaseBreakdown, QueryMatch, StageStats, Stopwatch,
};

/// Stage name: conditional R-tree rebuild (maintenance bucket).
pub const STAGE_INDEX_REBUILD: &str = "index-rebuild";
/// Stage name: probing moved objects against the query index.
pub const STAGE_PROBE: &str = "probe";
/// Stage name: flattening + sorting the incremental match state.
pub const STAGE_RESULT_MERGE: &str = "result-merge";

/// The Q-index continuous-query operator.
#[derive(Debug, Default)]
pub struct QueryIndexOperator {
    /// Latest update per entity.
    latest: FxHashMap<EntityRef, LocationUpdate>,
    /// Objects that reported since the last evaluation.
    moved: FxHashSet<ObjectId>,
    /// Whether any query reported since the last evaluation (forces an
    /// index rebuild).
    queries_dirty: bool,
    /// R-tree over query regions, rebuilt when queries move.
    index: RTree<QueryId>,
    /// Current matches per object (incremental result state).
    matches: FxHashMap<ObjectId, Vec<QueryId>>,
    evaluations: u64,
}

impl QueryIndexOperator {
    /// Creates the operator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Number of tracked entities.
    pub fn entity_count(&self) -> usize {
        self.latest.len()
    }

    /// Estimated bytes of in-memory state.
    pub fn estimated_bytes(&self) -> usize {
        let latest = self.latest.capacity()
            * (std::mem::size_of::<EntityRef>() + std::mem::size_of::<LocationUpdate>() + 8);
        let matches: usize = self
            .matches
            .values()
            .map(|v| v.capacity() * std::mem::size_of::<QueryId>() + 32)
            .sum();
        latest + matches + self.index.estimated_bytes()
    }

    fn rebuild_index(&mut self) -> usize {
        let entries: Vec<(Rect, QueryId)> = self
            .latest
            .values()
            .filter_map(|u| match (u.entity, &u.attrs) {
                (EntityRef::Query(qid), EntityAttrs::Query(attrs)) => {
                    if let QuerySpec::Range { .. } = attrs.spec {
                        attrs.spec.region_at(u.loc).map(|r| (r, qid))
                    } else {
                        None
                    }
                }
                _ => None,
            })
            .collect();
        let n = entries.len();
        self.index = RTree::bulk_load(entries);
        n
    }

    fn object_position(&self, oid: ObjectId) -> Option<Point> {
        self.latest.get(&EntityRef::Object(oid)).map(|u| u.loc)
    }
}

impl ContinuousOperator for QueryIndexOperator {
    fn process_update(&mut self, update: &LocationUpdate) {
        match update.entity {
            EntityRef::Object(oid) => {
                self.moved.insert(oid);
            }
            EntityRef::Query(_) => {
                self.queries_dirty = true;
            }
        }
        self.latest.insert(update.entity, *update);
    }

    fn evaluate(&mut self, now: Time) -> EvaluationReport {
        self.evaluations += 1;
        let mut phases = PhaseBreakdown::new();

        // Index maintenance: rebuild only when queries moved. When *all*
        // queries move every interval (SCUBA's workload) this is a full
        // rebuild per evaluation; with static queries it costs nothing —
        // the trade-off the Q-index design banks on.
        let mut sw = Stopwatch::start();
        let rebuilt = self.queries_dirty;
        let mut indexed = 0u64;
        if rebuilt {
            indexed = self.rebuild_index() as u64;
            self.queries_dirty = false;
        }
        phases.push(
            StageStats::maintenance(STAGE_INDEX_REBUILD)
                .with_wall(sw.lap())
                .with_items(indexed, indexed),
        );

        // Probe only moved objects; unmoved objects keep prior matches —
        // unless queries moved, which invalidates everything.
        let mut comparisons = 0u64;
        let probe_set: Vec<ObjectId> = if rebuilt {
            self.latest
                .values()
                .filter_map(|u| u.entity.as_object())
                .collect()
        } else {
            self.moved.iter().copied().collect()
        };
        let probed = probe_set.len() as u64;
        for oid in probe_set {
            let Some(pos) = self.object_position(oid) else {
                continue;
            };
            let mut hits = Vec::new();
            let touched = self.index.for_each_containing(&pos, |_, qid| {
                hits.push(*qid);
            });
            comparisons += touched as u64;
            self.matches.insert(oid, hits);
        }
        self.moved.clear();
        phases.push(
            StageStats::join(STAGE_PROBE)
                .with_wall(sw.lap())
                .with_items(probed, probed)
                .with_tests(comparisons),
        );

        let mut results: Vec<QueryMatch> = self
            .matches
            .iter()
            .flat_map(|(oid, qids)| qids.iter().map(|qid| QueryMatch::new(*qid, *oid)))
            .collect();
        let raw = results.len() as u64;
        results.sort_unstable();
        phases.push(
            StageStats::join(STAGE_RESULT_MERGE)
                .with_wall(sw.lap())
                .with_items(raw, results.len() as u64),
        );

        EvaluationReport {
            now,
            results,
            phases,
            memory_bytes: self.estimated_bytes(),
            comparisons,
            prefilter_tests: 0,
        }
    }

    fn name(&self) -> &str {
        "Q-INDEX"
    }

    fn memory_bytes(&self) -> usize {
        self.estimated_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::RegularGridOperator;
    use scuba_motion::{ObjectAttrs, QueryAttrs};
    use scuba_spatial::Rect as Area;

    const CN: Point = Point {
        x: 1000.0,
        y: 500.0,
    };

    fn obj(id: u64, x: f64, y: f64) -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            0,
            30.0,
            CN,
            ObjectAttrs::default(),
        )
    }

    fn qry(id: u64, x: f64, y: f64, side: f64) -> LocationUpdate {
        LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            0,
            30.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(side),
            },
        )
    }

    #[test]
    fn finds_matches() {
        let mut op = QueryIndexOperator::new();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0));
        let report = op.evaluate(2);
        assert_eq!(
            report.results,
            vec![QueryMatch::new(QueryId(1), ObjectId(1))]
        );
        assert!(report.comparisons > 0);
        assert_eq!(op.evaluations(), 1);
    }

    #[test]
    fn matches_regular_on_random_workload() {
        let mut qindex = QueryIndexOperator::new();
        let mut regular = RegularGridOperator::new(20, Area::square(1000.0));
        for i in 0..150u64 {
            let u = obj(i, (i * 37 % 1000) as f64, (i * 61 % 1000) as f64);
            qindex.process_update(&u);
            regular.process_update(&u);
            let q = qry(i, (i * 53 % 1000) as f64, (i * 71 % 1000) as f64, 60.0);
            qindex.process_update(&q);
            regular.process_update(&q);
        }
        assert_eq!(qindex.evaluate(2).results, regular.evaluate(2).results);
    }

    #[test]
    fn unmoved_objects_keep_matches_when_queries_static() {
        let mut op = QueryIndexOperator::new();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0));
        let first = op.evaluate(2);
        assert_eq!(first.results.len(), 1);
        // No updates at all: the object keeps its match with zero probes.
        let second = op.evaluate(4);
        assert_eq!(second.results, first.results);
        assert_eq!(second.comparisons, 0, "nothing moved, nothing probed");
    }

    #[test]
    fn query_movement_forces_rebuild_and_full_reprobe() {
        let mut op = QueryIndexOperator::new();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0));
        op.evaluate(2);
        // The query moves away; the object does not report.
        op.process_update(&qry(1, 800.0, 800.0, 20.0));
        let report = op.evaluate(4);
        assert!(report.results.is_empty(), "stale match must be dropped");
        assert!(report.comparisons > 0, "rebuild reprobes all objects");
    }

    #[test]
    fn moved_object_is_reprobed() {
        let mut op = QueryIndexOperator::new();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0));
        op.evaluate(2);
        op.process_update(&obj(1, 100.0, 100.0));
        let report = op.evaluate(4);
        assert!(report.results.is_empty());
    }

    #[test]
    fn knn_queries_ignored() {
        let mut op = QueryIndexOperator::new();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&LocationUpdate::query(
            QueryId(9),
            Point::new(500.0, 500.0),
            0,
            30.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::Knn { k: 1 },
            },
        ));
        assert!(op.evaluate(2).results.is_empty());
    }

    #[test]
    fn memory_estimate_nonzero() {
        let mut op = QueryIndexOperator::new();
        for i in 0..50 {
            op.process_update(&obj(i, i as f64, i as f64));
            op.process_update(&qry(i, i as f64, i as f64, 10.0));
        }
        op.evaluate(2);
        assert!(op.estimated_bytes() > 0);
        assert_eq!(op.entity_count(), 100);
    }
}
