//! Non-incremental (offline) K-means clustering — the §6.4 comparison.
//!
//! "We implemented a K-means (a common clustering algorithm) extension to
//! SCUBA for non-incremental clustering. The K-means algorithm expects the
//! number of clusters specified in advance. We used a tracking counter for
//! the number of unique destinations of objects and queries for a rough
//! estimate of the number of clusters needed."
//!
//! The offline path takes the complete snapshot of location updates, runs
//! K-means for a configurable number of iterations (the paper varies 1–10),
//! converts the resulting partitions into [`MovingCluster`]s and reuses the
//! *identical* join machinery ([`crate::join::JoinContext`]). The measured
//! trade-off is clustering time vs. join time (Fig. 11): more iterations
//! yield tighter clusters and a faster join, but the clustering cost
//! dominates.

use std::time::Duration;

use scuba_motion::{EntityAttrs, LocationUpdate};
use scuba_spatial::{FxHashMap, GridSpec, Point, Rect};
use scuba_stream::Stopwatch;

use crate::cluster::{ClusterId, MovingCluster};
use crate::grid::ClusterGrid;
use crate::join::{JoinContext, JoinOutput};
use crate::params::ScubaParams;
use crate::shedding::SheddingMode;
use crate::store::ClusterStore;
use crate::tables::QueriesTable;

/// K-means configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeansConfig {
    /// Lloyd iterations to run (the paper varies 1, 3, 5, 10).
    pub iterations: u32,
    /// Number of clusters; `None` estimates it from the number of unique
    /// destination connection nodes, as the paper does.
    pub k: Option<usize>,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            iterations: 3,
            k: None,
        }
    }
}

/// Result of offline clustering: clusters + index, ready for joining.
#[derive(Debug)]
pub struct KMeansOutcome {
    /// The built clusters, in the same slab + SoA store the incremental
    /// engine uses — so the join sweeps the identical hot columns.
    pub clusters: ClusterStore,
    /// Cluster index over the same grid the incremental engine would use.
    pub grid: ClusterGrid,
    /// Query attributes harvested from the snapshot.
    pub queries: QueriesTable,
    /// Wall-clock time of the clustering itself — the cost the incremental
    /// algorithm does not pay.
    pub clustering_time: Duration,
    /// The k actually used.
    pub k: usize,
    /// Iterations actually run.
    pub iterations: u32,
}

impl KMeansOutcome {
    /// Runs the standard SCUBA join over the offline-built clusters.
    pub fn join(&self, params: &ScubaParams) -> JoinOutput {
        JoinContext {
            store: &self.clusters,
            grid: &self.grid,
            queries: &self.queries,
            shedding: SheddingMode::None,
            theta_d: params.theta_d,
            member_filter: params.member_filter,
            parallelism: params.parallelism,
            kernel: params.kernel,
        }
        .run()
    }
}

/// Clusters a complete snapshot of updates offline.
///
/// `updates` should contain one update per entity (later duplicates win).
pub fn kmeans_cluster(
    updates: &[LocationUpdate],
    config: KMeansConfig,
    params: &ScubaParams,
    area: Rect,
) -> KMeansOutcome {
    let sw = Stopwatch::start();

    // Deduplicate to the latest update per entity, preserving order.
    let mut latest: FxHashMap<scuba_motion::EntityRef, usize> = FxHashMap::default();
    for (i, u) in updates.iter().enumerate() {
        latest.insert(u.entity, i);
    }
    let mut snapshot: Vec<&LocationUpdate> = latest.values().map(|&i| &updates[i]).collect();
    snapshot.sort_unstable_by_key(|u| u.entity);

    let k = config
        .k
        .unwrap_or_else(|| estimate_k(&snapshot))
        .clamp(1, snapshot.len().max(1));

    // Initialise centroids spread across the snapshot.
    let mut centroids: Vec<Point> = Vec::with_capacity(k);
    if !snapshot.is_empty() {
        let stride = (snapshot.len() / k).max(1);
        for i in 0..k {
            centroids.push(snapshot[(i * stride) % snapshot.len()].loc);
        }
    }

    // Lloyd iterations (at least one assignment pass is always needed).
    let mut assignment: Vec<usize> = vec![0; snapshot.len()];
    let passes = config.iterations.max(1);
    for _ in 0..passes {
        // Assignment step.
        for (i, u) in snapshot.iter().enumerate() {
            assignment[i] = nearest_centroid(&centroids, &u.loc);
        }
        // Update step.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); k];
        for (i, u) in snapshot.iter().enumerate() {
            let s = &mut sums[assignment[i]];
            s.0 += u.loc.x;
            s.1 += u.loc.y;
            s.2 += 1;
        }
        for (c, s) in centroids.iter_mut().zip(&sums) {
            if s.2 > 0 {
                *c = Point::new(s.0 / s.2 as f64, s.1 / s.2 as f64);
            }
        }
    }

    // Materialise partitions as MovingClusters.
    let mut queries = QueriesTable::new();
    let mut members_of: Vec<Vec<&LocationUpdate>> = vec![Vec::new(); k];
    for (i, u) in snapshot.iter().enumerate() {
        members_of[assignment[i]].push(u);
        if let (Some(qid), EntityAttrs::Query(attrs)) = (u.entity.as_query(), &u.attrs) {
            queries.upsert(qid, *attrs);
        }
    }

    let mut clusters = ClusterStore::new();
    let mut grid = ClusterGrid::new(GridSpec::new(area, params.grid_cells));
    let mut next_cid = 0u64;
    for members in members_of {
        let Some((first, rest)) = members.split_first() else {
            continue;
        };
        let cid = ClusterId(next_cid);
        next_cid += 1;
        let mut cluster = MovingCluster::found(cid, first, false);
        for u in rest {
            cluster.absorb(u, false);
        }
        let region = cluster.effective_region();
        let slot = clusters.insert(cluster);
        grid.insert(slot, &region);
    }

    KMeansOutcome {
        clusters,
        grid,
        queries,
        clustering_time: sw.elapsed(),
        k,
        iterations: passes,
    }
}

/// Estimates k as the number of unique destination connection nodes.
fn estimate_k(snapshot: &[&LocationUpdate]) -> usize {
    let mut dests: Vec<(u64, u64)> = snapshot
        .iter()
        .map(|u| (u.cn_loc.x.to_bits(), u.cn_loc.y.to_bits()))
        .collect();
    dests.sort_unstable();
    dests.dedup();
    dests.len().max(1)
}

fn nearest_centroid(centroids: &[Point], p: &Point) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = c.distance_sq(p);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_motion::{ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec};

    const CN_A: Point = Point { x: 0.0, y: 0.0 };
    const CN_B: Point = Point {
        x: 1000.0,
        y: 1000.0,
    };

    fn obj(id: u64, x: f64, y: f64, cn: Point) -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            0,
            30.0,
            cn,
            ObjectAttrs::default(),
        )
    }

    fn qry(id: u64, x: f64, y: f64, cn: Point) -> LocationUpdate {
        LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            0,
            30.0,
            cn,
            QueryAttrs {
                spec: QuerySpec::square_range(20.0),
            },
        )
    }

    /// Two well-separated blobs.
    fn blobs() -> Vec<LocationUpdate> {
        let mut v = Vec::new();
        for i in 0..10 {
            v.push(obj(i, 100.0 + i as f64, 100.0, CN_A));
            v.push(obj(100 + i, 900.0 + i as f64, 900.0, CN_B));
        }
        v.push(qry(1, 105.0, 100.0, CN_A));
        v.push(qry(2, 905.0, 900.0, CN_B));
        v
    }

    #[test]
    fn separates_blobs_with_k2() {
        let outcome = kmeans_cluster(
            &blobs(),
            KMeansConfig {
                iterations: 5,
                k: Some(2),
            },
            &ScubaParams::default(),
            Rect::square(1000.0),
        );
        assert_eq!(outcome.k, 2);
        assert_eq!(outcome.clusters.len(), 2);
        let mut sizes: Vec<usize> = outcome.clusters.values().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![11, 11]);
        // Cluster radii are tight around the blobs.
        for c in outcome.clusters.values() {
            assert!(c.radius() < 50.0, "radius {}", c.radius());
        }
    }

    #[test]
    fn estimates_k_from_unique_destinations() {
        let outcome = kmeans_cluster(
            &blobs(),
            KMeansConfig {
                iterations: 2,
                k: None,
            },
            &ScubaParams::default(),
            Rect::square(1000.0),
        );
        assert_eq!(outcome.k, 2, "two unique cn_locs");
    }

    #[test]
    fn join_over_offline_clusters_finds_matches() {
        let params = ScubaParams::default();
        let outcome = kmeans_cluster(
            &blobs(),
            KMeansConfig {
                iterations: 5,
                k: Some(2),
            },
            &params,
            Rect::square(1000.0),
        );
        let join = outcome.join(&params);
        // Query 1 covers objects within ±10 of (105, 100): objects 0..10
        // are at x = 100..110 → several matches; query 2 symmetric.
        assert!(!join.results.is_empty());
        assert!(join.results.iter().any(|m| m.query == QueryId(1)));
        assert!(join.results.iter().any(|m| m.query == QueryId(2)));
    }

    #[test]
    fn more_iterations_never_increase_inertia() {
        // Within-cluster distances after 10 iterations should not exceed
        // those after 1 iteration.
        let updates = blobs();
        let inertia = |iters: u32| {
            let o = kmeans_cluster(
                &updates,
                KMeansConfig {
                    iterations: iters,
                    k: Some(4),
                },
                &ScubaParams::default(),
                Rect::square(1000.0),
            );
            o.clusters
                .values()
                .map(|c| {
                    c.members()
                        .iter()
                        .filter_map(|m| c.member_position(m))
                        .map(|p| p.distance_sq(&c.centroid()))
                        .sum::<f64>()
                })
                .sum::<f64>()
        };
        assert!(inertia(10) <= inertia(1) + 1e-6);
    }

    #[test]
    fn duplicate_entities_use_latest_update() {
        let mut updates = blobs();
        // Object 0 reports again from the other blob.
        updates.push(obj(0, 900.0, 900.0, CN_B));
        let outcome = kmeans_cluster(
            &updates,
            KMeansConfig {
                iterations: 3,
                k: Some(2),
            },
            &ScubaParams::default(),
            Rect::square(1000.0),
        );
        let total: usize = outcome.clusters.values().map(|c| c.len()).sum();
        assert_eq!(total, 22, "entity counted once");
        let mut sizes: Vec<usize> = outcome.clusters.values().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![10, 12]);
    }

    #[test]
    fn empty_input() {
        let outcome = kmeans_cluster(
            &[],
            KMeansConfig::default(),
            &ScubaParams::default(),
            Rect::square(10.0),
        );
        assert!(outcome.clusters.is_empty());
        assert_eq!(outcome.join(&ScubaParams::default()).results, vec![]);
    }

    #[test]
    fn k_larger_than_population_is_clamped() {
        let updates = vec![obj(1, 10.0, 10.0, CN_A), obj(2, 20.0, 20.0, CN_A)];
        let outcome = kmeans_cluster(
            &updates,
            KMeansConfig {
                iterations: 2,
                k: Some(100),
            },
            &ScubaParams::default(),
            Rect::square(100.0),
        );
        assert!(outcome.k <= 2);
        assert!(!outcome.clusters.is_empty());
    }

    #[test]
    fn clustering_time_is_recorded() {
        let outcome = kmeans_cluster(
            &blobs(),
            KMeansConfig::default(),
            &ScubaParams::default(),
            Rect::square(1000.0),
        );
        // Non-negative duration and iterations propagated.
        assert_eq!(outcome.iterations, 3);
        let _ = outcome.clustering_time;
    }
}
