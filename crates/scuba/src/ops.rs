//! Operator-construction factory.
//!
//! Every harness that pits SCUBA against its baselines (the CLI `compare`
//! command, the bench figure runners, ad-hoc experiments) needs the same
//! six operators built over the same parameters. Hand-rolling the six
//! constructor calls at every site invites drift — a baseline silently
//! missing from one harness, or built with a different grid granularity.
//! [`OpsConfig::build`] is the single place an [`OperatorKind`] turns into
//! a boxed [`ContinuousOperator`].

use scuba_spatial::Rect;
use scuba_stream::ContinuousOperator;

use crate::baseline::{PointHashedGridOperator, RegularGridOperator};
use crate::engine::ScubaOperator;
use crate::params::ScubaParams;
use crate::qindex::QueryIndexOperator;
use crate::sina::IncrementalGridOperator;
use crate::vci::{VciConfig, VciOperator};

/// Every operator the suite can build, in canonical reporting order
/// (SCUBA first, then the baselines as they appear in the paper's §6/§7
/// comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// The cluster-based operator under study ([`ScubaOperator`]).
    Scuba,
    /// The §6 comparison baseline ([`RegularGridOperator`]).
    Regular,
    /// The §6-literal lossy point-hashed grid
    /// ([`PointHashedGridOperator`]).
    PointHashed,
    /// Query Indexing over an R-tree, related work \[29\]
    /// ([`QueryIndexOperator`]).
    QueryIndex,
    /// SINA-style incrementally-maintained grid, related work \[24\]
    /// ([`IncrementalGridOperator`]).
    IncrementalGrid,
    /// Velocity-Constrained Indexing, related work \[29\]
    /// ([`VciOperator`]).
    Vci,
}

impl OperatorKind {
    /// All kinds in canonical reporting order.
    pub const ALL: [OperatorKind; 6] = [
        OperatorKind::Scuba,
        OperatorKind::Regular,
        OperatorKind::PointHashed,
        OperatorKind::QueryIndex,
        OperatorKind::IncrementalGrid,
        OperatorKind::Vci,
    ];

    /// Stable human-readable label (matches the operator's `name()` except
    /// where the name is parameter-dependent, as for SCUBA under
    /// shedding).
    pub fn label(self) -> &'static str {
        match self {
            OperatorKind::Scuba => "SCUBA",
            OperatorKind::Regular => "REGULAR",
            OperatorKind::PointHashed => "POINT-HASHED",
            OperatorKind::QueryIndex => "Q-INDEX",
            OperatorKind::IncrementalGrid => "SINA-GRID",
            OperatorKind::Vci => "VCI",
        }
    }
}

/// Everything needed to build any operator in the suite.
#[derive(Debug, Clone, Copy)]
pub struct OpsConfig {
    /// SCUBA parameters; the baselines reuse `params.grid_cells`.
    pub params: ScubaParams,
    /// The monitored area all grid-based operators partition.
    pub area: Rect,
    /// VCI speed/inflation bounds.
    pub vci: VciConfig,
}

impl OpsConfig {
    /// Config over `params` and `area` with default VCI bounds.
    pub fn new(params: ScubaParams, area: Rect) -> Self {
        OpsConfig {
            params,
            area,
            vci: VciConfig::default(),
        }
    }

    /// Builds one operator.
    pub fn build(&self, kind: OperatorKind) -> Box<dyn ContinuousOperator> {
        match kind {
            OperatorKind::Scuba => Box::new(ScubaOperator::new(self.params, self.area)),
            OperatorKind::Regular => {
                Box::new(RegularGridOperator::new(self.params.grid_cells, self.area))
            }
            OperatorKind::PointHashed => Box::new(PointHashedGridOperator::new(
                self.params.grid_cells,
                self.area,
            )),
            OperatorKind::QueryIndex => Box::new(QueryIndexOperator::new()),
            OperatorKind::IncrementalGrid => Box::new(IncrementalGridOperator::new(
                self.params.grid_cells,
                self.area,
            )),
            OperatorKind::Vci => Box::new(VciOperator::new(self.vci)),
        }
    }

    /// Builds the full suite in canonical order.
    pub fn build_all(&self) -> Vec<(OperatorKind, Box<dyn ContinuousOperator>)> {
        OperatorKind::ALL
            .iter()
            .map(|&kind| (kind, self.build(kind)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_motion::{LocationUpdate, ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec};
    use scuba_spatial::Point;

    fn config() -> OpsConfig {
        OpsConfig::new(ScubaParams::default(), Rect::square(1000.0))
    }

    #[test]
    fn builds_all_six_kinds() {
        let suite = config().build_all();
        assert_eq!(suite.len(), OperatorKind::ALL.len());
        for (kind, op) in &suite {
            assert!(!op.name().is_empty(), "{kind:?} has a name");
        }
    }

    /// The factory passes `params.join_cache` through: a suite built with
    /// the cache disabled returns exactly the same results as the default
    /// suite (the cache is a work optimisation, never a semantic change).
    #[test]
    fn join_cache_toggle_is_result_invariant() {
        let cn = Point::new(1000.0, 500.0);
        let run = |join_cache: bool| -> Vec<Vec<scuba_stream::QueryMatch>> {
            let params = ScubaParams::default().with_join_cache(join_cache);
            let mut op = OpsConfig::new(params, Rect::square(1000.0)).build(OperatorKind::Scuba);
            let mut per_interval = Vec::new();
            for round in 0..4u64 {
                for i in 0..30u64 {
                    let x = ((i * 97 + round * 13) % 1000) as f64;
                    let y = ((i * 53 + round * 29) % 1000) as f64;
                    if i % 4 == 0 {
                        op.process_update(&LocationUpdate::query(
                            QueryId(i),
                            Point::new(x, y),
                            round * 2,
                            25.0,
                            cn,
                            QueryAttrs {
                                spec: QuerySpec::square_range(150.0),
                            },
                        ));
                    } else {
                        op.process_update(&LocationUpdate::object(
                            ObjectId(i),
                            Point::new(x, y),
                            round * 2,
                            25.0,
                            cn,
                            ObjectAttrs::default(),
                        ));
                    }
                }
                per_interval.push(op.evaluate((round + 1) * 2).results);
            }
            per_interval
        };
        assert_eq!(run(true), run(false));
    }

    /// Batch ingestion is a transport detail, never a semantic change:
    /// feeding each tick through `process_batch` gives every operator —
    /// default-loop baselines and the sharded SCUBA path alike — exactly
    /// the per-update-loop results.
    #[test]
    fn batch_ingest_is_result_invariant_for_every_operator() {
        let cn = Point::new(1000.0, 500.0);
        let tick = |round: u64| -> Vec<LocationUpdate> {
            // Ascending entity ids at one shared timestamp: canonical
            // (time, entity) order, so loop and batch orders coincide.
            let mut updates = Vec::new();
            for i in 0..40u64 {
                let x = ((i * 97 + round * 13) % 1000) as f64;
                let y = ((i * 53 + round * 29) % 1000) as f64;
                if i % 4 == 0 {
                    updates.push(LocationUpdate::query(
                        QueryId(i),
                        Point::new(x, y),
                        round * 2,
                        25.0,
                        cn,
                        QueryAttrs {
                            spec: QuerySpec::square_range(150.0),
                        },
                    ));
                } else {
                    updates.push(LocationUpdate::object(
                        ObjectId(i),
                        Point::new(x, y),
                        round * 2,
                        25.0,
                        cn,
                        ObjectAttrs::default(),
                    ));
                }
            }
            updates.sort_by_key(|u| (u.time, u.entity));
            updates
        };
        // Four shards so the SCUBA operator takes the sharded path.
        let params = ScubaParams::default().with_ingest_shards(4);
        for kind in OperatorKind::ALL {
            let mut looped = OpsConfig::new(params, Rect::square(1000.0)).build(kind);
            let mut batched = OpsConfig::new(params, Rect::square(1000.0)).build(kind);
            for round in 0..4u64 {
                let updates = tick(round);
                for u in &updates {
                    looped.process_update(u);
                }
                batched.process_batch(&updates);
                assert_eq!(
                    looped.evaluate((round + 1) * 2).results,
                    batched.evaluate((round + 1) * 2).results,
                    "{kind:?}: batch ingestion changed interval results"
                );
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = OperatorKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), OperatorKind::ALL.len());
    }

    #[test]
    fn built_operators_evaluate() {
        let cn = Point::new(1000.0, 500.0);
        for kind in OperatorKind::ALL {
            let mut op = config().build(kind);
            op.process_update(&LocationUpdate::object(
                ObjectId(1),
                Point::new(500.0, 500.0),
                0,
                30.0,
                cn,
                ObjectAttrs::default(),
            ));
            op.process_update(&LocationUpdate::query(
                QueryId(1),
                Point::new(503.0, 500.0),
                0,
                30.0,
                cn,
                QueryAttrs {
                    spec: QuerySpec::square_range(20.0),
                },
            ));
            let report = op.evaluate(2);
            assert_eq!(report.results.len(), 1, "{kind:?} finds the match");
            assert!(
                !report.phases.is_empty(),
                "{kind:?} reports a stage breakdown"
            );
        }
    }
}
