//! The regular grid-based baseline operator (paper §6, "REGULAR").
//!
//! "We compare SCUBA with a traditional grid-based spatio-temporal range
//! algorithm, where objects and queries are hashed based on their locations
//! into an index, say a grid. Then a cell-by-cell join between moving
//! objects and queries is performed. Grid-based execution approach is a
//! common choice for spatio-temporal query execution [9, 24, 27, 39, 29]."
//!
//! Implementation notes:
//!
//! * every entity's **latest update** is kept individually — exactly the
//!   per-entity materialisation SCUBA's clustering avoids;
//! * at evaluation time the grids are rebuilt: objects hash into the cell
//!   containing their point; a query's *range region* registers in every
//!   cell it overlaps (the standard SINA-style shared grid join — hashing
//!   queries by center point alone would miss borderline matches);
//! * the join visits each cell and tests the objects in it against the
//!   queries registered there. An object lives in exactly one cell, so no
//!   result deduplication is needed, but we sort for deterministic output.
//!
//! A second variant, [`PointHashedGridOperator`], implements the paper's
//! §6 description *literally*: queries are hashed by their location point
//! (one cell each) and the cell-by-cell join only pairs co-located
//! entities. That is cheaper — its join cost falls as cells shrink, which
//! is precisely the REGULAR trend of Fig. 9a — but **lossy**: a query
//! whose range reaches into a neighbouring cell misses objects there. It
//! exists for the Fig. 9 ablation; correctness comparisons use
//! [`RegularGridOperator`].

use scuba_motion::{EntityAttrs, EntityRef, LocationUpdate, ObjectId, QueryId, QuerySpec};
use scuba_spatial::{FxHashMap, GridSpec, Point, Rect, SpatialGrid, Time};
use scuba_stream::{
    ContinuousOperator, EvaluationReport, PhaseBreakdown, QueryMatch, StageStats, Stopwatch,
};

/// Stage name: rebuilding the object/query grids (maintenance bucket).
pub const STAGE_INDEX_REBUILD: &str = "index-rebuild";
/// Stage name: the cell-by-cell object×query join.
pub const STAGE_CELL_JOIN: &str = "cell-join";
/// Stage name: sorting the raw matches for deterministic output.
pub const STAGE_RESULT_MERGE: &str = "result-merge";

/// The regular (non-clustered) grid-join operator.
#[derive(Debug)]
pub struct RegularGridOperator {
    spec: GridSpec,
    /// Latest update per entity — the individually materialised state.
    latest: FxHashMap<EntityRef, LocationUpdate>,
    /// Objects hashed by position (rebuilt each evaluation).
    object_grid: SpatialGrid<(ObjectId, Point)>,
    /// Query regions replicated into overlapped cells (rebuilt each
    /// evaluation).
    query_grid: SpatialGrid<(QueryId, Rect)>,
    evaluations: u64,
}

impl RegularGridOperator {
    /// Creates the operator with an `grid_cells × grid_cells` grid over
    /// `area`.
    pub fn new(grid_cells: u32, area: Rect) -> Self {
        let spec = GridSpec::new(area, grid_cells.max(1));
        RegularGridOperator {
            spec,
            latest: FxHashMap::default(),
            object_grid: SpatialGrid::new(spec),
            query_grid: SpatialGrid::new(spec),
            evaluations: 0,
        }
    }

    /// Number of tracked entities.
    pub fn entity_count(&self) -> usize {
        self.latest.len()
    }

    /// The grid partitioning in use.
    pub fn grid_spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Number of evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Rebuilds both grids from the latest updates. Returns the number of
    /// grid insertions (an index-maintenance work measure).
    fn rebuild_grids(&mut self) -> usize {
        self.object_grid.clear();
        self.query_grid.clear();
        let mut insertions = 0;
        for update in self.latest.values() {
            match (update.entity, &update.attrs) {
                (EntityRef::Object(oid), EntityAttrs::Object(_)) => {
                    self.object_grid.insert_at(&update.loc, (oid, update.loc));
                    insertions += 1;
                }
                (EntityRef::Query(qid), EntityAttrs::Query(attrs)) => {
                    if let QuerySpec::Range { .. } = attrs.spec {
                        let region = attrs
                            .spec
                            .region_at(update.loc)
                            .expect("range spec has a region");
                        insertions += self.query_grid.insert_rect(&region, (qid, region));
                    }
                }
                _ => {}
            }
        }
        insertions
    }

    /// Estimated bytes of in-memory state: the per-entity updates plus both
    /// grids with their per-cell entries.
    pub fn estimated_bytes(&self) -> usize {
        let latest = self.latest.capacity()
            * (std::mem::size_of::<EntityRef>() + std::mem::size_of::<LocationUpdate>() + 8);
        latest + self.object_grid.estimated_bytes() + self.query_grid.estimated_bytes()
    }
}

impl ContinuousOperator for RegularGridOperator {
    fn process_update(&mut self, update: &LocationUpdate) {
        self.latest.insert(update.entity, *update);
    }

    fn evaluate(&mut self, now: Time) -> EvaluationReport {
        self.evaluations += 1;
        let mut phases = PhaseBreakdown::new();
        let entities = self.latest.len() as u64;

        // Index maintenance: hash every entity into the grid.
        let mut sw = Stopwatch::start();
        let insertions = self.rebuild_grids();
        phases.push(
            StageStats::maintenance(STAGE_INDEX_REBUILD)
                .with_wall(sw.lap())
                .with_items(entities, insertions as u64),
        );

        // Cell-by-cell join.
        let mut results = Vec::new();
        let mut comparisons = 0u64;
        for (cell, objects) in self.object_grid.iter_nonempty() {
            let queries = self.query_grid.cell(cell);
            if queries.is_empty() {
                continue;
            }
            for &(oid, opos) in objects {
                for &(qid, region) in queries {
                    comparisons += 1;
                    if region.contains(&opos) {
                        results.push(QueryMatch::new(qid, oid));
                    }
                }
            }
        }
        let raw = results.len() as u64;
        phases.push(
            StageStats::join(STAGE_CELL_JOIN)
                .with_wall(sw.lap())
                .with_items(entities, raw)
                .with_tests(comparisons),
        );

        results.sort_unstable();
        phases.push(
            StageStats::join(STAGE_RESULT_MERGE)
                .with_wall(sw.lap())
                .with_items(raw, results.len() as u64),
        );

        EvaluationReport {
            now,
            results,
            phases,
            memory_bytes: self.estimated_bytes(),
            comparisons,
            prefilter_tests: 0,
        }
    }

    fn name(&self) -> &str {
        "REGULAR"
    }

    fn memory_bytes(&self) -> usize {
        self.estimated_bytes()
    }
}

/// The §6-literal baseline: objects *and queries* hashed by location point;
/// the cell-by-cell join only pairs entities sharing a cell.
///
/// Lossy by construction (a query's range reaching into a neighbouring cell
/// misses the objects there), so do not use it where exact answers matter —
/// it exists to reproduce the Fig. 9a REGULAR trend, where coarser cells
/// mean more co-located pairs and thus a more expensive join.
#[derive(Debug)]
pub struct PointHashedGridOperator {
    spec: GridSpec,
    latest: FxHashMap<EntityRef, LocationUpdate>,
    object_grid: SpatialGrid<(ObjectId, Point)>,
    query_grid: SpatialGrid<(QueryId, Rect)>,
    evaluations: u64,
}

impl PointHashedGridOperator {
    /// Creates the operator with a `grid_cells × grid_cells` grid over
    /// `area`.
    pub fn new(grid_cells: u32, area: Rect) -> Self {
        let spec = GridSpec::new(area, grid_cells.max(1));
        PointHashedGridOperator {
            spec,
            latest: FxHashMap::default(),
            object_grid: SpatialGrid::new(spec),
            query_grid: SpatialGrid::new(spec),
            evaluations: 0,
        }
    }

    /// The grid partitioning in use.
    pub fn grid_spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Number of evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Estimated bytes of in-memory state.
    pub fn estimated_bytes(&self) -> usize {
        let latest = self.latest.capacity()
            * (std::mem::size_of::<EntityRef>() + std::mem::size_of::<LocationUpdate>() + 8);
        latest + self.object_grid.estimated_bytes() + self.query_grid.estimated_bytes()
    }
}

impl ContinuousOperator for PointHashedGridOperator {
    fn process_update(&mut self, update: &LocationUpdate) {
        self.latest.insert(update.entity, *update);
    }

    fn evaluate(&mut self, now: Time) -> EvaluationReport {
        self.evaluations += 1;
        let mut phases = PhaseBreakdown::new();
        let entities = self.latest.len() as u64;

        let mut sw = Stopwatch::start();
        self.object_grid.clear();
        self.query_grid.clear();
        let mut insertions = 0u64;
        for update in self.latest.values() {
            match (update.entity, &update.attrs) {
                (EntityRef::Object(oid), EntityAttrs::Object(_)) => {
                    self.object_grid.insert_at(&update.loc, (oid, update.loc));
                    insertions += 1;
                }
                (EntityRef::Query(qid), EntityAttrs::Query(attrs)) => {
                    if let Some(region) = attrs.spec.region_at(update.loc) {
                        // Point-hashed: one cell, the one holding q.loc.
                        self.query_grid.insert_at(&update.loc, (qid, region));
                        insertions += 1;
                    }
                }
                _ => {}
            }
        }
        phases.push(
            StageStats::maintenance(STAGE_INDEX_REBUILD)
                .with_wall(sw.lap())
                .with_items(entities, insertions),
        );

        let mut results = Vec::new();
        let mut comparisons = 0u64;
        for (cell, objects) in self.object_grid.iter_nonempty() {
            let queries = self.query_grid.cell(cell);
            if queries.is_empty() {
                continue;
            }
            for &(oid, opos) in objects {
                for &(qid, region) in queries {
                    comparisons += 1;
                    if region.contains(&opos) {
                        results.push(QueryMatch::new(qid, oid));
                    }
                }
            }
        }
        let raw = results.len() as u64;
        phases.push(
            StageStats::join(STAGE_CELL_JOIN)
                .with_wall(sw.lap())
                .with_items(entities, raw)
                .with_tests(comparisons),
        );

        results.sort_unstable();
        phases.push(
            StageStats::join(STAGE_RESULT_MERGE)
                .with_wall(sw.lap())
                .with_items(raw, results.len() as u64),
        );

        EvaluationReport {
            now,
            results,
            phases,
            memory_bytes: self.estimated_bytes(),
            comparisons,
            prefilter_tests: 0,
        }
    }

    fn name(&self) -> &str {
        "REGULAR(point-hashed)"
    }

    fn memory_bytes(&self) -> usize {
        self.estimated_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_motion::{ObjectAttrs, QueryAttrs};

    const CN: Point = Point {
        x: 1000.0,
        y: 500.0,
    };

    fn obj(id: u64, x: f64, y: f64) -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            0,
            30.0,
            CN,
            ObjectAttrs::default(),
        )
    }

    fn qry(id: u64, x: f64, y: f64, side: f64) -> LocationUpdate {
        LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            0,
            30.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(side),
            },
        )
    }

    fn operator() -> RegularGridOperator {
        RegularGridOperator::new(10, Rect::square(1000.0))
    }

    #[test]
    fn finds_matches_in_same_cell() {
        let mut op = operator();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0));
        let report = op.evaluate(2);
        assert_eq!(
            report.results,
            vec![QueryMatch::new(QueryId(1), ObjectId(1))]
        );
        assert!(report.comparisons >= 1);
        assert_eq!(report.prefilter_tests, 0);
    }

    #[test]
    fn baseline_reports_stage_breakdown() {
        let mut op = operator();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0));
        let report = op.evaluate(2);
        let names: Vec<&str> = report
            .phases
            .stages()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(
            names,
            vec![STAGE_INDEX_REBUILD, STAGE_CELL_JOIN, STAGE_RESULT_MERGE]
        );
        assert_eq!(
            report.phases.get(STAGE_CELL_JOIN).unwrap().tests,
            report.comparisons
        );
        assert_eq!(
            report.total_time(),
            report.join_time() + report.maintenance_time()
        );
    }

    #[test]
    fn finds_matches_across_cell_borders() {
        // Cell size is 100; object at 499 and query centred at 501 are in
        // different columns, but the query region spans both.
        let mut op = operator();
        op.process_update(&obj(1, 499.0, 500.0));
        op.process_update(&qry(1, 501.0, 500.0, 20.0));
        let report = op.evaluate(2);
        assert_eq!(report.results.len(), 1);
    }

    #[test]
    fn no_false_positives() {
        let mut op = operator();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 530.0, 500.0, 20.0)); // range covers 520..540
        let report = op.evaluate(2);
        assert!(report.results.is_empty());
    }

    #[test]
    fn latest_update_wins() {
        let mut op = operator();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0));
        // The object moves far away before evaluation.
        op.process_update(&obj(1, 900.0, 900.0));
        let report = op.evaluate(2);
        assert!(report.results.is_empty());
        assert_eq!(op.entity_count(), 2);
    }

    #[test]
    fn no_duplicate_results_for_spanning_queries() {
        let mut op = operator();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 500.0, 500.0, 400.0)); // spans many cells
        let report = op.evaluate(2);
        assert_eq!(report.results.len(), 1);
    }

    #[test]
    fn knn_queries_ignored() {
        let mut op = operator();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&LocationUpdate::query(
            QueryId(9),
            Point::new(500.0, 500.0),
            0,
            30.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::Knn { k: 1 },
            },
        ));
        let report = op.evaluate(2);
        assert!(report.results.is_empty());
    }

    #[test]
    fn memory_grows_with_population_and_cells() {
        let mut coarse = RegularGridOperator::new(10, Rect::square(1000.0));
        let mut fine = RegularGridOperator::new(100, Rect::square(1000.0));
        for i in 0..200 {
            let u = obj(i, (i % 100) as f64 * 10.0, (i / 10) as f64 * 10.0);
            coarse.process_update(&u);
            fine.process_update(&u);
        }
        coarse.evaluate(2);
        fine.evaluate(2);
        assert!(
            fine.estimated_bytes() > coarse.estimated_bytes(),
            "finer grid should cost more memory: fine={} coarse={}",
            fine.estimated_bytes(),
            coarse.estimated_bytes()
        );
    }

    #[test]
    fn repeated_evaluations_are_stable() {
        let mut op = operator();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0));
        let a = op.evaluate(2).results;
        let b = op.evaluate(4).results;
        assert_eq!(a, b);
        assert_eq!(op.evaluations(), 2);
    }

    #[test]
    fn zero_cells_clamped() {
        let op = RegularGridOperator::new(0, Rect::square(10.0));
        assert_eq!(op.spec.cells_per_side(), 1);
    }

    #[test]
    fn point_hashed_finds_colocated_matches() {
        let mut op = PointHashedGridOperator::new(10, Rect::square(1000.0));
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0));
        let report = op.evaluate(2);
        assert_eq!(
            report.results,
            vec![QueryMatch::new(QueryId(1), ObjectId(1))]
        );
        assert_eq!(op.evaluations(), 1);
        assert!(op.estimated_bytes() > 0);
        assert_eq!(op.grid_spec().cells_per_side(), 10);
    }

    #[test]
    fn point_hashed_misses_cross_cell_matches() {
        // Cell size 100: object at x=499 (cell 4) and query centred at 501
        // (cell 5) — the exact baseline finds the match, the point-hashed
        // one does not. This is the documented lossiness.
        let mut exact = RegularGridOperator::new(10, Rect::square(1000.0));
        let mut lossy = PointHashedGridOperator::new(10, Rect::square(1000.0));
        for u in [obj(1, 499.0, 500.0), qry(1, 501.0, 500.0, 20.0)] {
            exact.process_update(&u);
            lossy.process_update(&u);
        }
        assert_eq!(exact.evaluate(2).results.len(), 1);
        assert!(lossy.evaluate(2).results.is_empty());
    }

    #[test]
    fn point_hashed_join_cheaper_on_coarse_grids() {
        // The Fig. 9a REGULAR trend: coarser cells co-locate more pairs.
        let mut coarse = PointHashedGridOperator::new(5, Rect::square(1000.0));
        let mut fine = PointHashedGridOperator::new(50, Rect::square(1000.0));
        for i in 0..200u64 {
            let u = obj(i, (i * 37 % 1000) as f64, (i * 61 % 1000) as f64);
            coarse.process_update(&u);
            fine.process_update(&u);
            let q = qry(i, (i * 53 % 1000) as f64, (i * 71 % 1000) as f64, 30.0);
            coarse.process_update(&q);
            fine.process_update(&q);
        }
        let c = coarse.evaluate(2);
        let f = fine.evaluate(2);
        assert!(
            c.comparisons > f.comparisons,
            "coarse {} vs fine {}",
            c.comparisons,
            f.comparisons
        );
    }
}
