//! The ClusterGrid (paper §4.1).
//!
//! "ClusterGrid is a spatial grid table dividing the data space into N×N
//! grid cells. For each grid cell, ClusterGrid maintains a list of cluster
//! ids of moving clusters that overlap with that cell."
//!
//! Unlike the generic [`scuba_spatial::SpatialGrid`], the ClusterGrid must
//! support *removal and relocation*: clusters grow during the pre-join
//! phase and are re-located along their velocity vectors during post-join
//! maintenance. Registrations are tracked per cluster so both operations
//! are proportional to the handful of cells a compact cluster overlaps.
//!
//! The grid stores dense [`ClusterSlot`] handles from the
//! [`crate::store::ClusterStore`], not durable [`crate::cluster::ClusterId`]s:
//! cell lists and the per-cluster registration table are indexed structures
//! with no hashing on the probe path. Because slots are small and densely
//! reused, the registration table is a plain `Vec<Vec<u32>>` indexed by
//! slot with a parallel liveness bitmap (a registered cluster may overlap
//! *zero* cells — post-join relocation can carry it past the grid bounds
//! before it dissolves), and the probe's visited set is a round-stamped
//! [`StampSlab`].

use scuba_spatial::{CellIdx, Circle, GridSpec, Point, StampSlab};

use crate::store::ClusterSlot;

/// Spatial grid of moving-cluster regions, keyed by store slot.
#[derive(Debug, Clone)]
pub struct ClusterGrid {
    spec: GridSpec,
    cells: Vec<Vec<ClusterSlot>>,
    /// Linear cell indices each slot is currently registered in, indexed by
    /// slot. Meaningful only where `live` is set: a live slot may overlap
    /// zero cells (region outside the grid bounds).
    registrations: Vec<Vec<u32>>,
    /// Whether each slot currently holds a registration.
    live: Vec<bool>,
    /// The exact circle each live slot was last registered with. Lets
    /// re-registration skip the cell enumeration when the region (or its
    /// covered cell set) provably did not change — post-join relocation
    /// re-inserts every moved cluster each Δ, and most moves stay inside
    /// the same cells.
    regions: Vec<Circle>,
    /// Number of live slots.
    registered: usize,
    /// Re-registrations answered without enumerating cells (fast paths).
    fast_path_hits: u64,
    /// Round-stamped visited table for [`ClusterGrid::clusters_within_into`]:
    /// a cluster is a duplicate within one probe iff its stamp equals the
    /// current probe round. Replaces a per-probe `contains` scan / set
    /// allocation with an O(1) indexed stamp check that never clears.
    probe_stamps: StampSlab,
}

impl ClusterGrid {
    /// Creates an empty grid over the given partitioning.
    pub fn new(spec: GridSpec) -> Self {
        ClusterGrid {
            spec,
            cells: vec![Vec::new(); spec.cell_count()],
            registrations: Vec::new(),
            live: Vec::new(),
            regions: Vec::new(),
            registered: 0,
            fast_path_hits: 0,
            probe_stamps: StampSlab::new(),
        }
    }

    /// The partitioning geometry.
    #[inline]
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Number of registered clusters.
    #[inline]
    pub fn cluster_count(&self) -> usize {
        self.registered
    }

    /// Whether no clusters are registered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.registered == 0
    }

    /// Registers a cluster region, replacing any previous registration.
    /// Returns the number of cells the cluster now overlaps.
    pub fn insert(&mut self, slot: ClusterSlot, region: &Circle) -> usize {
        if slot.index() >= self.registrations.len() {
            self.registrations.resize_with(slot.index() + 1, Vec::new);
            self.live.resize(slot.index() + 1, false);
            // Sentinel never consulted: `regions` is meaningful only where
            // `live` is set, and every live slot went through this method.
            self.regions.resize(
                slot.index() + 1,
                Circle::new(Point::new(0.0, 0.0), f64::NEG_INFINITY),
            );
        }
        if self.live[slot.index()] {
            // Fast path 1: exact region seen last time — the covered cell
            // set cannot differ, so skip the cell enumeration entirely.
            if *region == self.regions[slot.index()] {
                self.fast_path_hits += 1;
                return self.registrations[slot.index()].len();
            }
            // Fast path 2: covered-rect equality for compact interior
            // regions. A bounding box whose corners land in the same cell
            // (and inside the area) pins the exact covered set to that one
            // cell; if the slot is already registered there — and only
            // there — nothing changes. Restricted to in-area boxes:
            // border clamping can map an outside box onto a cell the
            // circle never intersects (even a zero-cell registration), so
            // rect equality alone would lie at the edges.
            let bbox = region.bounding_rect();
            if self.spec.area().contains(&bbox.min) && self.spec.area().contains(&bbox.max) {
                let lo = self.spec.cell_of(&bbox.min);
                if lo == self.spec.cell_of(&bbox.max) {
                    let linear = self.spec.linear(lo) as u32;
                    if self.registrations[slot.index()].as_slice() == [linear] {
                        self.fast_path_hits += 1;
                        self.regions[slot.index()] = *region;
                        return 1;
                    }
                }
            }
        }
        let new_cells: Vec<u32> = self
            .spec
            .cells_overlapping_circle(region)
            .map(|idx| self.spec.linear(idx) as u32)
            .collect();
        if self.live[slot.index()] {
            if self.registrations[slot.index()] == new_cells {
                self.regions[slot.index()] = *region;
                return new_cells.len();
            }
            self.unregister(slot);
        } else {
            self.live[slot.index()] = true;
            self.registered += 1;
        }
        for &linear in &new_cells {
            self.cells[linear as usize].push(slot);
        }
        let n = new_cells.len();
        self.registrations[slot.index()] = new_cells;
        self.regions[slot.index()] = *region;
        n
    }

    /// Removes a cluster's registration. Returns `true` if it was present.
    pub fn remove(&mut self, slot: ClusterSlot) -> bool {
        if self.live.get(slot.index()).copied().unwrap_or(false) {
            self.unregister(slot);
            // Keep the (small) cell vector's capacity for the slot's next
            // occupant — slots are reused densely under churn.
            self.registrations[slot.index()].clear();
            self.live[slot.index()] = false;
            self.registered -= 1;
            true
        } else {
            false
        }
    }

    fn unregister(&mut self, slot: ClusterSlot) {
        let cells = std::mem::take(&mut self.registrations[slot.index()]);
        for &linear in &cells {
            let cell = &mut self.cells[linear as usize];
            if let Some(pos) = cell.iter().position(|&c| c == slot) {
                // Order-preserving: the Leader–Follower probe absorbs
                // into the *first* passing candidate, so cell order is
                // semantically significant and removals must not
                // shuffle the survivors.
                cell.remove(pos);
            }
        }
        self.registrations[slot.index()] = cells;
    }

    /// The circle a cluster is currently registered with, or `None` if it
    /// is not registered. The adaptive index refines cell lists against
    /// these stored regions at pair-discovery time.
    #[inline]
    pub fn region_of(&self, slot: ClusterSlot) -> Option<&Circle> {
        self.live
            .get(slot.index())
            .copied()
            .unwrap_or(false)
            .then(|| &self.regions[slot.index()])
    }

    /// Re-registrations answered by a fast path (no cell enumeration).
    /// Diagnostic counter for tests and benchmarks.
    #[inline]
    pub fn fast_path_hits(&self) -> u64 {
        self.fast_path_hits
    }

    /// The linear cell indices a cluster is currently registered in, or
    /// `None` if it is not registered.
    #[inline]
    pub fn cells_of(&self, slot: ClusterSlot) -> Option<&[u32]> {
        self.live
            .get(slot.index())
            .copied()
            .unwrap_or(false)
            .then(|| self.registrations[slot.index()].as_slice())
    }

    /// The clusters registered in a cell given by linear index.
    #[inline]
    pub fn cell_linear(&self, linear: u32) -> &[ClusterSlot] {
        &self.cells[linear as usize]
    }

    /// The clusters overlapping the cell that contains `p` — the §3.2
    /// step-1 probe ("use moving object's position to probe the spatial
    /// grid index ClusterGrid to find the moving clusters in the proximity
    /// of the current location").
    #[inline]
    pub fn clusters_near(&self, p: &Point) -> &[ClusterSlot] {
        let idx = self.spec.cell_of(p);
        &self.cells[self.spec.linear(idx)]
    }

    /// The clusters registered in a specific cell.
    #[inline]
    pub fn cell(&self, idx: CellIdx) -> &[ClusterSlot] {
        &self.cells[self.spec.linear(idx)]
    }

    /// Collects (deduplicated, in deterministic cell order) the clusters
    /// registered in any cell overlapping `probe` into `out`.
    ///
    /// This is the step-1 probe used with `probe = Circle(loc, Θ_D)`:
    /// candidate clusters must have their centroid within Θ_D of the
    /// update, and a cluster's registration always covers its centroid, so
    /// probing the Θ_D disk cannot miss a joinable cluster regardless of
    /// how fine the grid is.
    pub fn clusters_within_into(&mut self, probe: &Circle, out: &mut Vec<ClusterSlot>) {
        out.clear();
        self.probe_stamps.new_round();
        for idx in self.spec.cells_overlapping_circle(probe) {
            for &slot in &self.cells[self.spec.linear(idx)] {
                if self.probe_stamps.mark(slot.0) {
                    out.push(slot);
                }
            }
        }
    }

    /// Iterates over non-empty cells and their cluster lists — the outer
    /// loop of the joining phase (Algorithm 1, step 8: "for c = 0 to
    /// MAX_GRID_CELL").
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (CellIdx, &[ClusterSlot])> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(move |(linear, v)| (self.spec.from_linear(linear), v.as_slice()))
    }

    /// Removes every registration, keeping allocations.
    pub fn clear(&mut self) {
        for cell in &mut self.cells {
            cell.clear();
        }
        for reg in &mut self.registrations {
            reg.clear();
        }
        self.live.fill(false);
        self.registered = 0;
    }

    /// Estimated heap footprint in bytes (cell vectors + registrations).
    pub fn estimated_bytes(&self) -> usize {
        let header = std::mem::size_of::<Vec<ClusterSlot>>();
        let id = std::mem::size_of::<ClusterSlot>();
        let cells: usize =
            self.cells.len() * header + self.cells.iter().map(|c| c.capacity() * id).sum::<usize>();
        let regs: usize = self.registrations.len() * header
            + self
                .registrations
                .iter()
                .map(|v| v.capacity() * 4)
                .sum::<usize>();
        let regions = self.regions.capacity() * std::mem::size_of::<Circle>();
        cells + regs + regions + self.probe_stamps.estimated_bytes()
    }

    /// Internal consistency check for tests: every registration points at a
    /// cell that actually lists the cluster, and vice versa.
    #[cfg(test)]
    fn check_consistent(&self) {
        for (i, cells) in self.registrations.iter().enumerate() {
            for &linear in cells {
                assert!(
                    self.cells[linear as usize].contains(&ClusterSlot(i as u32)),
                    "slot {i} registered in cell {linear} but absent"
                );
            }
        }
        for (linear, cell) in self.cells.iter().enumerate() {
            for slot in cell {
                assert!(
                    self.registrations[slot.index()].contains(&(linear as u32)),
                    "{slot:?} listed in cell {linear} but not registered"
                );
            }
        }
        assert_eq!(
            self.registered,
            self.live.iter().filter(|&&l| l).count(),
            "registered count drifted"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_spatial::Rect;

    fn grid(n: u32) -> ClusterGrid {
        ClusterGrid::new(GridSpec::new(Rect::square(100.0), n))
    }

    #[test]
    fn insert_and_probe() {
        let mut g = grid(10);
        let n = g.insert(ClusterSlot(1), &Circle::new(Point::new(55.0, 55.0), 3.0));
        assert_eq!(n, 1);
        assert_eq!(g.clusters_near(&Point::new(57.0, 52.0)), &[ClusterSlot(1)]);
        assert!(g.clusters_near(&Point::new(5.0, 5.0)).is_empty());
        assert_eq!(g.cluster_count(), 1);
        g.check_consistent();
    }

    #[test]
    fn spanning_cluster_registered_in_all_cells() {
        let mut g = grid(10);
        // Circle centred on a 4-corner junction.
        let n = g.insert(ClusterSlot(2), &Circle::new(Point::new(50.0, 50.0), 5.0));
        assert_eq!(n, 4);
        for p in [
            Point::new(48.0, 48.0),
            Point::new(52.0, 48.0),
            Point::new(48.0, 52.0),
            Point::new(52.0, 52.0),
        ] {
            assert_eq!(g.clusters_near(&p), &[ClusterSlot(2)]);
        }
        g.check_consistent();
    }

    #[test]
    fn reinsert_relocates() {
        let mut g = grid(10);
        g.insert(ClusterSlot(1), &Circle::new(Point::new(15.0, 15.0), 2.0));
        g.insert(ClusterSlot(1), &Circle::new(Point::new(85.0, 85.0), 2.0));
        assert!(g.clusters_near(&Point::new(15.0, 15.0)).is_empty());
        assert_eq!(g.clusters_near(&Point::new(85.0, 85.0)), &[ClusterSlot(1)]);
        assert_eq!(g.cluster_count(), 1);
        g.check_consistent();
    }

    #[test]
    fn reinsert_same_cells_is_stable() {
        let mut g = grid(10);
        let c = Circle::new(Point::new(15.0, 15.0), 2.0);
        g.insert(ClusterSlot(1), &c);
        g.insert(ClusterSlot(1), &c);
        assert_eq!(g.clusters_near(&Point::new(15.0, 15.0)).len(), 1);
        g.check_consistent();
    }

    #[test]
    fn growth_extends_registration() {
        let mut g = grid(10);
        g.insert(ClusterSlot(1), &Circle::new(Point::new(50.0, 50.0), 1.0));
        let before = g.cells_of(ClusterSlot(1)).unwrap().len();
        g.insert(ClusterSlot(1), &Circle::new(Point::new(50.0, 50.0), 15.0));
        let after = g.cells_of(ClusterSlot(1)).unwrap().len();
        assert!(after > before);
        g.check_consistent();
    }

    #[test]
    fn remove_cleans_cells() {
        let mut g = grid(10);
        g.insert(ClusterSlot(1), &Circle::new(Point::new(50.0, 50.0), 8.0));
        g.insert(ClusterSlot(2), &Circle::new(Point::new(50.0, 50.0), 8.0));
        assert!(g.remove(ClusterSlot(1)));
        assert!(!g.remove(ClusterSlot(1)));
        for (_, cell) in g.iter_nonempty() {
            assert!(!cell.contains(&ClusterSlot(1)));
            assert!(cell.contains(&ClusterSlot(2)));
        }
        g.check_consistent();
    }

    #[test]
    fn iter_nonempty_covers_all_registrations() {
        let mut g = grid(5);
        g.insert(ClusterSlot(1), &Circle::new(Point::new(10.0, 10.0), 1.0));
        g.insert(ClusterSlot(2), &Circle::new(Point::new(90.0, 90.0), 1.0));
        let seen: Vec<ClusterSlot> = g
            .iter_nonempty()
            .flat_map(|(_, cell)| cell.iter().copied())
            .collect();
        assert_eq!(seen.len(), 2);
        assert!(seen.contains(&ClusterSlot(1)));
        assert!(seen.contains(&ClusterSlot(2)));
    }

    #[test]
    fn clear_resets() {
        let mut g = grid(5);
        g.insert(ClusterSlot(1), &Circle::new(Point::new(10.0, 10.0), 1.0));
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.iter_nonempty().count(), 0);
        g.check_consistent();
    }

    #[test]
    fn many_clusters_same_cell() {
        let mut g = grid(4);
        for i in 0..20 {
            g.insert(ClusterSlot(i), &Circle::new(Point::new(10.0, 10.0), 0.5));
        }
        assert_eq!(g.clusters_near(&Point::new(10.0, 10.0)).len(), 20);
        for i in (0..20).step_by(2) {
            g.remove(ClusterSlot(i));
        }
        assert_eq!(g.clusters_near(&Point::new(10.0, 10.0)).len(), 10);
        g.check_consistent();
    }

    #[test]
    fn removal_preserves_cell_order() {
        let mut g = grid(4);
        for i in 0..6 {
            g.insert(ClusterSlot(i), &Circle::new(Point::new(10.0, 10.0), 0.5));
        }
        g.remove(ClusterSlot(1));
        g.remove(ClusterSlot(4));
        assert_eq!(
            g.clusters_near(&Point::new(10.0, 10.0)),
            &[
                ClusterSlot(0),
                ClusterSlot(2),
                ClusterSlot(3),
                ClusterSlot(5)
            ],
            "survivors keep their relative (insertion) order"
        );
        g.check_consistent();
    }

    #[test]
    fn cells_of_and_cell_linear_agree() {
        let mut g = grid(10);
        g.insert(ClusterSlot(7), &Circle::new(Point::new(50.0, 50.0), 8.0));
        let cells = g.cells_of(ClusterSlot(7)).expect("registered").to_vec();
        assert!(!cells.is_empty());
        for linear in cells {
            assert!(g.cell_linear(linear).contains(&ClusterSlot(7)));
        }
        assert!(g.cells_of(ClusterSlot(8)).is_none());
    }

    #[test]
    fn out_of_bounds_region_registers_with_zero_cells() {
        // Post-join relocation can carry a cluster past the grid bounds
        // before the next maintenance pass dissolves it: it must stay
        // registered (so removal and re-registration behave) while
        // appearing in no cell.
        let mut g = grid(10);
        let n = g.insert(ClusterSlot(3), &Circle::new(Point::new(500.0, 500.0), 2.0));
        assert_eq!(n, 0);
        assert_eq!(g.cluster_count(), 1);
        assert_eq!(g.cells_of(ClusterSlot(3)), Some(&[][..]));
        assert_eq!(g.iter_nonempty().count(), 0);
        // Wandering back in re-registers normally.
        g.insert(ClusterSlot(3), &Circle::new(Point::new(50.0, 50.0), 2.0));
        assert!(!g.cells_of(ClusterSlot(3)).unwrap().is_empty());
        assert_eq!(g.cluster_count(), 1);
        assert!(g.remove(ClusterSlot(3)));
        assert!(g.is_empty());
        g.check_consistent();
    }

    /// Regression: re-registering the identical region (the post-join
    /// relocation path for a stationary cluster) must not enumerate cells
    /// again — the fast path answers from the stored region.
    #[test]
    fn reinsert_identical_region_takes_fast_path() {
        let mut g = grid(10);
        let c = Circle::new(Point::new(55.0, 55.0), 3.0);
        g.insert(ClusterSlot(1), &c);
        assert_eq!(g.fast_path_hits(), 0, "first insert enumerates");
        let n = g.insert(ClusterSlot(1), &c);
        assert_eq!(n, 1);
        assert_eq!(g.fast_path_hits(), 1);
        assert_eq!(g.clusters_near(&Point::new(55.0, 55.0)), &[ClusterSlot(1)]);
        assert_eq!(g.region_of(ClusterSlot(1)), Some(&c));
        g.check_consistent();
    }

    /// Regression: a relocation whose covered cell set is unchanged (the
    /// moved bounding box stays inside the same single interior cell) early
    /// outs on the covered-rect check without re-pushing — re-pushing would
    /// shuffle cell-list order, which the Leader–Follower probe depends on.
    #[test]
    fn moved_region_with_unchanged_covered_rect_takes_fast_path() {
        let mut g = grid(10);
        // Several slots in the same cell establish a list order to preserve.
        for i in 0..4 {
            g.insert(
                ClusterSlot(i),
                &Circle::new(Point::new(54.0 + i as f64 * 0.5, 55.0), 1.0),
            );
        }
        let order_before = g.clusters_near(&Point::new(55.0, 55.0)).to_vec();
        let hits_before = g.fast_path_hits();
        // Slot 1 drifts within cell (5,5) = [50,60)×[50,60): same cell set.
        let moved = Circle::new(Point::new(57.0, 57.0), 1.5);
        assert_eq!(g.insert(ClusterSlot(1), &moved), 1);
        assert_eq!(g.fast_path_hits(), hits_before + 1);
        assert_eq!(
            g.clusters_near(&Point::new(55.0, 55.0)),
            order_before.as_slice(),
            "fast path must not reorder the cell list"
        );
        assert_eq!(g.region_of(ClusterSlot(1)), Some(&moved));
        // The stored region updated: re-inserting the moved circle again
        // now takes the exact-region fast path.
        g.insert(ClusterSlot(1), &moved);
        assert_eq!(g.fast_path_hits(), hits_before + 2);
        g.check_consistent();
    }

    /// A region whose bounding box leaves the area must NOT take the
    /// covered-rect fast path: border clamping maps outside boxes onto
    /// border cells the circle may not intersect at all (a clamped 1×1 box
    /// can even belong to a zero-cell registration).
    #[test]
    fn out_of_area_region_bypasses_fast_path_and_recomputes() {
        let mut g = grid(10);
        // Registered in the corner cell.
        g.insert(ClusterSlot(1), &Circle::new(Point::new(98.0, 98.0), 1.0));
        assert_eq!(g.cells_of(ClusterSlot(1)).unwrap().len(), 1);
        // Fully outside: clamping would map its bbox onto the same corner
        // cell, but the true covered set is empty.
        let outside = Circle::new(Point::new(150.0, 150.0), 1.0);
        assert_eq!(g.insert(ClusterSlot(1), &outside), 0);
        assert_eq!(g.cells_of(ClusterSlot(1)), Some(&[][..]));
        assert_eq!(g.fast_path_hits(), 0);
        g.check_consistent();
    }

    /// A genuinely changed cell set still recomputes and re-registers.
    #[test]
    fn changed_cell_set_recomputes_past_the_fast_paths() {
        let mut g = grid(10);
        g.insert(ClusterSlot(1), &Circle::new(Point::new(55.0, 55.0), 1.0));
        // Growing past the cell boundary covers more cells.
        let n = g.insert(ClusterSlot(1), &Circle::new(Point::new(55.0, 55.0), 8.0));
        assert!(n > 1);
        assert_eq!(g.fast_path_hits(), 0);
        g.check_consistent();
    }

    #[test]
    fn estimated_bytes_tracks_contents() {
        let mut g = grid(10);
        let empty = g.estimated_bytes();
        for i in 0..50 {
            g.insert(
                ClusterSlot(i),
                &Circle::new(Point::new((i % 10) as f64 * 10.0, 50.0), 1.0),
            );
        }
        assert!(g.estimated_bytes() > empty);
    }
}
