//! The ClusterGrid (paper §4.1).
//!
//! "ClusterGrid is a spatial grid table dividing the data space into N×N
//! grid cells. For each grid cell, ClusterGrid maintains a list of cluster
//! ids of moving clusters that overlap with that cell."
//!
//! Unlike the generic [`scuba_spatial::SpatialGrid`], the ClusterGrid must
//! support *removal and relocation*: clusters grow during the pre-join
//! phase and are re-located along their velocity vectors during post-join
//! maintenance. Registrations are tracked per cluster so both operations
//! are proportional to the handful of cells a compact cluster overlaps.

use scuba_spatial::{CellIdx, Circle, FxHashMap, GridSpec, Point};

use crate::cluster::ClusterId;

/// Spatial grid of moving-cluster regions.
#[derive(Debug, Clone)]
pub struct ClusterGrid {
    spec: GridSpec,
    cells: Vec<Vec<ClusterId>>,
    /// Linear cell indices each cluster is currently registered in.
    registrations: FxHashMap<ClusterId, Vec<u32>>,
    /// Epoch-stamped visited table for [`ClusterGrid::clusters_within_into`]:
    /// a cluster is a duplicate within one probe iff its stamp equals the
    /// current probe round. Replaces a per-probe `contains` scan / set
    /// allocation with an O(1) stamp check that never clears.
    probe_stamps: FxHashMap<ClusterId, u64>,
    probe_round: u64,
}

impl ClusterGrid {
    /// Creates an empty grid over the given partitioning.
    pub fn new(spec: GridSpec) -> Self {
        ClusterGrid {
            spec,
            cells: vec![Vec::new(); spec.cell_count()],
            registrations: FxHashMap::default(),
            probe_stamps: FxHashMap::default(),
            probe_round: 0,
        }
    }

    /// The partitioning geometry.
    #[inline]
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Number of registered clusters.
    #[inline]
    pub fn cluster_count(&self) -> usize {
        self.registrations.len()
    }

    /// Whether no clusters are registered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.registrations.is_empty()
    }

    /// Registers a cluster region, replacing any previous registration.
    /// Returns the number of cells the cluster now overlaps.
    pub fn insert(&mut self, cid: ClusterId, region: &Circle) -> usize {
        let new_cells: Vec<u32> = self
            .spec
            .cells_overlapping_circle(region)
            .map(|idx| self.spec.linear(idx) as u32)
            .collect();
        match self.registrations.get(&cid) {
            Some(old) if *old == new_cells => return new_cells.len(),
            Some(_) => self.unregister(cid),
            None => {}
        }
        for &linear in &new_cells {
            self.cells[linear as usize].push(cid);
        }
        let n = new_cells.len();
        self.registrations.insert(cid, new_cells);
        n
    }

    /// Removes a cluster's registration. Returns `true` if it was present.
    pub fn remove(&mut self, cid: ClusterId) -> bool {
        if self.registrations.contains_key(&cid) {
            self.unregister(cid);
            self.registrations.remove(&cid);
            self.probe_stamps.remove(&cid);
            true
        } else {
            false
        }
    }

    fn unregister(&mut self, cid: ClusterId) {
        if let Some(cells) = self.registrations.get(&cid) {
            for &linear in cells {
                let cell = &mut self.cells[linear as usize];
                if let Some(pos) = cell.iter().position(|&c| c == cid) {
                    // Order-preserving: the Leader–Follower probe absorbs
                    // into the *first* passing candidate, so cell order is
                    // semantically significant and removals must not
                    // shuffle the survivors.
                    cell.remove(pos);
                }
            }
        }
    }

    /// The linear cell indices a cluster is currently registered in, or
    /// `None` if it is not registered.
    #[inline]
    pub fn cells_of(&self, cid: ClusterId) -> Option<&[u32]> {
        self.registrations.get(&cid).map(Vec::as_slice)
    }

    /// The clusters registered in a cell given by linear index.
    #[inline]
    pub fn cell_linear(&self, linear: u32) -> &[ClusterId] {
        &self.cells[linear as usize]
    }

    /// The clusters overlapping the cell that contains `p` — the §3.2
    /// step-1 probe ("use moving object's position to probe the spatial
    /// grid index ClusterGrid to find the moving clusters in the proximity
    /// of the current location").
    #[inline]
    pub fn clusters_near(&self, p: &Point) -> &[ClusterId] {
        let idx = self.spec.cell_of(p);
        &self.cells[self.spec.linear(idx)]
    }

    /// The clusters registered in a specific cell.
    #[inline]
    pub fn cell(&self, idx: CellIdx) -> &[ClusterId] {
        &self.cells[self.spec.linear(idx)]
    }

    /// Collects (deduplicated, in deterministic cell order) the clusters
    /// registered in any cell overlapping `probe` into `out`.
    ///
    /// This is the step-1 probe used with `probe = Circle(loc, Θ_D)`:
    /// candidate clusters must have their centroid within Θ_D of the
    /// update, and a cluster's registration always covers its centroid, so
    /// probing the Θ_D disk cannot miss a joinable cluster regardless of
    /// how fine the grid is.
    pub fn clusters_within_into(&mut self, probe: &Circle, out: &mut Vec<ClusterId>) {
        out.clear();
        self.probe_round += 1;
        let round = self.probe_round;
        for idx in self.spec.cells_overlapping_circle(probe) {
            for &cid in &self.cells[self.spec.linear(idx)] {
                let stamp = self.probe_stamps.entry(cid).or_insert(0);
                if *stamp != round {
                    *stamp = round;
                    out.push(cid);
                }
            }
        }
    }

    /// Iterates over non-empty cells and their cluster lists — the outer
    /// loop of the joining phase (Algorithm 1, step 8: "for c = 0 to
    /// MAX_GRID_CELL").
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (CellIdx, &[ClusterId])> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(move |(linear, v)| (self.spec.from_linear(linear), v.as_slice()))
    }

    /// Removes every registration, keeping allocations.
    pub fn clear(&mut self) {
        for cell in &mut self.cells {
            cell.clear();
        }
        self.registrations.clear();
        self.probe_stamps.clear();
    }

    /// Estimated heap footprint in bytes (cell vectors + registrations).
    pub fn estimated_bytes(&self) -> usize {
        let header = std::mem::size_of::<Vec<ClusterId>>();
        let id = std::mem::size_of::<ClusterId>();
        let cells: usize =
            self.cells.len() * header + self.cells.iter().map(|c| c.capacity() * id).sum::<usize>();
        let regs: usize = self
            .registrations
            .values()
            .map(|v| header + v.capacity() * 4 + id + 8)
            .sum();
        cells + regs
    }

    /// Internal consistency check for tests: every registration points at a
    /// cell that actually lists the cluster, and vice versa.
    #[cfg(test)]
    fn check_consistent(&self) {
        for (cid, cells) in &self.registrations {
            for &linear in cells {
                assert!(
                    self.cells[linear as usize].contains(cid),
                    "{cid:?} registered in cell {linear} but absent"
                );
            }
        }
        for (linear, cell) in self.cells.iter().enumerate() {
            for cid in cell {
                assert!(
                    self.registrations[cid].contains(&(linear as u32)),
                    "{cid:?} listed in cell {linear} but not registered"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_spatial::Rect;

    fn grid(n: u32) -> ClusterGrid {
        ClusterGrid::new(GridSpec::new(Rect::square(100.0), n))
    }

    #[test]
    fn insert_and_probe() {
        let mut g = grid(10);
        let n = g.insert(ClusterId(1), &Circle::new(Point::new(55.0, 55.0), 3.0));
        assert_eq!(n, 1);
        assert_eq!(g.clusters_near(&Point::new(57.0, 52.0)), &[ClusterId(1)]);
        assert!(g.clusters_near(&Point::new(5.0, 5.0)).is_empty());
        assert_eq!(g.cluster_count(), 1);
        g.check_consistent();
    }

    #[test]
    fn spanning_cluster_registered_in_all_cells() {
        let mut g = grid(10);
        // Circle centred on a 4-corner junction.
        let n = g.insert(ClusterId(2), &Circle::new(Point::new(50.0, 50.0), 5.0));
        assert_eq!(n, 4);
        for p in [
            Point::new(48.0, 48.0),
            Point::new(52.0, 48.0),
            Point::new(48.0, 52.0),
            Point::new(52.0, 52.0),
        ] {
            assert_eq!(g.clusters_near(&p), &[ClusterId(2)]);
        }
        g.check_consistent();
    }

    #[test]
    fn reinsert_relocates() {
        let mut g = grid(10);
        g.insert(ClusterId(1), &Circle::new(Point::new(15.0, 15.0), 2.0));
        g.insert(ClusterId(1), &Circle::new(Point::new(85.0, 85.0), 2.0));
        assert!(g.clusters_near(&Point::new(15.0, 15.0)).is_empty());
        assert_eq!(g.clusters_near(&Point::new(85.0, 85.0)), &[ClusterId(1)]);
        assert_eq!(g.cluster_count(), 1);
        g.check_consistent();
    }

    #[test]
    fn reinsert_same_cells_is_stable() {
        let mut g = grid(10);
        let c = Circle::new(Point::new(15.0, 15.0), 2.0);
        g.insert(ClusterId(1), &c);
        g.insert(ClusterId(1), &c);
        assert_eq!(g.clusters_near(&Point::new(15.0, 15.0)).len(), 1);
        g.check_consistent();
    }

    #[test]
    fn growth_extends_registration() {
        let mut g = grid(10);
        g.insert(ClusterId(1), &Circle::new(Point::new(50.0, 50.0), 1.0));
        let before = g.registrations[&ClusterId(1)].len();
        g.insert(ClusterId(1), &Circle::new(Point::new(50.0, 50.0), 15.0));
        let after = g.registrations[&ClusterId(1)].len();
        assert!(after > before);
        g.check_consistent();
    }

    #[test]
    fn remove_cleans_cells() {
        let mut g = grid(10);
        g.insert(ClusterId(1), &Circle::new(Point::new(50.0, 50.0), 8.0));
        g.insert(ClusterId(2), &Circle::new(Point::new(50.0, 50.0), 8.0));
        assert!(g.remove(ClusterId(1)));
        assert!(!g.remove(ClusterId(1)));
        for (_, cell) in g.iter_nonempty() {
            assert!(!cell.contains(&ClusterId(1)));
            assert!(cell.contains(&ClusterId(2)));
        }
        g.check_consistent();
    }

    #[test]
    fn iter_nonempty_covers_all_registrations() {
        let mut g = grid(5);
        g.insert(ClusterId(1), &Circle::new(Point::new(10.0, 10.0), 1.0));
        g.insert(ClusterId(2), &Circle::new(Point::new(90.0, 90.0), 1.0));
        let seen: Vec<ClusterId> = g
            .iter_nonempty()
            .flat_map(|(_, cell)| cell.iter().copied())
            .collect();
        assert_eq!(seen.len(), 2);
        assert!(seen.contains(&ClusterId(1)));
        assert!(seen.contains(&ClusterId(2)));
    }

    #[test]
    fn clear_resets() {
        let mut g = grid(5);
        g.insert(ClusterId(1), &Circle::new(Point::new(10.0, 10.0), 1.0));
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.iter_nonempty().count(), 0);
        g.check_consistent();
    }

    #[test]
    fn many_clusters_same_cell() {
        let mut g = grid(4);
        for i in 0..20 {
            g.insert(ClusterId(i), &Circle::new(Point::new(10.0, 10.0), 0.5));
        }
        assert_eq!(g.clusters_near(&Point::new(10.0, 10.0)).len(), 20);
        for i in (0..20).step_by(2) {
            g.remove(ClusterId(i));
        }
        assert_eq!(g.clusters_near(&Point::new(10.0, 10.0)).len(), 10);
        g.check_consistent();
    }

    #[test]
    fn removal_preserves_cell_order() {
        let mut g = grid(4);
        for i in 0..6 {
            g.insert(ClusterId(i), &Circle::new(Point::new(10.0, 10.0), 0.5));
        }
        g.remove(ClusterId(1));
        g.remove(ClusterId(4));
        assert_eq!(
            g.clusters_near(&Point::new(10.0, 10.0)),
            &[ClusterId(0), ClusterId(2), ClusterId(3), ClusterId(5)],
            "survivors keep their relative (insertion) order"
        );
        g.check_consistent();
    }

    #[test]
    fn cells_of_and_cell_linear_agree() {
        let mut g = grid(10);
        g.insert(ClusterId(7), &Circle::new(Point::new(50.0, 50.0), 8.0));
        let cells = g.cells_of(ClusterId(7)).expect("registered").to_vec();
        assert!(!cells.is_empty());
        for linear in cells {
            assert!(g.cell_linear(linear).contains(&ClusterId(7)));
        }
        assert!(g.cells_of(ClusterId(8)).is_none());
    }

    #[test]
    fn estimated_bytes_tracks_contents() {
        let mut g = grid(10);
        let empty = g.estimated_bytes();
        for i in 0..50 {
            g.insert(
                ClusterId(i),
                &Circle::new(Point::new((i % 10) as f64 * 10.0, 50.0), 1.0),
            );
        }
        assert!(g.estimated_bytes() > empty);
    }
}
