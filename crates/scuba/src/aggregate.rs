//! Cluster-as-summary aggregate queries — the §1 extension.
//!
//! "Since clusters themselves serve as summaries of the objects they
//! contain (i.e., aggregate) based on objects' common properties. This can
//! facilitate in answering some of the aggregate queries."
//!
//! [`estimated_object_count`] answers a COUNT-over-region aggregate from
//! cluster summaries alone — O(#clusters) instead of O(#objects) — by
//! apportioning each cluster's object count according to how much of its
//! region overlaps the queried rectangle. [`exact_object_count`]
//! materialises member positions for the precise answer (shed members fall
//! back to the centroid), which is what the estimate is validated against.

use scuba_spatial::{Circle, GridSpec, Rect};

use crate::clustering::ClusterEngine;

/// Estimates the number of objects inside `region` from cluster summaries.
///
/// Apportioning rule per cluster:
/// * region fully contains the cluster circle → all of its objects count;
/// * disjoint → none;
/// * partial overlap → objects × (overlap area of the circle's bounding box
///   with the region) / (bounding-box area) — a deliberate first-order
///   approximation that needs no member access.
pub fn estimated_object_count(engine: &ClusterEngine, region: &Rect) -> f64 {
    let mut total = 0.0;
    for cluster in engine.clusters().values() {
        let circle = cluster.region();
        let objects = cluster.object_count() as f64;
        if objects == 0.0 {
            continue;
        }
        total += objects * overlap_fraction(&circle, region);
    }
    total
}

/// Builds an `n × n` object-density histogram over `area` from cluster
/// summaries alone: each cluster's object count is apportioned to the cells
/// its region overlaps, weighted by overlap fraction. Row-major, row 0 at
/// the bottom (min-y) edge. O(#clusters × cells-per-cluster) — never
/// touches members.
pub fn density_grid(engine: &ClusterEngine, area: &Rect, n: u32) -> Vec<f64> {
    let spec = GridSpec::new(*area, n.max(1));
    let mut grid = vec![0.0f64; spec.cell_count()];
    for cluster in engine.clusters().values() {
        let objects = cluster.object_count() as f64;
        if objects == 0.0 {
            continue;
        }
        let circle = cluster.region();
        // Point clusters land entirely in one cell.
        if circle.radius == 0.0 {
            if area.contains(&circle.center) {
                grid[spec.linear(spec.cell_of(&circle.center))] += objects;
            }
            continue;
        }
        // Apportion by per-cell overlap fraction, normalised so the cluster
        // contributes exactly its object count to the covered cells.
        let cells: Vec<(usize, f64)> = spec
            .cells_overlapping_circle(&circle)
            .map(|idx| {
                let rect = spec.cell_rect(idx);
                let frac = rect
                    .intersection(&circle.bounding_rect())
                    .map(|i| i.area())
                    .unwrap_or(0.0);
                (spec.linear(idx), frac)
            })
            .collect();
        let total: f64 = cells.iter().map(|(_, f)| f).sum();
        if total <= 0.0 {
            continue;
        }
        for (linear, frac) in cells {
            grid[linear] += objects * frac / total;
        }
    }
    grid
}

/// Counts objects inside `region` exactly (centroid fallback for shed
/// members).
pub fn exact_object_count(engine: &ClusterEngine, region: &Rect) -> usize {
    let mut count = 0;
    for cluster in engine.clusters().values() {
        for member in cluster.members() {
            if !member.entity.is_object() {
                continue;
            }
            let pos = cluster
                .member_position(member)
                .unwrap_or_else(|| cluster.centroid());
            if region.contains(&pos) {
                count += 1;
            }
        }
    }
    count
}

/// Fraction of the circle (by bounding-box area) overlapping `region`, in
/// `[0, 1]`. Degenerate circles (radius 0) count fully iff their center is
/// inside.
fn overlap_fraction(circle: &Circle, region: &Rect) -> f64 {
    if circle.radius == 0.0 {
        return if region.contains(&circle.center) {
            1.0
        } else {
            0.0
        };
    }
    if !circle.intersects_rect(region) {
        return 0.0;
    }
    let bbox = circle.bounding_rect();
    if region.contains_rect(&bbox) {
        return 1.0;
    }
    match bbox.intersection(region) {
        Some(i) => (i.area() / bbox.area()).clamp(0.0, 1.0),
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ScubaParams;
    use scuba_motion::{LocationUpdate, ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec};
    use scuba_spatial::Point;

    const CN: Point = Point {
        x: 1000.0,
        y: 500.0,
    };

    fn obj(id: u64, x: f64, y: f64) -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            0,
            30.0,
            CN,
            ObjectAttrs::default(),
        )
    }

    fn engine_with_blob(at: Point, n: u64) -> ClusterEngine {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        for i in 0..n {
            e.process_update(&obj(i, at.x + (i % 5) as f64, at.y + (i / 5) as f64));
        }
        e
    }

    #[test]
    fn exact_count_inside_and_outside() {
        let e = engine_with_blob(Point::new(500.0, 500.0), 10);
        let around = Rect::centered(Point::new(502.0, 501.0), 50.0, 50.0);
        assert_eq!(exact_object_count(&e, &around), 10);
        let far = Rect::centered(Point::new(100.0, 100.0), 50.0, 50.0);
        assert_eq!(exact_object_count(&e, &far), 0);
    }

    #[test]
    fn estimate_full_containment_equals_exact() {
        let e = engine_with_blob(Point::new(500.0, 500.0), 10);
        let around = Rect::centered(Point::new(502.0, 501.0), 200.0, 200.0);
        let est = estimated_object_count(&e, &around);
        assert!((est - 10.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_zero_when_disjoint() {
        let e = engine_with_blob(Point::new(500.0, 500.0), 10);
        let far = Rect::centered(Point::new(100.0, 100.0), 20.0, 20.0);
        assert_eq!(estimated_object_count(&e, &far), 0.0);
    }

    #[test]
    fn estimate_partial_is_between_bounds() {
        let e = engine_with_blob(Point::new(500.0, 500.0), 20);
        // Region covering roughly half of the blob.
        let half = Rect::from_corners(Point::new(400.0, 400.0), Point::new(502.0, 600.0));
        let est = estimated_object_count(&e, &half);
        assert!(est > 0.0);
        assert!(est <= 20.0);
    }

    #[test]
    fn queries_do_not_count_as_objects() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0));
        e.process_update(&LocationUpdate::query(
            QueryId(1),
            Point::new(501.0, 500.0),
            0,
            30.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(10.0),
            },
        ));
        let around = Rect::centered(Point::new(500.0, 500.0), 100.0, 100.0);
        assert_eq!(exact_object_count(&e, &around), 1);
        assert!((estimated_object_count(&e, &around) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_fraction_cases() {
        let c = Circle::new(Point::new(50.0, 50.0), 10.0);
        let all = Rect::square(100.0);
        assert_eq!(overlap_fraction(&c, &all), 1.0);
        let none = Rect::from_corners(Point::new(90.0, 90.0), Point::new(99.0, 99.0));
        assert_eq!(overlap_fraction(&c, &none), 0.0);
        let half = Rect::from_corners(Point::new(0.0, 0.0), Point::new(50.0, 100.0));
        let f = overlap_fraction(&c, &half);
        assert!(f > 0.0 && f < 1.0);

        let dot = Circle::point(Point::new(5.0, 5.0));
        assert_eq!(overlap_fraction(&dot, &all), 1.0);
        assert_eq!(overlap_fraction(&dot, &none), 0.0);
    }

    #[test]
    fn estimate_tracks_exact_on_multiple_clusters() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        for i in 0..10 {
            e.process_update(&obj(i, 200.0 + i as f64, 200.0));
        }
        for i in 10..20 {
            e.process_update(&obj(i, 800.0 + (i - 10) as f64, 800.0));
        }
        let left = Rect::centered(Point::new(205.0, 200.0), 100.0, 100.0);
        assert_eq!(exact_object_count(&e, &left), 10);
        assert!((estimated_object_count(&e, &left) - 10.0).abs() < 1e-6);
        let everything = Rect::square(1000.0);
        assert_eq!(exact_object_count(&e, &everything), 20);
        assert!((estimated_object_count(&e, &everything) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn density_grid_conserves_object_count() {
        let e = engine_with_blob(Point::new(500.0, 500.0), 20);
        let area = Rect::square(1000.0);
        let grid = density_grid(&e, &area, 10);
        let total: f64 = grid.iter().sum();
        assert!((total - 20.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn density_grid_localises_mass() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        for i in 0..10 {
            e.process_update(&obj(i, 150.0 + i as f64, 150.0));
        }
        for i in 10..20 {
            e.process_update(&obj(i, 850.0 + (i - 10) as f64, 850.0));
        }
        let area = Rect::square(1000.0);
        let grid = density_grid(&e, &area, 4); // 250-unit cells
                                               // Mass concentrated in cell (0,0) and cell (3,3).
        let spec = GridSpec::new(area, 4);
        let low = grid[spec.linear(spec.cell_of(&Point::new(150.0, 150.0)))];
        let high = grid[spec.linear(spec.cell_of(&Point::new(850.0, 850.0)))];
        assert!(low > 8.0, "low cell {low}");
        assert!(high > 8.0, "high cell {high}");
    }

    #[test]
    fn density_grid_empty_engine() {
        let e = ClusterEngine::new(ScubaParams::default(), Rect::square(100.0));
        let grid = density_grid(&e, &Rect::square(100.0), 5);
        assert_eq!(grid.len(), 25);
        assert!(grid.iter().all(|&v| v == 0.0));
    }
}
