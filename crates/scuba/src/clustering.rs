//! Incremental moving-cluster formation (paper §3.2).
//!
//! SCUBA adapts a Leader–Follower style incremental clusterer: each arriving
//! location update makes a local, one-at-a-time decision —
//!
//! 1. probe the ClusterGrid at the update's position for candidate clusters;
//! 2. no candidates ⇒ found a new single-member cluster (radius 0);
//! 3. otherwise check each candidate for: same destination connection node,
//!    centroid within Θ_D, speed within Θ_S of the cluster average;
//! 4. the first candidate passing all three absorbs the entity;
//! 5. no candidate passes ⇒ found a new single-member cluster.
//!
//! On top of the paper's five steps this module handles the membership
//! churn the paper describes in prose: an entity whose new update no longer
//! fits its current cluster leaves it (dissolving the cluster if it became
//! empty) and is re-clustered from step 1; an entity that still fits simply
//! refreshes its relative position.
//!
//! Cluster storage is the generational [`ClusterStore`]: every hot path
//! addresses clusters by dense [`ClusterSlot`] handles (the grid, the home
//! map, the join kernel), while [`ClusterId`] remains the durable public
//! identity. All maintenance loops iterate in slot order, which is
//! deterministic for a given update history.

use scuba_motion::{EntityAttrs, LocationUpdate};
use scuba_spatial::{Circle, GridSpec, Rect, Time};

use crate::cluster::{ClusterId, MovingCluster};
use crate::index::{AnyIndex, SpatialIndex};
use crate::params::ScubaParams;
use crate::store::{ClusterSlot, ClusterStore};
use crate::tables::{ClusterHome, ObjectsTable, QueriesTable};

// Re-exported here for backwards compatibility: the tracker used to live in
// this module before it became a dense per-slot table in [`crate::store`].
pub use crate::store::EpochTracker;

/// Counters describing clustering activity, for tests and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusteringStats {
    /// Clusters founded (steps 2 and 5).
    pub clusters_formed: u64,
    /// Updates absorbed into an existing cluster (step 4).
    pub absorptions: u64,
    /// In-place refreshes of an existing membership.
    pub refreshes: u64,
    /// Memberships dropped because the entity no longer fit.
    pub evictions: u64,
    /// Clusters dissolved (emptied or expired).
    pub dissolutions: u64,
    /// Member positions discarded by load shedding.
    pub positions_shed: u64,
}

/// The clustering state machine: store + home + grid + tables.
#[derive(Debug)]
pub struct ClusterEngine {
    params: ScubaParams,
    grid: AnyIndex,
    store: ClusterStore,
    home: ClusterHome,
    objects: ObjectsTable,
    queries: QueriesTable,
    next_cid: u64,
    stats: ClusteringStats,
    updates_processed: u64,
    /// Reusable buffer for grid probes (hot path, once per update).
    probe_scratch: Vec<ClusterSlot>,
}

impl ClusterEngine {
    /// Creates an engine clustering over `area` with the given parameters.
    pub fn new(params: ScubaParams, area: Rect) -> Self {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid SCUBA params: {e}"));
        ClusterEngine {
            params,
            grid: AnyIndex::new(
                params.index,
                GridSpec::new(area, params.grid_cells),
                params.split_threshold,
                params.merge_threshold,
            ),
            store: ClusterStore::new(),
            home: ClusterHome::new(),
            objects: ObjectsTable::new(),
            queries: QueriesTable::new(),
            next_cid: 0,
            stats: ClusteringStats::default(),
            updates_processed: 0,
            probe_scratch: Vec::new(),
        }
    }

    // ---- accessors ---------------------------------------------------------

    /// The engine parameters.
    pub fn params(&self) -> &ScubaParams {
        &self.params
    }

    /// The spatial index playing the ClusterGrid role, behind the
    /// [`SpatialIndex`] trait. All consumers — step-1 probes, join
    /// pair-discovery, ingest routing, kNN, benches — go through this
    /// surface, so the uniform and adaptive implementations are
    /// interchangeable.
    pub fn grid(&self) -> &dyn SpatialIndex {
        self.grid.as_dyn()
    }

    /// The concrete index dispatcher (bench/diagnostic introspection —
    /// e.g. how many cells the adaptive grid currently refines).
    pub fn index(&self) -> &AnyIndex {
        &self.grid
    }

    /// Runs one incremental re-balance pass of the index (a no-op for the
    /// uniform grid). [`crate::engine::ScubaOperator`] calls this once per
    /// Δ, before the joining phase, so refinement decisions depend only on
    /// the registered regions at a fixed point of the pipeline — never on
    /// mid-tick transients — which keeps the adaptive grid deterministic.
    pub fn rebalance_index(&mut self) {
        self.grid.rebalance();
    }

    /// The cluster store (all live clusters). Alias of
    /// [`ClusterEngine::store`], kept for the many call sites that read
    /// "the engine's clusters".
    pub fn clusters(&self) -> &ClusterStore {
        &self.store
    }

    /// The generational cluster store.
    pub fn store(&self) -> &ClusterStore {
        &self.store
    }

    /// One cluster by durable id (cold path: hashes).
    pub fn cluster(&self, cid: ClusterId) -> Option<&MovingCluster> {
        self.store.get_by_id(cid)
    }

    /// One cluster by slot handle (hot path: indexed load).
    pub fn cluster_at(&self, slot: ClusterSlot) -> Option<&MovingCluster> {
        self.store.get(slot)
    }

    /// The slot currently holding cluster `cid`.
    pub fn slot_of(&self, cid: ClusterId) -> Option<ClusterSlot> {
        self.store.slot_of(cid)
    }

    /// The entity → cluster-slot map.
    pub fn home(&self) -> &ClusterHome {
        &self.home
    }

    /// The objects table.
    pub fn objects(&self) -> &ObjectsTable {
        &self.objects
    }

    /// The queries table.
    pub fn queries(&self) -> &QueriesTable {
        &self.queries
    }

    /// Activity counters.
    pub fn stats(&self) -> ClusteringStats {
        self.stats
    }

    /// Number of updates processed so far.
    pub fn updates_processed(&self) -> u64 {
        self.updates_processed
    }

    /// The per-slot mutation clock (incremental-join dirty tracking).
    pub fn epochs(&self) -> &EpochTracker {
        self.store.epochs()
    }

    /// Number of live clusters.
    pub fn cluster_count(&self) -> usize {
        self.store.len()
    }

    /// The coverage area the grid was built over.
    pub fn area(&self) -> Rect {
        self.grid.spec().area()
    }

    /// The next cluster id to be assigned (snapshot support).
    pub fn next_cluster_id(&self) -> u64 {
        self.next_cid
    }

    /// Restores an engine from previously captured state: parameters,
    /// area, cluster set (with members), attribute tables and the id
    /// counter. The store (with fresh slots and generations), grid and home
    /// map are rebuilt. Used by [`crate::snapshot`].
    pub fn restore(
        params: ScubaParams,
        area: Rect,
        clusters: Vec<MovingCluster>,
        objects: ObjectsTable,
        queries: QueriesTable,
        next_cid: u64,
        updates_processed: u64,
    ) -> Result<Self, String> {
        params.validate()?;
        let mut engine = ClusterEngine::new(params, area);
        engine.objects = objects;
        engine.queries = queries;
        engine.next_cid = next_cid;
        engine.updates_processed = updates_processed;
        for cluster in clusters {
            if cluster.cid.0 >= next_cid {
                return Err(format!(
                    "cluster id {} not below the id counter {next_cid}",
                    cluster.cid.0
                ));
            }
            if engine.store.slot_of(cluster.cid).is_some() {
                return Err("duplicate cluster id in snapshot".into());
            }
            let region = cluster.effective_region();
            let members: Vec<scuba_motion::EntityRef> =
                cluster.members().iter().map(|m| m.entity).collect();
            let slot = engine.store.insert(cluster);
            engine.grid.insert(slot, &region);
            for entity in members {
                if engine.home.assign(entity, slot).is_some() {
                    return Err(format!("entity {entity} appears in two clusters"));
                }
            }
        }
        Ok(engine)
    }

    // ---- the five steps ----------------------------------------------------

    /// Processes one location update (the cluster pre-join maintenance
    /// phase of Algorithm 1, step 6).
    pub fn process_update(&mut self, update: &LocationUpdate) {
        self.updates_processed += 1;
        self.upsert_attrs(update);

        // An entity already in a cluster either refreshes in place or
        // leaves before re-clustering.
        if let Some(slot) = self.home.cluster_of(update.entity) {
            debug_assert!(
                self.store
                    .get(slot)
                    .is_some_and(|c| c.contains(update.entity)),
                "home points at a slot not holding the entity"
            );
            let still_fits = self.store.get(slot).is_some_and(|c| {
                c.can_absorb(
                    update,
                    self.params.theta_d,
                    self.params.theta_s,
                    self.params.cnloc_tolerance,
                )
            });
            if still_fits {
                self.refresh_member(update, slot);
                return;
            }
            self.evict(update, slot);
        }

        // Step 1: probe the grid for candidates near the update. Probing
        // the Θ_D disk (not just the update's own cell) keeps clustering
        // behaviour independent of the grid granularity — with fine grids a
        // cell is much smaller than Θ_D and an own-cell probe would miss
        // most joinable clusters (cf. Fig. 9a, where SCUBA's cost barely
        // changes across grid sizes).
        let mut candidates = std::mem::take(&mut self.probe_scratch);
        match self.params.probe_scope {
            crate::params::ProbeScope::ThetaDisk => {
                let probe = scuba_spatial::Circle::new(update.loc, self.params.theta_d);
                self.grid.clusters_within_into(&probe, &mut candidates);
            }
            crate::params::ProbeScope::OwnCell => {
                candidates.clear();
                candidates.extend_from_slice(self.grid.clusters_near(&update.loc));
            }
        }
        // Steps 3–4: the first candidate satisfying all conditions absorbs.
        let chosen = candidates.iter().copied().find(|slot| {
            self.store.get(*slot).is_some_and(|c| {
                c.can_absorb(
                    update,
                    self.params.theta_d,
                    self.params.theta_s,
                    self.params.cnloc_tolerance,
                )
            })
        });

        self.probe_scratch = candidates;

        match chosen {
            Some(slot) => self.absorb_into(update, slot),
            // Steps 2 / 5: found a new single-member cluster.
            None => {
                self.found_cluster(update);
            }
        }
    }

    /// Keeps the attribute tables current for one update.
    fn upsert_attrs(&mut self, update: &LocationUpdate) {
        match update.attrs {
            EntityAttrs::Object(attrs) => {
                if let Some(id) = update.entity.as_object() {
                    self.objects.upsert(id, attrs);
                }
            }
            EntityAttrs::Query(attrs) => {
                if let Some(id) = update.entity.as_query() {
                    self.queries.upsert(id, attrs);
                }
            }
        }
    }

    /// Refreshes `update.entity` in place inside its (still fitting) home
    /// cluster at `slot`.
    fn refresh_member(&mut self, update: &LocationUpdate, slot: ClusterSlot) {
        let params = &self.params;
        let (shed, region_before, region) = self.store.update(slot, |cluster| {
            let shed = Self::shed_decision(params, cluster, update);
            let before = cluster.effective_region();
            cluster.update_member(update, shed);
            (shed, before, cluster.effective_region())
        });
        if shed {
            self.stats.positions_shed += 1;
        }
        self.stats.refreshes += 1;
        self.store.touch(slot);
        // Re-register whenever the effective region changed at all — a
        // grown reach extends the covered cell set, and a moved centroid
        // would relocate it outright. (`ClusterGrid::insert` already
        // no-ops when the cell set is unchanged, so the common
        // refresh-in-place stays cheap.)
        if region != region_before {
            self.grid.insert(slot, &region);
        }
    }

    /// Absorbs `update.entity` into the cluster at `slot` (steps 3–4 of the
    /// Leader–Follower walk, after the probe chose the candidate).
    fn absorb_into(&mut self, update: &LocationUpdate, slot: ClusterSlot) {
        let params = &self.params;
        let (shed, region) = self.store.update(slot, |cluster| {
            let shed = Self::shed_decision(params, cluster, update);
            cluster.absorb(update, shed);
            (shed, cluster.effective_region())
        });
        if shed {
            self.stats.positions_shed += 1;
        }
        self.grid.insert(slot, &region);
        self.home.assign(update.entity, slot);
        self.stats.absorptions += 1;
        self.store.touch(slot);
    }

    /// Replays one planned update from the sharded batch-ingestion path
    /// (see [`crate::ingest`]): the decision — refresh / evict / absorb
    /// target / found — was precomputed by a shard planner, so this is
    /// [`ClusterEngine::process_update`] with the probe skipped. Applied
    /// sequentially in canonical batch order, it produces bit-identical
    /// state. Returns the new cluster's slot when the action founds one.
    pub(crate) fn apply_planned(
        &mut self,
        update: &LocationUpdate,
        action: crate::ingest::ResolvedAction,
    ) -> Option<ClusterSlot> {
        use crate::ingest::ResolvedAction;
        self.updates_processed += 1;
        self.upsert_attrs(update);
        match action {
            ResolvedAction::Refresh => {
                let slot = self
                    .home
                    .cluster_of(update.entity)
                    .expect("planned refresh has a home cluster");
                debug_assert!(
                    self.store.get(slot).is_some_and(|c| c.can_absorb(
                        update,
                        self.params.theta_d,
                        self.params.theta_s,
                        self.params.cnloc_tolerance,
                    )),
                    "shard planner diverged: refresh target no longer fits"
                );
                self.refresh_member(update, slot);
                None
            }
            ResolvedAction::Join { evicted, target } => {
                debug_assert_eq!(
                    self.home.cluster_of(update.entity),
                    evicted,
                    "shard planner diverged on the home cluster"
                );
                if let Some(slot) = evicted {
                    self.evict(update, slot);
                }
                match target {
                    Some(slot) => {
                        debug_assert!(
                            self.store.get(slot).is_some_and(|c| c.can_absorb(
                                update,
                                self.params.theta_d,
                                self.params.theta_s,
                                self.params.cnloc_tolerance,
                            )),
                            "shard planner diverged: absorb target no longer fits"
                        );
                        self.absorb_into(update, slot);
                        None
                    }
                    None => Some(self.found_cluster(update)),
                }
            }
        }
    }

    /// Whether the update's position should be shed under the configured
    /// policy, judged by its distance to the candidate cluster's centroid.
    /// `pub(crate)` so the shard planners of [`crate::ingest`] replay the
    /// exact decision on their copy-on-write clusters.
    pub(crate) fn shed_decision(
        params: &ScubaParams,
        cluster: &MovingCluster,
        update: &LocationUpdate,
    ) -> bool {
        if !params.shedding.is_active() {
            return false;
        }
        let r = update.loc.distance(&cluster.centroid());
        params.shedding.sheds_at(r, params.theta_d)
    }

    fn evict(&mut self, update: &LocationUpdate, slot: ClusterSlot) {
        self.home.unassign(update.entity);
        let emptied = if self.store.contains(slot) {
            let emptied = self.store.update(slot, |cluster| {
                cluster.remove_member(update.entity);
                cluster.is_empty()
            });
            self.store.touch(slot);
            emptied
        } else {
            false
        };
        self.stats.evictions += 1;
        if emptied {
            self.dissolve_slot(slot);
        }
    }

    fn found_cluster(&mut self, update: &LocationUpdate) -> ClusterSlot {
        let cid = ClusterId(self.next_cid);
        self.next_cid += 1;
        // A founder sits exactly at the centroid (r = 0), so any active
        // nucleus sheds it.
        let shed = self.params.shedding.is_active()
            && self.params.shedding.sheds_at(0.0, self.params.theta_d);
        let cluster = MovingCluster::found(cid, update, shed);
        if shed {
            self.stats.positions_shed += 1;
        }
        let region = cluster.effective_region();
        let slot = self.store.insert(cluster);
        self.grid.insert(slot, &region);
        self.home.assign(update.entity, slot);
        self.stats.clusters_formed += 1;
        slot
    }

    /// Dissolves a cluster by id: members lose their membership and will
    /// re-cluster with their next updates.
    pub fn dissolve(&mut self, cid: ClusterId) {
        if let Some(slot) = self.store.slot_of(cid) {
            self.dissolve_slot(slot);
        }
    }

    /// Dissolves the cluster at `slot`, freeing the slot for reuse.
    fn dissolve_slot(&mut self, slot: ClusterSlot) {
        let cluster = self.store.remove(slot);
        for member in cluster.members() {
            self.home.unassign(member.entity);
        }
        self.grid.remove(slot);
        self.stats.dissolutions += 1;
    }

    /// Removes an entity entirely: its cluster membership *and* its
    /// attribute-table registration. This is how a continuous query is
    /// cancelled or a retired object deregistered. Returns `true` when the
    /// entity was known in any structure.
    pub fn remove_entity(&mut self, entity: scuba_motion::EntityRef) -> bool {
        let mut known = match entity {
            scuba_motion::EntityRef::Object(id) => self.objects.remove(id).is_some(),
            scuba_motion::EntityRef::Query(id) => self.queries.remove(id).is_some(),
        };
        if let Some(slot) = self.home.unassign(entity) {
            known = true;
            let emptied = if self.store.contains(slot) {
                let emptied = self.store.update(slot, |cluster| {
                    cluster.remove_member(entity);
                    cluster.is_empty()
                });
                self.store.touch(slot);
                emptied
            } else {
                false
            };
            if emptied {
                self.dissolve_slot(slot);
            }
        }
        known
    }

    /// Evicts members that have not reported for more than `ttl` time units
    /// (measured against `now`), dissolving clusters that empty out.
    /// Returns how many memberships were dropped. Attribute-table entries
    /// are removed too — a silent entity is gone, not merely mispositioned.
    pub fn evict_stale(&mut self, now: Time, ttl: u64) -> usize {
        let cutoff = now.saturating_sub(ttl);
        let mut stale: Vec<scuba_motion::EntityRef> = Vec::new();
        for cluster in self.store.values() {
            for member in cluster.members() {
                if member.last_seen < cutoff {
                    stale.push(member.entity);
                }
            }
        }
        for entity in &stale {
            self.remove_entity(*entity);
        }
        stale.len()
    }

    /// Switches the load-shedding mode at runtime (used by the adaptive
    /// memory-budget controller). Takes effect for subsequent updates and
    /// [`ClusterEngine::shed_now`] calls.
    pub fn set_shedding(&mut self, mode: crate::shedding::SheddingMode) {
        self.params.shedding = mode;
    }

    /// Immediately sheds the positions of all members inside the active
    /// nucleus, across every cluster (in slot order), returning how many
    /// positions were discarded. A no-op when shedding is inactive.
    pub fn shed_now(&mut self) -> u64 {
        let Some(nucleus) = self.params.shedding.nucleus_radius(self.params.theta_d) else {
            return 0;
        };
        let mut shed = 0u64;
        for i in 0..self.store.capacity() {
            let slot = ClusterSlot(i as u32);
            if !self.store.contains(slot) {
                continue;
            }
            let dropped = self.store.update(slot, |c| c.shed_nucleus(nucleus)) as u64;
            if dropped > 0 {
                self.store.touch(slot);
            }
            shed += dropped;
        }
        self.stats.positions_shed += shed;
        shed
    }

    /// Pre-join tightening: restores exact cluster radii (and grid
    /// registrations) before the joining phase, undoing the conservative
    /// slack the per-update absorption bound accumulated over the interval.
    /// Part of the cluster pre-join maintenance phase (Fig. 6).
    pub fn pre_join_tighten(&mut self) {
        let shed_floor = self
            .params
            .shedding
            .nucleus_radius(self.params.theta_d)
            .unwrap_or(0.0)
            .min(self.params.theta_d);
        let mut reregister: Vec<(ClusterSlot, Circle)> = Vec::new();
        for i in 0..self.store.capacity() {
            let slot = ClusterSlot(i as u32);
            if !self.store.contains(slot) {
                continue;
            }
            let tightened = self.store.update(slot, |cluster| {
                let before = cluster.radius();
                cluster.tighten(shed_floor);
                (cluster.radius() < before).then(|| cluster.effective_region())
            });
            if let Some(region) = tightened {
                reregister.push((slot, region));
            }
        }
        for (slot, region) in reregister {
            self.grid.insert(slot, &region);
            self.store.touch(slot);
        }
    }

    // ---- post-join maintenance (Algorithm 1 step 23) ------------------------

    /// Post-join cluster maintenance: dissolve clusters that would pass
    /// their destination node during the next interval, advance the rest
    /// along their velocity vectors and re-register them in the grid.
    ///
    /// `now` is the evaluation time; the relocation spans the engine's Δ.
    pub fn post_join_maintenance(&mut self, now: Time) -> ClusteringStats {
        if let Some(ttl) = self.params.entity_ttl {
            self.evict_stale(now, ttl);
        }
        let dt = self.params.delta as f64;
        enum Fate {
            Dissolve,
            Moved(Circle),
            Still,
        }
        let mut to_dissolve: Vec<ClusterSlot> = Vec::new();
        let mut relocated: Vec<(ClusterSlot, Circle)> = Vec::new();
        for i in 0..self.store.capacity() {
            let slot = ClusterSlot(i as u32);
            if !self.store.contains(slot) {
                continue;
            }
            let fate = self.store.update(slot, |cluster| {
                if cluster.is_empty() || cluster.passes_destination_within(dt) {
                    Fate::Dissolve
                } else if cluster.advance(dt) {
                    Fate::Moved(cluster.effective_region())
                } else {
                    Fate::Still
                }
            });
            match fate {
                Fate::Dissolve => to_dissolve.push(slot),
                // Only clusters whose centroid actually moved dirty the
                // epoch tracker — stationary clusters stay cache-clean.
                Fate::Moved(region) => relocated.push((slot, region)),
                Fate::Still => {}
            }
        }
        for slot in to_dissolve {
            self.dissolve_slot(slot);
        }
        for (slot, region) in relocated {
            self.grid.insert(slot, &region);
            self.store.touch(slot);
        }
        self.stats
    }

    /// Estimated bytes of all in-memory state (the Fig. 9b measure).
    pub fn estimated_bytes(&self) -> usize {
        self.store.estimated_bytes()
            + self.grid.estimated_bytes()
            + self.home.estimated_bytes()
            + self.objects.estimated_bytes()
            + self.queries.estimated_bytes()
    }

    /// Debug invariant check used by tests: home, store and grid agree.
    pub fn check_invariants(&self) {
        self.store.check_coherent();
        for (slot, cluster) in self.store.iter() {
            assert!(
                !cluster.is_empty(),
                "live cluster {:?} is empty",
                cluster.cid
            );
            assert_eq!(
                cluster.object_count() + cluster.query_count(),
                cluster.len(),
                "member kind counts disagree"
            );
            for member in cluster.members() {
                assert_eq!(
                    self.home.cluster_of(member.entity),
                    Some(slot),
                    "home disagrees for {}",
                    member.entity
                );
                if let Some(pos) = cluster.member_position(member) {
                    assert!(
                        pos.distance(&cluster.centroid()) <= cluster.radius() + 1e-6,
                        "member {} at {:?} outside radius {} of {:?}",
                        member.entity,
                        pos,
                        cluster.radius(),
                        cluster.centroid()
                    );
                }
            }
        }
        let member_total: usize = self.store.values().map(MovingCluster::len).sum();
        assert_eq!(member_total, self.home.len(), "home size mismatch");
        // The grid must reflect every cluster's *current* effective region
        // — a stale registration would make the step-1 probe (and the
        // joining phase) miss or mis-route clusters.
        for (slot, cluster) in self.store.iter() {
            let expected: Vec<u32> = self
                .grid
                .spec()
                .cells_overlapping_circle(&cluster.effective_region())
                .map(|idx| self.grid.spec().linear(idx) as u32)
                .collect();
            assert_eq!(
                self.grid.cells_of(slot),
                Some(expected.as_slice()),
                "grid registration stale for {:?}",
                cluster.cid
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shedding::SheddingMode;
    use scuba_motion::{LocationUpdate, ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec};
    use scuba_spatial::Point;

    const CN_EAST: Point = Point {
        x: 1000.0,
        y: 500.0,
    };
    const CN_WEST: Point = Point { x: 0.0, y: 500.0 };

    fn engine() -> ClusterEngine {
        ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0))
    }

    fn obj(id: u64, x: f64, y: f64, speed: f64, cn: Point) -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            0,
            speed,
            cn,
            ObjectAttrs::default(),
        )
    }

    fn qry(id: u64, x: f64, y: f64, speed: f64, cn: Point) -> LocationUpdate {
        LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            0,
            speed,
            cn,
            QueryAttrs {
                spec: QuerySpec::square_range(20.0),
            },
        )
    }

    #[test]
    fn first_update_founds_cluster() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        assert_eq!(e.cluster_count(), 1);
        assert_eq!(e.stats().clusters_formed, 1);
        assert_eq!(e.home().len(), 1);
        e.check_invariants();
    }

    #[test]
    fn similar_updates_share_a_cluster() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&obj(2, 520.0, 510.0, 32.0, CN_EAST));
        e.process_update(&qry(1, 510.0, 495.0, 28.0, CN_EAST));
        assert_eq!(e.cluster_count(), 1);
        assert_eq!(e.stats().absorptions, 2);
        let cluster = e.clusters().values().next().unwrap();
        assert_eq!(cluster.len(), 3);
        assert!(cluster.is_mixed());
        e.check_invariants();
    }

    #[test]
    fn different_direction_forms_new_cluster() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&obj(2, 505.0, 500.0, 30.0, CN_WEST));
        assert_eq!(e.cluster_count(), 2);
        e.check_invariants();
    }

    #[test]
    fn speed_threshold_respected() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&obj(2, 505.0, 500.0, 45.0, CN_EAST)); // Θ_S = 10
        assert_eq!(e.cluster_count(), 2);
    }

    #[test]
    fn distance_threshold_respected() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        // 150 > Θ_D = 100 away, same cell? 100x100 grid over 1000 side →
        // cell size 10; different cells anyway, but also beyond Θ_D.
        e.process_update(&obj(2, 650.0, 500.0, 30.0, CN_EAST));
        assert_eq!(e.cluster_count(), 2);
    }

    #[test]
    fn probe_spans_theta_d_across_cells() {
        // Cell size here is 10 (100×100 cells over a 1000 area) — far
        // smaller than Θ_D = 100. Entities 50 apart sit in different cells
        // but must still cluster together: the step-1 probe covers the Θ_D
        // disk, not just the update's own cell.
        let mut e = engine();
        e.process_update(&obj(1, 105.0, 105.0, 30.0, CN_EAST));
        e.process_update(&obj(2, 155.0, 105.0, 30.0, CN_EAST));
        assert_eq!(e.cluster_count(), 1);
        e.check_invariants();
    }

    #[test]
    fn refresh_keeps_membership() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&obj(1, 510.0, 500.0, 31.0, CN_EAST));
        assert_eq!(e.cluster_count(), 1);
        assert_eq!(e.stats().refreshes, 1);
        assert_eq!(e.stats().evictions, 0);
        let c = e.clusters().values().next().unwrap();
        assert_eq!(c.len(), 1);
        assert!((c.ave_speed() - 31.0).abs() < 1e-9);
        e.check_invariants();
    }

    #[test]
    fn direction_change_evicts_and_reclusters() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&obj(2, 505.0, 500.0, 30.0, CN_EAST));
        assert_eq!(e.cluster_count(), 1);
        // Object 1 turns around at a connection node.
        e.process_update(&obj(1, 510.0, 500.0, 30.0, CN_WEST));
        assert_eq!(e.stats().evictions, 1);
        assert_eq!(e.cluster_count(), 2);
        e.check_invariants();
    }

    #[test]
    fn eviction_of_last_member_dissolves_cluster() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_WEST));
        assert_eq!(e.cluster_count(), 1, "old dissolved, new formed");
        assert_eq!(e.stats().dissolutions, 1);
        e.check_invariants();
    }

    #[test]
    fn dissolved_slot_is_reused_by_the_next_founding() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        let slot = e.store().slots().next().unwrap();
        let gen_before = e.store().generation(slot);
        // Direction flip dissolves the singleton and founds a replacement.
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_WEST));
        let slot_after = e.store().slots().next().unwrap();
        assert_eq!(slot, slot_after, "vacated slot is reused");
        assert_eq!(e.store().generation(slot), gen_before + 1);
        assert_eq!(e.store().capacity(), 1, "slab did not grow under churn");
        e.check_invariants();
    }

    #[test]
    fn attribute_tables_populated() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&qry(9, 400.0, 400.0, 20.0, CN_WEST));
        assert_eq!(e.objects().len(), 1);
        assert_eq!(e.queries().len(), 1);
        assert!(e.queries().get(QueryId(9)).is_some());
    }

    #[test]
    fn post_join_relocates_clusters() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        let before = e.clusters().values().next().unwrap().centroid();
        e.post_join_maintenance(2);
        let after = e.clusters().values().next().unwrap().centroid();
        // Δ = 2 at speed 30 → 60 units toward CN_EAST.
        assert!((before.distance(&after) - 60.0).abs() < 1e-9);
        assert!(after.x > before.x);
        e.check_invariants();
    }

    #[test]
    fn post_join_dissolves_clusters_reaching_destination() {
        let mut e = engine();
        // 40 units from destination at speed 30, Δ = 2 → passes it.
        e.process_update(&obj(1, 960.0, 500.0, 30.0, CN_EAST));
        assert_eq!(e.cluster_count(), 1);
        e.post_join_maintenance(2);
        assert_eq!(e.cluster_count(), 0);
        assert_eq!(e.home().len(), 0);
        // The object re-clusters with its next update (fresh destination).
        e.process_update(&obj(1, 1000.0, 500.0, 30.0, CN_WEST));
        assert_eq!(e.cluster_count(), 1);
        e.check_invariants();
    }

    #[test]
    fn grid_follows_relocation() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.post_join_maintenance(2);
        let (slot, c) = e.store().iter().next().unwrap();
        let centroid = c.centroid();
        assert!(
            e.grid().clusters_near(&centroid).contains(&slot),
            "grid not updated after relocation"
        );
    }

    #[test]
    fn full_shedding_discards_all_positions() {
        let mut e = ClusterEngine::new(
            ScubaParams::default().with_shedding(SheddingMode::Full),
            Rect::square(1000.0),
        );
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&obj(2, 505.0, 500.0, 30.0, CN_EAST));
        let c = e.clusters().values().next().unwrap();
        assert!(c.members().iter().all(|m| m.is_shed()));
        assert_eq!(e.stats().positions_shed, 2);
    }

    #[test]
    fn partial_shedding_keeps_outer_positions() {
        let mut e = ClusterEngine::new(
            ScubaParams::default().with_shedding(SheddingMode::Partial { eta: 0.3 }),
            Rect::square(1000.0),
        );
        // Founder (at centroid, r = 0 → shed).
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        // Far member (r = 80 > 0.3·100 → kept).
        e.process_update(&obj(2, 580.0, 500.0, 30.0, CN_EAST));
        let c = e.clusters().values().next().unwrap();
        let shed: Vec<bool> = c.members().iter().map(|m| m.is_shed()).collect();
        assert_eq!(shed.iter().filter(|&&s| s).count(), 1);
        assert_eq!(e.stats().positions_shed, 1);
    }

    #[test]
    fn shedding_reduces_memory_estimate() {
        let mut kept = engine();
        let mut shed = ClusterEngine::new(
            ScubaParams::default().with_shedding(SheddingMode::Full),
            Rect::square(1000.0),
        );
        for i in 0..100 {
            let u = obj(i, 500.0 + (i % 10) as f64, 500.0, 30.0, CN_EAST);
            kept.process_update(&u);
            shed.process_update(&u);
        }
        assert!(shed.estimated_bytes() < kept.estimated_bytes());
    }

    #[test]
    fn many_updates_keep_invariants() {
        let mut e = engine();
        for round in 0..5u64 {
            for i in 0..200u64 {
                let x = 10.0 + (i % 20) as f64 * 45.0 + round as f64 * 10.0;
                let y = 10.0 + (i / 20) as f64 * 90.0;
                let cn = if i % 3 == 0 { CN_EAST } else { CN_WEST };
                let speed = 20.0 + (i % 4) as f64 * 7.0;
                if i % 2 == 0 {
                    e.process_update(&obj(i, x, y, speed, cn));
                } else {
                    e.process_update(&qry(i, x, y, speed, cn));
                }
            }
            e.check_invariants();
            e.post_join_maintenance(round * 2);
            e.check_invariants();
        }
        assert!(e.cluster_count() > 0);
        assert_eq!(e.updates_processed(), 1000);
    }

    #[test]
    #[should_panic(expected = "invalid SCUBA params")]
    fn invalid_params_panic() {
        let _ = ClusterEngine::new(
            ScubaParams::default().with_thresholds(-1.0, 1.0),
            Rect::square(10.0),
        );
    }

    #[test]
    fn remove_entity_cancels_query() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&qry(9, 505.0, 500.0, 30.0, CN_EAST));
        assert_eq!(e.queries().len(), 1);
        assert!(e.remove_entity(QueryId(9).into()));
        assert_eq!(e.queries().len(), 0);
        assert_eq!(e.home().len(), 1, "object membership untouched");
        let c = e.clusters().values().next().unwrap();
        assert_eq!(c.len(), 1);
        assert!(!c.is_mixed());
        e.check_invariants();
        // Removing again reports unknown.
        assert!(!e.remove_entity(QueryId(9).into()));
    }

    #[test]
    fn remove_entity_dissolves_singleton_cluster() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        assert!(e.remove_entity(ObjectId(1).into()));
        assert_eq!(e.cluster_count(), 0);
        assert!(e.home().is_empty());
        e.check_invariants();
    }

    #[test]
    fn evict_stale_drops_silent_members() {
        let mut e = engine();
        // Entity 1 reports at t=0, entity 2 keeps reporting.
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&obj(2, 505.0, 500.0, 30.0, CN_EAST));
        let mut late = obj(2, 506.0, 500.0, 30.0, CN_EAST);
        late.time = 10;
        e.process_update(&late);
        let evicted = e.evict_stale(10, 5);
        assert_eq!(evicted, 1);
        assert_eq!(e.home().len(), 1);
        assert_eq!(e.objects().len(), 1, "stale attrs removed too");
        e.check_invariants();
    }

    #[test]
    fn ttl_applied_during_post_join() {
        let params = ScubaParams {
            entity_ttl: Some(4),
            ..ScubaParams::default()
        };
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST)); // t=0
        let mut fresh = obj(2, 505.0, 500.0, 30.0, CN_EAST);
        fresh.time = 9;
        e.process_update(&fresh);
        e.post_join_maintenance(10);
        assert_eq!(e.home().len(), 1, "silent entity evicted at t=10, ttl=4");
        e.check_invariants();
    }

    /// Regression: a refresh that grows the effective region must
    /// re-register the cluster in every newly covered grid cell, so later
    /// probes from those cells can still find it.
    #[test]
    fn refresh_growing_region_reregisters_grid_cells() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        let slot = e.store().slots().next().unwrap();
        let cells_at_founding = e.grid().cells_of(slot).unwrap().len();

        // The founder reports again from 80 units away: still within Θ_D
        // of the (unmoved) centroid, so this is the refresh fast path, but
        // the radius jumps 0 → 80 and the region swallows dozens of cells.
        let mut far = obj(1, 580.0, 500.0, 30.0, CN_EAST);
        far.time = 1;
        e.process_update(&far);
        assert_eq!(e.stats().refreshes, 1, "took the refresh fast path");

        let cells_after = e.grid().cells_of(slot).unwrap();
        assert!(
            cells_after.len() > cells_at_founding,
            "grown region must cover more cells"
        );
        // The grid must answer probes from the newly covered area.
        let spec = e.grid().spec();
        let far_cell = spec.linear(spec.cell_of(&Point::new(575.0, 500.0))) as u32;
        assert!(
            e.grid().cell_linear(far_cell).contains(&slot),
            "cluster not registered in a cell its region now covers"
        );
        e.check_invariants();
    }

    /// Same hole from the query side: a member query widening its range
    /// grows `max_query_radius`, which also grows the effective region.
    #[test]
    fn refresh_growing_query_radius_reregisters_grid_cells() {
        let mut e = engine();
        e.process_update(&qry(1, 500.0, 500.0, 30.0, CN_EAST));
        let slot = e.store().slots().next().unwrap();
        let cells_at_founding = e.grid().cells_of(slot).unwrap().len();

        // Same position, much wider range: radius stays 0 but
        // max_query_radius (and with it the region) grows.
        let mut wide = LocationUpdate::query(
            QueryId(1),
            Point::new(500.0, 500.0),
            1,
            30.0,
            CN_EAST,
            QueryAttrs {
                spec: QuerySpec::square_range(120.0),
            },
        );
        wide.time = 1;
        e.process_update(&wide);
        assert_eq!(e.stats().refreshes, 1, "took the refresh fast path");

        assert!(
            e.grid().cells_of(slot).unwrap().len() > cells_at_founding,
            "wider query range must cover more cells"
        );
        e.check_invariants();
    }
}
