//! SCUBA's entity tables (paper §4.1).
//!
//! * **ObjectsTable** — `(o.oid, o.attrs)` for every known object;
//! * **QueriesTable** — `(q.qid, q.attrs)` for every known query (the
//!   attribute that matters to the join is the range extent);
//! * **ClusterHome** — "a hash table that keeps track of the current
//!   relationships between objects, queries and their corresponding
//!   clusters. A moving object/query can belong to only one cluster at a
//!   time". It maps entities to dense [`ClusterSlot`] handles so membership
//!   resolution feeds straight into the store's indexed paths.

use scuba_motion::{EntityRef, ObjectAttrs, ObjectId, QueryAttrs, QueryId};
use scuba_spatial::FxHashMap;

use crate::store::ClusterSlot;

/// Registry of object attributes.
#[derive(Debug, Clone, Default)]
pub struct ObjectsTable {
    attrs: FxHashMap<ObjectId, ObjectAttrs>,
}

impl ObjectsTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or refreshes an object's attributes.
    pub fn upsert(&mut self, id: ObjectId, attrs: ObjectAttrs) {
        self.attrs.insert(id, attrs);
    }

    /// Looks up an object's attributes.
    pub fn get(&self, id: ObjectId) -> Option<&ObjectAttrs> {
        self.attrs.get(&id)
    }

    /// Removes an object's registration, returning its attributes.
    pub fn remove(&mut self, id: ObjectId) -> Option<ObjectAttrs> {
        self.attrs.remove(&id)
    }

    /// Iterates over all registered objects.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &ObjectAttrs)> + '_ {
        self.attrs.iter().map(|(id, attrs)| (*id, attrs))
    }

    /// Number of known objects.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Estimated heap footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.attrs.capacity()
            * (std::mem::size_of::<ObjectId>() + std::mem::size_of::<ObjectAttrs>() + 8)
    }
}

/// Registry of query attributes.
#[derive(Debug, Clone, Default)]
pub struct QueriesTable {
    attrs: FxHashMap<QueryId, QueryAttrs>,
}

impl QueriesTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or refreshes a query's attributes.
    pub fn upsert(&mut self, id: QueryId, attrs: QueryAttrs) {
        self.attrs.insert(id, attrs);
    }

    /// Looks up a query's attributes.
    pub fn get(&self, id: QueryId) -> Option<&QueryAttrs> {
        self.attrs.get(&id)
    }

    /// Iterates over all registered queries.
    pub fn iter(&self) -> impl Iterator<Item = (QueryId, &QueryAttrs)> + '_ {
        self.attrs.iter().map(|(id, attrs)| (*id, attrs))
    }

    /// Removes a query's registration (query cancellation), returning its
    /// attributes.
    pub fn remove(&mut self, id: QueryId) -> Option<QueryAttrs> {
        self.attrs.remove(&id)
    }

    /// Number of known queries.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Estimated heap footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.attrs.capacity()
            * (std::mem::size_of::<QueryId>() + std::mem::size_of::<QueryAttrs>() + 8)
    }
}

/// Entity → cluster-slot membership map.
#[derive(Debug, Clone, Default)]
pub struct ClusterHome {
    home: FxHashMap<EntityRef, ClusterSlot>,
}

impl ClusterHome {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `entity` now belongs to the cluster at `slot`,
    /// returning its previous slot if it had one.
    pub fn assign(&mut self, entity: EntityRef, slot: ClusterSlot) -> Option<ClusterSlot> {
        self.home.insert(entity, slot)
    }

    /// The slot of the cluster `entity` currently belongs to.
    pub fn cluster_of(&self, entity: EntityRef) -> Option<ClusterSlot> {
        self.home.get(&entity).copied()
    }

    /// Removes the entity's membership, returning it.
    pub fn unassign(&mut self, entity: EntityRef) -> Option<ClusterSlot> {
        self.home.remove(&entity)
    }

    /// Number of assigned entities.
    pub fn len(&self) -> usize {
        self.home.len()
    }

    /// Whether nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.home.is_empty()
    }

    /// Estimated heap footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.home.capacity()
            * (std::mem::size_of::<EntityRef>() + std::mem::size_of::<ClusterSlot>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_motion::{ObjectClass, QuerySpec};

    #[test]
    fn objects_table_upsert_and_get() {
        let mut t = ObjectsTable::new();
        assert!(t.is_empty());
        t.upsert(
            ObjectId(1),
            ObjectAttrs {
                class: ObjectClass::Bus,
            },
        );
        t.upsert(
            ObjectId(1),
            ObjectAttrs {
                class: ObjectClass::Car,
            },
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(ObjectId(1)).unwrap().class, ObjectClass::Car);
        assert!(t.get(ObjectId(2)).is_none());
    }

    #[test]
    fn queries_table_upsert_and_get() {
        let mut t = QueriesTable::new();
        t.upsert(
            QueryId(9),
            QueryAttrs {
                spec: QuerySpec::square_range(25.0),
            },
        );
        assert_eq!(t.len(), 1);
        match t.get(QueryId(9)).unwrap().spec {
            QuerySpec::Range { width, height } => {
                assert_eq!(width, 25.0);
                assert_eq!(height, 25.0);
            }
            _ => panic!("expected range"),
        }
    }

    #[test]
    fn cluster_home_single_membership() {
        let mut h = ClusterHome::new();
        let o: EntityRef = ObjectId(5).into();
        assert_eq!(h.assign(o, ClusterSlot(1)), None);
        assert_eq!(h.cluster_of(o), Some(ClusterSlot(1)));
        // Re-assignment returns the previous slot (the entity moved).
        assert_eq!(h.assign(o, ClusterSlot(2)), Some(ClusterSlot(1)));
        assert_eq!(h.cluster_of(o), Some(ClusterSlot(2)));
        assert_eq!(h.len(), 1);
        assert_eq!(h.unassign(o), Some(ClusterSlot(2)));
        assert_eq!(h.cluster_of(o), None);
        assert!(h.is_empty());
    }

    #[test]
    fn object_and_query_ids_do_not_collide_in_home() {
        let mut h = ClusterHome::new();
        h.assign(ObjectId(1).into(), ClusterSlot(1));
        h.assign(QueryId(1).into(), ClusterSlot(2));
        assert_eq!(h.len(), 2);
        assert_eq!(h.cluster_of(ObjectId(1).into()), Some(ClusterSlot(1)));
        assert_eq!(h.cluster_of(QueryId(1).into()), Some(ClusterSlot(2)));
    }

    #[test]
    fn estimated_bytes_nonzero_when_filled() {
        let mut h = ClusterHome::new();
        for i in 0..100 {
            h.assign(ObjectId(i).into(), ClusterSlot(i as u32));
        }
        assert!(h.estimated_bytes() > 0);
        let mut t = ObjectsTable::new();
        t.upsert(ObjectId(1), ObjectAttrs::default());
        assert!(t.estimated_bytes() > 0);
        let mut q = QueriesTable::new();
        q.upsert(
            QueryId(1),
            QueryAttrs {
                spec: QuerySpec::square_range(1.0),
            },
        );
        assert!(q.estimated_bytes() > 0);
    }
}
