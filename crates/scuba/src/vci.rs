//! The Velocity-Constrained Indexing baseline (paper §7 related work,
//! \[29\]).
//!
//! "VCI utilizes the maximum possible speed of objects to delay the
//! expensive updates to the index."
//!
//! The index here is an R-tree over *object* positions, stamped with the
//! time it was built. It is **not** rebuilt as objects move; instead, when
//! a query probes it at time `T`, the query's region is inflated by
//! `v_max · (T − T_build)` — every object that could possibly have entered
//! the region since the index was built falls inside the inflated probe.
//! Candidates are then verified against their *latest reported* positions,
//! so answers stay exact. When the inflation exceeds a configurable slack
//! the index is finally rebuilt and the clock re-stamped.
//!
//! The trade-off this exposes in benches: rebuild cost is amortised over
//! many intervals, but probe selectivity decays as the inflation grows —
//! with fast objects the inflated probes degenerate toward full scans,
//! which is why VCI targets workloads with modest speeds or lazy update
//! requirements.

use scuba_motion::{EntityAttrs, EntityRef, LocationUpdate, ObjectId, QuerySpec};
use scuba_spatial::{FxHashMap, Point, RTree, Rect, Time};
use scuba_stream::{
    ContinuousOperator, EvaluationReport, PhaseBreakdown, QueryMatch, StageStats, Stopwatch,
};

/// Stage name: conditional R-tree rebuild (maintenance bucket).
pub const STAGE_INDEX_REBUILD: &str = "index-rebuild";
/// Stage name: inflated probes + verification against fresh positions.
pub const STAGE_PROBE: &str = "probe";
/// Stage name: sort + dedup of the verified matches.
pub const STAGE_RESULT_MERGE: &str = "result-merge";

/// Configuration of the VCI operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VciConfig {
    /// Maximum possible object speed, spatial units / time unit. Probes
    /// inflate by this × index age; must be ≥ the fastest object or
    /// results may be missed (the generator's ceiling is
    /// `WorkloadConfig::speed_max` + jitter).
    pub max_speed: f64,
    /// Rebuild the index once the inflation radius exceeds this many
    /// spatial units.
    pub max_inflation: f64,
}

impl Default for VciConfig {
    fn default() -> Self {
        VciConfig {
            // Generator default ceiling: speed_max 50 + jitter 2.
            max_speed: 52.0,
            max_inflation: 400.0,
        }
    }
}

/// The VCI continuous-query operator.
#[derive(Debug)]
pub struct VciOperator {
    config: VciConfig,
    /// Latest update per entity (the verification source).
    latest: FxHashMap<EntityRef, LocationUpdate>,
    /// R-tree over object positions as of `built_at`.
    index: RTree<ObjectId>,
    /// Logical time the index was built (`None` = never built).
    built_at: Option<Time>,
    /// Objects added since the last build (probed separately so a stale
    /// index never hides a brand-new object).
    unindexed: Vec<ObjectId>,
    /// Position of each object at the last build, used to detect objects
    /// that outran the declared `max_speed` (e.g. a mis-declared bound or
    /// an entity teleporting after a GPS outage). Escapees are probed
    /// separately, keeping answers exact even when the premise is broken.
    indexed_pos: FxHashMap<ObjectId, Point>,
    rebuilds: u64,
    evaluations: u64,
}

impl VciOperator {
    /// Creates the operator.
    pub fn new(config: VciConfig) -> Self {
        VciOperator {
            config,
            latest: FxHashMap::default(),
            index: RTree::default(),
            built_at: None,
            unindexed: Vec::new(),
            indexed_pos: FxHashMap::default(),
            rebuilds: 0,
            evaluations: 0,
        }
    }

    /// Number of index rebuilds so far — the cost VCI exists to delay.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Number of evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Estimated bytes of in-memory state.
    pub fn estimated_bytes(&self) -> usize {
        let latest = self.latest.capacity()
            * (std::mem::size_of::<EntityRef>() + std::mem::size_of::<LocationUpdate>() + 8);
        latest + self.index.estimated_bytes() + self.unindexed.capacity() * 8
    }

    fn rebuild(&mut self, now: Time) {
        let mut entries: Vec<(Rect, ObjectId)> = Vec::new();
        self.indexed_pos.clear();
        for u in self.latest.values() {
            if let EntityRef::Object(oid) = u.entity {
                entries.push((Rect::from_corners(u.loc, u.loc), oid));
                self.indexed_pos.insert(oid, u.loc);
            }
        }
        self.index = RTree::bulk_load(entries);
        self.built_at = Some(now);
        self.unindexed.clear();
        self.rebuilds += 1;
    }

    fn inflation(&self, now: Time) -> f64 {
        match self.built_at {
            Some(t0) => self.config.max_speed * now.saturating_sub(t0) as f64,
            None => f64::INFINITY,
        }
    }
}

impl ContinuousOperator for VciOperator {
    fn process_update(&mut self, update: &LocationUpdate) {
        // VCI's whole point: do NOT touch the index on updates. Track new
        // objects so the stale index never hides them.
        if let EntityRef::Object(oid) = update.entity {
            if !self.latest.contains_key(&update.entity) {
                self.unindexed.push(oid);
            }
        }
        self.latest.insert(update.entity, *update);
    }

    fn evaluate(&mut self, now: Time) -> EvaluationReport {
        self.evaluations += 1;
        let mut phases = PhaseBreakdown::new();

        // Index maintenance: only when the inflation budget is exhausted.
        let mut sw = Stopwatch::start();
        let rebuilds_before = self.rebuilds;
        if self.inflation(now) > self.config.max_inflation {
            self.rebuild(now);
        }
        phases.push(
            StageStats::maintenance(STAGE_INDEX_REBUILD)
                .with_wall(sw.lap())
                .with_items(self.latest.len() as u64, self.rebuilds - rebuilds_before),
        );
        let inflation = self.inflation(now);

        // Extra candidates the stale index cannot vouch for: objects added
        // since the build, plus any that outran the declared speed bound.
        let mut extras: Vec<ObjectId> = self.unindexed.clone();
        for u in self.latest.values() {
            if let EntityRef::Object(oid) = u.entity {
                if let Some(at_build) = self.indexed_pos.get(&oid) {
                    if at_build.distance(&u.loc) > inflation {
                        extras.push(oid);
                    }
                }
            }
        }

        let mut comparisons = 0u64;
        let mut probed_queries = 0u64;
        let mut results: Vec<QueryMatch> = Vec::new();
        for u in self.latest.values() {
            let (EntityRef::Query(qid), EntityAttrs::Query(attrs)) = (u.entity, &u.attrs) else {
                continue;
            };
            let QuerySpec::Range { .. } = attrs.spec else {
                continue;
            };
            probed_queries += 1;
            let region = attrs
                .spec
                .region_at(u.loc)
                .expect("range spec has a region");
            // Inflate the probe by how far any object could have travelled
            // since the index snapshot.
            let probe = region.inflate(inflation);
            let mut candidates: Vec<ObjectId> = Vec::new();
            self.index.for_each_intersecting(&probe, |_, oid| {
                candidates.push(*oid);
            });
            candidates.extend_from_slice(&extras);
            for oid in candidates {
                // Verify against the latest reported position.
                let Some(current) = self.latest.get(&EntityRef::Object(oid)) else {
                    continue;
                };
                comparisons += 1;
                if region.contains(&current.loc) {
                    results.push(QueryMatch::new(qid, oid));
                }
            }
        }
        let raw = results.len() as u64;
        phases.push(
            StageStats::join(STAGE_PROBE)
                .with_wall(sw.lap())
                .with_items(probed_queries, raw)
                .with_tests(comparisons),
        );

        results.sort_unstable();
        results.dedup(); // an extra candidate may also surface from the index
        phases.push(
            StageStats::join(STAGE_RESULT_MERGE)
                .with_wall(sw.lap())
                .with_items(raw, results.len() as u64),
        );

        EvaluationReport {
            now,
            results,
            phases,
            memory_bytes: self.estimated_bytes(),
            comparisons,
            prefilter_tests: 0,
        }
    }

    fn name(&self) -> &str {
        "VCI"
    }

    fn memory_bytes(&self) -> usize {
        self.estimated_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::RegularGridOperator;
    use scuba_motion::{ObjectAttrs, QueryAttrs, QueryId};

    const CN: Point = Point {
        x: 1000.0,
        y: 500.0,
    };

    fn obj(id: u64, x: f64, y: f64, t: Time) -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            t,
            30.0,
            CN,
            ObjectAttrs::default(),
        )
    }

    fn qry(id: u64, x: f64, y: f64, side: f64, t: Time) -> LocationUpdate {
        LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            t,
            30.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(side),
            },
        )
    }

    #[test]
    fn finds_matches_and_rebuilds_lazily() {
        let mut op = VciOperator::new(VciConfig::default());
        op.process_update(&obj(1, 500.0, 500.0, 0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0, 0));
        let r1 = op.evaluate(2);
        assert_eq!(r1.results, vec![QueryMatch::new(QueryId(1), ObjectId(1))]);
        assert_eq!(op.rebuilds(), 1, "first evaluation builds the index");

        // Subsequent evaluations within the inflation budget reuse it.
        op.process_update(&obj(1, 510.0, 500.0, 3));
        let r2 = op.evaluate(4);
        assert_eq!(r2.results.len(), 1);
        assert_eq!(op.rebuilds(), 1, "no rebuild inside the budget");
    }

    #[test]
    fn stale_index_still_gives_exact_answers() {
        // Object moves far from its indexed position; the inflated probe
        // must still find it, and verification uses the fresh position.
        let mut op = VciOperator::new(VciConfig {
            max_speed: 100.0,
            max_inflation: 1e9, // never rebuild
        });
        op.process_update(&obj(1, 100.0, 100.0, 0));
        op.process_update(&qry(1, 500.0, 500.0, 20.0, 0));
        assert!(op.evaluate(2).results.is_empty());
        // The object sprints to the query (400√2 ≈ 566 units in 4 ticks —
        // covered by max_speed 100 × age).
        op.process_update(&obj(1, 501.0, 500.0, 6));
        let report = op.evaluate(6);
        assert_eq!(
            report.results,
            vec![QueryMatch::new(QueryId(1), ObjectId(1))]
        );
        assert_eq!(op.rebuilds(), 1, "still the initial build");
    }

    #[test]
    fn rebuild_triggers_when_budget_exhausted() {
        let mut op = VciOperator::new(VciConfig {
            max_speed: 50.0,
            max_inflation: 99.0, // exhausted after 2 ticks (inflation 100)
        });
        op.process_update(&obj(1, 500.0, 500.0, 0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0, 0));
        op.evaluate(2);
        assert_eq!(op.rebuilds(), 1);
        op.evaluate(4);
        assert_eq!(op.rebuilds(), 2, "inflation 100 at age 2 exceeds budget");
    }

    #[test]
    fn new_objects_visible_before_any_rebuild() {
        let mut op = VciOperator::new(VciConfig {
            max_speed: 50.0,
            max_inflation: 1e9,
        });
        op.process_update(&obj(1, 100.0, 100.0, 0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0, 0));
        op.evaluate(2);
        // A brand-new object appears right inside the query range.
        op.process_update(&obj(2, 505.0, 500.0, 3));
        let report = op.evaluate(4);
        assert_eq!(
            report.results,
            vec![QueryMatch::new(QueryId(1), ObjectId(2))]
        );
    }

    #[test]
    fn matches_regular_on_random_workload() {
        let mut vci = VciOperator::new(VciConfig::default());
        let mut regular = RegularGridOperator::new(20, Rect::square(1000.0));
        for i in 0..150u64 {
            let u = obj(i, (i * 37 % 1000) as f64, (i * 61 % 1000) as f64, 0);
            vci.process_update(&u);
            regular.process_update(&u);
            let q = qry(i, (i * 53 % 1000) as f64, (i * 71 % 1000) as f64, 60.0, 0);
            vci.process_update(&q);
            regular.process_update(&q);
        }
        assert_eq!(vci.evaluate(2).results, regular.evaluate(2).results);

        // Everything moves; answers must stay in lockstep across intervals.
        for i in 0..150u64 {
            let u = obj(i, (i * 41 % 1000) as f64, (i * 67 % 1000) as f64, 3);
            vci.process_update(&u);
            regular.process_update(&u);
        }
        assert_eq!(vci.evaluate(4).results, regular.evaluate(4).results);
    }

    #[test]
    fn growing_inflation_degrades_selectivity() {
        // The documented trade-off: older index ⇒ bigger probes ⇒ more
        // candidate verifications for the same answer.
        let build = |max_inflation: f64| {
            let mut op = VciOperator::new(VciConfig {
                max_speed: 50.0,
                max_inflation,
            });
            for i in 0..100u64 {
                op.process_update(&obj(i, (i * 97 % 1000) as f64, (i * 31 % 1000) as f64, 0));
            }
            op.process_update(&qry(0, 500.0, 500.0, 40.0, 0));
            op.evaluate(2); // builds
            op.evaluate(20) // probe with large age
        };
        let fresh = build(f64::INFINITY); // never rebuilt: inflation = 50 × 18
        let rebuilt = build(10.0); // rebuilt each evaluation: inflation ≈ 0
        assert!(
            fresh.comparisons > rebuilt.comparisons,
            "stale {} vs fresh {}",
            fresh.comparisons,
            rebuilt.comparisons
        );
        assert_eq!(fresh.results, rebuilt.results, "answers identical");
    }

    #[test]
    fn memory_estimate_nonzero() {
        let mut op = VciOperator::new(VciConfig::default());
        op.process_update(&obj(1, 1.0, 1.0, 0));
        op.evaluate(2);
        assert!(op.estimated_bytes() > 0);
        assert_eq!(op.evaluations(), 1);
        assert_eq!(op.name(), "VCI");
    }

    #[test]
    fn reports_stage_breakdown() {
        let mut op = VciOperator::new(VciConfig::default());
        op.process_update(&obj(1, 500.0, 500.0, 0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0, 0));
        let report = op.evaluate(2);
        let names: Vec<&str> = report
            .phases
            .stages()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(
            names,
            vec![STAGE_INDEX_REBUILD, STAGE_PROBE, STAGE_RESULT_MERGE]
        );
        let rebuild = report.phases.get(STAGE_INDEX_REBUILD).unwrap();
        assert_eq!(rebuild.items_out, 1, "first evaluation builds the index");
        let probe = report.phases.get(STAGE_PROBE).unwrap();
        assert_eq!(probe.tests, report.comparisons);
        assert_eq!(
            report.join_time() + report.maintenance_time(),
            report.total_time()
        );
    }
}
