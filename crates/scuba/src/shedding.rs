//! Moving-cluster-driven load shedding (paper §5).
//!
//! The nucleus is "a circular region that approximates the positions of the
//! cluster members near the centroid of the cluster. The size of the
//! nucleus is determined by its radius threshold Θ_N where
//! 0 ≤ Θ_N ≤ Θ_D. The larger the value of Θ_N, the more data is load
//! shed." A member whose position falls inside the nucleus has its relative
//! position discarded; during join-within it is answered from the nucleus
//! region instead of an exact point.

use serde::{Deserialize, Serialize};

/// How aggressively member positions are shed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SheddingMode {
    /// No load shedding: every member's relative position is kept
    /// (Fig. 8a).
    #[default]
    None,
    /// Partial shedding (Fig. 8c): members within the nucleus radius
    /// Θ_N = η·Θ_D lose their positions; η ∈ \[0, 1\].
    Partial {
        /// Nucleus size as a fraction of Θ_D.
        eta: f64,
    },
    /// Full shedding (Fig. 8b): no member positions are kept; the cluster
    /// region is the sole representation of its members.
    Full,
}

impl SheddingMode {
    /// The nucleus radius for a given distance threshold Θ_D, or `None`
    /// when no shedding is configured.
    ///
    /// `Full` maps to an unbounded nucleus (every member is inside).
    pub fn nucleus_radius(&self, theta_d: f64) -> Option<f64> {
        match self {
            SheddingMode::None => None,
            SheddingMode::Partial { eta } => Some(eta.clamp(0.0, 1.0) * theta_d),
            SheddingMode::Full => Some(f64::INFINITY),
        }
    }

    /// Whether a member at relative distance `r` from the centroid should
    /// have its position shed.
    pub fn sheds_at(&self, r: f64, theta_d: f64) -> bool {
        match self.nucleus_radius(theta_d) {
            None => false,
            Some(n) => r <= n,
        }
    }

    /// Whether any shedding happens at all.
    pub fn is_active(&self) -> bool {
        !matches!(
            self,
            SheddingMode::None | SheddingMode::Partial { eta: 0.0 }
        )
    }

    /// Validates the mode's parameters.
    pub fn validate(&self) -> Result<(), crate::params::ParamsError> {
        match self {
            SheddingMode::Partial { eta } if !(0.0..=1.0).contains(eta) => {
                Err(crate::params::ParamsError::EtaOutOfRange(*eta))
            }
            _ => Ok(()),
        }
    }

    /// The mode for a given fraction of *maintained* relative positions —
    /// the x-axis of Fig. 13 ("Relative Positions Maintained Percent").
    /// 100 % maintained ⇒ no shedding; 0 % maintained ⇒ full shedding.
    pub fn from_maintained_percent(percent: f64) -> SheddingMode {
        let maintained = (percent / 100.0).clamp(0.0, 1.0);
        let eta = 1.0 - maintained;
        if eta <= 0.0 {
            SheddingMode::None
        } else if eta >= 1.0 {
            SheddingMode::Full
        } else {
            SheddingMode::Partial { eta }
        }
    }
}

/// Escalating memory-budget controller (§5: "If the system is about to run
/// out of memory, SCUBA begins load shedding of cluster member positions…
/// If memory requirements are still high, then SCUBA load sheds positions
/// of all cluster members").
///
/// The controller walks a ladder of increasingly aggressive modes: it
/// escalates whenever the observed footprint exceeds the budget and
/// de-escalates when the footprint falls below `RELAX_FRACTION` of the
/// budget (hysteresis, so the mode does not oscillate around the budget).
/// # Examples
///
/// ```
/// use scuba::{AdaptiveShedder, SheddingMode};
///
/// let mut controller = AdaptiveShedder::new(1_000_000);
/// assert_eq!(controller.current(), SheddingMode::None);
///
/// // Memory over budget: escalate one rung.
/// assert_eq!(
///     controller.observe(1_500_000),
///     Some(SheddingMode::Partial { eta: 0.25 })
/// );
/// // Well under budget: relax again.
/// assert_eq!(controller.observe(500_000), Some(SheddingMode::None));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveShedder {
    budget_bytes: usize,
    ladder: Vec<SheddingMode>,
    level: usize,
}

/// De-escalate only when memory drops below this fraction of the budget.
const RELAX_FRACTION: f64 = 0.7;

impl AdaptiveShedder {
    /// Creates a controller with the default ladder
    /// `None → η=0.25 → η=0.5 → η=0.75 → Full`.
    pub fn new(budget_bytes: usize) -> Self {
        AdaptiveShedder {
            budget_bytes,
            ladder: vec![
                SheddingMode::None,
                SheddingMode::Partial { eta: 0.25 },
                SheddingMode::Partial { eta: 0.5 },
                SheddingMode::Partial { eta: 0.75 },
                SheddingMode::Full,
            ],
            level: 0,
        }
    }

    /// Creates a controller with a custom ladder (ordered least → most
    /// aggressive; must be non-empty).
    pub fn with_ladder(budget_bytes: usize, ladder: Vec<SheddingMode>) -> Self {
        assert!(!ladder.is_empty(), "shedding ladder must be non-empty");
        AdaptiveShedder {
            budget_bytes,
            ladder,
            level: 0,
        }
    }

    /// The memory budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// The currently selected mode.
    pub fn current(&self) -> SheddingMode {
        self.ladder[self.level]
    }

    /// Feeds one memory observation; returns the new mode if it changed.
    pub fn observe(&mut self, memory_bytes: usize) -> Option<SheddingMode> {
        let before = self.level;
        if memory_bytes > self.budget_bytes {
            if self.level + 1 < self.ladder.len() {
                self.level += 1;
            }
        } else if (memory_bytes as f64) < self.budget_bytes as f64 * RELAX_FRACTION
            && self.level > 0
        {
            self.level -= 1;
        }
        (self.level != before).then(|| self.current())
    }

    /// Whether the controller is at its most aggressive rung and memory is
    /// still over budget — the point where shedding alone cannot help.
    pub fn saturated(&self, memory_bytes: usize) -> bool {
        self.level + 1 == self.ladder.len() && memory_bytes > self.budget_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_sheds() {
        assert_eq!(SheddingMode::None.nucleus_radius(100.0), None);
        assert!(!SheddingMode::None.sheds_at(0.0, 100.0));
        assert!(!SheddingMode::None.is_active());
    }

    #[test]
    fn partial_sheds_inside_nucleus() {
        let m = SheddingMode::Partial { eta: 0.45 };
        assert_eq!(m.nucleus_radius(100.0), Some(45.0));
        assert!(m.sheds_at(45.0, 100.0));
        assert!(m.sheds_at(0.0, 100.0));
        assert!(!m.sheds_at(45.1, 100.0));
        assert!(m.is_active());
    }

    #[test]
    fn full_sheds_everything() {
        assert!(SheddingMode::Full.sheds_at(1e12, 100.0));
        assert!(SheddingMode::Full.is_active());
    }

    #[test]
    fn partial_zero_is_inactive() {
        assert!(!SheddingMode::Partial { eta: 0.0 }.is_active());
    }

    #[test]
    fn validation() {
        assert!(SheddingMode::Partial { eta: 1.5 }.validate().is_err());
        assert!(SheddingMode::Partial { eta: -0.1 }.validate().is_err());
        assert!(SheddingMode::Partial { eta: 0.5 }.validate().is_ok());
        assert!(SheddingMode::None.validate().is_ok());
        assert!(SheddingMode::Full.validate().is_ok());
    }

    #[test]
    fn maintained_percent_mapping() {
        assert_eq!(
            SheddingMode::from_maintained_percent(100.0),
            SheddingMode::None
        );
        assert_eq!(
            SheddingMode::from_maintained_percent(0.0),
            SheddingMode::Full
        );
        match SheddingMode::from_maintained_percent(75.0) {
            SheddingMode::Partial { eta } => assert!((eta - 0.25).abs() < 1e-12),
            other => panic!("expected partial, got {other:?}"),
        }
        // Out-of-range values clamp.
        assert_eq!(
            SheddingMode::from_maintained_percent(150.0),
            SheddingMode::None
        );
        assert_eq!(
            SheddingMode::from_maintained_percent(-5.0),
            SheddingMode::Full
        );
    }

    #[test]
    fn adaptive_starts_at_none() {
        let a = AdaptiveShedder::new(1000);
        assert_eq!(a.current(), SheddingMode::None);
        assert_eq!(a.budget_bytes(), 1000);
    }

    #[test]
    fn adaptive_escalates_over_budget() {
        let mut a = AdaptiveShedder::new(1000);
        assert_eq!(a.observe(1500), Some(SheddingMode::Partial { eta: 0.25 }));
        assert_eq!(a.observe(1500), Some(SheddingMode::Partial { eta: 0.5 }));
        assert_eq!(a.observe(1500), Some(SheddingMode::Partial { eta: 0.75 }));
        assert_eq!(a.observe(1500), Some(SheddingMode::Full));
        // At the top of the ladder: no further change, saturated.
        assert_eq!(a.observe(1500), None);
        assert!(a.saturated(1500));
        assert!(!a.saturated(900));
    }

    #[test]
    fn adaptive_deescalates_with_hysteresis() {
        let mut a = AdaptiveShedder::new(1000);
        a.observe(1500);
        a.observe(1500);
        assert_eq!(a.current(), SheddingMode::Partial { eta: 0.5 });
        // In the hysteresis band (700..=1000): stay put.
        assert_eq!(a.observe(900), None);
        assert_eq!(a.current(), SheddingMode::Partial { eta: 0.5 });
        // Well under budget: relax one rung at a time.
        assert_eq!(a.observe(500), Some(SheddingMode::Partial { eta: 0.25 }));
        assert_eq!(a.observe(500), Some(SheddingMode::None));
        assert_eq!(a.observe(500), None);
    }

    #[test]
    fn adaptive_custom_ladder() {
        let mut a = AdaptiveShedder::with_ladder(100, vec![SheddingMode::None, SheddingMode::Full]);
        assert_eq!(a.observe(200), Some(SheddingMode::Full));
        assert_eq!(a.observe(200), None);
        assert!(a.saturated(200));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn adaptive_empty_ladder_panics() {
        let _ = AdaptiveShedder::with_ladder(100, vec![]);
    }
}
