//! SCUBA tuning parameters.

use serde::{Deserialize, Serialize};

use scuba_spatial::TimeDelta;
use scuba_stream::ValidationPolicy;

use crate::index::IndexKind;
use crate::kernel::KernelKind;
use crate::shedding::SheddingMode;

/// A parameter set that cannot produce a working engine.
///
/// Typed so callers can react per-cause; `Display` renders the operator
/// message the CLI prints before exiting non-zero.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamsError {
    /// Θ_D must be a positive, finite distance.
    NonPositiveThetaD(f64),
    /// Θ_S must be a positive, finite speed difference (a zero threshold
    /// admits no speed variation at all and degenerates clustering to
    /// exact-speed matching over `f64`s).
    NonPositiveThetaS(f64),
    /// The ClusterGrid needs at least one cell per side.
    ZeroGridCells,
    /// The evaluation interval Δ must be at least one time unit.
    ZeroDelta,
    /// Partial shedding needs η ∈ \[0, 1\]; equivalently the nucleus
    /// radius Θ_N = η·Θ_D must not exceed Θ_D (§5: "0 ≤ Θ_N ≤ Θ_D").
    EtaOutOfRange(f64),
    /// The connection-node comparison tolerance must be non-negative.
    NegativeCnlocTolerance(f64),
    /// Join-within needs at least one worker thread.
    ZeroParallelism,
    /// The sharded executor needs at least one stripe-owning shard.
    ZeroShards,
    /// The overload deadline budget must be at least one microsecond.
    ZeroDeadline,
    /// The adaptive-grid split threshold must leave room for a quadtree
    /// split to ever fire (at least two occupants per cell).
    SplitThresholdTooSmall(u32),
    /// The adaptive-grid merge threshold must sit strictly below the split
    /// threshold, otherwise the hysteresis band is empty and cells would
    /// oscillate between refined and flat every Δ.
    MergeNotBelowSplit {
        /// The configured split threshold.
        split: u32,
        /// The offending merge threshold.
        merge: u32,
    },
}

impl std::fmt::Display for ParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamsError::NonPositiveThetaD(v) => {
                write!(f, "theta_d must be positive, got {v}")
            }
            ParamsError::NonPositiveThetaS(v) => {
                write!(f, "theta_s must be positive, got {v}")
            }
            ParamsError::ZeroGridCells => write!(f, "grid_cells must be >= 1"),
            ParamsError::ZeroDelta => write!(f, "delta must be >= 1"),
            ParamsError::EtaOutOfRange(v) => write!(
                f,
                "shedding eta must be in [0, 1] (nucleus radius within theta_d), got {v}"
            ),
            ParamsError::NegativeCnlocTolerance(v) => {
                write!(f, "cnloc_tolerance must be non-negative, got {v}")
            }
            ParamsError::ZeroParallelism => write!(f, "parallelism must be >= 1"),
            ParamsError::ZeroShards => write!(f, "shards must be >= 1"),
            ParamsError::ZeroDeadline => write!(f, "deadline_us must be >= 1 when set"),
            ParamsError::SplitThresholdTooSmall(v) => {
                write!(f, "split_threshold must be >= 2, got {v}")
            }
            ParamsError::MergeNotBelowSplit { split, merge } => write!(
                f,
                "merge_threshold must be below split_threshold ({split}), got {merge}"
            ),
        }
    }
}

impl std::error::Error for ParamsError {}

impl From<ParamsError> for String {
    fn from(e: ParamsError) -> Self {
        e.to_string()
    }
}

/// How the §3.2 step-1 grid probe interprets "clusters in the proximity of
/// the current location". Ablation knob for DESIGN.md §3.5 #3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ProbeScope {
    /// Probe every cell overlapping the Θ_D disk around the update (the
    /// default): clustering behaviour is independent of grid granularity.
    #[default]
    ThetaDisk,
    /// Probe only the update's own cell — the literal reading of the
    /// pseudo-code. With cells smaller than Θ_D this fragments clusters.
    OwnCell,
}

/// All knobs of the SCUBA operator, with the defaults of the paper's
/// experimental section (§6.1): Θ_D = 100 spatial units, Θ_S = 10 spatial
/// units / time unit, a 100×100 ClusterGrid and Δ = 2 time units, no load
/// shedding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ScubaParams {
    /// Distance threshold Θ_D: an entity may only join a cluster whose
    /// centroid is within this distance ("guarantees that the clustered
    /// entities are close to each other at the time of clustering", §3.1).
    pub theta_d: f64,
    /// Speed threshold Θ_S: an entity may only join a cluster whose average
    /// speed differs by at most this much ("assures that the entities will
    /// stay close to each other for some time in the future", §3.1).
    pub theta_s: f64,
    /// Cells per side of the ClusterGrid (the paper's default grid is
    /// 100×100).
    pub grid_cells: u32,
    /// Evaluation interval Δ in time units.
    pub delta: TimeDelta,
    /// Tolerance when comparing connection-node positions for the
    /// direction check (`o.cnloc == m.cnloc`); positions are `f64` produced
    /// by identical arithmetic, so a tight tolerance suffices.
    pub cnloc_tolerance: f64,
    /// Load-shedding policy (§5). `SheddingMode::None` by default.
    pub shedding: SheddingMode,
    /// Scope of the step-1 candidate probe (ablation knob; default
    /// [`ProbeScope::ThetaDisk`]).
    pub probe_scope: ProbeScope,
    /// Whether join-within applies the member-vs-cluster reach filter
    /// before the nested loop (ablation knob; default `true`; never
    /// changes results, only work).
    pub member_filter: bool,
    /// Whether cluster radii are tightened to exact values before each
    /// joining phase (ablation knob; default `true`; never changes
    /// results — the conservative radii are sound, just less selective).
    pub tighten_radii: bool,
    /// Entities silent for more than this many time units are evicted
    /// during post-join maintenance (`None` disables TTL eviction — the
    /// paper's setting, where 100 % of entities report every time unit).
    pub entity_ttl: Option<u64>,
    /// Worker threads for the join-within stage of the evaluation
    /// pipeline. Default 1 — the serial path, bit-identical to the
    /// pre-pipeline behaviour. Any value yields the same results and work
    /// counters; only wall-clock time changes.
    pub parallelism: usize,
    /// Whether the operator carries a [`crate::join::JoinCache`] across
    /// epochs, replaying join-within results for cluster pairs that have
    /// not mutated since they were computed (default `true`). Never
    /// changes results — replays are bit-identical — only work done.
    pub join_cache: bool,
    /// Spatial shards for batched ingestion (column stripes of the
    /// ClusterGrid). `0` — the default — follows [`parallelism`]; an
    /// explicit value decouples ingest sharding from join workers.
    /// Sharded ingestion is bit-identical to the sequential engine under
    /// the canonical batch order (sort by `(time, entity)`).
    ///
    /// [`parallelism`]: ScubaParams::parallelism
    pub ingest_shards: usize,
    /// Whether [`crate::engine::ScubaOperator`] routes whole ticks through
    /// the sharded batch-ingestion path when more than one shard is in
    /// effect (default `true`). With one effective shard the per-update
    /// loop runs either way; `false` forces it at any shard count.
    pub batch_ingest: bool,
    /// Ingestion hardening policy: how the operator treats malformed
    /// location updates (NaN/out-of-region coordinates, time regressions,
    /// duplicate keys). [`ValidationPolicy::Off`] — the default — trusts
    /// the source, matching the paper's setting.
    pub validation: ValidationPolicy,
    /// Per-evaluation wall-time budget in microseconds for the adaptive
    /// overload controller ([`crate::overload::OverloadController`]):
    /// when evaluation + ingest time repeatedly exceeds it, the operator
    /// escalates load shedding; when load drops, it relaxes with
    /// hysteresis. `None` — the default — disables the controller.
    pub deadline_us: Option<u64>,
    /// Which spatial index backs the ClusterGrid role
    /// ([`IndexKind::Uniform`] — the paper's flat N×N grid — by default).
    /// [`IndexKind::Adaptive`] refines hot cells into quadtree subcells so
    /// candidate generation stays balanced under hotspot skew; results are
    /// bit-identical to the uniform grid, only work changes.
    pub index: IndexKind,
    /// Adaptive grid only: a base cell whose registration count reaches
    /// this threshold is refined into quadtree subcells at the next Δ
    /// re-balance. Must be at least 2.
    pub split_threshold: u32,
    /// Adaptive grid only: a refined base cell whose registration count
    /// falls to this threshold or below collapses back to a flat cell at
    /// the next Δ re-balance. Must be strictly below
    /// [`split_threshold`](ScubaParams::split_threshold); the gap is the
    /// hysteresis band in which a cell keeps its current shape.
    pub merge_threshold: u32,
    /// Stripe-owning shards of the region for the multi-worker executor
    /// ([`crate::shard::ShardedScubaOperator`]): the coverage area is split
    /// into this many contiguous column stripes, each owned by a worker
    /// thread with its own `ClusterStore` and spatial index. Default 1 —
    /// the single-store engine. Orthogonal to the other concurrency knobs:
    /// [`parallelism`](ScubaParams::parallelism) sets join-within workers
    /// *inside each shard*, and
    /// [`ingest_shards`](ScubaParams::ingest_shards) stripes batch
    /// ingestion *within one store* (the sharded executor routes updates
    /// to owner shards itself, so each shard ingests its slice
    /// sequentially). Results are bit-identical to the single-shard
    /// engine at any shard count, provided load shedding stays off.
    pub shards: usize,
    /// Which join-kernel implementation the evaluate pipeline runs
    /// ([`KernelKind::Scalar`] — the pair-at-a-time loops — by default).
    /// [`KernelKind::Simd`] runs the tiled lane-parallel
    /// filter-then-refine kernel over the store's SoA columns; results
    /// and work counters are bit-identical, only speed changes (see
    /// [`crate::kernel`]).
    pub kernel: KernelKind,
}

impl Default for ScubaParams {
    fn default() -> Self {
        ScubaParams {
            theta_d: 100.0,
            theta_s: 10.0,
            grid_cells: 100,
            delta: 2,
            cnloc_tolerance: 1e-6,
            shedding: SheddingMode::None,
            probe_scope: ProbeScope::ThetaDisk,
            member_filter: true,
            tighten_radii: true,
            entity_ttl: None,
            parallelism: 1,
            join_cache: true,
            ingest_shards: 0,
            batch_ingest: true,
            validation: ValidationPolicy::Off,
            deadline_us: None,
            index: IndexKind::Uniform,
            split_threshold: 32,
            merge_threshold: 8,
            shards: 1,
            kernel: KernelKind::Scalar,
        }
    }
}

impl ScubaParams {
    /// Returns the params with a different grid granularity.
    pub fn with_grid_cells(self, grid_cells: u32) -> Self {
        ScubaParams {
            grid_cells: grid_cells.max(1),
            ..self
        }
    }

    /// Returns the params with a different shedding mode.
    pub fn with_shedding(self, shedding: SheddingMode) -> Self {
        ScubaParams { shedding, ..self }
    }

    /// Returns the params with a different join-within worker count
    /// (clamped to at least 1).
    pub fn with_parallelism(self, parallelism: usize) -> Self {
        ScubaParams {
            parallelism: parallelism.max(1),
            ..self
        }
    }

    /// Returns the params with the incremental join cache on or off.
    pub fn with_join_cache(self, join_cache: bool) -> Self {
        ScubaParams { join_cache, ..self }
    }

    /// Returns the params with an explicit ingest shard count (`0` follows
    /// [`ScubaParams::parallelism`]).
    pub fn with_ingest_shards(self, ingest_shards: usize) -> Self {
        ScubaParams {
            ingest_shards,
            ..self
        }
    }

    /// Returns the params with batched (sharded) ingestion on or off.
    pub fn with_batch_ingest(self, batch_ingest: bool) -> Self {
        ScubaParams {
            batch_ingest,
            ..self
        }
    }

    /// The shard count batched ingestion actually runs with: 1 when batch
    /// ingestion is disabled, otherwise `ingest_shards`, falling back to
    /// `parallelism` when unset, and never wider than the grid (each shard
    /// is at least one column of cells).
    pub fn effective_ingest_shards(&self) -> usize {
        if !self.batch_ingest {
            return 1;
        }
        let requested = if self.ingest_shards > 0 {
            self.ingest_shards
        } else {
            self.parallelism
        };
        requested.clamp(1, self.grid_cells as usize)
    }

    /// Returns the params with different clustering thresholds.
    pub fn with_thresholds(self, theta_d: f64, theta_s: f64) -> Self {
        ScubaParams {
            theta_d,
            theta_s,
            ..self
        }
    }

    /// Returns the params with an ingestion validation policy.
    pub fn with_validation(self, validation: ValidationPolicy) -> Self {
        ScubaParams { validation, ..self }
    }

    /// Returns the params with an overload deadline budget (`None`
    /// disables the adaptive controller).
    pub fn with_deadline_us(self, deadline_us: Option<u64>) -> Self {
        ScubaParams {
            deadline_us,
            ..self
        }
    }

    /// Returns the params with a different spatial index backing the
    /// ClusterGrid role.
    pub fn with_index(self, index: IndexKind) -> Self {
        ScubaParams { index, ..self }
    }

    /// Returns the params with a different join-kernel implementation.
    pub fn with_kernel(self, kernel: KernelKind) -> Self {
        ScubaParams { kernel, ..self }
    }

    /// Returns the params with a different stripe-shard count for the
    /// multi-worker executor (`1` — the default — is the single-store
    /// engine). Zero is rejected by [`validate`](ScubaParams::validate),
    /// not clamped, so a misconfigured `--shards 0` fails loudly.
    pub fn with_shards(self, shards: usize) -> Self {
        ScubaParams { shards, ..self }
    }

    /// Returns the params with different adaptive-grid split/merge
    /// thresholds (only observed when [`index`](ScubaParams::index) is
    /// [`IndexKind::Adaptive`]).
    pub fn with_split_merge(self, split_threshold: u32, merge_threshold: u32) -> Self {
        ScubaParams {
            split_threshold,
            merge_threshold,
            ..self
        }
    }

    /// Validating constructor: the params if they can produce a working
    /// engine, the first defect otherwise. Prefer this over bare struct
    /// literals at trust boundaries (config files, CLI flags, snapshots).
    pub fn validated(self) -> Result<Self, ParamsError> {
        self.validate()?;
        Ok(self)
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), ParamsError> {
        if !self.theta_d.is_finite() || self.theta_d <= 0.0 {
            return Err(ParamsError::NonPositiveThetaD(self.theta_d));
        }
        if !self.theta_s.is_finite() || self.theta_s <= 0.0 {
            return Err(ParamsError::NonPositiveThetaS(self.theta_s));
        }
        if self.grid_cells == 0 {
            return Err(ParamsError::ZeroGridCells);
        }
        if self.delta == 0 {
            return Err(ParamsError::ZeroDelta);
        }
        if self.cnloc_tolerance.is_nan() || self.cnloc_tolerance < 0.0 {
            return Err(ParamsError::NegativeCnlocTolerance(self.cnloc_tolerance));
        }
        if self.parallelism == 0 {
            return Err(ParamsError::ZeroParallelism);
        }
        if self.shards == 0 {
            return Err(ParamsError::ZeroShards);
        }
        if self.deadline_us == Some(0) {
            return Err(ParamsError::ZeroDeadline);
        }
        if self.split_threshold < 2 {
            return Err(ParamsError::SplitThresholdTooSmall(self.split_threshold));
        }
        if self.merge_threshold >= self.split_threshold {
            return Err(ParamsError::MergeNotBelowSplit {
                split: self.split_threshold,
                merge: self.merge_threshold,
            });
        }
        // `ingest_shards` is unbounded above (effective_ingest_shards clamps
        // to the grid) and 0 means "follow parallelism", so any value is
        // valid; nothing to check.
        self.shedding.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = ScubaParams::default();
        assert_eq!(p.theta_d, 100.0);
        assert_eq!(p.theta_s, 10.0);
        assert_eq!(p.grid_cells, 100);
        assert_eq!(p.delta, 2);
        assert_eq!(p.shedding, SheddingMode::None);
        assert_eq!(p.parallelism, 1, "serial join-within is the default");
        assert!(p.join_cache, "incremental join cache is on by default");
        assert_eq!(p.index, IndexKind::Uniform, "the paper's flat grid");
        assert_eq!(p.kernel, KernelKind::Scalar, "scalar kernel by default");
        assert!(p.validate().is_ok());
    }

    #[test]
    fn kernel_builder_and_validation() {
        let p = ScubaParams::default().with_kernel(KernelKind::Simd);
        assert_eq!(p.kernel, KernelKind::Simd);
        assert!(p.validate().is_ok(), "any kernel kind is valid");
    }

    #[test]
    fn kernel_serde_default_and_roundtrip() {
        // Configs written before the kernel knob existed deserialize to
        // the scalar default.
        let old: ScubaParams = serde_json::from_str("{}").expect("all fields defaulted");
        assert_eq!(old.kernel, KernelKind::Scalar);
        assert_eq!(old.shards, 1, "pre-shard configs stay single-store");
        let p = ScubaParams::default().with_kernel(KernelKind::Simd);
        let roundtrip: ScubaParams =
            serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        assert_eq!(roundtrip.kernel, KernelKind::Simd);
    }

    #[test]
    fn index_builders_and_validation() {
        let p = ScubaParams::default()
            .with_index(IndexKind::Adaptive)
            .with_split_merge(16, 4)
            .validated()
            .expect("valid params");
        assert_eq!(p.index, IndexKind::Adaptive);
        assert_eq!(p.split_threshold, 16);
        assert_eq!(p.merge_threshold, 4);
        assert_eq!(
            ScubaParams::default()
                .with_split_merge(1, 0)
                .validate()
                .unwrap_err(),
            ParamsError::SplitThresholdTooSmall(1)
        );
        assert_eq!(
            ScubaParams::default()
                .with_split_merge(8, 8)
                .validate()
                .unwrap_err(),
            ParamsError::MergeNotBelowSplit { split: 8, merge: 8 }
        );
        assert!(ParamsError::MergeNotBelowSplit { split: 8, merge: 9 }
            .to_string()
            .contains("merge_threshold"));
    }

    #[test]
    fn join_cache_builder() {
        assert!(!ScubaParams::default().with_join_cache(false).join_cache);
    }

    #[test]
    fn builders() {
        let p = ScubaParams::default()
            .with_grid_cells(0)
            .with_thresholds(50.0, 5.0);
        assert_eq!(p.grid_cells, 1);
        assert_eq!(p.theta_d, 50.0);
        assert_eq!(p.theta_s, 5.0);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(ScubaParams::default()
            .with_thresholds(0.0, 10.0)
            .validate()
            .is_err());
        assert!(ScubaParams::default()
            .with_thresholds(100.0, -1.0)
            .validate()
            .is_err());
        let p = ScubaParams {
            delta: 0,
            ..ScubaParams::default()
        };
        assert!(p.validate().is_err());
        let p = ScubaParams {
            theta_d: f64::NAN,
            ..ScubaParams::default()
        };
        assert!(p.validate().is_err());
        let p = ScubaParams {
            parallelism: 0,
            ..ScubaParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn typed_errors_identify_the_defect() {
        assert_eq!(
            ScubaParams::default()
                .with_thresholds(-1.0, 10.0)
                .validate()
                .unwrap_err(),
            ParamsError::NonPositiveThetaD(-1.0)
        );
        assert_eq!(
            ScubaParams::default()
                .with_thresholds(100.0, 0.0)
                .validate()
                .unwrap_err(),
            ParamsError::NonPositiveThetaS(0.0)
        );
        assert_eq!(
            ScubaParams {
                grid_cells: 0,
                ..ScubaParams::default()
            }
            .validate()
            .unwrap_err(),
            ParamsError::ZeroGridCells
        );
        assert_eq!(
            ScubaParams::default()
                .with_deadline_us(Some(0))
                .validate()
                .unwrap_err(),
            ParamsError::ZeroDeadline
        );
        assert_eq!(
            ScubaParams::default()
                .with_shedding(SheddingMode::Partial { eta: 1.5 })
                .validate()
                .unwrap_err(),
            ParamsError::EtaOutOfRange(1.5)
        );
    }

    #[test]
    fn validated_constructor_and_new_builders() {
        let p = ScubaParams::default()
            .with_validation(ValidationPolicy::Reject)
            .with_deadline_us(Some(500))
            .validated()
            .expect("valid params");
        assert_eq!(p.validation, ValidationPolicy::Reject);
        assert_eq!(p.deadline_us, Some(500));
        assert!(ScubaParams::default()
            .with_deadline_us(Some(0))
            .validated()
            .is_err());
        // Defaults: hardened knobs off, matching the paper's setting.
        let d = ScubaParams::default();
        assert_eq!(d.validation, ValidationPolicy::Off);
        assert_eq!(d.deadline_us, None);
    }

    #[test]
    fn errors_render_operator_messages() {
        let msg: String = ParamsError::NonPositiveThetaD(-2.0).into();
        assert_eq!(msg, "theta_d must be positive, got -2");
        assert!(ParamsError::ZeroDeadline
            .to_string()
            .contains("deadline_us"));
        assert!(ParamsError::EtaOutOfRange(7.0)
            .to_string()
            .contains("[0, 1]"));
    }

    #[test]
    fn shards_builder_and_validation() {
        let d = ScubaParams::default();
        assert_eq!(d.shards, 1, "single-store engine by default");
        assert_eq!(d.with_shards(4).shards, 4);
        assert_eq!(
            d.with_shards(0).validate().unwrap_err(),
            ParamsError::ZeroShards
        );
        assert!(ParamsError::ZeroShards.to_string().contains("shards"));
    }

    #[test]
    fn parallelism_builder_clamps_to_one() {
        assert_eq!(ScubaParams::default().with_parallelism(0).parallelism, 1);
        assert_eq!(ScubaParams::default().with_parallelism(4).parallelism, 4);
    }

    #[test]
    fn ingest_defaults_follow_parallelism() {
        let p = ScubaParams::default();
        assert_eq!(p.ingest_shards, 0, "shards follow parallelism by default");
        assert!(p.batch_ingest, "batch ingestion is on by default");
        assert_eq!(p.effective_ingest_shards(), 1, "serial by default");
        assert_eq!(p.with_parallelism(4).effective_ingest_shards(), 4);
    }

    #[test]
    fn explicit_ingest_shards_decouple_from_parallelism() {
        let p = ScubaParams::default()
            .with_parallelism(8)
            .with_ingest_shards(2);
        assert_eq!(p.effective_ingest_shards(), 2);
    }

    #[test]
    fn effective_shards_clamp_to_grid_and_toggle() {
        let p = ScubaParams::default()
            .with_grid_cells(4)
            .with_ingest_shards(100);
        assert_eq!(
            p.effective_ingest_shards(),
            4,
            "a shard is at least one grid column"
        );
        assert_eq!(p.with_batch_ingest(false).effective_ingest_shards(), 1);
        assert!(p.with_ingest_shards(7).validate().is_ok());
    }
}
