//! SCUBA tuning parameters.

use serde::{Deserialize, Serialize};

use scuba_spatial::TimeDelta;

use crate::shedding::SheddingMode;

/// How the §3.2 step-1 grid probe interprets "clusters in the proximity of
/// the current location". Ablation knob for DESIGN.md §3.5 #3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ProbeScope {
    /// Probe every cell overlapping the Θ_D disk around the update (the
    /// default): clustering behaviour is independent of grid granularity.
    #[default]
    ThetaDisk,
    /// Probe only the update's own cell — the literal reading of the
    /// pseudo-code. With cells smaller than Θ_D this fragments clusters.
    OwnCell,
}

/// All knobs of the SCUBA operator, with the defaults of the paper's
/// experimental section (§6.1): Θ_D = 100 spatial units, Θ_S = 10 spatial
/// units / time unit, a 100×100 ClusterGrid and Δ = 2 time units, no load
/// shedding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ScubaParams {
    /// Distance threshold Θ_D: an entity may only join a cluster whose
    /// centroid is within this distance ("guarantees that the clustered
    /// entities are close to each other at the time of clustering", §3.1).
    pub theta_d: f64,
    /// Speed threshold Θ_S: an entity may only join a cluster whose average
    /// speed differs by at most this much ("assures that the entities will
    /// stay close to each other for some time in the future", §3.1).
    pub theta_s: f64,
    /// Cells per side of the ClusterGrid (the paper's default grid is
    /// 100×100).
    pub grid_cells: u32,
    /// Evaluation interval Δ in time units.
    pub delta: TimeDelta,
    /// Tolerance when comparing connection-node positions for the
    /// direction check (`o.cnloc == m.cnloc`); positions are `f64` produced
    /// by identical arithmetic, so a tight tolerance suffices.
    pub cnloc_tolerance: f64,
    /// Load-shedding policy (§5). `SheddingMode::None` by default.
    pub shedding: SheddingMode,
    /// Scope of the step-1 candidate probe (ablation knob; default
    /// [`ProbeScope::ThetaDisk`]).
    pub probe_scope: ProbeScope,
    /// Whether join-within applies the member-vs-cluster reach filter
    /// before the nested loop (ablation knob; default `true`; never
    /// changes results, only work).
    pub member_filter: bool,
    /// Whether cluster radii are tightened to exact values before each
    /// joining phase (ablation knob; default `true`; never changes
    /// results — the conservative radii are sound, just less selective).
    pub tighten_radii: bool,
    /// Entities silent for more than this many time units are evicted
    /// during post-join maintenance (`None` disables TTL eviction — the
    /// paper's setting, where 100 % of entities report every time unit).
    pub entity_ttl: Option<u64>,
    /// Worker threads for the join-within stage of the evaluation
    /// pipeline. Default 1 — the serial path, bit-identical to the
    /// pre-pipeline behaviour. Any value yields the same results and work
    /// counters; only wall-clock time changes.
    pub parallelism: usize,
    /// Whether the operator carries a [`crate::join::JoinCache`] across
    /// epochs, replaying join-within results for cluster pairs that have
    /// not mutated since they were computed (default `true`). Never
    /// changes results — replays are bit-identical — only work done.
    pub join_cache: bool,
    /// Spatial shards for batched ingestion (column stripes of the
    /// ClusterGrid). `0` — the default — follows [`parallelism`]; an
    /// explicit value decouples ingest sharding from join workers.
    /// Sharded ingestion is bit-identical to the sequential engine under
    /// the canonical batch order (sort by `(time, entity)`).
    ///
    /// [`parallelism`]: ScubaParams::parallelism
    pub ingest_shards: usize,
    /// Whether [`crate::engine::ScubaOperator`] routes whole ticks through
    /// the sharded batch-ingestion path when more than one shard is in
    /// effect (default `true`). With one effective shard the per-update
    /// loop runs either way; `false` forces it at any shard count.
    pub batch_ingest: bool,
}

impl Default for ScubaParams {
    fn default() -> Self {
        ScubaParams {
            theta_d: 100.0,
            theta_s: 10.0,
            grid_cells: 100,
            delta: 2,
            cnloc_tolerance: 1e-6,
            shedding: SheddingMode::None,
            probe_scope: ProbeScope::ThetaDisk,
            member_filter: true,
            tighten_radii: true,
            entity_ttl: None,
            parallelism: 1,
            join_cache: true,
            ingest_shards: 0,
            batch_ingest: true,
        }
    }
}

impl ScubaParams {
    /// Returns the params with a different grid granularity.
    pub fn with_grid_cells(self, grid_cells: u32) -> Self {
        ScubaParams {
            grid_cells: grid_cells.max(1),
            ..self
        }
    }

    /// Returns the params with a different shedding mode.
    pub fn with_shedding(self, shedding: SheddingMode) -> Self {
        ScubaParams { shedding, ..self }
    }

    /// Returns the params with a different join-within worker count
    /// (clamped to at least 1).
    pub fn with_parallelism(self, parallelism: usize) -> Self {
        ScubaParams {
            parallelism: parallelism.max(1),
            ..self
        }
    }

    /// Returns the params with the incremental join cache on or off.
    pub fn with_join_cache(self, join_cache: bool) -> Self {
        ScubaParams { join_cache, ..self }
    }

    /// Returns the params with an explicit ingest shard count (`0` follows
    /// [`ScubaParams::parallelism`]).
    pub fn with_ingest_shards(self, ingest_shards: usize) -> Self {
        ScubaParams {
            ingest_shards,
            ..self
        }
    }

    /// Returns the params with batched (sharded) ingestion on or off.
    pub fn with_batch_ingest(self, batch_ingest: bool) -> Self {
        ScubaParams {
            batch_ingest,
            ..self
        }
    }

    /// The shard count batched ingestion actually runs with: 1 when batch
    /// ingestion is disabled, otherwise `ingest_shards`, falling back to
    /// `parallelism` when unset, and never wider than the grid (each shard
    /// is at least one column of cells).
    pub fn effective_ingest_shards(&self) -> usize {
        if !self.batch_ingest {
            return 1;
        }
        let requested = if self.ingest_shards > 0 {
            self.ingest_shards
        } else {
            self.parallelism
        };
        requested.clamp(1, self.grid_cells as usize)
    }

    /// Returns the params with different clustering thresholds.
    pub fn with_thresholds(self, theta_d: f64, theta_s: f64) -> Self {
        ScubaParams {
            theta_d,
            theta_s,
            ..self
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !self.theta_d.is_finite() || self.theta_d <= 0.0 {
            return Err(format!("theta_d must be positive, got {}", self.theta_d));
        }
        if self.theta_s.is_nan() || self.theta_s < 0.0 {
            return Err(format!(
                "theta_s must be non-negative, got {}",
                self.theta_s
            ));
        }
        if self.grid_cells == 0 {
            return Err("grid_cells must be >= 1".into());
        }
        if self.delta == 0 {
            return Err("delta must be >= 1".into());
        }
        if self.cnloc_tolerance.is_nan() || self.cnloc_tolerance < 0.0 {
            return Err("cnloc_tolerance must be non-negative".into());
        }
        if self.parallelism == 0 {
            return Err("parallelism must be >= 1".into());
        }
        // `ingest_shards` is unbounded above (effective_ingest_shards clamps
        // to the grid) and 0 means "follow parallelism", so any value is
        // valid; nothing to check.
        self.shedding.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = ScubaParams::default();
        assert_eq!(p.theta_d, 100.0);
        assert_eq!(p.theta_s, 10.0);
        assert_eq!(p.grid_cells, 100);
        assert_eq!(p.delta, 2);
        assert_eq!(p.shedding, SheddingMode::None);
        assert_eq!(p.parallelism, 1, "serial join-within is the default");
        assert!(p.join_cache, "incremental join cache is on by default");
        assert!(p.validate().is_ok());
    }

    #[test]
    fn join_cache_builder() {
        assert!(!ScubaParams::default().with_join_cache(false).join_cache);
    }

    #[test]
    fn builders() {
        let p = ScubaParams::default()
            .with_grid_cells(0)
            .with_thresholds(50.0, 5.0);
        assert_eq!(p.grid_cells, 1);
        assert_eq!(p.theta_d, 50.0);
        assert_eq!(p.theta_s, 5.0);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(ScubaParams::default()
            .with_thresholds(0.0, 10.0)
            .validate()
            .is_err());
        assert!(ScubaParams::default()
            .with_thresholds(100.0, -1.0)
            .validate()
            .is_err());
        let p = ScubaParams {
            delta: 0,
            ..ScubaParams::default()
        };
        assert!(p.validate().is_err());
        let p = ScubaParams {
            theta_d: f64::NAN,
            ..ScubaParams::default()
        };
        assert!(p.validate().is_err());
        let p = ScubaParams {
            parallelism: 0,
            ..ScubaParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn parallelism_builder_clamps_to_one() {
        assert_eq!(ScubaParams::default().with_parallelism(0).parallelism, 1);
        assert_eq!(ScubaParams::default().with_parallelism(4).parallelism, 4);
    }

    #[test]
    fn ingest_defaults_follow_parallelism() {
        let p = ScubaParams::default();
        assert_eq!(p.ingest_shards, 0, "shards follow parallelism by default");
        assert!(p.batch_ingest, "batch ingestion is on by default");
        assert_eq!(p.effective_ingest_shards(), 1, "serial by default");
        assert_eq!(p.with_parallelism(4).effective_ingest_shards(), 4);
    }

    #[test]
    fn explicit_ingest_shards_decouple_from_parallelism() {
        let p = ScubaParams::default()
            .with_parallelism(8)
            .with_ingest_shards(2);
        assert_eq!(p.effective_ingest_shards(), 2);
    }

    #[test]
    fn effective_shards_clamp_to_grid_and_toggle() {
        let p = ScubaParams::default()
            .with_grid_cells(4)
            .with_ingest_shards(100);
        assert_eq!(
            p.effective_ingest_shards(),
            4,
            "a shard is at least one grid column"
        );
        assert_eq!(p.with_batch_ingest(false).effective_ingest_shards(), 1);
        assert!(p.with_ingest_shards(7).validate().is_ok());
    }
}
