//! An incrementally-maintained shared grid join — the SINA-style
//! comparator (paper §7: "The shared execution paradigm as means to
//! achieve scalability has been used in SINA \[24\] for continuous
//! spatio-temporal range queries").
//!
//! Unlike [`crate::baseline::RegularGridOperator`], which re-hashes every
//! entity into a fresh grid at each evaluation, this operator maintains the
//! grid *incrementally*: each location update removes the entity's previous
//! grid entries and inserts the new ones, paying the paper's
//! "process and materialize every location update individually" cost on
//! the ingest path. The join phase is then a plain cell-by-cell scan over
//! the always-current grid.
//!
//! This is the per-tuple index-maintenance regime SCUBA's clustering was
//! designed to avoid (one grid entry per *cluster*, relocated per cluster),
//! so benches pair the two to expose exactly that difference.

use scuba_motion::{EntityAttrs, EntityRef, LocationUpdate, ObjectId, QueryId, QuerySpec};
use scuba_spatial::{CellIdx, FxHashMap, GridSpec, Point, Rect, Time};
use scuba_stream::{
    ContinuousOperator, EvaluationReport, PhaseBreakdown, QueryMatch, StageStats, Stopwatch,
};

/// Stage name: the cell-by-cell scan over the always-current grid.
pub const STAGE_CELL_JOIN: &str = "cell-join";
/// Stage name: sorting the raw matches for deterministic output.
pub const STAGE_RESULT_MERGE: &str = "result-merge";

/// The incrementally-maintained grid operator.
#[derive(Debug)]
pub struct IncrementalGridOperator {
    spec: GridSpec,
    /// Object entries per cell.
    object_cells: Vec<Vec<(ObjectId, Point)>>,
    /// Query entries per cell (regions replicated into overlapped cells).
    query_cells: Vec<Vec<(QueryId, Rect)>>,
    /// Current grid registration per entity, for O(entries) removal.
    registrations: FxHashMap<EntityRef, Vec<u32>>,
    evaluations: u64,
    /// Grid maintenance operations performed (insert + remove entries).
    maintenance_ops: u64,
}

impl IncrementalGridOperator {
    /// Creates the operator with a `grid_cells × grid_cells` grid over
    /// `area`.
    pub fn new(grid_cells: u32, area: Rect) -> Self {
        let spec = GridSpec::new(area, grid_cells.max(1));
        IncrementalGridOperator {
            spec,
            object_cells: vec![Vec::new(); spec.cell_count()],
            query_cells: vec![Vec::new(); spec.cell_count()],
            registrations: FxHashMap::default(),
            evaluations: 0,
            maintenance_ops: 0,
        }
    }

    /// The grid partitioning in use.
    pub fn grid_spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Number of evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Number of tracked entities.
    pub fn entity_count(&self) -> usize {
        self.registrations.len()
    }

    /// Total grid entry insertions + removals so far — the per-tuple
    /// maintenance work measure.
    pub fn maintenance_ops(&self) -> u64 {
        self.maintenance_ops
    }

    /// Estimated bytes of in-memory state.
    pub fn estimated_bytes(&self) -> usize {
        let header = std::mem::size_of::<Vec<u8>>();
        let object_entries: usize = self
            .object_cells
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<(ObjectId, Point)>())
            .sum();
        let query_entries: usize = self
            .query_cells
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<(QueryId, Rect)>())
            .sum();
        let regs: usize = self
            .registrations
            .values()
            .map(|v| header + v.capacity() * 4 + 24)
            .sum();
        self.object_cells.len() * header * 2 + object_entries + query_entries + regs
    }

    fn remove_entity_entries(&mut self, entity: EntityRef) {
        if let Some(cells) = self.registrations.remove(&entity) {
            for linear in cells {
                match entity {
                    EntityRef::Object(oid) => {
                        let cell = &mut self.object_cells[linear as usize];
                        if let Some(pos) = cell.iter().position(|(o, _)| *o == oid) {
                            cell.swap_remove(pos);
                            self.maintenance_ops += 1;
                        }
                    }
                    EntityRef::Query(qid) => {
                        let cell = &mut self.query_cells[linear as usize];
                        if let Some(pos) = cell.iter().position(|(q, _)| *q == qid) {
                            cell.swap_remove(pos);
                            self.maintenance_ops += 1;
                        }
                    }
                }
            }
        }
    }

    /// Deregisters an entity entirely (query cancellation / object
    /// retirement).
    pub fn remove_entity(&mut self, entity: EntityRef) -> bool {
        let known = self.registrations.contains_key(&entity);
        self.remove_entity_entries(entity);
        known
    }
}

impl ContinuousOperator for IncrementalGridOperator {
    fn process_update(&mut self, update: &LocationUpdate) {
        // Per-tuple maintenance: drop the old entries, insert the new.
        self.remove_entity_entries(update.entity);
        let mut cells: Vec<u32> = Vec::with_capacity(1);
        match (update.entity, &update.attrs) {
            (EntityRef::Object(oid), EntityAttrs::Object(_)) => {
                let idx = self.spec.cell_of(&update.loc);
                let linear = self.spec.linear(idx) as u32;
                self.object_cells[linear as usize].push((oid, update.loc));
                self.maintenance_ops += 1;
                cells.push(linear);
            }
            (EntityRef::Query(qid), EntityAttrs::Query(attrs)) => {
                if let QuerySpec::Range { .. } = attrs.spec {
                    let region = attrs
                        .spec
                        .region_at(update.loc)
                        .expect("range spec has a region");
                    let targets: Vec<u32> = self
                        .spec
                        .cells_overlapping_rect(&region)
                        .map(|idx| self.spec.linear(idx) as u32)
                        .collect();
                    for &linear in &targets {
                        self.query_cells[linear as usize].push((qid, region));
                        self.maintenance_ops += 1;
                    }
                    cells = targets;
                }
            }
            _ => {}
        }
        if !cells.is_empty() {
            self.registrations.insert(update.entity, cells);
        }
    }

    fn evaluate(&mut self, now: Time) -> EvaluationReport {
        self.evaluations += 1;
        // The grid is already current — no maintenance stage at evaluation
        // time, so the report's maintenance bucket stays zero.
        let mut phases = PhaseBreakdown::new();
        let mut sw = Stopwatch::start();
        let mut results = Vec::new();
        let mut comparisons = 0u64;
        let n = self.spec.cells_per_side();
        for row in 0..n {
            for col in 0..n {
                let linear = self.spec.linear(CellIdx::new(col, row));
                let objects = &self.object_cells[linear];
                if objects.is_empty() {
                    continue;
                }
                let queries = &self.query_cells[linear];
                for &(oid, opos) in objects {
                    for &(qid, region) in queries {
                        comparisons += 1;
                        if region.contains(&opos) {
                            results.push(QueryMatch::new(qid, oid));
                        }
                    }
                }
            }
        }
        let raw = results.len() as u64;
        phases.push(
            StageStats::join(STAGE_CELL_JOIN)
                .with_wall(sw.lap())
                .with_items(self.registrations.len() as u64, raw)
                .with_tests(comparisons),
        );

        results.sort_unstable();
        phases.push(
            StageStats::join(STAGE_RESULT_MERGE)
                .with_wall(sw.lap())
                .with_items(raw, results.len() as u64),
        );

        EvaluationReport {
            now,
            results,
            phases,
            memory_bytes: self.estimated_bytes(),
            comparisons,
            prefilter_tests: 0,
        }
    }

    fn name(&self) -> &str {
        "SINA-GRID"
    }

    fn memory_bytes(&self) -> usize {
        self.estimated_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::RegularGridOperator;
    use scuba_motion::{ObjectAttrs, QueryAttrs};

    const CN: Point = Point {
        x: 1000.0,
        y: 500.0,
    };

    fn obj(id: u64, x: f64, y: f64) -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            0,
            30.0,
            CN,
            ObjectAttrs::default(),
        )
    }

    fn qry(id: u64, x: f64, y: f64, side: f64) -> LocationUpdate {
        LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            0,
            30.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(side),
            },
        )
    }

    fn operator() -> IncrementalGridOperator {
        IncrementalGridOperator::new(10, Rect::square(1000.0))
    }

    #[test]
    fn finds_matches() {
        let mut op = operator();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0));
        let report = op.evaluate(2);
        assert_eq!(
            report.results,
            vec![QueryMatch::new(QueryId(1), ObjectId(1))]
        );
        assert_eq!(op.evaluations(), 1);
        assert!(op.maintenance_ops() >= 2);
    }

    #[test]
    fn matches_regular_on_random_workload() {
        let mut sina = operator();
        let mut regular = RegularGridOperator::new(10, Rect::square(1000.0));
        for i in 0..150u64 {
            let u = obj(i, (i * 37 % 1000) as f64, (i * 61 % 1000) as f64);
            sina.process_update(&u);
            regular.process_update(&u);
            let q = qry(i, (i * 53 % 1000) as f64, (i * 71 % 1000) as f64, 60.0);
            sina.process_update(&q);
            regular.process_update(&q);
        }
        assert_eq!(sina.evaluate(2).results, regular.evaluate(2).results);
    }

    #[test]
    fn moving_entity_changes_cells() {
        let mut op = operator();
        op.process_update(&obj(1, 50.0, 50.0));
        op.process_update(&qry(1, 950.0, 950.0, 20.0));
        assert!(op.evaluate(2).results.is_empty());
        // The object crosses the map; its old entry must be gone.
        op.process_update(&obj(1, 955.0, 950.0));
        let report = op.evaluate(4);
        assert_eq!(report.results.len(), 1);
        assert_eq!(op.entity_count(), 2, "one entry per entity");
    }

    #[test]
    fn stationary_updates_do_not_leak_entries() {
        let mut op = operator();
        for _ in 0..100 {
            op.process_update(&obj(1, 500.0, 500.0));
        }
        let linear = op.spec.linear(op.spec.cell_of(&Point::new(500.0, 500.0)));
        assert_eq!(op.object_cells[linear].len(), 1);
        assert_eq!(op.entity_count(), 1);
    }

    #[test]
    fn spanning_query_registered_in_all_cells_and_removed() {
        let mut op = operator();
        op.process_update(&qry(1, 500.0, 500.0, 400.0));
        let cells_before: usize = op.query_cells.iter().map(Vec::len).sum();
        assert!(cells_before > 1, "wide query spans several cells");
        // Re-report with a small range centred inside one cell: all old
        // replicas must be removed and exactly one new entry created.
        op.process_update(&qry(1, 150.0, 150.0, 10.0));
        let cells_after: usize = op.query_cells.iter().map(Vec::len).sum();
        assert_eq!(cells_after, 1, "old replicas removed");
    }

    #[test]
    fn remove_entity_clears_state() {
        let mut op = operator();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 505.0, 500.0, 20.0));
        assert!(op.remove_entity(EntityRef::Query(QueryId(1))));
        assert!(!op.remove_entity(EntityRef::Query(QueryId(1))));
        assert!(op.evaluate(2).results.is_empty());
        assert_eq!(op.entity_count(), 1);
    }

    #[test]
    fn no_maintenance_time_at_evaluation() {
        let mut op = operator();
        op.process_update(&obj(1, 500.0, 500.0));
        let report = op.evaluate(2);
        assert_eq!(report.maintenance_time(), std::time::Duration::ZERO);
        // Only join-bucket stages: the breakdown carries the cell scan and
        // the merge, nothing else.
        let names: Vec<&str> = report
            .phases
            .stages()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, vec![STAGE_CELL_JOIN, STAGE_RESULT_MERGE]);
    }

    #[test]
    fn knn_queries_ignored() {
        let mut op = operator();
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&LocationUpdate::query(
            QueryId(9),
            Point::new(500.0, 500.0),
            0,
            30.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::Knn { k: 1 },
            },
        ));
        assert!(op.evaluate(2).results.is_empty());
    }
}
