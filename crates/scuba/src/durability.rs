//! Durable checkpoint/WAL layer and the supervised execution loop.
//!
//! A long-lived SCUBA deployment must survive two failure classes the plain
//! [`Executor`](scuba_stream::Executor) ignores:
//!
//! * **process death** (crash, OOM-kill, power loss) — handled by interval
//!   **checkpoints** (a full [`EngineSnapshot`] per stripe, written with the
//!   atomic temp-file → fsync → rename protocol and a CRC32-guarded header)
//!   plus a **write-ahead journal** of every tick's delivered batch between
//!   checkpoints. [`recover`] loads the newest intact checkpoint and replays
//!   the journal's contiguous prefix; a torn tail (the frame being appended
//!   when the process died) is tolerated and replay simply stops there.
//! * **worker panics** inside the sharded evaluate pipeline — handled by
//!   [`run_supervised`]: the epoch's poisoned in-memory state is discarded
//!   wholesale and the operator is rebuilt from the last checkpoint plus the
//!   in-memory journal of frames since, under a bounded restart budget with
//!   exponential backoff. Budget exhaustion aborts the run (the give-up
//!   path), reported via [`RunReport::aborted`].
//!
//! The checkpoint payload uses a hand-rolled, versioned binary codec (not
//! `serde_json`) so the on-disk format is self-contained, byte-stable and
//! cheap to checksum; journal frames carry the wire encoding from
//! [`scuba_motion::wire`]. Recovery is **identity-preserving**: because
//! ingestion and evaluation are deterministic, a run resumed from durable
//! state produces the same answers and the same final engine state as an
//! uninterrupted run (see DESIGN.md §4.9 for the argument and its
//! replayable-source caveat).

use std::fs;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use bytes::BytesMut;

use scuba_motion::{
    control, wire, ControlOp, EntityRef, LocationUpdate, ObjectAttrs, ObjectClass, ObjectId,
    QueryAttrs, QueryId, QuerySpec,
};
use scuba_spatial::{Point, Polar, Rect, Time, Vector};
use scuba_stream::{
    ContinuousOperator, EvaluationReport, LatencyTrack, PanicInjector, RunReport, Stopwatch,
    UpdateSource, UpdateValidator, ValidationPolicy,
};

use crate::engine::ScubaOperator;
use crate::index::IndexKind;
use crate::kernel::KernelKind;
use crate::params::{ProbeScope, ScubaParams};
use crate::registry::{ControlGauges, QueryRecord, QueryRegistry};
use crate::shard::{ShardedScubaOperator, WorkerFailure};
use crate::shedding::SheddingMode;
use crate::snapshot::{ClusterSnapshot, EngineSnapshot, MemberSnapshot, SnapshotError};

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) — hand-rolled so the durable format has no
// dependency beyond the standard library.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

fn crc32_update(mut c: u32, data: &[u8]) -> u32 {
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c
}

/// IEEE CRC32 (the `cksum`/zlib polynomial, reflected) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xffff_ffff, data) ^ 0xffff_ffff
}

// ---------------------------------------------------------------------------
// Binary snapshot codec.
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            put_u64(out, x);
        }
    }
}

fn put_point(out: &mut Vec<u8>, p: Point) {
    put_f64(out, p.x);
    put_f64(out, p.y);
}

fn put_vector(out: &mut Vec<u8>, v: Vector) {
    put_f64(out, v.dx);
    put_f64(out, v.dy);
}

/// A bounds-checked little-endian cursor over a snapshot payload; every
/// short read is [`SnapshotError::Truncated`], every invalid enum tag is
/// [`SnapshotError::Inconsistent`].
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.data.len() - self.pos < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapshotError::Inconsistent(format!("bad bool tag {t}"))),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(SnapshotError::Inconsistent(format!("bad option tag {t}"))),
        }
    }

    fn point(&mut self) -> Result<Point, SnapshotError> {
        Ok(Point {
            x: self.f64()?,
            y: self.f64()?,
        })
    }

    fn vector(&mut self) -> Result<Vector, SnapshotError> {
        Ok(Vector {
            dx: self.f64()?,
            dy: self.f64()?,
        })
    }

    /// A checked element count: an upper bound derived from the remaining
    /// payload keeps a corrupted count from triggering a huge allocation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.data.len() - self.pos {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }
}

fn encode_params(out: &mut Vec<u8>, p: &ScubaParams) {
    put_f64(out, p.theta_d);
    put_f64(out, p.theta_s);
    put_u32(out, p.grid_cells);
    put_u64(out, p.delta);
    put_f64(out, p.cnloc_tolerance);
    match p.shedding {
        SheddingMode::None => put_u8(out, 0),
        SheddingMode::Partial { eta } => {
            put_u8(out, 1);
            put_f64(out, eta);
        }
        SheddingMode::Full => put_u8(out, 2),
    }
    put_u8(out, matches!(p.probe_scope, ProbeScope::OwnCell) as u8);
    put_bool(out, p.member_filter);
    put_bool(out, p.tighten_radii);
    put_opt_u64(out, p.entity_ttl);
    put_u64(out, p.parallelism as u64);
    put_bool(out, p.join_cache);
    put_u64(out, p.ingest_shards as u64);
    put_bool(out, p.batch_ingest);
    put_u8(
        out,
        match p.validation {
            ValidationPolicy::Off => 0,
            ValidationPolicy::Reject => 1,
            ValidationPolicy::Clamp => 2,
            ValidationPolicy::Abort => 3,
        },
    );
    put_opt_u64(out, p.deadline_us);
    put_u8(out, matches!(p.index, IndexKind::Adaptive) as u8);
    put_u32(out, p.split_threshold);
    put_u32(out, p.merge_threshold);
    put_u64(out, p.shards as u64);
    put_u8(out, matches!(p.kernel, KernelKind::Simd) as u8);
}

fn decode_params(r: &mut Reader<'_>) -> Result<ScubaParams, SnapshotError> {
    let theta_d = r.f64()?;
    let theta_s = r.f64()?;
    let grid_cells = r.u32()?;
    let delta = r.u64()?;
    let cnloc_tolerance = r.f64()?;
    let shedding = match r.u8()? {
        0 => SheddingMode::None,
        1 => SheddingMode::Partial { eta: r.f64()? },
        2 => SheddingMode::Full,
        t => return Err(SnapshotError::Inconsistent(format!("bad shedding tag {t}"))),
    };
    let probe_scope = match r.u8()? {
        0 => ProbeScope::ThetaDisk,
        1 => ProbeScope::OwnCell,
        t => {
            return Err(SnapshotError::Inconsistent(format!(
                "bad probe-scope tag {t}"
            )))
        }
    };
    let member_filter = r.bool()?;
    let tighten_radii = r.bool()?;
    let entity_ttl = r.opt_u64()?;
    let parallelism = r.u64()? as usize;
    let join_cache = r.bool()?;
    let ingest_shards = r.u64()? as usize;
    let batch_ingest = r.bool()?;
    let validation = match r.u8()? {
        0 => ValidationPolicy::Off,
        1 => ValidationPolicy::Reject,
        2 => ValidationPolicy::Clamp,
        3 => ValidationPolicy::Abort,
        t => {
            return Err(SnapshotError::Inconsistent(format!(
                "bad validation tag {t}"
            )))
        }
    };
    let deadline_us = r.opt_u64()?;
    let index = match r.u8()? {
        0 => IndexKind::Uniform,
        1 => IndexKind::Adaptive,
        t => return Err(SnapshotError::Inconsistent(format!("bad index tag {t}"))),
    };
    let split_threshold = r.u32()?;
    let merge_threshold = r.u32()?;
    let shards = r.u64()? as usize;
    let kernel = match r.u8()? {
        0 => KernelKind::Scalar,
        1 => KernelKind::Simd,
        t => return Err(SnapshotError::Inconsistent(format!("bad kernel tag {t}"))),
    };
    Ok(ScubaParams {
        theta_d,
        theta_s,
        grid_cells,
        delta,
        cnloc_tolerance,
        shedding,
        probe_scope,
        member_filter,
        tighten_radii,
        entity_ttl,
        parallelism,
        join_cache,
        ingest_shards,
        batch_ingest,
        validation,
        deadline_us,
        index,
        split_threshold,
        merge_threshold,
        shards,
        kernel,
    })
}

fn encode_entity(out: &mut Vec<u8>, e: EntityRef) {
    match e {
        EntityRef::Object(ObjectId(id)) => {
            put_u8(out, 0);
            put_u64(out, id);
        }
        EntityRef::Query(QueryId(id)) => {
            put_u8(out, 1);
            put_u64(out, id);
        }
    }
}

fn decode_entity(r: &mut Reader<'_>) -> Result<EntityRef, SnapshotError> {
    match r.u8()? {
        0 => Ok(EntityRef::Object(ObjectId(r.u64()?))),
        1 => Ok(EntityRef::Query(QueryId(r.u64()?))),
        t => Err(SnapshotError::Inconsistent(format!("bad entity tag {t}"))),
    }
}

/// Encodes one engine snapshot into `out` with the versioned binary layout.
fn encode_snapshot(out: &mut Vec<u8>, s: &EngineSnapshot) {
    encode_params(out, &s.params);
    put_point(out, s.area.min);
    put_point(out, s.area.max);
    put_u64(out, s.next_cluster_id);
    put_u64(out, s.updates_processed);
    put_u64(out, s.clusters.len() as u64);
    for c in &s.clusters {
        put_u64(out, c.cid);
        put_point(out, c.centroid);
        put_f64(out, c.radius);
        put_point(out, c.cn_loc);
        put_f64(out, c.ave_speed);
        put_u64(out, c.created_at);
        put_f64(out, c.max_query_radius);
        put_vector(out, c.total_drift);
        put_u64(out, c.members.len() as u64);
        for m in &c.members {
            encode_entity(out, m.entity);
            put_f64(out, m.speed);
            match m.rel {
                None => put_u8(out, 0),
                Some(p) => {
                    put_u8(out, 1);
                    put_f64(out, p.r);
                    put_f64(out, p.theta);
                }
            }
            put_u64(out, m.last_seen);
            put_vector(out, m.drift_mark);
        }
    }
    put_u64(out, s.objects.len() as u64);
    for (ObjectId(id), attrs) in &s.objects {
        put_u64(out, *id);
        put_u8(
            out,
            ObjectClass::ALL
                .iter()
                .position(|c| *c == attrs.class)
                .expect("class in ALL") as u8,
        );
    }
    put_u64(out, s.queries.len() as u64);
    for (QueryId(id), attrs) in &s.queries {
        put_u64(out, *id);
        match attrs.spec {
            QuerySpec::Range { width, height } => {
                put_u8(out, 0);
                put_f64(out, width);
                put_f64(out, height);
            }
            QuerySpec::Knn { k } => {
                put_u8(out, 1);
                put_u32(out, k);
            }
        }
    }
}

fn decode_snapshot(r: &mut Reader<'_>) -> Result<EngineSnapshot, SnapshotError> {
    let params = decode_params(r)?;
    let area = Rect {
        min: r.point()?,
        max: r.point()?,
    };
    let next_cluster_id = r.u64()?;
    let updates_processed = r.u64()?;
    let n_clusters = r.count(8 * 8 + 8 + 8)?;
    let mut clusters = Vec::with_capacity(n_clusters);
    for _ in 0..n_clusters {
        let cid = r.u64()?;
        let centroid = r.point()?;
        let radius = r.f64()?;
        let cn_loc = r.point()?;
        let ave_speed = r.f64()?;
        let created_at = r.u64()?;
        let max_query_radius = r.f64()?;
        let total_drift = r.vector()?;
        let n_members = r.count(9 + 8 + 1 + 8 + 16)?;
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            let entity = decode_entity(r)?;
            let speed = r.f64()?;
            let rel = match r.u8()? {
                0 => None,
                1 => Some(Polar {
                    r: r.f64()?,
                    theta: r.f64()?,
                }),
                t => return Err(SnapshotError::Inconsistent(format!("bad polar tag {t}"))),
            };
            let last_seen = r.u64()?;
            let drift_mark = r.vector()?;
            members.push(MemberSnapshot {
                entity,
                speed,
                rel,
                last_seen,
                drift_mark,
            });
        }
        clusters.push(ClusterSnapshot {
            cid,
            centroid,
            radius,
            cn_loc,
            ave_speed,
            created_at,
            max_query_radius,
            total_drift,
            members,
        });
    }
    let n_objects = r.count(9)?;
    let mut objects = Vec::with_capacity(n_objects);
    for _ in 0..n_objects {
        let id = ObjectId(r.u64()?);
        let tag = r.u8()? as usize;
        let class = *ObjectClass::ALL
            .get(tag)
            .ok_or_else(|| SnapshotError::Inconsistent(format!("bad class tag {tag}")))?;
        objects.push((id, ObjectAttrs { class }));
    }
    let n_queries = r.count(9)?;
    let mut queries = Vec::with_capacity(n_queries);
    for _ in 0..n_queries {
        let id = QueryId(r.u64()?);
        let spec = match r.u8()? {
            0 => QuerySpec::Range {
                width: r.f64()?,
                height: r.f64()?,
            },
            1 => QuerySpec::Knn { k: r.u32()? },
            t => return Err(SnapshotError::Inconsistent(format!("bad spec tag {t}"))),
        };
        queries.push((id, QueryAttrs { spec }));
    }
    Ok(EngineSnapshot {
        params,
        area,
        next_cluster_id,
        updates_processed,
        clusters,
        objects,
        queries,
    })
}

/// Encodes the query registry: entry count, the entries in `QueryId`
/// order (id, registration tick, spec, owner stripe), then the three
/// lifetime churn counters.
fn encode_registry(out: &mut Vec<u8>, registry: &QueryRegistry) {
    put_u64(out, registry.len() as u64);
    for (QueryId(id), rec) in registry.iter() {
        put_u64(out, id);
        put_u64(out, rec.registered_at);
        match rec.spec {
            QuerySpec::Range { width, height } => {
                put_u8(out, 0);
                put_f64(out, width);
                put_f64(out, height);
            }
            QuerySpec::Knn { k } => {
                put_u8(out, 1);
                put_u32(out, k);
            }
        }
        match rec.owner {
            None => put_u8(out, 0),
            Some(s) => {
                put_u8(out, 1);
                put_u32(out, s as u32);
            }
        }
    }
    let g = registry.gauges();
    put_u64(out, g.registered_total);
    put_u64(out, g.deregistered_total);
    put_u64(out, g.unknown_total);
}

fn decode_registry(r: &mut Reader<'_>) -> Result<QueryRegistry, SnapshotError> {
    let n = r.count(9)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let qid = QueryId(r.u64()?);
        let registered_at = r.u64()?;
        let spec = match r.u8()? {
            0 => QuerySpec::Range {
                width: r.f64()?,
                height: r.f64()?,
            },
            1 => QuerySpec::Knn { k: r.u32()? },
            t => return Err(SnapshotError::Inconsistent(format!("bad spec tag {t}"))),
        };
        let owner = match r.u8()? {
            0 => None,
            1 => Some(r.u32()? as u16),
            t => return Err(SnapshotError::Inconsistent(format!("bad owner tag {t}"))),
        };
        entries.push((
            qid,
            QueryRecord {
                registered_at,
                spec,
                owner,
            },
        ));
    }
    let registered_total = r.u64()?;
    let deregistered_total = r.u64()?;
    let unknown_total = r.u64()?;
    Ok(QueryRegistry::from_parts(
        entries,
        registered_total,
        deregistered_total,
        unknown_total,
    ))
}

// ---------------------------------------------------------------------------
// Checkpoint files.
// ---------------------------------------------------------------------------

const CKPT_MAGIC: &[u8; 4] = b"SCBC";
const JRNL_MAGIC: &[u8; 4] = b"SCBJ";
/// On-disk format version of checkpoints and journal segments.
pub const FORMAT_VERSION: u32 = 1;
const CKPT_HEADER: usize = 4 + 4 + 8 + 8 + 4;
const JRNL_HEADER: usize = 4 + 4 + 8;

/// What a checkpoint file holds: the tick it was taken at, one engine
/// snapshot per stripe (a single-store operator is one stripe), and the
/// control-plane query registry at that tick.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// The tick after which the snapshot was captured.
    pub tick: Time,
    /// One snapshot per shard stripe, in shard order.
    pub stripes: Vec<EngineSnapshot>,
    /// The active query set and its churn counters at capture time.
    /// Checkpoints written before the control plane existed decode to an
    /// empty registry (the restore path then seeds it from the engines'
    /// query tables).
    pub registry: QueryRegistry,
}

/// Serialises a checkpoint: `SCBC` magic, format version, tick, payload
/// length, CRC32 of the payload, then the payload (stripe count followed by
/// each stripe's binary snapshot, followed by the query registry).
pub fn encode_checkpoint(tick: Time, stripes: &[EngineSnapshot], registry: &QueryRegistry) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, stripes.len() as u64);
    for s in stripes {
        encode_snapshot(&mut payload, s);
    }
    encode_registry(&mut payload, registry);
    let mut out = Vec::with_capacity(CKPT_HEADER + payload.len());
    out.extend_from_slice(CKPT_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u64(&mut out, tick);
    put_u64(&mut out, payload.len() as u64);
    // The checksum covers tick + declared length + payload, so a flipped
    // bit anywhere past the version field is caught, not just in the body.
    let crc = crc32_update(crc32_update(0xffff_ffff, &out[8..24]), &payload) ^ 0xffff_ffff;
    put_u32(&mut out, crc);
    out.extend_from_slice(&payload);
    out
}

/// Parses and verifies a checkpoint previously produced by
/// [`encode_checkpoint`]: magic, version, declared length and checksum are
/// all checked before the payload is decoded.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointState, SnapshotError> {
    if bytes.len() < 4 {
        return Err(SnapshotError::Truncated);
    }
    if &bytes[..4] != CKPT_MAGIC {
        return Err(SnapshotError::NotACheckpoint);
    }
    if bytes.len() < CKPT_HEADER {
        return Err(SnapshotError::Truncated);
    }
    let mut header = Reader::new(&bytes[4..CKPT_HEADER]);
    let version = header.u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::VersionMismatch {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let tick = header.u64()?;
    let payload_len = header.u64()? as usize;
    let stored = header.u32()?;
    let payload = bytes
        .get(CKPT_HEADER..CKPT_HEADER + payload_len)
        .ok_or(SnapshotError::Truncated)?;
    let computed = crc32_update(crc32_update(0xffff_ffff, &bytes[8..24]), payload) ^ 0xffff_ffff;
    if computed != stored {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    let mut r = Reader::new(payload);
    let n = r.count(8)?;
    let mut stripes = Vec::with_capacity(n);
    for _ in 0..n {
        stripes.push(decode_snapshot(&mut r)?);
    }
    // The registry section was appended to the payload after the stripes;
    // its absence (a checkpoint from before the control plane) decodes to
    // an empty registry rather than an error.
    let registry = if r.pos < r.data.len() {
        decode_registry(&mut r)?
    } else {
        QueryRegistry::default()
    };
    Ok(CheckpointState {
        tick,
        stripes,
        registry,
    })
}

fn checkpoint_path(dir: &Path, tick: Time) -> PathBuf {
    dir.join(format!("checkpoint-{tick:012}.ckpt"))
}

fn journal_path(dir: &Path, base_tick: Time) -> PathBuf {
    dir.join(format!("journal-{base_tick:012}.wal"))
}

fn io_err(path: &Path, source: std::io::Error) -> DurabilityError {
    DurabilityError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Writes a checkpoint atomically: the encoding goes to a `.tmp` sibling,
/// is fsynced, then renamed over the final name, so a crash mid-write can
/// never leave a half-written file under the checkpoint name. Returns the
/// bytes written.
pub fn write_checkpoint(
    dir: &Path,
    tick: Time,
    stripes: &[EngineSnapshot],
    registry: &QueryRegistry,
) -> Result<u64, DurabilityError> {
    let bytes = encode_checkpoint(tick, stripes, registry);
    let path = checkpoint_path(dir, tick);
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(&bytes).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
    // Durable rename needs the directory entry flushed too; best-effort —
    // not every filesystem lets you fsync a directory handle.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(bytes.len() as u64)
}

/// Reads and verifies one checkpoint file.
pub fn read_checkpoint(path: &Path) -> Result<CheckpointState, DurabilityError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    decode_checkpoint(&bytes).map_err(|e| DurabilityError::Snapshot {
        path: path.to_path_buf(),
        source: e,
    })
}

// ---------------------------------------------------------------------------
// Write-ahead journal.
// ---------------------------------------------------------------------------

/// One journal frame: the batch of updates delivered at one tick, exactly
/// as the operator ingested them (post fault-injection, pre validation),
/// plus the tick's control ops. Controls are applied **before** the data
/// batch on replay, matching the live ordering contract
/// ([`scuba_motion::control`]).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalFrame {
    /// The tick this batch was delivered at.
    pub tick: Time,
    /// The delivered updates, in delivery order.
    pub updates: Vec<LocationUpdate>,
    /// The tick's control ops, in delivery order. Frames written before
    /// the control plane existed decode to an empty list.
    pub controls: Vec<ControlOp>,
}

/// A parsed journal segment.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalSegment {
    /// The checkpoint tick this segment extends (frames start at
    /// `base_tick + 1`).
    pub base_tick: Time,
    /// The frames whose length and checksum verified, in order.
    pub frames: Vec<JournalFrame>,
    /// Whether the segment ended in a torn or corrupt frame (everything
    /// after the last good frame is discarded).
    pub torn_tail: bool,
}

/// Appends length-prefixed, CRC-guarded frames to one journal segment.
///
/// One segment exists per checkpoint; creating a writer for a base tick
/// truncates any previous segment with the same name (intentional — on
/// resume the supervised loop re-checkpoints and starts a fresh segment, so
/// a stale journal from the killed run must not be mistaken for new
/// frames).
#[derive(Debug)]
pub struct JournalWriter {
    file: fs::File,
    path: PathBuf,
    frames: u64,
    bytes: u64,
    sync: bool,
}

impl JournalWriter {
    /// Creates (truncating) the segment for `base_tick` and writes its
    /// header. `sync` selects whether every append is fdatasync'd — the
    /// durable default — or left to the OS cache (faster, loses the tail
    /// on power failure but not on process death).
    pub fn create(dir: &Path, base_tick: Time, sync: bool) -> Result<Self, DurabilityError> {
        let path = journal_path(dir, base_tick);
        let mut file = fs::File::create(&path).map_err(|e| io_err(&path, e))?;
        let mut header = Vec::with_capacity(JRNL_HEADER);
        header.extend_from_slice(JRNL_MAGIC);
        put_u32(&mut header, FORMAT_VERSION);
        put_u64(&mut header, base_tick);
        file.write_all(&header).map_err(|e| io_err(&path, e))?;
        if sync {
            file.sync_data().map_err(|e| io_err(&path, e))?;
        }
        Ok(JournalWriter {
            file,
            path,
            frames: 0,
            bytes: JRNL_HEADER as u64,
            sync,
        })
    }

    /// Appends one tick's batch as a single control-free frame. See
    /// [`JournalWriter::append_frame`].
    pub fn append(
        &mut self,
        tick: Time,
        updates: &[LocationUpdate],
    ) -> Result<u64, DurabilityError> {
        self.append_frame(tick, updates, &[])
    }

    /// Appends one tick's control ops and batch as a single frame and
    /// returns the bytes written. Called *before* the operator sees
    /// either, making this a write-ahead log; the control section trails
    /// the updates so pre-control-plane readers' frames parse as a prefix
    /// of this layout.
    pub fn append_frame(
        &mut self,
        tick: Time,
        updates: &[LocationUpdate],
        controls: &[ControlOp],
    ) -> Result<u64, DurabilityError> {
        let mut payload = Vec::new();
        put_u64(&mut payload, tick);
        put_u32(&mut payload, updates.len() as u32);
        let mut wire_buf = BytesMut::new();
        for u in updates {
            wire::encode_into(u, &mut wire_buf);
        }
        payload.extend_from_slice(&wire_buf);
        put_u32(&mut payload, controls.len() as u32);
        let mut ctrl_buf = BytesMut::new();
        for op in controls {
            control::encode_into(op, &mut ctrl_buf);
        }
        payload.extend_from_slice(&ctrl_buf);
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, e))?;
        if self.sync {
            self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        }
        self.frames += 1;
        self.bytes += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Frames appended to this segment so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Total bytes written to this segment, header included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads one journal segment, stopping cleanly at the first torn or corrupt
/// frame (short length prefix, short payload, checksum mismatch, or a
/// payload the wire decoder rejects). A bad segment *header* is an error —
/// it means the file is not a journal at all.
pub fn read_journal(path: &Path) -> Result<JournalSegment, DurabilityError> {
    let mut bytes = Vec::new();
    fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err(path, e))?;
    if bytes.len() < JRNL_HEADER || &bytes[..4] != JRNL_MAGIC {
        return Err(DurabilityError::Journal {
            path: path.to_path_buf(),
            detail: "missing or foreign segment header".into(),
        });
    }
    let mut header = Reader::new(&bytes[4..JRNL_HEADER]);
    let version = header.u32().expect("header length checked");
    if version != FORMAT_VERSION {
        return Err(DurabilityError::Journal {
            path: path.to_path_buf(),
            detail: format!("unsupported segment version {version}"),
        });
    }
    let base_tick = header.u64().expect("header length checked");

    let mut frames = Vec::new();
    let mut pos = JRNL_HEADER;
    let mut torn_tail = false;
    while pos < bytes.len() {
        let Some(prefix) = bytes.get(pos..pos + 8) else {
            torn_tail = true;
            break;
        };
        let len = u32::from_le_bytes(prefix[..4].try_into().unwrap()) as usize;
        let stored = u32::from_le_bytes(prefix[4..8].try_into().unwrap());
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            torn_tail = true;
            break;
        };
        if crc32(payload) != stored {
            torn_tail = true;
            break;
        }
        match decode_frame(payload) {
            Ok(frame) => frames.push(frame),
            Err(()) => {
                torn_tail = true;
                break;
            }
        }
        pos += 8 + len;
    }
    Ok(JournalSegment {
        base_tick,
        frames,
        torn_tail,
    })
}

fn decode_frame(payload: &[u8]) -> Result<JournalFrame, ()> {
    if payload.len() < 12 {
        return Err(());
    }
    let tick = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let count = u32::from_le_bytes(payload[8..12].try_into().unwrap());
    let mut buf = &payload[12..];
    let mut updates = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        updates.push(wire::decode(&mut buf).map_err(|_| ())?);
    }
    // Pre-control-plane frames end with the updates; newer ones append a
    // control count and the encoded ops.
    let mut controls = Vec::new();
    if !buf.is_empty() {
        if buf.len() < 4 {
            return Err(());
        }
        let n = u32::from_le_bytes(buf[..4].try_into().unwrap());
        buf = &buf[4..];
        controls.reserve(n.min(1 << 20) as usize);
        for _ in 0..n {
            controls.push(control::decode(&mut buf).map_err(|_| ())?);
        }
    }
    Ok(JournalFrame {
        tick,
        updates,
        controls,
    })
}

// ---------------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------------

/// Why a durability operation failed.
#[derive(Debug)]
pub enum DurabilityError {
    /// An I/O error on a checkpoint or journal file.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A checkpoint file failed verification or decoding.
    Snapshot {
        /// The file involved.
        path: PathBuf,
        /// The typed snapshot defect.
        source: SnapshotError,
    },
    /// A journal segment's header was missing or foreign.
    Journal {
        /// The file involved.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
    /// Checkpoints exist under the directory but none verified.
    NoValidCheckpoint {
        /// The checkpoint directory.
        dir: PathBuf,
        /// The newest checkpoint's defect.
        detail: String,
    },
    /// Replaying the journal over a restored operator faulted — the
    /// durable state and the journal disagree about what the engine can
    /// ingest, which should be impossible for files this layer wrote.
    ReplayFailed {
        /// The fault reported during replay.
        detail: String,
    },
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            DurabilityError::Snapshot { path, source } => {
                write!(f, "bad checkpoint {}: {source}", path.display())
            }
            DurabilityError::Journal { path, detail } => {
                write!(f, "bad journal segment {}: {detail}", path.display())
            }
            DurabilityError::NoValidCheckpoint { dir, detail } => {
                write!(f, "no valid checkpoint under {}: {detail}", dir.display())
            }
            DurabilityError::ReplayFailed { detail } => {
                write!(f, "journal replay failed: {detail}")
            }
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io { source, .. } => Some(source),
            DurabilityError::Snapshot { source, .. } => Some(source),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------------

/// What [`recover`] found on disk: the chosen checkpoint and the contiguous
/// journal suffix extending it.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Tick of the checkpoint recovery starts from.
    pub checkpoint_tick: Time,
    /// The checkpoint's stripe snapshots.
    pub stripes: Vec<EngineSnapshot>,
    /// The checkpoint's query registry (empty for pre-control-plane
    /// checkpoints; the restore path then seeds from the query tables).
    pub registry: QueryRegistry,
    /// Journal frames after the checkpoint, contiguous from
    /// `checkpoint_tick + 1`.
    pub frames: Vec<JournalFrame>,
    /// Whether replay stopped early at a torn or missing frame.
    pub torn_tail: bool,
    /// Newer checkpoints that existed but failed verification and were
    /// skipped in favour of an older intact one.
    pub checkpoints_skipped: usize,
}

fn numbered_files(dir: &Path, prefix: &str, suffix: &str) -> Vec<(Time, PathBuf)> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(digits) = name
            .strip_prefix(prefix)
            .and_then(|rest| rest.strip_suffix(suffix))
        else {
            continue;
        };
        if let Ok(tick) = digits.parse::<u64>() {
            out.push((tick, entry.path()));
        }
    }
    out.sort_by_key(|(t, _)| *t);
    out
}

/// Loads the newest intact checkpoint under `dir` and the contiguous
/// journal frames extending it.
///
/// * `Ok(None)` — the directory holds no checkpoints at all (a fresh
///   start, not an error).
/// * Corrupt newer checkpoints are *skipped*: recovery falls back to the
///   next older one and replays the longer journal chain instead (journal
///   segment bases coincide with checkpoint ticks, so the chain stays
///   contiguous across the skipped checkpoint).
/// * A torn journal tail, a gap between segments, or an unreadable segment
///   stops replay at the last contiguous frame (`torn_tail = true`);
///   everything after it is intentionally dropped — a deterministic source
///   re-delivers those ticks on resume.
pub fn recover(dir: &Path) -> Result<Option<Recovery>, DurabilityError> {
    let mut checkpoints = numbered_files(dir, "checkpoint-", ".ckpt");
    if checkpoints.is_empty() {
        return Ok(None);
    }
    checkpoints.reverse();

    let mut skipped = 0usize;
    let mut first_defect = String::new();
    let mut chosen = None;
    for (tick, path) in &checkpoints {
        match read_checkpoint(path) {
            Ok(state) => {
                chosen = Some((*tick, state));
                break;
            }
            Err(e) => {
                if first_defect.is_empty() {
                    first_defect = e.to_string();
                }
                skipped += 1;
            }
        }
    }
    let Some((checkpoint_tick, state)) = chosen else {
        return Err(DurabilityError::NoValidCheckpoint {
            dir: dir.to_path_buf(),
            detail: first_defect,
        });
    };

    let mut frames = Vec::new();
    let mut torn_tail = false;
    let mut expected = checkpoint_tick + 1;
    for (base, path) in numbered_files(dir, "journal-", ".wal") {
        if base < checkpoint_tick {
            continue;
        }
        let Ok(segment) = read_journal(&path) else {
            torn_tail = true;
            break;
        };
        let mut segment_torn = segment.torn_tail;
        for frame in segment.frames {
            if frame.tick != expected {
                segment_torn = true;
                break;
            }
            expected += 1;
            frames.push(frame);
        }
        if segment_torn {
            torn_tail = true;
            break;
        }
    }

    Ok(Some(Recovery {
        checkpoint_tick,
        stripes: state.stripes,
        registry: state.registry,
        frames,
        torn_tail,
        checkpoints_skipped: skipped,
    }))
}

/// Deletes all but the newest `keep` checkpoints, plus every journal
/// segment older than the oldest kept checkpoint. Best-effort: removal
/// errors are ignored (a leftover file only wastes space; the recovery
/// scan tolerates it).
pub fn prune(dir: &Path, keep: usize) {
    let checkpoints = numbered_files(dir, "checkpoint-", ".ckpt");
    let keep = keep.max(1);
    if checkpoints.len() <= keep {
        return;
    }
    let cut = checkpoints.len() - keep;
    let oldest_kept = checkpoints[cut].0;
    for (_, path) in &checkpoints[..cut] {
        let _ = fs::remove_file(path);
    }
    for (base, path) in numbered_files(dir, "journal-", ".wal") {
        if base < oldest_kept {
            let _ = fs::remove_file(&path);
        }
    }
}

// ---------------------------------------------------------------------------
// The durable operator: one store or sharded, restartable from snapshots.
// ---------------------------------------------------------------------------

/// The operator shape the durable layer drives: the single-store
/// [`ScubaOperator`] or the stripe-sharded [`ShardedScubaOperator`], chosen
/// by `params.shards`. Both capture to and restore from the same stripe
/// snapshots, so checkpoints taken at one shard count restore at the same
/// shard count without conversion.
#[derive(Debug)]
pub enum DurableOperator {
    /// One engine, one store (`shards == 1`).
    Single(Box<ScubaOperator>),
    /// The supervised multi-worker executor (`shards > 1`).
    Sharded(Box<ShardedScubaOperator>),
}

/// Why one evaluation tick failed under the durable layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TickFailure {
    /// The operator reported a fatal fault (e.g. `ValidationPolicy::Abort`
    /// tripped); restarting cannot help because replay re-trips it.
    Fatal(String),
    /// A shard worker panicked; the epoch was quarantined and the operator
    /// can be restored from durable state.
    Worker(WorkerFailure),
}

impl std::fmt::Display for TickFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TickFailure::Fatal(m) => write!(f, "fatal operator fault: {m}"),
            TickFailure::Worker(w) => w.fmt(f),
        }
    }
}

impl std::error::Error for TickFailure {}

impl DurableOperator {
    /// Builds a fresh operator of the shape `params.shards` selects.
    pub fn new(params: ScubaParams, area: Rect) -> Self {
        if params.shards > 1 {
            DurableOperator::Sharded(Box::new(ShardedScubaOperator::new(params, area)))
        } else {
            DurableOperator::Single(Box::new(ScubaOperator::new(params, area)))
        }
    }

    /// Restores an operator from checkpoint stripes: one stripe rebuilds
    /// the single-store operator, several rebuild the sharded executor.
    pub fn restore(stripes: &[EngineSnapshot]) -> Result<Self, SnapshotError> {
        match stripes {
            [] => Err(SnapshotError::ShardMismatch {
                found: 0,
                expected: 1,
            }),
            [single] => Ok(DurableOperator::Single(Box::new(
                ScubaOperator::from_engine(single.restore()?),
            ))),
            many => Ok(DurableOperator::Sharded(Box::new(
                ShardedScubaOperator::from_stripes(many)?,
            ))),
        }
    }

    /// Attaches (or clears) the worker-panic injector; a no-op for the
    /// single-store shape, which has no workers to panic.
    pub fn set_injector(&mut self, injector: Option<Arc<PanicInjector>>) {
        if let DurableOperator::Sharded(op) = self {
            op.set_panic_injector(injector);
        }
    }

    /// Applies one tick's control ops; call before
    /// [`DurableOperator::process_batch`] for that tick (the control-plane
    /// ordering contract).
    pub fn apply_control(&mut self, ops: &[ControlOp], now: Time) {
        match self {
            DurableOperator::Single(op) => op.apply_control(ops, now),
            DurableOperator::Sharded(op) => op.apply_control(ops, now),
        }
    }

    /// The control-plane view of the active query set.
    pub fn registry(&self) -> &QueryRegistry {
        match self {
            DurableOperator::Single(op) => op.registry(),
            DurableOperator::Sharded(op) => op.registry(),
        }
    }

    /// Installs a registry restored from a checkpoint, replacing the
    /// engine-seeded one.
    pub fn set_registry(&mut self, registry: QueryRegistry) {
        match self {
            DurableOperator::Single(op) => op.set_registry(registry),
            DurableOperator::Sharded(op) => op.set_registry(registry),
        }
    }

    /// Current control-plane gauges (health lines, event logs).
    pub fn control_gauges(&self) -> ControlGauges {
        self.registry().gauges()
    }

    /// Ingests one tick's batch.
    pub fn process_batch(&mut self, updates: &[LocationUpdate]) {
        match self {
            DurableOperator::Single(op) => op.process_batch(updates),
            DurableOperator::Sharded(op) => op.process_batch(updates),
        }
    }

    /// The operator's current fatal fault, if any.
    pub fn fault(&self) -> Option<String> {
        match self {
            DurableOperator::Single(op) => op.fault(),
            DurableOperator::Sharded(op) => op.fault(),
        }
    }

    /// Runs one evaluation, surfacing worker panics as typed, restartable
    /// failures and operator faults as fatal ones.
    pub fn try_evaluate(&mut self, now: Time) -> Result<EvaluationReport, TickFailure> {
        match self {
            DurableOperator::Single(op) => {
                let report = op.evaluate(now);
                match op.fault() {
                    Some(reason) => Err(TickFailure::Fatal(reason)),
                    None => Ok(report),
                }
            }
            DurableOperator::Sharded(op) => op.try_evaluate(now).map_err(TickFailure::Worker),
        }
    }

    /// Captures the operator's durable state as stripe snapshots.
    pub fn capture(&self) -> Vec<EngineSnapshot> {
        match self {
            DurableOperator::Single(op) => vec![EngineSnapshot::capture(op.engine())],
            DurableOperator::Sharded(op) => op.capture_stripes(),
        }
    }

    /// The parameters the operator runs with.
    pub fn params(&self) -> ScubaParams {
        match self {
            DurableOperator::Single(op) => *op.engine().params(),
            DurableOperator::Sharded(op) => *op.params(),
        }
    }

    /// The operator's display name.
    pub fn name(&self) -> &str {
        match self {
            DurableOperator::Single(op) => op.name(),
            DurableOperator::Sharded(op) => op.name(),
        }
    }

    /// Live cluster count, summed across stripes.
    pub fn clusters_live(&self) -> usize {
        match self {
            DurableOperator::Single(op) => op.clusters_live().unwrap_or(0),
            DurableOperator::Sharded(op) => op.clusters_live().unwrap_or(0),
        }
    }

    /// Estimated resident bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            DurableOperator::Single(op) => op.memory_bytes(),
            DurableOperator::Sharded(op) => op.memory_bytes(),
        }
    }

    /// The ingestion validator, when this shape carries one (the sharded
    /// executor validates per shard and exposes none).
    pub fn validator(&self) -> Option<&UpdateValidator> {
        match self {
            DurableOperator::Single(op) => op.validator(),
            DurableOperator::Sharded(_) => None,
        }
    }

    /// Quarantined dead letters currently buffered.
    pub fn dead_letter_len(&self) -> usize {
        self.validator().map_or(0, |v| v.dead_letter_len())
    }

    /// Human-readable label of the shedding mode currently in effect.
    pub fn shedding_label(&self) -> String {
        match self {
            DurableOperator::Single(op) => format!("{:?}", op.current_shedding()),
            DurableOperator::Sharded(_) => "n/a".to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// The supervised loop.
// ---------------------------------------------------------------------------

/// Knobs of [`run_supervised`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperviseConfig {
    /// Total ticks to run (like `ExecutorConfig::duration`).
    pub duration: Time,
    /// Checkpoint every this many ticks (clamped to ≥ 1).
    pub checkpoint_every: u64,
    /// Worker-panic restarts allowed per evaluation tick before the run is
    /// aborted.
    pub max_restarts: u32,
    /// Base backoff slept before each restart; doubles per attempt.
    pub backoff: Duration,
    /// Upper bound on the backoff.
    pub backoff_cap: Duration,
    /// Checkpoints retained by [`prune`] after each new one.
    pub keep_checkpoints: usize,
    /// Whether journal appends fdatasync (durable against power loss, not
    /// just process death).
    pub sync_journal: bool,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig {
            duration: 10,
            checkpoint_every: 8,
            max_restarts: 3,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            keep_checkpoints: 2,
            sync_journal: true,
        }
    }
}

/// Durability-side counters of one supervised run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Total checkpoint bytes written.
    pub checkpoint_bytes: u64,
    /// Wall-clock time spent writing checkpoints.
    pub checkpoint_time: Duration,
    /// Journal frames appended.
    pub journal_frames: u64,
    /// Total journal bytes appended (headers included).
    pub journal_bytes: u64,
    /// Wall-clock time spent appending to the journal.
    pub journal_time: Duration,
    /// Worker restarts performed.
    pub restarts: u32,
    /// Journal frames replayed at startup resume.
    pub replayed_frames: u64,
}

/// One periodic health line of a long-lived run, emitted at every
/// checkpoint boundary.
#[derive(Debug, Clone)]
pub struct HealthSnapshot {
    /// The tick of this health capture.
    pub tick: Time,
    /// Evaluations completed so far (replayed ones included).
    pub evaluations: usize,
    /// 99th-percentile join time across the run so far.
    pub p99_join: Duration,
    /// Live clusters.
    pub clusters: usize,
    /// Estimated resident bytes.
    pub memory_bytes: usize,
    /// Frames in the journal segment just rotated out (the journal lag a
    /// crash at this instant would have had to replay).
    pub journal_frames: u64,
    /// Bytes in that segment.
    pub journal_bytes: u64,
    /// Checkpoints written so far.
    pub checkpoints: u64,
    /// Worker restarts so far.
    pub restarts: u32,
    /// Dead letters currently quarantined.
    pub dead_letters: usize,
    /// Label of the shedding mode in effect.
    pub shedding: String,
    /// Queries currently registered and active.
    pub active_queries: u64,
    /// Lifetime query registrations (explicit and implicit).
    pub registered_total: u64,
    /// Lifetime query deregistrations (explicit and reconciled evictions).
    pub deregistered_total: u64,
}

/// Callbacks a supervised run drives: one per evaluation report (replayed
/// and live) and one per checkpoint-boundary health capture.
pub trait SuperviseObserver {
    /// Called after every completed evaluation, in tick order, with the
    /// control-plane gauges as of that evaluation.
    fn on_evaluation(&mut self, report: &EvaluationReport, gauges: &ControlGauges) {
        let _ = (report, gauges);
    }

    /// Called at every checkpoint boundary with the run's vitals.
    fn on_health(&mut self, health: &HealthSnapshot) {
        let _ = health;
    }
}

/// The do-nothing observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoObserver;

impl SuperviseObserver for NoObserver {}

/// What [`resume`] reconstructed from durable state.
#[derive(Debug)]
pub struct Resumed {
    /// The restored operator, journal fully replayed.
    pub operator: DurableOperator,
    /// The last tick covered by durable state; the caller continues from
    /// `resume_tick + 1`.
    pub resume_tick: Time,
    /// The evaluation reports the replay re-produced, in tick order.
    pub reports: Vec<EvaluationReport>,
    /// Control-plane gauges as of each replayed evaluation, parallel to
    /// `reports` — so observers see the per-tick active query set, not
    /// the post-replay totals.
    pub report_gauges: Vec<ControlGauges>,
    /// Journal frames replayed.
    pub replayed_frames: u64,
    /// Whether the journal ended in a torn tail (the dropped ticks will be
    /// re-delivered by a deterministic source).
    pub torn_tail: bool,
}

/// Restores the newest durable state under `dir` and replays its journal:
/// ingestion tick by tick, with an evaluation at every Δ boundary so the
/// evaluate pipeline's own state mutations (radius tightening, ghost
/// exchange, post-join maintenance) are reapplied exactly as the original
/// run applied them. `Ok(None)` when the directory holds no checkpoints.
pub fn resume(dir: &Path) -> Result<Option<Resumed>, DurabilityError> {
    let Some(recovery) = recover(dir)? else {
        return Ok(None);
    };
    let mut operator =
        DurableOperator::restore(&recovery.stripes).map_err(|e| DurabilityError::ReplayFailed {
            detail: format!(
                "restoring checkpoint at t={}: {e}",
                recovery.checkpoint_tick
            ),
        })?;
    // The checkpointed registry is authoritative when present: it carries
    // exact registration epochs and lifetime counters the engine-seeded
    // fallback cannot reconstruct.
    if !recovery.registry.is_empty() || recovery.registry.gauges() != ControlGauges::default() {
        operator.set_registry(recovery.registry.clone());
    }
    let delta = operator.params().delta.max(1);
    let mut reports = Vec::new();
    let mut report_gauges = Vec::new();
    let mut resume_tick = recovery.checkpoint_tick;
    let replayed_frames = recovery.frames.len() as u64;
    for frame in &recovery.frames {
        operator.apply_control(&frame.controls, frame.tick);
        operator.process_batch(&frame.updates);
        if let Some(fault) = operator.fault() {
            return Err(DurabilityError::ReplayFailed {
                detail: format!("operator faulted at replayed t={}: {fault}", frame.tick),
            });
        }
        if frame.tick % delta == 0 {
            let report =
                operator
                    .try_evaluate(frame.tick)
                    .map_err(|e| DurabilityError::ReplayFailed {
                        detail: format!("evaluation failed at replayed t={}: {e}", frame.tick),
                    })?;
            reports.push(report);
            report_gauges.push(operator.control_gauges());
        }
        resume_tick = frame.tick;
    }
    Ok(Some(Resumed {
        operator,
        resume_tick,
        reports,
        report_gauges,
        replayed_frames,
        torn_tail: recovery.torn_tail,
    }))
}

/// Outcome of [`run_supervised`].
#[derive(Debug)]
pub struct SupervisedOutcome {
    /// The per-evaluation reports and abort status, shaped like an
    /// [`Executor`](scuba_stream::Executor) run so downstream analysis is
    /// shared. Replayed evaluations appear in tick order alongside live
    /// ones.
    pub report: RunReport,
    /// The operator in its final state.
    pub operator: DurableOperator,
    /// Durability-side counters.
    pub stats: DurabilityStats,
    /// `Some(tick)` when the run resumed from durable state covering up to
    /// that tick.
    pub resumed_at: Option<Time>,
}

fn backoff_delay(cfg: &SuperviseConfig, attempt: u32) -> Duration {
    cfg.backoff
        .saturating_mul(1u32 << attempt.min(16))
        .min(cfg.backoff_cap)
}

fn rebuild(
    stripes: &[EngineSnapshot],
    registry: &QueryRegistry,
    pending: &[JournalFrame],
    delta: u64,
    injector: Option<&Arc<PanicInjector>>,
    skip_eval_at: Time,
) -> Result<DurableOperator, TickFailure> {
    let mut operator = DurableOperator::restore(stripes)
        .map_err(|e| TickFailure::Fatal(format!("restore from checkpoint failed: {e}")))?;
    operator.set_registry(registry.clone());
    operator.set_injector(injector.cloned());
    for frame in pending {
        operator.apply_control(&frame.controls, frame.tick);
        operator.process_batch(&frame.updates);
        if let Some(fault) = operator.fault() {
            return Err(TickFailure::Fatal(fault));
        }
        // Re-evaluate at Δ boundaries so evaluate-side state mutations are
        // reapplied — except at the tick being retried, which the outer
        // loop evaluates itself once the rebuild succeeds.
        if frame.tick % delta == 0 && frame.tick != skip_eval_at {
            operator.try_evaluate(frame.tick)?;
        }
    }
    Ok(operator)
}

/// Runs a durable, supervised SCUBA loop: resume from `dir` if durable
/// state exists, checkpoint every `cfg.checkpoint_every` ticks, journal
/// every tick's batch write-ahead, and survive shard-worker panics by
/// restoring from checkpoint + journal under a bounded restart budget.
///
/// The source is expected to be **deterministic from tick 1** (a seeded
/// generator): on resume the loop discards the ticks durable state already
/// covers, so re-delivery reproduces the original stream. Budget
/// exhaustion and fatal operator faults abort the run via
/// [`RunReport::aborted`] rather than returning an error — the partial
/// results are real and the caller decides what to do with them.
pub fn run_supervised<S>(
    source: &mut S,
    params: &ScubaParams,
    area: Rect,
    dir: &Path,
    cfg: &SuperviseConfig,
    injector: Option<&Arc<PanicInjector>>,
    observer: &mut dyn SuperviseObserver,
) -> Result<SupervisedOutcome, DurabilityError>
where
    S: UpdateSource + ?Sized,
{
    fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let checkpoint_every = cfg.checkpoint_every.max(1);
    let mut stats = DurabilityStats::default();
    let mut report = RunReport::default();
    let mut latencies = LatencyTrack::new();
    let mut resumed_at = None;

    let (mut operator, start_tick) = match resume(dir)? {
        Some(resumed) => {
            resumed_at = Some(resumed.resume_tick);
            stats.replayed_frames = resumed.replayed_frames;
            for (rep, gauges) in resumed.reports.iter().zip(&resumed.report_gauges) {
                latencies.record(rep.join_time());
                observer.on_evaluation(rep, gauges);
            }
            report.evaluations.extend(resumed.reports);
            (resumed.operator, resumed.resume_tick)
        }
        None => (DurableOperator::new(*params, area), 0),
    };
    report.operator = operator.name().to_string();
    operator.set_injector(injector.cloned());
    let delta = operator.params().delta.max(1);

    // Re-anchor durable state at the resume point: a fresh checkpoint and
    // a fresh journal segment, so the pre-crash segment (possibly torn)
    // can never be confused with the new run's frames.
    let mut ckpt_stripes = operator.capture();
    let mut ckpt_registry = operator.registry().clone();
    let sw = Stopwatch::start();
    let written = write_checkpoint(dir, start_tick, &ckpt_stripes, &ckpt_registry)?;
    stats.checkpoint_time += sw.elapsed();
    stats.checkpoints += 1;
    stats.checkpoint_bytes += written;
    let mut journal = JournalWriter::create(dir, start_tick, cfg.sync_journal)?;
    let mut pending: Vec<JournalFrame> = Vec::new();
    prune(dir, cfg.keep_checkpoints);

    // A deterministic source re-delivers from tick 1; skip what durable
    // state already covers (controls included, to keep the source's
    // streams aligned).
    for _ in 0..start_tick.min(cfg.duration) {
        let _ = source.next_controls();
        let _ = source.next_tick();
    }

    let mut aborted = None;
    'ticks: for now in (start_tick + 1)..=cfg.duration {
        let controls = source.next_controls();
        let updates = source.next_tick();

        // Write-ahead: the frame is durable before the operator sees it.
        let sw = Stopwatch::start();
        let appended = journal.append_frame(now, &updates, &controls)?;
        stats.journal_time += sw.elapsed();
        stats.journal_frames += 1;
        stats.journal_bytes += appended;
        pending.push(JournalFrame {
            tick: now,
            updates: updates.clone(),
            controls: controls.clone(),
        });

        let sw = Stopwatch::start();
        if !controls.is_empty() {
            operator.apply_control(&controls, now);
            report.controls_applied += controls.len();
        }
        operator.process_batch(&updates);
        report.ingest_time += sw.elapsed();
        report.updates_ingested += updates.len();
        if let Some(reason) = operator.fault() {
            aborted = Some(reason);
            break 'ticks;
        }

        if now % delta == 0 {
            let mut attempt: u32 = 0;
            loop {
                match operator.try_evaluate(now) {
                    Ok(rep) => {
                        latencies.record(rep.join_time());
                        observer.on_evaluation(&rep, &operator.control_gauges());
                        report.evaluations.push(rep);
                        break;
                    }
                    Err(TickFailure::Fatal(reason)) => {
                        aborted = Some(reason);
                        break 'ticks;
                    }
                    Err(TickFailure::Worker(failure)) => {
                        if attempt >= cfg.max_restarts {
                            aborted = Some(format!(
                                "restart budget exhausted after {attempt} restarts: {failure}"
                            ));
                            break 'ticks;
                        }
                        std::thread::sleep(backoff_delay(cfg, attempt));
                        attempt += 1;
                        stats.restarts += 1;
                        report.restarts += 1;
                        match rebuild(&ckpt_stripes, &ckpt_registry, &pending, delta, injector, now)
                        {
                            Ok(rebuilt) => operator = rebuilt,
                            Err(TickFailure::Fatal(reason)) => {
                                aborted = Some(reason);
                                break 'ticks;
                            }
                            // A panic re-fired during the rebuild's own
                            // replay: keep retrying under the same budget
                            // with the stale operator (the next successful
                            // rebuild replaces it).
                            Err(TickFailure::Worker(_)) => {}
                        }
                    }
                }
            }
        }

        if now % checkpoint_every == 0 {
            let (segment_frames, segment_bytes) = (journal.frames(), journal.bytes());
            ckpt_stripes = operator.capture();
            ckpt_registry = operator.registry().clone();
            let sw = Stopwatch::start();
            let written = write_checkpoint(dir, now, &ckpt_stripes, &ckpt_registry)?;
            stats.checkpoint_time += sw.elapsed();
            stats.checkpoints += 1;
            stats.checkpoint_bytes += written;
            journal = JournalWriter::create(dir, now, cfg.sync_journal)?;
            pending.clear();
            prune(dir, cfg.keep_checkpoints);
            let gauges = operator.control_gauges();
            observer.on_health(&HealthSnapshot {
                tick: now,
                evaluations: report.evaluations.len(),
                p99_join: latencies.percentile(99.0),
                clusters: operator.clusters_live(),
                memory_bytes: operator.memory_bytes(),
                journal_frames: segment_frames,
                journal_bytes: segment_bytes,
                checkpoints: stats.checkpoints,
                restarts: stats.restarts,
                dead_letters: operator.dead_letter_len(),
                shedding: operator.shedding_label(),
                active_queries: gauges.active_queries,
                registered_total: gauges.registered_total,
                deregistered_total: gauges.deregistered_total,
            });
        }
    }
    report.aborted = aborted;
    Ok(SupervisedOutcome {
        report,
        operator,
        stats,
        resumed_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_motion::EntityAttrs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scuba-durability-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    const CN: Point = Point {
        x: 1000.0,
        y: 500.0,
    };

    fn update(i: u64, t: Time) -> LocationUpdate {
        let x = 50.0 + ((i * 37 + t * 11) % 900) as f64;
        let y = 50.0 + ((i * 61 + t * 7) % 900) as f64;
        if i % 4 == 3 {
            LocationUpdate::query(
                QueryId(i),
                Point::new(x, y),
                t,
                20.0 + (i % 3) as f64,
                CN,
                QueryAttrs {
                    spec: QuerySpec::square_range(10.0 + (i % 4) as f64),
                },
            )
        } else {
            LocationUpdate::object(
                ObjectId(i),
                Point::new(x, y),
                t,
                20.0 + (i % 3) as f64,
                CN,
                scuba_motion::ObjectAttrs {
                    class: ObjectClass::ALL[(i % 6) as usize],
                },
            )
        }
    }

    fn busy_snapshot() -> EngineSnapshot {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        for t in 1..=4u64 {
            let batch: Vec<_> = (0..40).map(|i| update(i, t)).collect();
            op.process_batch(&batch);
            if t % 2 == 0 {
                op.evaluate(t);
            }
        }
        EngineSnapshot::capture(op.engine())
    }

    #[test]
    fn crc32_matches_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_codec_roundtrips_nondefault_params() {
        let mut snapshot = busy_snapshot();
        // Exercise every enum arm and option the codec carries, so a field
        // added to ScubaParams without a codec update fails this test.
        snapshot.params = ScubaParams {
            shedding: SheddingMode::Partial { eta: 0.5 },
            probe_scope: ProbeScope::OwnCell,
            entity_ttl: Some(17),
            validation: ValidationPolicy::Reject,
            deadline_us: Some(12_345),
            index: IndexKind::Adaptive,
            kernel: KernelKind::Simd,
            shards: 2,
            member_filter: false,
            ..ScubaParams::default()
        };
        let mut out = Vec::new();
        encode_snapshot(&mut out, &snapshot);
        let decoded = decode_snapshot(&mut Reader::new(&out)).unwrap();
        assert_eq!(decoded, snapshot);
    }

    #[test]
    fn checkpoint_roundtrip_and_atomic_write() {
        let dir = tmp_dir("ckpt-roundtrip");
        let stripes = vec![busy_snapshot()];
        let bytes = write_checkpoint(&dir, 42, &stripes, &QueryRegistry::new()).unwrap();
        assert!(bytes > CKPT_HEADER as u64);
        let state = read_checkpoint(&checkpoint_path(&dir, 42)).unwrap();
        assert_eq!(state.tick, 42);
        assert_eq!(state.stripes, stripes);
        // No temp file left behind.
        assert!(!dir.join("checkpoint-000000000042.ckpt.tmp").exists());
        // The restored engine is usable.
        state.stripes[0].restore().unwrap().check_invariants();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rejects_corruption_with_typed_errors() {
        let stripes = vec![busy_snapshot()];
        let good = encode_checkpoint(7, &stripes, &QueryRegistry::new());

        assert!(matches!(
            decode_checkpoint(b"XX"),
            Err(SnapshotError::Truncated)
        ));
        assert!(matches!(
            decode_checkpoint(b"NOPE-not-a-checkpoint"),
            Err(SnapshotError::NotACheckpoint)
        ));

        let mut wrong_version = good.clone();
        wrong_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_checkpoint(&wrong_version),
            Err(SnapshotError::VersionMismatch {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));

        let truncated = &good[..good.len() - 5];
        assert!(matches!(
            decode_checkpoint(truncated),
            Err(SnapshotError::Truncated)
        ));

        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            decode_checkpoint(&flipped),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        assert_eq!(decode_checkpoint(&good).unwrap().tick, 7);
    }

    #[test]
    fn journal_roundtrips_and_tolerates_torn_tail() {
        let dir = tmp_dir("journal");
        let mut writer = JournalWriter::create(&dir, 4, true).unwrap();
        for t in 5..=8u64 {
            let batch: Vec<_> = (0..6).map(|i| update(i, t)).collect();
            writer.append(t, &batch).unwrap();
        }
        assert_eq!(writer.frames(), 4);
        let path = writer.path().to_path_buf();
        drop(writer);

        let segment = read_journal(&path).unwrap();
        assert_eq!(segment.base_tick, 4);
        assert!(!segment.torn_tail);
        assert_eq!(segment.frames.len(), 4);
        assert_eq!(segment.frames[0].tick, 5);
        assert_eq!(segment.frames[3].updates.len(), 6);
        assert_eq!(segment.frames[2].updates[1], update(1, 7));

        // Tear the tail mid-frame: earlier frames still replay.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 11]).unwrap();
        let torn = read_journal(&path).unwrap();
        assert!(torn.torn_tail);
        assert_eq!(torn.frames.len(), 3);

        // Flip a bit inside the second frame: replay stops before it.
        fs::write(&path, &bytes).unwrap();
        let mut flipped = bytes.clone();
        let second_frame_payload = JRNL_HEADER + 8 + 20;
        flipped[second_frame_payload + 400] ^= 0x01;
        fs::write(&path, &flipped).unwrap();
        let corrupt = read_journal(&path).unwrap();
        assert!(corrupt.torn_tail);
        assert!(corrupt.frames.len() < 4);

        // A foreign header is an error, not a torn tail.
        fs::write(&path, b"garbage").unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(DurabilityError::Journal { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_empty_dir_is_fresh_start() {
        let dir = tmp_dir("recover-empty");
        assert!(recover(&dir).unwrap().is_none());
        assert!(resume(&dir).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_falls_back_past_corrupt_newest_checkpoint() {
        let dir = tmp_dir("recover-fallback");
        let stripes = vec![busy_snapshot()];
        write_checkpoint(&dir, 8, &stripes, &QueryRegistry::new()).unwrap();
        let mut w = JournalWriter::create(&dir, 8, true).unwrap();
        for t in 9..=16u64 {
            w.append(t, &[update(t, t)]).unwrap();
        }
        drop(w);
        write_checkpoint(&dir, 16, &stripes, &QueryRegistry::new()).unwrap();
        let mut w = JournalWriter::create(&dir, 16, true).unwrap();
        for t in 17..=19u64 {
            w.append(t, &[update(t, t)]).unwrap();
        }
        drop(w);

        // Corrupt the newest checkpoint: recovery falls back to t=8 and
        // replays the chained segments 8 → 16 → 19.
        let newest = checkpoint_path(&dir, 16);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&newest, &bytes).unwrap();

        let rec = recover(&dir).unwrap().unwrap();
        assert_eq!(rec.checkpoint_tick, 8);
        assert_eq!(rec.checkpoints_skipped, 1);
        assert!(!rec.torn_tail);
        assert_eq!(
            rec.frames.iter().map(|f| f.tick).collect::<Vec<_>>(),
            (9..=19).collect::<Vec<_>>()
        );

        // All checkpoints corrupt → a typed error.
        let oldest = checkpoint_path(&dir, 8);
        let mut bytes = fs::read(&oldest).unwrap();
        bytes[10] ^= 0xff;
        fs::write(&oldest, &bytes).unwrap();
        assert!(matches!(
            recover(&dir),
            Err(DurabilityError::NoValidCheckpoint { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_stops_at_noncontiguous_frames() {
        let dir = tmp_dir("recover-gap");
        write_checkpoint(&dir, 4, &[busy_snapshot()], &QueryRegistry::new()).unwrap();
        let mut w = JournalWriter::create(&dir, 4, true).unwrap();
        w.append(5, &[update(1, 5)]).unwrap();
        w.append(7, &[update(1, 7)]).unwrap(); // gap: t=6 missing
        drop(w);
        let rec = recover(&dir).unwrap().unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.frames.len(), 1);
        assert_eq!(rec.frames[0].tick, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_newest_and_drops_old_segments() {
        let dir = tmp_dir("prune");
        let stripes = vec![busy_snapshot()];
        for t in [0u64, 8, 16, 24] {
            write_checkpoint(&dir, t, &stripes, &QueryRegistry::new()).unwrap();
            JournalWriter::create(&dir, t, true).unwrap();
        }
        prune(&dir, 2);
        let kept: Vec<_> = numbered_files(&dir, "checkpoint-", ".ckpt")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(kept, vec![16, 24]);
        let journals: Vec<_> = numbered_files(&dir, "journal-", ".wal")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(journals, vec![16, 24]);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A deterministic source: same seed → same stream, from tick 1.
    struct DetSource {
        tick: Time,
        per_tick: u64,
    }

    impl UpdateSource for DetSource {
        fn next_tick(&mut self) -> Vec<LocationUpdate> {
            self.tick += 1;
            let t = self.tick;
            (0..self.per_tick).map(|i| update(i, t)).collect()
        }
    }

    fn det_source() -> DetSource {
        DetSource {
            tick: 0,
            per_tick: 30,
        }
    }

    fn results_by_tick(report: &RunReport) -> Vec<(Time, usize)> {
        report
            .evaluations
            .iter()
            .map(|e| (e.now, e.results.len()))
            .collect()
    }

    #[test]
    fn supervised_run_without_failures_matches_plain_executor() {
        let dir = tmp_dir("supervised-plain");
        let params = ScubaParams::default();
        let area = Rect::square(1000.0);
        let cfg = SuperviseConfig {
            duration: 12,
            checkpoint_every: 4,
            ..SuperviseConfig::default()
        };
        let outcome = run_supervised(
            &mut det_source(),
            &params,
            area,
            &dir,
            &cfg,
            None,
            &mut NoObserver,
        )
        .unwrap();
        assert_eq!(outcome.report.aborted, None);
        assert_eq!(outcome.resumed_at, None);
        assert_eq!(outcome.stats.restarts, 0);
        assert_eq!(outcome.stats.journal_frames, 12);
        assert!(outcome.stats.checkpoints >= 4, "t=0 plus every 4 ticks");

        let mut oracle_op = ScubaOperator::new(params, area);
        let oracle = scuba_stream::Executor::new(scuba_stream::ExecutorConfig {
            delta: params.delta,
            duration: 12,
        })
        .run(&mut det_source(), &mut oracle_op);

        let sup: Vec<_> = outcome
            .report
            .evaluations
            .iter()
            .map(|e| (e.now, e.results.clone()))
            .collect();
        let ora: Vec<_> = oracle
            .evaluations
            .iter()
            .map(|e| (e.now, e.results.clone()))
            .collect();
        assert_eq!(sup, ora);
        assert_eq!(
            outcome.operator.capture(),
            vec![EngineSnapshot::capture(oracle_op.engine())]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_after_stop_produces_identical_tail() {
        let dir = tmp_dir("supervised-resume");
        let params = ScubaParams::default();
        let area = Rect::square(1000.0);

        // Oracle: uninterrupted 16-tick run.
        let full = SuperviseConfig {
            duration: 16,
            checkpoint_every: 5,
            ..SuperviseConfig::default()
        };
        let oracle_dir = tmp_dir("supervised-resume-oracle");
        let oracle = run_supervised(
            &mut det_source(),
            &params,
            area,
            &oracle_dir,
            &full,
            None,
            &mut NoObserver,
        )
        .unwrap();

        // Interrupted: stop at t=9 (mid checkpoint interval), then resume.
        let first = SuperviseConfig {
            duration: 9,
            ..full
        };
        let first_outcome = run_supervised(
            &mut det_source(),
            &params,
            area,
            &dir,
            &first,
            None,
            &mut NoObserver,
        )
        .unwrap();
        let second = run_supervised(
            &mut det_source(),
            &params,
            area,
            &dir,
            &full,
            None,
            &mut NoObserver,
        )
        .unwrap();
        assert_eq!(second.resumed_at, Some(9));

        // The resumed run re-reports the evaluations it replayed from the
        // journal; merge both runs keeping the last report per tick and
        // compare against the oracle.
        let mut merged: std::collections::BTreeMap<Time, Vec<_>> = Default::default();
        for e in first_outcome
            .report
            .evaluations
            .iter()
            .chain(&second.report.evaluations)
        {
            merged.insert(e.now, e.results.clone());
        }
        let ora: Vec<_> = oracle
            .report
            .evaluations
            .iter()
            .map(|e| (e.now, e.results.clone()))
            .collect();
        let got: Vec<_> = merged.into_iter().collect();
        assert_eq!(got, ora);
        assert_eq!(second.operator.capture(), oracle.operator.capture());
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&oracle_dir);
    }

    #[test]
    fn injected_panic_is_survived_with_identical_results() {
        let dir = tmp_dir("supervised-panic");
        let params = ScubaParams::default().with_shards(2);
        let area = Rect::square(1000.0);
        let cfg = SuperviseConfig {
            duration: 10,
            checkpoint_every: 4,
            backoff: Duration::from_millis(1),
            ..SuperviseConfig::default()
        };
        let injector = Arc::new(PanicInjector::new(scuba_stream::PanicPlan {
            seed: 11,
            panic_prob: 1.0,
            rearm: false,
        }));
        let outcome = run_supervised(
            &mut det_source(),
            &params,
            area,
            &dir,
            &cfg,
            Some(&injector),
            &mut NoObserver,
        )
        .unwrap();
        assert!(injector.fired() > 0, "panics actually fired");
        assert!(outcome.stats.restarts > 0, "the supervisor restarted");
        assert_eq!(outcome.report.aborted, None, "restarts absorbed the panics");
        assert_eq!(outcome.report.restarts as u32, outcome.stats.restarts);

        // Identical answers to a panic-free supervised run.
        let clean_dir = tmp_dir("supervised-panic-clean");
        let clean = run_supervised(
            &mut det_source(),
            &params,
            area,
            &clean_dir,
            &cfg,
            None,
            &mut NoObserver,
        )
        .unwrap();
        assert_eq!(
            results_by_tick(&outcome.report),
            results_by_tick(&clean.report)
        );
        let survived: Vec<_> = outcome
            .report
            .evaluations
            .iter()
            .map(|e| (e.now, e.results.clone()))
            .collect();
        let reference: Vec<_> = clean
            .report
            .evaluations
            .iter()
            .map(|e| (e.now, e.results.clone()))
            .collect();
        assert_eq!(survived, reference);
        assert_eq!(outcome.operator.capture(), clean.operator.capture());
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&clean_dir);
    }

    #[test]
    fn exhausted_restart_budget_aborts() {
        let dir = tmp_dir("supervised-budget");
        let params = ScubaParams::default().with_shards(2);
        let cfg = SuperviseConfig {
            duration: 6,
            checkpoint_every: 4,
            max_restarts: 0,
            ..SuperviseConfig::default()
        };
        // Re-arming sites fire on every attempt, so zero budget gives up
        // at the first evaluation.
        let injector = Arc::new(PanicInjector::new(scuba_stream::PanicPlan {
            seed: 3,
            panic_prob: 1.0,
            rearm: true,
        }));
        let outcome = run_supervised(
            &mut det_source(),
            &params,
            Rect::square(1000.0),
            &dir,
            &cfg,
            Some(&injector),
            &mut NoObserver,
        )
        .unwrap();
        let aborted = outcome.report.aborted.expect("budget exhaustion aborts");
        assert!(
            aborted.contains("restart budget exhausted"),
            "got: {aborted}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn observer_sees_evaluations_and_health() {
        struct Counting {
            evals: usize,
            healths: Vec<HealthSnapshot>,
        }
        impl SuperviseObserver for Counting {
            fn on_evaluation(&mut self, _report: &EvaluationReport, _gauges: &ControlGauges) {
                self.evals += 1;
            }
            fn on_health(&mut self, health: &HealthSnapshot) {
                self.healths.push(health.clone());
            }
        }
        let dir = tmp_dir("supervised-observer");
        let cfg = SuperviseConfig {
            duration: 8,
            checkpoint_every: 4,
            ..SuperviseConfig::default()
        };
        let mut obs = Counting {
            evals: 0,
            healths: Vec::new(),
        };
        let outcome = run_supervised(
            &mut det_source(),
            &ScubaParams::default(),
            Rect::square(1000.0),
            &dir,
            &cfg,
            None,
            &mut obs,
        )
        .unwrap();
        assert_eq!(obs.evals, outcome.report.evaluations.len());
        assert_eq!(obs.healths.len(), 2, "health at t=4 and t=8");
        assert_eq!(obs.healths[0].tick, 4);
        assert_eq!(obs.healths[0].journal_frames, 4);
        assert!(obs.healths[1].checkpoints >= 2);
        assert_eq!(obs.healths[0].shedding, "None");
        assert!(
            obs.healths[0].active_queries > 0,
            "data-plane query updates register implicitly"
        );
        assert_eq!(
            obs.healths[0].registered_total,
            obs.healths[0].active_queries,
            "no deregistrations in this workload"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    fn churn_query(id: u64, t: Time) -> LocationUpdate {
        let x = 60.0 + ((id * 53 + t * 17) % 880) as f64;
        let y = 60.0 + ((id * 29 + t * 13) % 880) as f64;
        LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            t,
            20.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(15.0),
            },
        )
    }

    #[test]
    fn checkpoint_carries_registry_and_tolerates_its_absence() {
        let stripes = vec![busy_snapshot()];
        let mut registry = QueryRegistry::new();
        registry.observe(QueryId(3), 2, QuerySpec::square_range(11.0), None);
        registry.observe(QueryId(9), 5, QuerySpec::Knn { k: 4 }, Some(1));
        registry.deregister(QueryId(3));
        registry.note_unknown();

        let bytes = encode_checkpoint(6, &stripes, &registry);
        let state = decode_checkpoint(&bytes).unwrap();
        assert_eq!(state.registry, registry);
        assert_eq!(state.registry.gauges(), registry.gauges());

        // A pre-control-plane checkpoint (payload ends at the stripes)
        // still decodes, with an empty registry.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1);
        encode_snapshot(&mut payload, &stripes[0]);
        let mut old = Vec::with_capacity(CKPT_HEADER + payload.len());
        old.extend_from_slice(CKPT_MAGIC);
        put_u32(&mut old, FORMAT_VERSION);
        put_u64(&mut old, 6);
        put_u64(&mut old, payload.len() as u64);
        let crc = crc32_update(crc32_update(0xffff_ffff, &old[8..24]), &payload) ^ 0xffff_ffff;
        put_u32(&mut old, crc);
        old.extend_from_slice(&payload);
        let state = decode_checkpoint(&old).unwrap();
        assert_eq!(state.stripes, stripes);
        assert_eq!(state.registry, QueryRegistry::default());
    }

    #[test]
    fn journal_frames_roundtrip_controls() {
        let dir = tmp_dir("journal-controls");
        let mut w = JournalWriter::create(&dir, 0, false).unwrap();
        let batch = vec![update(0, 1), update(1, 1)];
        let controls = vec![
            ControlOp::Register(churn_query(501, 1)),
            ControlOp::Deregister(QueryId(77)),
        ];
        w.append_frame(1, &batch, &controls).unwrap();
        // The wrapper writes an (empty) control section too.
        w.append(2, &batch).unwrap();
        let path = w.path().to_path_buf();
        drop(w);
        let seg = read_journal(&path).unwrap();
        assert!(!seg.torn_tail);
        assert_eq!(seg.frames[0].updates, batch);
        assert_eq!(seg.frames[0].controls, controls);
        assert_eq!(seg.frames[1].controls, Vec::new());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Deterministic churn: a register on every odd tick, a deregister of
    /// the previous tick's query on every even tick.
    struct ChurnSource {
        inner: DetSource,
    }

    impl UpdateSource for ChurnSource {
        fn next_tick(&mut self) -> Vec<LocationUpdate> {
            self.inner.next_tick()
        }

        fn next_controls(&mut self) -> Vec<ControlOp> {
            let t = self.inner.tick + 1;
            if t % 2 == 1 {
                vec![ControlOp::Register(churn_query(500 + t, t))]
            } else {
                vec![ControlOp::Deregister(QueryId(500 + t - 1))]
            }
        }
    }

    fn churn_source() -> ChurnSource {
        ChurnSource {
            inner: det_source(),
        }
    }

    #[test]
    fn churned_resume_matches_uninterrupted_run_including_registry() {
        let params = ScubaParams::default();
        let area = Rect::square(1000.0);
        let full = SuperviseConfig {
            duration: 16,
            checkpoint_every: 5,
            ..SuperviseConfig::default()
        };

        let oracle_dir = tmp_dir("churn-resume-oracle");
        let oracle = run_supervised(
            &mut churn_source(),
            &params,
            area,
            &oracle_dir,
            &full,
            None,
            &mut NoObserver,
        )
        .unwrap();
        assert_eq!(oracle.report.aborted, None);
        assert_eq!(oracle.report.controls_applied, 16, "one op per tick");

        // Stop at t=9 — mid checkpoint interval, with explicit register
        // and deregister ops on both sides of the cut — then resume.
        let dir = tmp_dir("churn-resume");
        let first = SuperviseConfig { duration: 9, ..full };
        let first_outcome = run_supervised(
            &mut churn_source(),
            &params,
            area,
            &dir,
            &first,
            None,
            &mut NoObserver,
        )
        .unwrap();
        let second = run_supervised(
            &mut churn_source(),
            &params,
            area,
            &dir,
            &full,
            None,
            &mut NoObserver,
        )
        .unwrap();
        assert_eq!(second.resumed_at, Some(9));

        // Per-tick answers, final engine state, and the registry (active
        // set, registration epochs, lifetime counters) all match the
        // uninterrupted run exactly.
        let mut merged: std::collections::BTreeMap<Time, Vec<_>> = Default::default();
        for e in first_outcome
            .report
            .evaluations
            .iter()
            .chain(&second.report.evaluations)
        {
            merged.insert(e.now, e.results.clone());
        }
        let ora: Vec<_> = oracle
            .report
            .evaluations
            .iter()
            .map(|e| (e.now, e.results.clone()))
            .collect();
        assert_eq!(merged.into_iter().collect::<Vec<_>>(), ora);
        assert_eq!(second.operator.capture(), oracle.operator.capture());
        assert_eq!(second.operator.registry(), oracle.operator.registry());
        assert_eq!(
            second.operator.control_gauges(),
            oracle.operator.control_gauges()
        );
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&oracle_dir);
    }

    #[test]
    fn journal_replays_wire_attrs_faithfully() {
        // Round-trip through the wire codec inside a frame must preserve
        // attribute payloads, not just positions.
        let dir = tmp_dir("journal-attrs");
        let mut w = JournalWriter::create(&dir, 0, false).unwrap();
        let batch = vec![update(3, 1), update(7, 1)];
        w.append(1, &batch).unwrap();
        let path = w.path().to_path_buf();
        drop(w);
        let seg = read_journal(&path).unwrap();
        assert_eq!(seg.frames[0].updates, batch);
        match &seg.frames[0].updates[1].attrs {
            EntityAttrs::Query(q) => assert_eq!(q.spec, QuerySpec::square_range(13.0)),
            other => panic!("expected query attrs, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
