//! Pluggable spatial index over moving-cluster regions.
//!
//! The paper fixes the cluster index to a uniform N×N grid (§4.1), which
//! degrades under hotspot skew: a few downtown cells accumulate hundreds of
//! clusters while suburb cells sit empty, so the join's per-cell candidate
//! generation is wildly unbalanced. [`SpatialIndex`] abstracts the contract
//! every consumer (clustering, join pair-discovery, sharded ingest routing,
//! snapshot restore, k-NN) actually relies on, with two implementations:
//!
//! * [`ClusterGrid`] — the paper's uniform grid, unchanged;
//! * [`AdaptiveGrid`] — the uniform grid plus per-cell quadtree refinement:
//!   hot cells split into subcells past an occupancy threshold and cold
//!   cells merge back, re-balanced incrementally once per Δ.
//!
//! # Bit-identity contract
//!
//! Both implementations must produce **identical query results** for every
//! workload (the property suite and the `grid` bench assert this at
//! runtime). The adaptive grid achieves it by construction:
//!
//! * all *base-level* state — registrations, liveness, cell lists and their
//!   order — is the unmodified [`ClusterGrid`]. Probes
//!   ([`SpatialIndex::clusters_near`], [`SpatialIndex::clusters_within_into`])
//!   delegate to base cell lists, so the Leader–Follower absorb order of
//!   the clustering phase is byte-identical;
//! * refinement only affects [`SpatialIndex::for_each_candidate_cell`], the
//!   join's pair-discovery walk. A refined cell's leaves exactly tile the
//!   cell, and a slot is assigned to every leaf its registered circle
//!   intersects — except that a circle not fully contained in the coverage
//!   area *floods* (joins every leaf). Any object×query result has an
//!   evidence point `p` inside both clusters' effective circles; the leaf
//!   containing `p` (or the flood) lists both clusters, so every
//!   result-producing pair survives refinement. Dropped pairs are exactly
//!   pairs the join would have pruned or joined to no effect — the
//!   downstream sort+dedup and the overlap pre-filter make candidate lists
//!   a *cover*, not a semantic set.
//!
//! Work counters (candidates walked, prefilter tests) legitimately differ
//! between the two indexes; only results and cluster state are identical.

use std::str::FromStr;

use serde::{Deserialize, Serialize};

use scuba_spatial::{Circle, GridSpec, Point, Rect};

use crate::grid::ClusterGrid;
use crate::store::ClusterSlot;

/// Which spatial index implementation the engine builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "lowercase")]
pub enum IndexKind {
    /// The paper's uniform N×N grid (§4.1).
    #[default]
    Uniform,
    /// Uniform grid plus per-cell quadtree refinement for skewed loads.
    Adaptive,
}

impl FromStr for IndexKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "uniform" => Ok(IndexKind::Uniform),
            "adaptive" => Ok(IndexKind::Adaptive),
            other => Err(format!(
                "unknown index kind '{other}' (expected 'uniform' or 'adaptive')"
            )),
        }
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexKind::Uniform => f.write_str("uniform"),
            IndexKind::Adaptive => f.write_str("adaptive"),
        }
    }
}

/// Reusable buffers for candidate-cell emission
/// ([`SpatialIndex::for_each_candidate_cell_with`]). Owned by the caller
/// (the join scratch) and handed back on every discovery walk, so index
/// implementations that materialise per-leaf slot lists reuse one buffer
/// across cells and ticks instead of allocating per walk.
#[derive(Debug, Default)]
pub struct DiscoveryScratch {
    /// Per-leaf membership buffer of the adaptive grid's refined cells.
    leaf: Vec<ClusterSlot>,
}

impl DiscoveryScratch {
    /// Creates empty scratch (buffers grow on first use and stick).
    pub fn new() -> Self {
        DiscoveryScratch::default()
    }

    /// Bytes of heap currently reserved by the scratch buffers.
    pub fn capacity_bytes(&self) -> usize {
        self.leaf.capacity() * std::mem::size_of::<ClusterSlot>()
    }
}

/// The contract every consumer of the cluster index relies on.
///
/// `Sync` because [`crate::join::JoinContext`] (which borrows the index)
/// is copied into scoped worker threads; `Debug` because the contexts that
/// embed it derive `Debug`.
///
/// Cell lists are dense [`ClusterSlot`]-keyed vectors whose *order* is
/// semantically significant (the Leader–Follower probe absorbs into the
/// first passing candidate), registrations track liveness independently of
/// cell membership (a live slot may cover zero cells when its region leaves
/// the area), and candidate enumeration yields lists whose pairwise
/// products *cover* every joinable pair — duplicates are collapsed by the
/// caller's packed-pair dedup.
pub trait SpatialIndex: std::fmt::Debug + Sync {
    /// The base partitioning geometry (also the ingest stripe classifier).
    fn spec(&self) -> &GridSpec;

    /// Registers a cluster region, replacing any previous registration.
    /// Returns the number of base cells the cluster now overlaps.
    fn insert(&mut self, slot: ClusterSlot, region: &Circle) -> usize;

    /// Removes a cluster's registration. Returns `true` if it was present.
    fn remove(&mut self, slot: ClusterSlot) -> bool;

    /// Number of registered clusters.
    fn cluster_count(&self) -> usize;

    /// Whether no clusters are registered.
    fn is_empty(&self) -> bool {
        self.cluster_count() == 0
    }

    /// The linear base-cell indices a cluster is registered in, or `None`
    /// if it is not registered.
    fn cells_of(&self, slot: ClusterSlot) -> Option<&[u32]>;

    /// The clusters registered in a base cell given by linear index.
    fn cell_linear(&self, linear: u32) -> &[ClusterSlot];

    /// The clusters overlapping the base cell that contains `p` (§3.2
    /// step-1 probe).
    fn clusters_near(&self, p: &Point) -> &[ClusterSlot];

    /// Collects (deduplicated, in deterministic cell order) the clusters
    /// registered in any base cell overlapping `probe` into `out`.
    fn clusters_within_into(&mut self, probe: &Circle, out: &mut Vec<ClusterSlot>);

    /// Visits every candidate cell list for join pair discovery
    /// (Algorithm 1, step 8). Lists may overlap; together their pairwise
    /// products cover every pair of clusters whose regions share a point.
    fn for_each_candidate_cell(&self, visit: &mut dyn FnMut(&[ClusterSlot]));

    /// [`SpatialIndex::for_each_candidate_cell`] with caller-provided
    /// scratch. The join's per-tick discovery walk uses this form so
    /// implementations that materialise cell lists (the adaptive grid's
    /// refined leaves) run allocation-free in the steady state; the
    /// scratchless form remains for one-off walks. The default
    /// implementation ignores the scratch and delegates.
    fn for_each_candidate_cell_with(
        &self,
        scratch: &mut DiscoveryScratch,
        visit: &mut dyn FnMut(&[ClusterSlot]),
    ) {
        let _ = scratch;
        self.for_each_candidate_cell(visit);
    }

    /// Re-balances internal refinement against current occupancy. Called
    /// once per evaluation interval Δ; a no-op for the uniform grid.
    fn rebalance(&mut self);

    /// Removes every registration, keeping allocations.
    fn clear(&mut self);

    /// Estimated heap footprint in bytes.
    fn estimated_bytes(&self) -> usize;
}

impl SpatialIndex for ClusterGrid {
    fn spec(&self) -> &GridSpec {
        ClusterGrid::spec(self)
    }

    fn insert(&mut self, slot: ClusterSlot, region: &Circle) -> usize {
        ClusterGrid::insert(self, slot, region)
    }

    fn remove(&mut self, slot: ClusterSlot) -> bool {
        ClusterGrid::remove(self, slot)
    }

    fn cluster_count(&self) -> usize {
        ClusterGrid::cluster_count(self)
    }

    fn cells_of(&self, slot: ClusterSlot) -> Option<&[u32]> {
        ClusterGrid::cells_of(self, slot)
    }

    fn cell_linear(&self, linear: u32) -> &[ClusterSlot] {
        ClusterGrid::cell_linear(self, linear)
    }

    fn clusters_near(&self, p: &Point) -> &[ClusterSlot] {
        ClusterGrid::clusters_near(self, p)
    }

    fn clusters_within_into(&mut self, probe: &Circle, out: &mut Vec<ClusterSlot>) {
        ClusterGrid::clusters_within_into(self, probe, out)
    }

    fn for_each_candidate_cell(&self, visit: &mut dyn FnMut(&[ClusterSlot])) {
        for (_, cell) in self.iter_nonempty() {
            visit(cell);
        }
    }

    fn rebalance(&mut self) {}

    fn clear(&mut self) {
        ClusterGrid::clear(self)
    }

    fn estimated_bytes(&self) -> usize {
        ClusterGrid::estimated_bytes(self)
    }
}

/// Maximum quadtree depth below a base cell (4 levels = up to 256 leaves).
const MAX_DEPTH: u32 = 4;

/// The uniform [`ClusterGrid`] plus per-cell quadtree refinement.
///
/// Base-level behaviour (registration, probes, cell lists) delegates to the
/// embedded uniform grid unchanged — byte-identical state, so snapshots,
/// sharded-ingest overlays and the clustering probe order carry over
/// verbatim. Refinement is a per-base-cell list of leaf rectangles rebuilt
/// by [`AdaptiveGrid::rebalance`] (called once per Δ): a cell at or above
/// `split_threshold` occupants splits quadtree-style while leaves stay
/// crowded, a refined cell at or below `merge_threshold` collapses back,
/// and occupancies in between keep their current refinement (hysteresis —
/// `merge_threshold < split_threshold` keeps a cell oscillating around one
/// threshold from re-splitting every Δ).
///
/// Leaf membership is *materialised at discovery time* — never stored —
/// by filtering the base cell list against each leaf rectangle using the
/// exact registered circles ([`ClusterGrid::region_of`]). A circle not
/// fully inside the coverage area floods every leaf of its cells (see the
/// module docs for why this preserves result identity).
#[derive(Debug, Clone)]
pub struct AdaptiveGrid {
    base: ClusterGrid,
    split_threshold: usize,
    merge_threshold: usize,
    /// Leaf rectangles per base cell, in deterministic pre-order
    /// (SW, SE, NW, NE at every split). Empty = unrefined.
    refined: Vec<Vec<Rect>>,
    /// Number of currently refined base cells.
    refined_cells: usize,
}

impl AdaptiveGrid {
    /// Creates an empty adaptive grid over the given base partitioning.
    ///
    /// `split_threshold` is clamped to at least 2 (splitting a cell of one
    /// occupant is meaningless); `merge_threshold` is clamped below
    /// `split_threshold` so the hysteresis band is never empty.
    pub fn new(spec: GridSpec, split_threshold: u32, merge_threshold: u32) -> Self {
        let split = (split_threshold.max(2)) as usize;
        let merge = (merge_threshold as usize).min(split - 1);
        let cell_count = spec.cell_count();
        AdaptiveGrid {
            base: ClusterGrid::new(spec),
            split_threshold: split,
            merge_threshold: merge,
            refined: vec![Vec::new(); cell_count],
            refined_cells: 0,
        }
    }

    /// The embedded uniform grid (read-only; all mutation goes through the
    /// [`SpatialIndex`] methods so base and refinement stay consistent).
    pub fn base(&self) -> &ClusterGrid {
        &self.base
    }

    /// Number of currently refined base cells.
    pub fn refined_cell_count(&self) -> usize {
        self.refined_cells
    }

    /// Total leaf rectangles across refined cells.
    pub fn leaf_count(&self) -> usize {
        self.refined.iter().map(Vec::len).sum()
    }

    /// The occupancy threshold at or above which a cell splits.
    pub fn split_threshold(&self) -> usize {
        self.split_threshold
    }

    /// The occupancy threshold at or below which a refined cell merges.
    pub fn merge_threshold(&self) -> usize {
        self.merge_threshold
    }

    /// Whether `slot`'s circle must join every leaf of its cells: a region
    /// that leaves the coverage area can produce matches at points the
    /// border-clamped base partitioning cannot attribute to the leaf
    /// geometry, so it is conservatively kept everywhere.
    fn floods(base: &ClusterGrid, slot: ClusterSlot) -> bool {
        match base.region_of(slot) {
            // The bounding box is tight, so box-in-area ⇔ circle-in-area.
            Some(region) => !base.spec().area().contains_rect(&region.bounding_rect()),
            None => true,
        }
    }

    /// Whether `slot` belongs to the leaf (or interior node) `rect`.
    fn assigned(base: &ClusterGrid, slot: ClusterSlot, rect: &Rect) -> bool {
        match base.region_of(slot) {
            Some(region) => {
                !base.spec().area().contains_rect(&region.bounding_rect())
                    || rect.intersects_circle(region)
            }
            None => true,
        }
    }

    /// The four quadrants of a rectangle, in SW, SE, NW, NE order.
    fn quadrants(r: &Rect) -> [Rect; 4] {
        let c = r.center();
        [
            Rect::from_corners(r.min, c),
            Rect::from_corners(Point::new(c.x, r.min.y), Point::new(r.max.x, c.y)),
            Rect::from_corners(Point::new(r.min.x, c.y), Point::new(c.x, r.max.y)),
            Rect::from_corners(c, r.max),
        ]
    }

    /// Recursively collects the leaf rectangles for one base cell: a node
    /// keeps splitting while it holds at least `split` assigned slots, at
    /// least one of which is refinable (non-flooding — flooding slots join
    /// every leaf, so splitting a cell of only flooders gains nothing),
    /// down to [`MAX_DEPTH`].
    fn build_leaves(
        base: &ClusterGrid,
        slots: &[ClusterSlot],
        rect: Rect,
        depth: u32,
        split: usize,
        out: &mut Vec<Rect>,
    ) {
        let mut count = 0usize;
        let mut flooding = 0usize;
        for &slot in slots {
            if Self::assigned(base, slot, &rect) {
                count += 1;
                if Self::floods(base, slot) {
                    flooding += 1;
                }
            }
        }
        if count >= split && count > flooding && depth < MAX_DEPTH {
            for q in Self::quadrants(&rect) {
                Self::build_leaves(base, slots, q, depth + 1, split, out);
            }
        } else {
            out.push(rect);
        }
    }
}

impl SpatialIndex for AdaptiveGrid {
    fn spec(&self) -> &GridSpec {
        self.base.spec()
    }

    fn insert(&mut self, slot: ClusterSlot, region: &Circle) -> usize {
        self.base.insert(slot, region)
    }

    fn remove(&mut self, slot: ClusterSlot) -> bool {
        self.base.remove(slot)
    }

    fn cluster_count(&self) -> usize {
        self.base.cluster_count()
    }

    fn cells_of(&self, slot: ClusterSlot) -> Option<&[u32]> {
        self.base.cells_of(slot)
    }

    fn cell_linear(&self, linear: u32) -> &[ClusterSlot] {
        self.base.cell_linear(linear)
    }

    fn clusters_near(&self, p: &Point) -> &[ClusterSlot] {
        self.base.clusters_near(p)
    }

    fn clusters_within_into(&mut self, probe: &Circle, out: &mut Vec<ClusterSlot>) {
        self.base.clusters_within_into(probe, out)
    }

    /// Unrefined non-empty cells are visited as-is (identical to the
    /// uniform grid); refined cells are visited once per leaf, with the
    /// leaf's membership materialised from the base list in base-list
    /// order (so within any one list, relative order matches uniform).
    fn for_each_candidate_cell(&self, visit: &mut dyn FnMut(&[ClusterSlot])) {
        self.for_each_candidate_cell_with(&mut DiscoveryScratch::default(), visit);
    }

    /// As above, but the leaf membership buffer lives in the caller's
    /// scratch — the hot join path reuses it across every cell and tick
    /// instead of growing a fresh `Vec` per walk.
    fn for_each_candidate_cell_with(
        &self,
        scratch: &mut DiscoveryScratch,
        visit: &mut dyn FnMut(&[ClusterSlot]),
    ) {
        let leaf_buf = &mut scratch.leaf;
        let cell_count = self.base.spec().cell_count();
        for linear in 0..cell_count {
            let cell = self.base.cell_linear(linear as u32);
            if cell.is_empty() {
                continue;
            }
            let leaves = &self.refined[linear];
            if leaves.is_empty() {
                visit(cell);
                continue;
            }
            for leaf in leaves {
                leaf_buf.clear();
                for &slot in cell {
                    if Self::assigned(&self.base, slot, leaf) {
                        leaf_buf.push(slot);
                    }
                }
                if !leaf_buf.is_empty() {
                    visit(leaf_buf);
                }
            }
        }
    }

    /// Incremental split/merge pass, proportional to the number of base
    /// cells plus the occupancy of hot cells — never a full rebuild of
    /// registrations. Deterministic: depends only on current grid contents
    /// and the thresholds, and runs at a fixed point of the tick.
    fn rebalance(&mut self) {
        let spec = *self.base.spec();
        let mut fresh: Vec<Rect> = Vec::new();
        for linear in 0..spec.cell_count() {
            let occ = self.base.cell_linear(linear as u32).len();
            let is_refined = !self.refined[linear].is_empty();
            if occ >= self.split_threshold {
                fresh.clear();
                let rect = spec.cell_rect(spec.from_linear(linear));
                Self::build_leaves(
                    &self.base,
                    self.base.cell_linear(linear as u32),
                    rect,
                    0,
                    self.split_threshold,
                    &mut fresh,
                );
                if fresh.len() > 1 {
                    if !is_refined {
                        self.refined_cells += 1;
                    }
                    std::mem::swap(&mut self.refined[linear], &mut fresh);
                } else if is_refined {
                    // Splitting gained nothing (e.g. every occupant
                    // floods): fall back to the plain cell.
                    self.refined[linear].clear();
                    self.refined_cells -= 1;
                }
            } else if is_refined && occ <= self.merge_threshold {
                self.refined[linear].clear();
                self.refined_cells -= 1;
            }
            // merge_threshold < occ < split_threshold: hysteresis band —
            // keep whatever refinement the cell currently has.
        }
    }

    fn clear(&mut self) {
        self.base.clear();
        for leaves in &mut self.refined {
            leaves.clear();
        }
        self.refined_cells = 0;
    }

    fn estimated_bytes(&self) -> usize {
        let header = std::mem::size_of::<Vec<Rect>>();
        let leaves: usize = self.refined.len() * header
            + self
                .refined
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<Rect>())
                .sum::<usize>();
        self.base.estimated_bytes() + leaves
    }
}

/// Enum dispatch over the two index implementations.
///
/// Stored by value in the engine (no boxing on the hot path); consumers
/// that only need the contract borrow it as `&dyn SpatialIndex`.
#[derive(Debug, Clone)]
pub enum AnyIndex {
    /// The paper's uniform grid.
    Uniform(ClusterGrid),
    /// Quadtree-refined grid for skewed workloads.
    Adaptive(AdaptiveGrid),
}

impl AnyIndex {
    /// Builds the index selected by `kind` over the given partitioning.
    pub fn new(
        kind: IndexKind,
        spec: GridSpec,
        split_threshold: u32,
        merge_threshold: u32,
    ) -> Self {
        match kind {
            IndexKind::Uniform => AnyIndex::Uniform(ClusterGrid::new(spec)),
            IndexKind::Adaptive => {
                AnyIndex::Adaptive(AdaptiveGrid::new(spec, split_threshold, merge_threshold))
            }
        }
    }

    /// Which implementation this is.
    pub fn kind(&self) -> IndexKind {
        match self {
            AnyIndex::Uniform(_) => IndexKind::Uniform,
            AnyIndex::Adaptive(_) => IndexKind::Adaptive,
        }
    }

    /// Borrows the index through the trait.
    pub fn as_dyn(&self) -> &dyn SpatialIndex {
        match self {
            AnyIndex::Uniform(g) => g,
            AnyIndex::Adaptive(g) => g,
        }
    }

    /// Mutably borrows the index through the trait.
    pub fn as_dyn_mut(&mut self) -> &mut dyn SpatialIndex {
        match self {
            AnyIndex::Uniform(g) => g,
            AnyIndex::Adaptive(g) => g,
        }
    }

    /// The adaptive implementation, if that is what this is.
    pub fn as_adaptive(&self) -> Option<&AdaptiveGrid> {
        match self {
            AnyIndex::Adaptive(g) => Some(g),
            AnyIndex::Uniform(_) => None,
        }
    }
}

impl SpatialIndex for AnyIndex {
    fn spec(&self) -> &GridSpec {
        self.as_dyn().spec()
    }

    fn insert(&mut self, slot: ClusterSlot, region: &Circle) -> usize {
        self.as_dyn_mut().insert(slot, region)
    }

    fn remove(&mut self, slot: ClusterSlot) -> bool {
        self.as_dyn_mut().remove(slot)
    }

    fn cluster_count(&self) -> usize {
        self.as_dyn().cluster_count()
    }

    fn cells_of(&self, slot: ClusterSlot) -> Option<&[u32]> {
        self.as_dyn().cells_of(slot)
    }

    fn cell_linear(&self, linear: u32) -> &[ClusterSlot] {
        self.as_dyn().cell_linear(linear)
    }

    fn clusters_near(&self, p: &Point) -> &[ClusterSlot] {
        self.as_dyn().clusters_near(p)
    }

    fn clusters_within_into(&mut self, probe: &Circle, out: &mut Vec<ClusterSlot>) {
        self.as_dyn_mut().clusters_within_into(probe, out)
    }

    fn for_each_candidate_cell(&self, visit: &mut dyn FnMut(&[ClusterSlot])) {
        self.as_dyn().for_each_candidate_cell(visit)
    }

    fn for_each_candidate_cell_with(
        &self,
        scratch: &mut DiscoveryScratch,
        visit: &mut dyn FnMut(&[ClusterSlot]),
    ) {
        self.as_dyn().for_each_candidate_cell_with(scratch, visit)
    }

    fn rebalance(&mut self) {
        self.as_dyn_mut().rebalance()
    }

    fn clear(&mut self) {
        self.as_dyn_mut().clear()
    }

    fn estimated_bytes(&self) -> usize {
        self.as_dyn().estimated_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AREA: f64 = 100.0;

    fn uniform() -> AnyIndex {
        AnyIndex::new(
            IndexKind::Uniform,
            GridSpec::new(Rect::square(AREA), 10),
            8,
            2,
        )
    }

    fn adaptive() -> AnyIndex {
        AnyIndex::new(
            IndexKind::Adaptive,
            GridSpec::new(Rect::square(AREA), 10),
            8,
            2,
        )
    }

    /// SplitMix64 — deterministic pseudo-random placements without
    /// depending on an RNG crate in this module.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn unit(seed: u64) -> f64 {
        (mix(seed) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A deterministic scatter: most circles crowd a hotspot, the rest
    /// spread uniformly; a few leak past the border.
    fn scatter(n: u32) -> Vec<(ClusterSlot, Circle)> {
        (0..n)
            .map(|i| {
                let s = i as u64;
                let (x, y, r) = if i % 4 != 3 {
                    // Hotspot around (20, 20).
                    (
                        15.0 + 10.0 * unit(s * 3 + 1),
                        15.0 + 10.0 * unit(s * 3 + 2),
                        0.3 + 1.2 * unit(s * 3 + 3),
                    )
                } else {
                    // Uniform background, occasionally out of bounds.
                    (
                        -5.0 + 110.0 * unit(s * 5 + 1),
                        -5.0 + 110.0 * unit(s * 5 + 2),
                        0.3 + 2.0 * unit(s * 5 + 3),
                    )
                };
                (ClusterSlot(i), Circle::new(Point::new(x, y), r))
            })
            .collect()
    }

    /// Every unordered candidate pair (including self-pairs) an index
    /// yields, deduplicated.
    fn candidate_pairs(idx: &dyn SpatialIndex) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        idx.for_each_candidate_cell(&mut |cell| {
            for (i, &a) in cell.iter().enumerate() {
                for &b in &cell[i..] {
                    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
                    pairs.push((lo, hi));
                }
            }
        });
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// The trait-level conformance suite, run against both
    /// implementations.
    fn conformance(idx: &mut dyn SpatialIndex) {
        let circles = scatter(64);

        // Registration round-trip.
        for &(slot, c) in &circles {
            let cells = idx.insert(slot, &c);
            assert_eq!(idx.cells_of(slot).map(<[u32]>::len), Some(cells));
        }
        assert_eq!(idx.cluster_count(), circles.len());
        idx.rebalance();

        // Registration / cell-list agreement.
        for &(slot, _) in &circles {
            for &linear in idx.cells_of(slot).expect("registered") {
                assert!(idx.cell_linear(linear).contains(&slot));
            }
        }

        // Probe completeness vs brute force: every in-area circle is found
        // by a probe overlapping it.
        let mut found = Vec::new();
        for probe_i in 0..24u64 {
            let probe = Circle::new(
                Point::new(
                    AREA * unit(1000 + probe_i * 2),
                    AREA * unit(2000 + probe_i * 2),
                ),
                2.0 + 8.0 * unit(3000 + probe_i),
            );
            idx.clusters_within_into(&probe, &mut found);
            for &(slot, c) in &circles {
                let inside = idx.spec().area().contains_rect(&c.bounding_rect());
                if inside && c.overlaps(&probe) {
                    assert!(
                        found.contains(&slot),
                        "probe {probe:?} missed overlapping {slot:?} at {c:?}"
                    );
                }
            }
        }

        // Candidate-pair coverage vs brute force: every pair of in-area
        // circles sharing a point must co-occur in some candidate list.
        let pairs = candidate_pairs(idx);
        for (i, &(a, ca)) in circles.iter().enumerate() {
            assert!(
                pairs.binary_search(&(a.0, a.0)).is_ok() || idx.cells_of(a) == Some(&[][..]),
                "registered {a:?} missing its self-pair"
            );
            for &(b, cb) in &circles[i + 1..] {
                let both_inside = idx.spec().area().contains_rect(&ca.bounding_rect())
                    && idx.spec().area().contains_rect(&cb.bounding_rect());
                if both_inside && ca.overlaps(&cb) {
                    let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
                    assert!(
                        pairs.binary_search(&key).is_ok(),
                        "overlapping pair {a:?}/{b:?} not covered"
                    );
                }
            }
        }

        // Unregistration round-trip and slot-reuse safety.
        let (victim, old_region) = circles[5];
        assert!(idx.remove(victim));
        assert!(!idx.remove(victim));
        assert!(idx.cells_of(victim).is_none());
        idx.for_each_candidate_cell(&mut |cell| assert!(!cell.contains(&victim)));
        // Reuse the slot far away: no trace of the old region. (Slot 5 is
        // a hotspot circle near (20, 20); the relocation is near (80, 80),
        // so the old-region probe and the new cells are disjoint.)
        let relocated = Circle::new(Point::new(80.0, 80.0), 1.0);
        idx.insert(victim, &relocated);
        for &linear in idx.cells_of(victim).expect("re-registered") {
            assert!(idx.cell_linear(linear).contains(&victim));
        }
        idx.clusters_within_into(&old_region, &mut found);
        assert!(
            !found.contains(&victim),
            "reused slot still answers at its old region"
        );

        // Zero-cell out-of-bounds registration.
        let ghost = ClusterSlot(900);
        assert_eq!(
            idx.insert(ghost, &Circle::new(Point::new(500.0, 500.0), 1.0)),
            0
        );
        assert_eq!(idx.cells_of(ghost), Some(&[][..]));
        idx.for_each_candidate_cell(&mut |cell| assert!(!cell.contains(&ghost)));
        assert!(idx.remove(ghost));

        // Clear resets.
        idx.clear();
        assert!(idx.is_empty());
        let mut visited = 0usize;
        idx.for_each_candidate_cell(&mut |_| visited += 1);
        assert_eq!(visited, 0);
    }

    #[test]
    fn uniform_grid_conformance() {
        let mut idx = uniform();
        conformance(idx.as_dyn_mut());
    }

    #[test]
    fn adaptive_grid_conformance() {
        let mut idx = adaptive();
        conformance(idx.as_dyn_mut());
        // And again after a rebalance cycle has split cells.
        conformance(idx.as_dyn_mut());
    }

    #[test]
    fn adaptive_pairs_are_a_subset_of_uniform_pairs() {
        let mut u = uniform();
        let mut a = adaptive();
        for &(slot, c) in &scatter(96) {
            u.insert(slot, &c);
            a.insert(slot, &c);
        }
        a.rebalance();
        let up = candidate_pairs(u.as_dyn());
        let ap = candidate_pairs(a.as_dyn());
        assert!(
            a.as_adaptive().expect("adaptive").refined_cell_count() > 0,
            "hotspot scatter should refine at least one cell"
        );
        for key in &ap {
            assert!(
                up.binary_search(key).is_ok(),
                "adaptive invented pair {key:?}"
            );
        }
        assert!(
            ap.len() < up.len(),
            "refinement should prune some candidate pairs ({} vs {})",
            ap.len(),
            up.len()
        );
    }

    /// The scratch-reusing discovery walk must visit exactly the same
    /// cell lists as the scratchless form, and a second walk with the same
    /// scratch must not grow the buffers (the steady-state zero-allocation
    /// contract the join relies on).
    #[test]
    fn scratch_walk_matches_scratchless_and_stops_growing() {
        let mut a = adaptive();
        for &(slot, c) in &scatter(64) {
            a.insert(slot, &c);
        }
        a.rebalance();
        assert!(
            a.as_adaptive().expect("adaptive").refined_cell_count() > 0,
            "hotspot should refine"
        );

        let mut plain: Vec<Vec<ClusterSlot>> = Vec::new();
        a.for_each_candidate_cell(&mut |cell| plain.push(cell.to_vec()));

        let mut scratch = DiscoveryScratch::new();
        let mut with: Vec<Vec<ClusterSlot>> = Vec::new();
        a.for_each_candidate_cell_with(&mut scratch, &mut |cell| with.push(cell.to_vec()));
        assert_eq!(plain, with, "scratch walk changed the visited lists");

        let settled = scratch.capacity_bytes();
        assert!(settled > 0, "refined leaves should use the scratch buffer");
        for _ in 0..3 {
            a.for_each_candidate_cell_with(&mut scratch, &mut |_| {});
            assert_eq!(
                scratch.capacity_bytes(),
                settled,
                "steady walks must not reallocate"
            );
        }
    }

    #[test]
    fn adaptive_base_state_matches_uniform() {
        // The invariant everything else leans on: base-level cell lists are
        // byte-identical between the two indexes, refined or not.
        let mut u = uniform();
        let mut a = adaptive();
        let circles = scatter(64);
        for &(slot, c) in &circles {
            u.insert(slot, &c);
            a.insert(slot, &c);
        }
        a.rebalance();
        for linear in 0..u.spec().cell_count() as u32 {
            assert_eq!(u.cell_linear(linear), a.cell_linear(linear));
        }
        for &(slot, _) in &circles {
            assert_eq!(u.cells_of(slot), a.cells_of(slot));
        }
    }

    #[test]
    fn adaptive_splits_hot_cell_and_merges_when_cooled() {
        let mut a = AdaptiveGrid::new(GridSpec::new(Rect::square(AREA), 10), 8, 2);
        // 20 tiny circles inside one cell.
        for i in 0..20u32 {
            let p = Point::new(
                42.0 + 6.0 * unit(i as u64 * 7 + 1),
                42.0 + 6.0 * unit(i as u64 * 7 + 2),
            );
            a.insert(ClusterSlot(i), &Circle::new(p, 0.2));
        }
        a.rebalance();
        assert_eq!(a.refined_cell_count(), 1);
        assert!(a.leaf_count() > 1);

        // Leaves bound the per-list occupancy below the raw cell size.
        let mut max_list = 0usize;
        a.for_each_candidate_cell(&mut |cell| max_list = max_list.max(cell.len()));
        assert!(
            max_list < 20,
            "refinement should shrink the largest candidate list, got {max_list}"
        );

        // Hysteresis: drop occupancy into the band (2 < 6 < 8) — the
        // refinement stays as-is.
        for i in 6..20u32 {
            a.remove(ClusterSlot(i));
        }
        a.rebalance();
        assert_eq!(a.refined_cell_count(), 1, "band occupancy keeps the tree");

        // At or below the merge threshold the cell collapses back.
        for i in 2..6u32 {
            a.remove(ClusterSlot(i));
        }
        a.rebalance();
        assert_eq!(a.refined_cell_count(), 0);
        assert_eq!(a.leaf_count(), 0);
    }

    #[test]
    fn flooding_keeps_border_leakers_everywhere() {
        let mut a = AdaptiveGrid::new(GridSpec::new(Rect::square(AREA), 10), 4, 1);
        // A border cell hot enough to split, plus one circle leaking out.
        for i in 0..6u32 {
            a.insert(
                ClusterSlot(i),
                &Circle::new(Point::new(2.0 + 1.0 * i as f64, 5.0), 0.3),
            );
        }
        let leaker = ClusterSlot(9);
        a.insert(leaker, &Circle::new(Point::new(0.5, 5.0), 1.0)); // crosses x=0
        a.rebalance();
        assert_eq!(a.refined_cell_count(), 1);
        let mut lists_with_leaker = 0usize;
        let mut lists = 0usize;
        a.for_each_candidate_cell(&mut |cell| {
            lists += 1;
            if cell.contains(&leaker) {
                lists_with_leaker += 1;
            }
        });
        assert!(lists > 1);
        assert_eq!(
            lists_with_leaker, lists,
            "an out-of-area circle must flood every leaf of its cell"
        );
    }

    #[test]
    fn index_kind_parses_and_displays() {
        assert_eq!("uniform".parse::<IndexKind>(), Ok(IndexKind::Uniform));
        assert_eq!("adaptive".parse::<IndexKind>(), Ok(IndexKind::Adaptive));
        assert!("quadtree".parse::<IndexKind>().is_err());
        assert_eq!(IndexKind::Uniform.to_string(), "uniform");
        assert_eq!(IndexKind::Adaptive.to_string(), "adaptive");
        assert_eq!(IndexKind::default(), IndexKind::Uniform);
    }

    #[test]
    fn any_index_reports_its_kind() {
        assert_eq!(uniform().kind(), IndexKind::Uniform);
        assert_eq!(adaptive().kind(), IndexKind::Adaptive);
        assert!(uniform().as_adaptive().is_none());
        assert!(adaptive().as_adaptive().is_some());
    }
}
