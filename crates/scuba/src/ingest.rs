//! Sharded batch ingestion: parallel Leader–Follower planning with a
//! deterministic sequential apply.
//!
//! The joining phase went parallel and incremental in earlier iterations,
//! leaving the per-update cluster maintenance walk
//! ([`ClusterEngine::process_update`]) as the dominant sequential cost at
//! high update rates. This module batches one tick's updates and splits the
//! *expensive* part of that walk — the grid probe and the absorb/found
//! decision — across K spatial shards, while keeping every actual mutation
//! sequential so the result is **bit-identical** to feeding the same batch
//! through `process_update` one at a time in canonical order (sorted by
//! `(time, entity)`).
//!
//! Three phases per batch (see DESIGN.md §4.3 for the full determinism
//! argument):
//!
//! 1. **Route** (sequential): sort the batch canonically, split the grid
//!    into K contiguous column stripes, and classify each update as
//!    *interior* to one stripe or *boundary*. An update is interior only
//!    when everything its maintenance step can read or write — the 2Θ_D
//!    disk around its location and its home cluster's region inflated by
//!    Θ_D — lies inside a single stripe, it is its entity's only update in
//!    the batch, and no earlier boundary update can influence it (tracked
//!    with cell marks and a deferred-home slot set). Boundary updates are
//!    deferred to the apply pass.
//! 2. **Shard** (parallel, scoped threads, per-shard scratch): each shard
//!    *plans* its interior updates against a copy-on-write overlay of the
//!    engine — replaying refresh/evict/absorb/found on cloned clusters and
//!    shadowed grid cells — and records one decision per update. The
//!    planner never mutates the engine; whenever a read brushes against
//!    state a boundary update (or an earlier demotion) could invalidate, it
//!    *demotes* the update to the boundary set instead of guessing.
//! 3. **Fixup** (sequential): walk the full batch in canonical order;
//!    planned updates replay their recorded decision via
//!    [`ClusterEngine::apply_planned`] (the same mutation path with the
//!    probe skipped), demoted and deferred updates run the ordinary
//!    `process_update`. Cluster ids, slot assignments, epoch stamps and
//!    grid cell order therefore match the sequential engine exactly.

use std::time::Duration;

use scuba_motion::{EntityRef, LocationUpdate};
use scuba_spatial::{Circle, FxHashMap, FxHashSet, GridSpec, Point};
use scuba_stream::Stopwatch;

use crate::cluster::{ClusterId, MovingCluster};
use crate::clustering::ClusterEngine;
use crate::params::ProbeScope;
use crate::store::ClusterSlot;

/// Slot handles at or above this value are shard-private provisional
/// handles for clusters founded during planning; the apply pass assigns
/// the real slots in canonical order. Real slots index the store's slab,
/// which stays far below this bound.
const PROVISIONAL_SLOT_BASE: u32 = 1 << 31;

/// A planner's absorb/found verdict for one interior update.
#[derive(Debug, Clone, Copy)]
enum PlannedTarget {
    /// Absorb into a pre-batch cluster.
    Existing(ClusterSlot),
    /// Absorb into the shard's k-th provisionally founded cluster.
    Provisional(u32),
    /// Found a new cluster (the shard's next provisional).
    Found,
}

/// The planner's decision for one interior update.
#[derive(Debug, Clone, Copy)]
enum PlannedAction {
    /// The home cluster still fits: refresh in place.
    Refresh,
    /// Leave the home cluster (if any), then absorb or found.
    Join {
        /// The home cluster the update evicts from first.
        evicted: Option<ClusterSlot>,
        /// Where the update lands.
        target: PlannedTarget,
    },
}

/// A decision with provisional handles resolved to real slots — what
/// [`ClusterEngine::apply_planned`] replays.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ResolvedAction {
    /// Refresh in the (still fitting) home cluster.
    Refresh,
    /// Evict from `evicted` (if any), then absorb into `target` or — when
    /// `target` is `None` — found a new cluster.
    Join {
        /// The home cluster to evict from first.
        evicted: Option<ClusterSlot>,
        /// The absorb target; `None` founds.
        target: Option<ClusterSlot>,
    },
}

/// Counters and wall times from one sharded batch.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct IngestReport {
    /// Batch size.
    pub total: u64,
    /// Updates planned on shard workers and replayed (`interior_updates`).
    pub interior: u64,
    /// Updates processed sequentially: classified as boundary plus demoted
    /// during planning (`boundary_updates`).
    pub boundary: u64,
    /// Of `boundary`, those the planners demoted mid-shard.
    pub demoted: u64,
    /// Interior updates on the fullest stripe minus the emptiest
    /// (`shard_imbalance`).
    pub shard_imbalance: u64,
    /// Route phase (sort + classify) wall time.
    pub route_time: Duration,
    /// Shard phase (parallel planning) wall time.
    pub shard_time: Duration,
    /// Fixup phase (sequential apply) wall time.
    pub fixup_time: Duration,
}

impl IngestReport {
    /// Accumulates one chunk's counters and wall times into a batch total.
    /// `shard_imbalance` sums per-chunk spreads: a cumulative skew measure,
    /// matching the per-batch interpretation when there is one chunk.
    fn absorb(&mut self, chunk: &IngestReport) {
        self.total += chunk.total;
        self.interior += chunk.interior;
        self.boundary += chunk.boundary;
        self.demoted += chunk.demoted;
        self.shard_imbalance += chunk.shard_imbalance;
        self.route_time += chunk.route_time;
        self.shard_time += chunk.shard_time;
        self.fixup_time += chunk.fixup_time;
    }
}

/// Where classification routed one update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assign {
    /// Interior to this stripe.
    Shard(u16),
    /// Boundary: processed sequentially in the fixup pass.
    Deferred,
}

/// Reusable per-operator state for [`ingest_batch`] — all maps and buffers
/// keep their capacity across ticks (the `JoinScratch` idiom).
#[derive(Debug, Default)]
pub(crate) struct IngestScratch {
    /// The whole batch in canonical `(time, entity)` order; chunks of it
    /// feed [`ingest_chunk`] one at a time.
    batch: Vec<LocationUpdate>,
    /// The current chunk in canonical `(time, entity)` order.
    sorted: Vec<LocationUpdate>,
    /// Updates per entity within the batch (entities reporting more than
    /// once are always boundary).
    multi: FxHashMap<EntityRef, u32>,
    /// Classification verdicts, parallel to `sorted`.
    assign: Vec<Assign>,
    /// Stamped cell marks from boundary updates (a cell is marked iff its
    /// stamp equals `round`; never cleared).
    global_marks: Vec<u32>,
    /// Current mark round (bumped per batch).
    round: u32,
    /// Home clusters of boundary updates — any planner read of these slots
    /// demotes, closing the "far home" hole marks cannot see.
    deferred_homes: FxHashSet<ClusterSlot>,
    /// Grid column → shard stripe.
    col_shard: Vec<u16>,
    /// Per-shard planner state.
    shards: Vec<ShardScratch>,
    /// Merged decisions, parallel to `sorted` (`None` = sequential).
    actions: Vec<Option<(u16, PlannedAction)>>,
    /// Real slots assigned to each shard's provisional foundings, in order.
    founds_real: Vec<Vec<ClusterSlot>>,
}

/// One shard's planning state: the copy-on-write overlay plus demotion
/// bookkeeping.
#[derive(Debug, Default)]
struct ShardScratch {
    /// Indices into the sorted batch, ascending.
    items: Vec<u32>,
    /// Cluster overlay: `Some(None)` = dissolved during planning.
    cow_clusters: FxHashMap<ClusterSlot, Option<MovingCluster>>,
    /// Home overlay.
    cow_home: FxHashMap<EntityRef, Option<ClusterSlot>>,
    /// Grid cell overlay (cloned from the base cell on first write;
    /// removals are order-preserving, matching [`crate::grid::ClusterGrid`]).
    cow_cells: FxHashMap<u32, Vec<ClusterSlot>>,
    /// Registration overlay: `Some(None)` = removed.
    cow_regs: FxHashMap<ClusterSlot, Option<Vec<u32>>>,
    /// Stamped cell marks from this shard's own demotions.
    local_marks: Vec<u32>,
    /// Clusters no later update in this shard may trust: homes of demoted
    /// updates, plus clusters whose centroid drifted into marked cells.
    tainted: FxHashSet<ClusterSlot>,
    /// Stamped dedup table for the read-only probe (provisional handles sit
    /// at `PROVISIONAL_SLOT_BASE`, so this stays a map rather than a dense
    /// slab).
    probe_seen: FxHashMap<ClusterSlot, u64>,
    /// Probe round for `probe_seen`.
    probe_round: u64,
    /// Provisional clusters founded so far.
    founds: u32,
    /// Decisions, as (batch index, action), ascending by index.
    plans: Vec<(u32, PlannedAction)>,
    /// Batch indices demoted to the fixup pass.
    demoted: Vec<u32>,
    /// Candidate buffer for the probe.
    candidates: Vec<ClusterSlot>,
}

impl ShardScratch {
    fn reset(&mut self, cell_count: usize, round: u32) {
        self.items.clear();
        self.cow_clusters.clear();
        self.cow_home.clear();
        self.cow_cells.clear();
        self.cow_regs.clear();
        if self.local_marks.len() != cell_count {
            self.local_marks.clear();
            self.local_marks.resize(cell_count, 0);
        }
        if round == 1 {
            // The stamp counter wrapped (or this is a fresh scratch):
            // stale stamps could alias the new round.
            self.local_marks.fill(0);
        }
        self.tainted.clear();
        self.founds = 0;
        self.plans.clear();
        self.demoted.clear();
    }
}

/// Read-only view shared by every shard planner.
struct Shared<'a> {
    engine: &'a ClusterEngine,
    sorted: &'a [LocationUpdate],
    global_marks: &'a [u32],
    deferred_homes: &'a FxHashSet<ClusterSlot>,
    round: u32,
}

impl Shared<'_> {
    #[inline]
    fn spec(&self) -> &GridSpec {
        self.engine.grid().spec()
    }

    #[inline]
    fn linear_of(&self, p: &Point) -> u32 {
        let spec = self.spec();
        spec.linear(spec.cell_of(p)) as u32
    }
}

/// Ingests one batch through the sharded plan-then-apply pipeline.
/// `shards` must be at least 2 (callers route 0/1 through the plain loop)
/// and at most the grid's column count.
///
/// The batch is sorted canonically once, then fed through
/// [`ingest_chunk`] in contiguous chunks of at most [`chunk_len`] updates.
/// Chunks are ingested strictly in order, so the composition is exactly
/// the sequential walk — chunking exists purely to keep each round's
/// boundary-influence marks sparse. The marks have radius ~2Θ_D, so once a
/// round holds more than about one update per mark disk of coverage area
/// the marked region percolates and classification defers nearly
/// everything; capping the round size keeps the deferred set proportional
/// to the true stripe-border traffic instead.
pub(crate) fn ingest_batch(
    engine: &mut ClusterEngine,
    updates: &[LocationUpdate],
    shards: usize,
    scratch: &mut IngestScratch,
) -> IngestReport {
    debug_assert!(shards >= 2);
    let sort_sw = Stopwatch::start();
    scratch.batch.clear();
    scratch.batch.extend_from_slice(updates);
    scratch.batch.sort_by_key(|u| (u.time, u.entity));
    let sort_time = sort_sw.elapsed();

    let chunk = chunk_len(engine.grid().spec(), engine.params().theta_d);
    let batch = std::mem::take(&mut scratch.batch);
    let mut report = IngestReport {
        route_time: sort_time,
        ..IngestReport::default()
    };
    for chunk_updates in batch.chunks(chunk) {
        report.absorb(&ingest_chunk(engine, chunk_updates, shards, scratch));
    }
    scratch.batch = batch;
    report
}

/// Largest chunk that keeps one classification round's influence marks
/// subcritical: about one update per 2Θ_D-radius mark disk of coverage
/// area (the continuum-percolation threshold), with head-room on either
/// side so tiny grids still batch usefully and huge ones don't starve the
/// shard workers of work per round.
fn chunk_len(spec: &GridSpec, theta_d: f64) -> usize {
    let area = spec.area();
    let extent = (area.max.x - area.min.x) * (area.max.y - area.min.y);
    let disk = std::f64::consts::PI * (2.0 * theta_d) * (2.0 * theta_d);
    if disk <= 0.0 || extent <= 0.0 {
        return 4096;
    }
    ((extent / disk) as usize).clamp(256, 16_384)
}

/// Ingests one canonical-order chunk: classify, plan in parallel, apply.
fn ingest_chunk(
    engine: &mut ClusterEngine,
    updates: &[LocationUpdate],
    shards: usize,
    scratch: &mut IngestScratch,
) -> IngestReport {
    let route_sw = Stopwatch::start();
    scratch.begin(engine.grid().spec(), shards);
    scratch.sorted.extend_from_slice(updates);
    classify(engine, scratch);
    let route_time = route_sw.elapsed();

    let shard_sw = Stopwatch::start();
    plan_shards(engine, scratch);
    let shard_time = shard_sw.elapsed();

    let fixup_sw = Stopwatch::start();
    let demoted = apply_plans(engine, scratch);
    let fixup_time = fixup_sw.elapsed();

    let total = scratch.sorted.len() as u64;
    let routed: u64 = scratch.shards.iter().map(|s| s.items.len() as u64).sum();
    let max = scratch
        .shards
        .iter()
        .map(|s| s.items.len() as u64)
        .max()
        .unwrap_or(0);
    let min = scratch
        .shards
        .iter()
        .map(|s| s.items.len() as u64)
        .min()
        .unwrap_or(0);
    IngestReport {
        total,
        interior: routed - demoted,
        boundary: total - routed + demoted,
        demoted,
        shard_imbalance: max - min,
        route_time,
        shard_time,
        fixup_time,
    }
}

impl IngestScratch {
    /// Prepares the scratch for a batch over `shards` stripes.
    fn begin(&mut self, spec: &GridSpec, shards: usize) {
        self.sorted.clear();
        self.multi.clear();
        self.assign.clear();
        self.deferred_homes.clear();
        self.actions.clear();

        let cell_count = spec.cell_count();
        if self.global_marks.len() != cell_count {
            self.global_marks.clear();
            self.global_marks.resize(cell_count, 0);
            self.round = 0;
        }
        self.round = self.round.wrapping_add(1);
        if self.round == 0 {
            self.global_marks.fill(0);
            self.round = 1;
        }

        // Contiguous column stripes: shard s covers columns
        // [s·n/K, (s+1)·n/K).
        let cols = spec.cells_per_side() as usize;
        self.col_shard.clear();
        self.col_shard.resize(cols, 0);
        for s in 0..shards {
            let start = s * cols / shards;
            let end = (s + 1) * cols / shards;
            for col in start..end {
                self.col_shard[col] = s as u16;
            }
        }

        if self.shards.len() != shards {
            self.shards.resize_with(shards, ShardScratch::default);
        }
        let round = self.round;
        for sh in &mut self.shards {
            sh.reset(cell_count, round);
        }
        self.founds_real.resize_with(shards, Vec::new);
        for f in &mut self.founds_real {
            f.clear();
        }
    }

    #[inline]
    fn mark_global(&mut self, spec: &GridSpec, circle: &Circle) {
        let round = self.round;
        for idx in spec.cells_overlapping_circle(circle) {
            self.global_marks[spec.linear(idx)] = round;
        }
    }
}

/// Sequential classification walk, in canonical order: routes each update
/// to a stripe or defers it, accumulating influence marks as it goes.
fn classify(engine: &ClusterEngine, scratch: &mut IngestScratch) {
    let spec = *engine.grid().spec();
    let theta_d = engine.params().theta_d;
    let n = scratch.sorted.len();
    scratch.assign.resize(n, Assign::Deferred);

    // Duplicate-entity detection. In the common case — one tick's batch,
    // every timestamp equal — canonical order sorts duplicates adjacent,
    // so a neighbour comparison replaces the per-entity hash map.
    let single_time = n > 0 && scratch.sorted[0].time == scratch.sorted[n - 1].time;
    if !single_time {
        for i in 0..n {
            let u = scratch.sorted[i];
            *scratch.multi.entry(u.entity).or_insert(0) += 1;
        }
    }

    for i in 0..n {
        let u = scratch.sorted[i];
        let home = engine.home().cluster_of(u.entity);
        let s = scratch.col_shard[spec.cell_of(&u.loc).col as usize];

        let mut interior = if single_time {
            (i == 0 || scratch.sorted[i - 1].entity != u.entity)
                && (i + 1 == n || scratch.sorted[i + 1].entity != u.entity)
        } else {
            scratch.multi[&u.entity] == 1
        };
        if interior {
            // The update's full read/write reach — the Θ_D probe disk plus
            // another Θ_D of centroid-drift headroom — must stay inside
            // the stripe.
            interior = col_span_within(&spec, &scratch.col_shard, s, &u.loc, 2.0 * theta_d);
        }
        if interior {
            if let Some(slot) = home {
                if let Some(c) = engine.store().get(slot) {
                    let r = c.effective_region();
                    interior = col_span_within(
                        &spec,
                        &scratch.col_shard,
                        s,
                        &r.center,
                        r.radius + theta_d,
                    );
                }
            }
        }
        if interior {
            // Influence from earlier (canonically) boundary updates.
            let round = scratch.round;
            interior = scratch.global_marks[spec.linear(spec.cell_of(&u.loc))] != round;
            if interior {
                if let Some(slot) = home {
                    interior = !scratch.deferred_homes.contains(&slot);
                    if interior {
                        if let Some(c) = engine.store().get(slot) {
                            let centroid = c.centroid();
                            interior =
                                scratch.global_marks[spec.linear(spec.cell_of(&centroid))] != round;
                        }
                    }
                }
            }
        }

        if interior {
            scratch.assign[i] = Assign::Shard(s);
        } else {
            scratch.assign[i] = Assign::Deferred;
            scratch.mark_global(&spec, &Circle::new(u.loc, 2.0 * theta_d));
            if let Some(slot) = home {
                scratch.deferred_homes.insert(slot);
                if let Some(c) = engine.store().get(slot) {
                    let r = c.effective_region();
                    scratch.mark_global(&spec, &Circle::new(r.center, r.radius + theta_d));
                }
            }
        }
    }
}

/// Whether the circle of `radius` around `center` spans only columns of
/// stripe `s`. Points clamp to border cells, so reach past the coverage
/// area's edge stays within the edge stripe (there is nothing beyond it).
#[inline]
fn col_span_within(
    spec: &GridSpec,
    col_shard: &[u16],
    s: u16,
    center: &Point,
    radius: f64,
) -> bool {
    let lo = spec.cell_of(&Point::new(center.x - radius, center.y)).col as usize;
    let hi = spec.cell_of(&Point::new(center.x + radius, center.y)).col as usize;
    col_shard[lo] == s && col_shard[hi] == s
}

/// Runs every shard's planner, one scoped thread per shard.
fn plan_shards(engine: &ClusterEngine, scratch: &mut IngestScratch) {
    for (i, a) in scratch.assign.iter().enumerate() {
        if let Assign::Shard(s) = a {
            scratch.shards[*s as usize].items.push(i as u32);
        }
    }
    let shared = Shared {
        engine,
        sorted: &scratch.sorted,
        global_marks: &scratch.global_marks,
        deferred_homes: &scratch.deferred_homes,
        round: scratch.round,
    };
    std::thread::scope(|scope| {
        for sh in scratch.shards.iter_mut() {
            let shared = &shared;
            scope.spawn(move || plan_shard(shared, sh));
        }
    });
}

fn plan_shard(shared: &Shared<'_>, sh: &mut ShardScratch) {
    let items = std::mem::take(&mut sh.items);
    for &i in &items {
        plan_one(shared, sh, i);
    }
    sh.items = items;
}

/// Resolves a cluster through the shard's overlay.
#[inline]
fn resolve<'a>(
    sh: &'a ShardScratch,
    shared: &'a Shared<'_>,
    slot: ClusterSlot,
) -> Option<&'a MovingCluster> {
    match sh.cow_clusters.get(&slot) {
        Some(opt) => opt.as_ref(),
        None => shared.engine.store().get(slot),
    }
}

/// Whether a cell is marked by boundary influence (global) or this shard's
/// own demotions (local).
#[inline]
fn marked(sh: &ShardScratch, shared: &Shared<'_>, linear: u32) -> bool {
    shared.global_marks[linear as usize] == shared.round
        || sh.local_marks[linear as usize] == shared.round
}

/// Whether a pre-batch cluster may be read at all: boundary updates own it
/// (`deferred_homes`), an earlier demotion latched it (`tainted`), or its
/// current centroid sits in marked territory.
#[inline]
fn cluster_unsafe(
    sh: &ShardScratch,
    shared: &Shared<'_>,
    slot: ClusterSlot,
    cluster: &MovingCluster,
) -> bool {
    shared.deferred_homes.contains(&slot)
        || sh.tainted.contains(&slot)
        || marked(sh, shared, shared.linear_of(&cluster.centroid()))
}

/// Plans one interior update against the shard's copy-on-write overlay.
/// No overlay mutation happens until the decision is final, so a demotion
/// leaves the overlay exactly as if the update were never seen.
fn plan_one(shared: &Shared<'_>, sh: &mut ShardScratch, i: u32) {
    let u = shared.sorted[i as usize];
    let p = *shared.engine.params();

    // Home step: refresh, or note the eviction for the join step.
    let home = match sh.cow_home.get(&u.entity) {
        Some(h) => *h,
        None => shared.engine.home().cluster_of(u.entity),
    };
    let mut evicted = None;
    if let Some(slot) = home {
        let Some(cluster) = resolve(sh, shared, slot) else {
            // A home pointing at a dissolved overlay cluster cannot happen
            // (dissolution unassigns); demote rather than trust it.
            demote(shared, sh, i, &u, home);
            return;
        };
        if slot.0 < PROVISIONAL_SLOT_BASE && cluster_unsafe(sh, shared, slot, cluster) {
            demote(shared, sh, i, &u, home);
            return;
        }
        if cluster.can_absorb(&u, p.theta_d, p.theta_s, p.cnloc_tolerance) {
            sh.plans.push((i, PlannedAction::Refresh));
            cow_refresh(sh, shared, slot, &u);
            return;
        }
        evicted = Some(slot);
    }

    // The home's post-eviction state, for its own (re-)candidacy: the
    // sequential walk evicts *before* probing, and eviction changes the
    // cluster's average speed (or dissolves it).
    let evicted_view: Option<MovingCluster> = evicted.map(|slot| {
        let mut c = resolve(sh, shared, slot)
            .expect("home resolved above")
            .clone();
        c.remove_member(u.entity);
        c
    });

    collect_candidates(sh, shared, &u, &p.probe_scope);

    // First passing candidate absorbs — but any unsafe cluster met before
    // the choice poisons the verdict, so demote instead.
    let candidates = std::mem::take(&mut sh.candidates);
    let mut chosen = None;
    let mut poisoned = false;
    for &slot in &candidates {
        let is_evicted_home = evicted == Some(slot);
        let cluster = if is_evicted_home {
            let view = evicted_view.as_ref().expect("view built for the home");
            if view.is_empty() {
                // The sequential walk would have dissolved it pre-probe.
                continue;
            }
            view
        } else {
            match resolve(sh, shared, slot) {
                Some(c) => c,
                None => continue, // dissolved in the overlay
            }
        };
        // Direction short-circuit: `cn_loc` is immutable after founding,
        // so a mismatch is a state-independent "no" — no safety needed.
        if u.cn_loc.distance_sq(&cluster.cn_loc()) > p.cnloc_tolerance * p.cnloc_tolerance {
            continue;
        }
        if !is_evicted_home
            && slot.0 < PROVISIONAL_SLOT_BASE
            && cluster_unsafe(sh, shared, slot, cluster)
        {
            poisoned = true;
            break;
        }
        if slot.0 >= PROVISIONAL_SLOT_BASE && sh.tainted.contains(&slot) {
            // Provisional clusters are shard-private, but a boundary update
            // may still absorb into them at apply time (latched at
            // founding / drift below).
            poisoned = true;
            break;
        }
        if cluster.can_absorb(&u, p.theta_d, p.theta_s, p.cnloc_tolerance) {
            chosen = Some(slot);
            break;
        }
    }
    sh.candidates = candidates;
    if poisoned {
        demote(shared, sh, i, &u, home);
        return;
    }

    // Decision final: record the plan, then replay it on the overlay.
    let target = match chosen {
        Some(slot) if slot.0 >= PROVISIONAL_SLOT_BASE => {
            PlannedTarget::Provisional(slot.0 - PROVISIONAL_SLOT_BASE)
        }
        Some(slot) => PlannedTarget::Existing(slot),
        None => PlannedTarget::Found,
    };
    sh.plans.push((i, PlannedAction::Join { evicted, target }));
    if let Some(slot) = evicted {
        cow_evict(sh, shared, slot, &u);
    }
    match chosen {
        Some(slot) => cow_absorb(sh, shared, slot, &u),
        None => cow_found(sh, shared, &u),
    }
}

/// Demotes update `i` to the fixup pass: its apply-time behaviour is
/// unknowable here, so everything it could touch — the 2Θ_D disk around
/// its location and its (current) home — is fenced off from later updates
/// of this shard. Interior geometry guarantees no other shard can interact.
fn demote(
    shared: &Shared<'_>,
    sh: &mut ShardScratch,
    i: u32,
    u: &LocationUpdate,
    home: Option<ClusterSlot>,
) {
    sh.demoted.push(i);
    let theta_d = shared.engine.params().theta_d;
    mark_local(sh, shared, &Circle::new(u.loc, 2.0 * theta_d));
    if let Some(slot) = home {
        sh.tainted.insert(slot);
        if let Some(c) = resolve(sh, shared, slot) {
            let r = c.effective_region();
            mark_local(sh, shared, &Circle::new(r.center, r.radius + theta_d));
        }
    }
}

#[inline]
fn mark_local(sh: &mut ShardScratch, shared: &Shared<'_>, circle: &Circle) {
    let spec = shared.spec();
    for idx in spec.cells_overlapping_circle(circle) {
        sh.local_marks[spec.linear(idx)] = shared.round;
    }
}

/// The step-1 probe over the overlay grid: deduplicated, in deterministic
/// cell order, exactly like [`crate::grid::ClusterGrid::clusters_within_into`].
fn collect_candidates(
    sh: &mut ShardScratch,
    shared: &Shared<'_>,
    u: &LocationUpdate,
    scope: &ProbeScope,
) {
    let spec = shared.spec();
    sh.candidates.clear();
    sh.probe_round += 1;
    let round = sh.probe_round;
    let visit = |linear: u32,
                 cells: &FxHashMap<u32, Vec<ClusterSlot>>,
                 seen: &mut FxHashMap<ClusterSlot, u64>,
                 out: &mut Vec<ClusterSlot>| {
        let cell: &[ClusterSlot] = match cells.get(&linear) {
            Some(v) => v,
            None => shared.engine.grid().cell_linear(linear),
        };
        for &slot in cell {
            let stamp = seen.entry(slot).or_insert(0);
            if *stamp != round {
                *stamp = round;
                out.push(slot);
            }
        }
    };
    // Split borrows: the closure reads `cow_cells` while filling
    // `probe_seen`/`candidates`.
    let ShardScratch {
        cow_cells,
        probe_seen,
        candidates,
        ..
    } = sh;
    match scope {
        ProbeScope::ThetaDisk => {
            let probe = Circle::new(u.loc, shared.engine.params().theta_d);
            for idx in spec.cells_overlapping_circle(&probe) {
                visit(spec.linear(idx) as u32, cow_cells, probe_seen, candidates);
            }
        }
        ProbeScope::OwnCell => {
            visit(shared.linear_of(&u.loc), cow_cells, probe_seen, candidates);
        }
    }
}

// ---- copy-on-write replays of the engine's mutations --------------------

/// Clones a cluster into the overlay on first write.
fn cow_cluster_mut<'a>(
    sh: &'a mut ShardScratch,
    shared: &Shared<'_>,
    slot: ClusterSlot,
) -> &'a mut MovingCluster {
    sh.cow_clusters
        .entry(slot)
        .or_insert_with(|| {
            Some(
                shared
                    .engine
                    .store()
                    .get(slot)
                    .expect("overlay writes target live clusters")
                    .clone(),
            )
        })
        .as_mut()
        .expect("overlay writes never target dissolved clusters")
}

/// The cluster's current registration through the overlay.
fn overlay_regs<'a>(
    sh: &'a ShardScratch,
    shared: &'a Shared<'_>,
    slot: ClusterSlot,
) -> Option<&'a [u32]> {
    match sh.cow_regs.get(&slot) {
        Some(opt) => opt.as_deref(),
        None => shared.engine.grid().cells_of(slot),
    }
}

/// Clones a grid cell into the overlay on first write.
fn overlay_cell_mut<'a>(
    sh: &'a mut ShardScratch,
    shared: &Shared<'_>,
    linear: u32,
) -> &'a mut Vec<ClusterSlot> {
    sh.cow_cells
        .entry(linear)
        .or_insert_with(|| shared.engine.grid().cell_linear(linear).to_vec())
}

/// Replays [`crate::grid::ClusterGrid::insert`] on the overlay, including
/// its unchanged-cell-set early-out and order-preserving removal.
fn overlay_grid_insert(
    sh: &mut ShardScratch,
    shared: &Shared<'_>,
    slot: ClusterSlot,
    region: &Circle,
) {
    let spec = shared.spec();
    let new_cells: Vec<u32> = spec
        .cells_overlapping_circle(region)
        .map(|idx| spec.linear(idx) as u32)
        .collect();
    if let Some(old) = overlay_regs(sh, shared, slot) {
        if old == new_cells.as_slice() {
            return;
        }
        let old = old.to_vec();
        for linear in old {
            let cell = overlay_cell_mut(sh, shared, linear);
            if let Some(pos) = cell.iter().position(|&c| c == slot) {
                cell.remove(pos);
            }
        }
    }
    for &linear in &new_cells {
        overlay_cell_mut(sh, shared, linear).push(slot);
    }
    sh.cow_regs.insert(slot, Some(new_cells));
}

/// Replays [`crate::grid::ClusterGrid::remove`] on the overlay.
fn overlay_grid_remove(sh: &mut ShardScratch, shared: &Shared<'_>, slot: ClusterSlot) {
    if let Some(old) = overlay_regs(sh, shared, slot) {
        let old = old.to_vec();
        for linear in old {
            let cell = overlay_cell_mut(sh, shared, linear);
            if let Some(pos) = cell.iter().position(|&c| c == slot) {
                cell.remove(pos);
            }
        }
    }
    sh.cow_regs.insert(slot, None);
}

/// Replays [`ClusterEngine`]'s refresh branch on the overlay.
fn cow_refresh(sh: &mut ShardScratch, shared: &Shared<'_>, slot: ClusterSlot, u: &LocationUpdate) {
    let params = *shared.engine.params();
    let cluster = cow_cluster_mut(sh, shared, slot);
    let shed = ClusterEngine::shed_decision(&params, cluster, u);
    let region_before = cluster.effective_region();
    cluster.update_member(u, shed);
    let region = cluster.effective_region();
    if region != region_before {
        overlay_grid_insert(sh, shared, slot, &region);
    }
}

/// Replays the engine's eviction (member removal + possible dissolution)
/// on the overlay.
fn cow_evict(sh: &mut ShardScratch, shared: &Shared<'_>, slot: ClusterSlot, u: &LocationUpdate) {
    let cluster = cow_cluster_mut(sh, shared, slot);
    cluster.remove_member(u.entity);
    let emptied = cluster.is_empty();
    sh.cow_home.insert(u.entity, None);
    if emptied {
        sh.cow_clusters.insert(slot, None);
        overlay_grid_remove(sh, shared, slot);
    }
}

/// Replays the engine's absorb branch on the overlay, latching the taint
/// flag if the centroid drifted into marked territory (a boundary update
/// may mutate this cluster at apply time).
fn cow_absorb(sh: &mut ShardScratch, shared: &Shared<'_>, slot: ClusterSlot, u: &LocationUpdate) {
    let params = *shared.engine.params();
    let cluster = cow_cluster_mut(sh, shared, slot);
    let shed = ClusterEngine::shed_decision(&params, cluster, u);
    cluster.absorb(u, shed);
    let region = cluster.effective_region();
    let centroid = cluster.centroid();
    overlay_grid_insert(sh, shared, slot, &region);
    sh.cow_home.insert(u.entity, Some(slot));
    if marked(sh, shared, shared.linear_of(&centroid)) {
        sh.tainted.insert(slot);
    }
}

/// Replays the engine's founding branch on the overlay under a provisional
/// slot handle; the apply pass assigns the real slot. The cloned cluster
/// carries a placeholder [`ClusterId`] — nothing in planning reads it, and
/// the apply pass founds the real cluster with the real id.
fn cow_found(sh: &mut ShardScratch, shared: &Shared<'_>, u: &LocationUpdate) {
    let params = shared.engine.params();
    let slot = ClusterSlot(PROVISIONAL_SLOT_BASE + sh.founds);
    sh.founds += 1;
    let shed = params.shedding.is_active() && params.shedding.sheds_at(0.0, params.theta_d);
    let cluster = MovingCluster::found(ClusterId(u64::MAX), u, shed);
    let region = cluster.effective_region();
    sh.cow_clusters.insert(slot, Some(cluster));
    overlay_grid_insert(sh, shared, slot, &region);
    sh.cow_home.insert(u.entity, Some(slot));
    if marked(sh, shared, shared.linear_of(&u.loc)) {
        // A canonically later boundary update may absorb into this cluster
        // at apply time; later reads of it in this shard must demote.
        sh.tainted.insert(slot);
    }
}

/// The sequential fixup pass: walks the full batch in canonical order,
/// replaying planned decisions and fully processing boundary updates.
/// Returns the demoted count.
fn apply_plans(engine: &mut ClusterEngine, scratch: &mut IngestScratch) -> u64 {
    scratch.actions.resize(scratch.sorted.len(), None);
    let mut demoted = 0u64;
    for (s, sh) in scratch.shards.iter().enumerate() {
        for &(i, action) in &sh.plans {
            scratch.actions[i as usize] = Some((s as u16, action));
        }
        demoted += sh.demoted.len() as u64;
    }
    for i in 0..scratch.sorted.len() {
        let u = scratch.sorted[i];
        match scratch.actions[i] {
            Some((s, action)) => {
                let resolved = resolve_action(action, &scratch.founds_real[s as usize]);
                if let Some(new_slot) = engine.apply_planned(&u, resolved) {
                    scratch.founds_real[s as usize].push(new_slot);
                }
            }
            None => engine.process_update(&u),
        }
    }
    demoted
}

/// Resolves a shard's provisional founding handles to the real slots the
/// apply pass assigned so far (within a shard, foundings replay in plan
/// order).
fn resolve_action(action: PlannedAction, founds: &[ClusterSlot]) -> ResolvedAction {
    match action {
        PlannedAction::Refresh => ResolvedAction::Refresh,
        PlannedAction::Join { evicted, target } => ResolvedAction::Join {
            evicted,
            target: match target {
                PlannedTarget::Existing(slot) => Some(slot),
                PlannedTarget::Provisional(k) => Some(founds[k as usize]),
                PlannedTarget::Found => None,
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_motion::{ObjectAttrs, ObjectId};
    use scuba_spatial::Rect;

    use crate::params::ScubaParams;

    fn update(id: u64, x: f64, y: f64, time: u64) -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            time,
            5.0,
            Point::new(1000.0, 500.0),
            ObjectAttrs::default(),
        )
    }

    #[test]
    fn stripes_partition_all_columns() {
        let params = ScubaParams::default().with_grid_cells(10);
        let engine = ClusterEngine::new(params, Rect::square(1000.0));
        let mut scratch = IngestScratch::default();
        scratch.begin(engine.grid().spec(), 4);
        assert_eq!(scratch.col_shard.len(), 10);
        assert_eq!(scratch.col_shard.first(), Some(&0));
        assert_eq!(scratch.col_shard.last(), Some(&3));
        let mut sorted = scratch.col_shard.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, scratch.col_shard, "stripes are contiguous");
    }

    #[test]
    fn classification_defers_duplicates_and_boundary_disks() {
        let params = ScubaParams::default().with_grid_cells(10);
        let engine = ClusterEngine::new(params, Rect::square(1000.0));
        let mut scratch = IngestScratch::default();
        scratch.begin(engine.grid().spec(), 2);
        // Deep interior of the left stripe (stripe edge at x = 500; the
        // 2Θ_D = 200 disk around x = 250 stays well inside), a duplicate
        // entity, and one straddling the stripe boundary.
        scratch.sorted = vec![
            update(1, 250.0, 500.0, 0),
            update(2, 480.0, 500.0, 0),
            update(3, 250.0, 100.0, 0),
            update(3, 260.0, 100.0, 1),
        ];
        classify(&engine, &mut scratch);
        assert_eq!(scratch.assign[0], Assign::Shard(0), "interior update");
        assert_eq!(scratch.assign[1], Assign::Deferred, "disk crosses stripes");
        assert_eq!(scratch.assign[2], Assign::Deferred, "duplicate entity");
        assert_eq!(scratch.assign[3], Assign::Deferred, "duplicate entity");
    }

    #[test]
    fn boundary_marks_defer_nearby_interiors() {
        let params = ScubaParams::default().with_grid_cells(10);
        let engine = ClusterEngine::new(params, Rect::square(1000.0));
        let mut scratch = IngestScratch::default();
        scratch.begin(engine.grid().spec(), 2);
        // The duplicate entity at (250, 500) is boundary and marks its
        // 2Θ_D disk; the later interior-looking update at (250, 450) sits
        // inside those marks and must defer too.
        scratch.sorted = vec![
            update(1, 250.0, 500.0, 0),
            update(1, 250.0, 500.0, 1),
            update(2, 250.0, 450.0, 2),
            update(3, 250.0, 20.0, 2),
        ];
        classify(&engine, &mut scratch);
        assert_eq!(scratch.assign[2], Assign::Deferred, "inside boundary marks");
        assert_eq!(
            scratch.assign[3],
            Assign::Shard(0),
            "far from the marks: stays interior"
        );
    }

    #[test]
    fn provisional_handles_resolve_in_founding_order() {
        let founds = vec![ClusterSlot(7), ClusterSlot(9)];
        let resolved = resolve_action(
            PlannedAction::Join {
                evicted: None,
                target: PlannedTarget::Provisional(1),
            },
            &founds,
        );
        match resolved {
            ResolvedAction::Join { target, .. } => assert_eq!(target, Some(ClusterSlot(9))),
            other => panic!("unexpected {other:?}"),
        }
    }
}
