//! Result-accuracy accounting (paper §6.6).
//!
//! "To measure accuracy, we compare the results outputted by SCUBA when
//! η = 0% (no load shedding) to the ones output when η > 0%, calculating
//! the number of false-negative and false-positive results."
//!
//! We report the standard derived measures; the single "accuracy" number is
//! the Jaccard similarity of the two result sets
//! (`TP / (TP + FP + FN)`), which penalises both kinds of error the way the
//! paper's accuracy percentages behave (1.0 when identical, decreasing with
//! either error kind).

use serde::{Deserialize, Serialize};

use scuba_stream::QueryMatch;

/// Comparison of a measured result set against ground truth.
///
/// # Examples
///
/// ```
/// use scuba::AccuracyReport;
/// use scuba_motion::{ObjectId, QueryId};
/// use scuba_stream::QueryMatch;
///
/// let m = |q, o| QueryMatch::new(QueryId(q), ObjectId(o));
/// let truth = [m(1, 1), m(1, 2)];
/// let measured = [m(1, 2), m(2, 9)];
/// let report = AccuracyReport::compare(&truth, &measured);
/// assert_eq!(report.true_positives, 1);
/// assert_eq!(report.false_positives, 1);
/// assert_eq!(report.false_negatives, 1);
/// assert!((report.accuracy() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Matches present in both sets.
    pub true_positives: usize,
    /// Matches reported but not in the truth.
    pub false_positives: usize,
    /// Truth matches that were missed.
    pub false_negatives: usize,
}

impl AccuracyReport {
    /// Compares `measured` against `truth`. Both slices may be unsorted and
    /// may contain duplicates; comparison is set-based.
    pub fn compare(truth: &[QueryMatch], measured: &[QueryMatch]) -> Self {
        let mut t: Vec<QueryMatch> = truth.to_vec();
        t.sort_unstable();
        t.dedup();
        let mut m: Vec<QueryMatch> = measured.to_vec();
        m.sort_unstable();
        m.dedup();

        let mut report = AccuracyReport::default();
        let (mut i, mut j) = (0usize, 0usize);
        while i < t.len() && j < m.len() {
            match t[i].cmp(&m[j]) {
                std::cmp::Ordering::Equal => {
                    report.true_positives += 1;
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    report.false_negatives += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    report.false_positives += 1;
                    j += 1;
                }
            }
        }
        report.false_negatives += t.len() - i;
        report.false_positives += m.len() - j;
        report
    }

    /// Jaccard accuracy in `[0, 1]`: `TP / (TP + FP + FN)`; `1.0` when both
    /// sets are empty.
    pub fn accuracy(&self) -> f64 {
        let denom = self.true_positives + self.false_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Precision: `TP / (TP + FP)`; `1.0` when nothing was reported.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall: `TP / (TP + FN)`; `1.0` when the truth is empty.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Merges two reports (e.g. accumulated over evaluation intervals).
    pub fn merge(&self, other: &AccuracyReport) -> AccuracyReport {
        AccuracyReport {
            true_positives: self.true_positives + other.true_positives,
            false_positives: self.false_positives + other.false_positives,
            false_negatives: self.false_negatives + other.false_negatives,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_motion::{ObjectId, QueryId};

    fn m(q: u64, o: u64) -> QueryMatch {
        QueryMatch::new(QueryId(q), ObjectId(o))
    }

    #[test]
    fn identical_sets_are_perfect() {
        let truth = vec![m(1, 1), m(1, 2), m(2, 1)];
        let r = AccuracyReport::compare(&truth, &truth);
        assert_eq!(r.true_positives, 3);
        assert_eq!(r.false_positives, 0);
        assert_eq!(r.false_negatives, 0);
        assert_eq!(r.accuracy(), 1.0);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
    }

    #[test]
    fn counts_both_error_kinds() {
        let truth = vec![m(1, 1), m(1, 2)];
        let measured = vec![m(1, 2), m(2, 9)];
        let r = AccuracyReport::compare(&truth, &measured);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.false_positives, 1); // (2,9)
        assert_eq!(r.false_negatives, 1); // (1,1)
        assert!((r.accuracy() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.precision() - 0.5).abs() < 1e-12);
        assert!((r.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unsorted_and_duplicated_inputs() {
        let truth = vec![m(2, 1), m(1, 1), m(1, 1)];
        let measured = vec![m(1, 1), m(2, 1), m(2, 1)];
        let r = AccuracyReport::compare(&truth, &measured);
        assert_eq!(r.true_positives, 2);
        assert_eq!(r.false_positives, 0);
        assert_eq!(r.false_negatives, 0);
    }

    #[test]
    fn empty_sets() {
        let r = AccuracyReport::compare(&[], &[]);
        assert_eq!(r.accuracy(), 1.0);
        let r = AccuracyReport::compare(&[m(1, 1)], &[]);
        assert_eq!(r.false_negatives, 1);
        assert_eq!(r.accuracy(), 0.0);
        assert_eq!(r.precision(), 1.0); // reported nothing wrong
        let r = AccuracyReport::compare(&[], &[m(1, 1)]);
        assert_eq!(r.false_positives, 1);
        assert_eq!(r.accuracy(), 0.0);
        assert_eq!(r.recall(), 1.0); // missed nothing
    }

    #[test]
    fn merge_accumulates() {
        let a = AccuracyReport {
            true_positives: 3,
            false_positives: 1,
            false_negatives: 0,
        };
        let b = AccuracyReport {
            true_positives: 2,
            false_positives: 0,
            false_negatives: 2,
        };
        let merged = a.merge(&b);
        assert_eq!(merged.true_positives, 5);
        assert_eq!(merged.false_positives, 1);
        assert_eq!(merged.false_negatives, 2);
        assert!((merged.accuracy() - 5.0 / 8.0).abs() < 1e-12);
    }
}
