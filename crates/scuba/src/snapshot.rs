//! Engine checkpointing: capture the full clustering state as a plain,
//! JSON-safe snapshot and restore it later.
//!
//! A deployed continuous-query engine must survive restarts without
//! re-learning its clusters from scratch (the incremental clusterer's state
//! *is* the summary of everything it has seen). The snapshot stores
//! clusters, members (with their lazy-transformation drift marks), the
//! attribute tables and the id counter; the grid index and home map are
//! derived state and are rebuilt on restore.
//!
//! The format avoids maps with non-string keys, so `serde_json` (and any
//! other self-describing format) works directly.

use serde::{Deserialize, Serialize};

use scuba_motion::{EntityRef, ObjectAttrs, ObjectId, QueryAttrs, QueryId};
use scuba_spatial::{Point, Polar, Rect, Time, Vector};

use crate::cluster::{ClusterId, MovingCluster};
use crate::clustering::ClusterEngine;
use crate::params::ScubaParams;
use crate::tables::{ObjectsTable, QueriesTable};

/// Why a snapshot (or a durable checkpoint wrapping one) could not be
/// loaded. Typed so callers can distinguish "stale format" from "bit rot"
/// from "internally inconsistent" instead of pattern-matching strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The payload was not valid snapshot JSON.
    Json(String),
    /// The snapshot parsed but describes an impossible engine state
    /// (duplicate cluster ids, an entity in two clusters, invalid params,
    /// ids past the counter, …).
    Inconsistent(String),
    /// A checkpoint file did not start with the checkpoint magic bytes.
    NotACheckpoint,
    /// A checkpoint file was written by an unsupported format version.
    VersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// Newest version this build understands.
        supported: u32,
    },
    /// The payload checksum did not match the header — bit rot or a torn
    /// write that survived the length check.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u32,
        /// Checksum recomputed over the payload.
        computed: u32,
    },
    /// The file ended before the length declared in its header.
    Truncated,
    /// A sharded checkpoint holds a different stripe count than the
    /// operator being restored.
    ShardMismatch {
        /// Stripes found in the checkpoint.
        found: usize,
        /// Stripes the operator expects.
        expected: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Json(e) => write!(f, "bad snapshot JSON: {e}"),
            SnapshotError::Inconsistent(e) => write!(f, "inconsistent snapshot: {e}"),
            SnapshotError::NotACheckpoint => write!(f, "not a checkpoint file (bad magic)"),
            SnapshotError::VersionMismatch { found, supported } => write!(
                f,
                "unsupported checkpoint version {found} (this build supports up to {supported})"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: header says {stored:#010x}, payload hashes to {computed:#010x}"
            ),
            SnapshotError::Truncated => write!(f, "checkpoint truncated before its declared length"),
            SnapshotError::ShardMismatch { found, expected } => write!(
                f,
                "checkpoint has {found} stripe snapshots but the operator expects {expected}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One member in snapshot form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberSnapshot {
    /// The entity.
    pub entity: EntityRef,
    /// Reported speed at its last update.
    pub speed: f64,
    /// Relative position, `None` when load-shed.
    pub rel: Option<Polar>,
    /// Time of its last update.
    pub last_seen: Time,
    /// Cluster drift at position capture.
    pub drift_mark: Vector,
}

/// One cluster in snapshot form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Cluster id.
    pub cid: u64,
    /// Centroid position.
    pub centroid: Point,
    /// Covering radius.
    pub radius: f64,
    /// Destination connection node.
    pub cn_loc: Point,
    /// Average member speed.
    pub ave_speed: f64,
    /// Creation time.
    pub created_at: Time,
    /// Widest query reach among members.
    pub max_query_radius: f64,
    /// Accumulated transformation vector.
    pub total_drift: Vector,
    /// The members.
    pub members: Vec<MemberSnapshot>,
}

/// A complete, restorable engine state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Engine parameters.
    pub params: ScubaParams,
    /// Coverage area of the grid.
    pub area: Rect,
    /// Next cluster id to assign.
    pub next_cluster_id: u64,
    /// Updates processed so far (informational).
    pub updates_processed: u64,
    /// All live clusters.
    pub clusters: Vec<ClusterSnapshot>,
    /// Object attribute table.
    pub objects: Vec<(ObjectId, ObjectAttrs)>,
    /// Query attribute table.
    pub queries: Vec<(QueryId, QueryAttrs)>,
}

impl EngineSnapshot {
    /// Captures the engine's state. Deterministically ordered so equal
    /// states produce byte-equal snapshots.
    pub fn capture(engine: &ClusterEngine) -> Self {
        let mut clusters: Vec<ClusterSnapshot> = engine
            .clusters()
            .values()
            .map(|c| ClusterSnapshot {
                cid: c.cid.0,
                centroid: c.centroid(),
                radius: c.radius(),
                cn_loc: c.cn_loc(),
                ave_speed: c.ave_speed(),
                created_at: c.created_at(),
                max_query_radius: c.max_query_radius(),
                total_drift: c.total_drift(),
                members: c
                    .members()
                    .iter()
                    .map(|m| MemberSnapshot {
                        entity: m.entity,
                        speed: m.speed,
                        rel: m.rel,
                        last_seen: m.last_seen,
                        drift_mark: m.drift_mark(),
                    })
                    .collect(),
            })
            .collect();
        clusters.sort_by_key(|c| c.cid);

        let mut objects: Vec<(ObjectId, ObjectAttrs)> =
            engine.objects().iter().map(|(id, a)| (id, *a)).collect();
        objects.sort_by_key(|(id, _)| *id);
        let mut queries: Vec<(QueryId, QueryAttrs)> =
            engine.queries().iter().map(|(id, a)| (id, *a)).collect();
        queries.sort_by_key(|(id, _)| *id);

        EngineSnapshot {
            params: *engine.params(),
            area: engine.area(),
            next_cluster_id: engine.next_cluster_id(),
            updates_processed: engine.updates_processed(),
            clusters,
            objects,
            queries,
        }
    }

    /// Restores an engine from this snapshot, rebuilding the grid index,
    /// the home map and per-cluster member indexes. Fails on internally
    /// inconsistent snapshots (duplicate cluster ids, an entity in two
    /// clusters, ids past the counter).
    ///
    /// Operator-level transients are *not* part of a snapshot: wrapping
    /// the restored engine via [`crate::ScubaOperator::from_engine`]
    /// recreates the validator and overload controller fresh from the
    /// restored params (empty dead-letter buffer, ladder at `None`), and
    /// the join cache starts cold. Only clustering state survives a
    /// crash, matching what the paper's engine would rebuild.
    pub fn restore(&self) -> Result<ClusterEngine, SnapshotError> {
        let clusters: Vec<MovingCluster> = self
            .clusters
            .iter()
            .map(|c| {
                let members = c
                    .members
                    .iter()
                    .map(|m| {
                        MovingCluster::member_from_parts(
                            m.entity,
                            m.speed,
                            m.rel,
                            m.last_seen,
                            m.drift_mark,
                        )
                    })
                    .collect();
                MovingCluster::from_parts(
                    ClusterId(c.cid),
                    c.centroid,
                    c.radius,
                    c.cn_loc,
                    c.ave_speed,
                    c.created_at,
                    c.max_query_radius,
                    c.total_drift,
                    members,
                )
            })
            .collect();

        let mut objects = ObjectsTable::new();
        for (id, attrs) in &self.objects {
            objects.upsert(*id, *attrs);
        }
        let mut queries = QueriesTable::new();
        for (id, attrs) in &self.queries {
            queries.upsert(*id, *attrs);
        }

        ClusterEngine::restore(
            self.params,
            self.area,
            clusters,
            objects,
            queries,
            self.next_cluster_id,
            self.updates_processed,
        )
        .map_err(SnapshotError::Inconsistent)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialises")
    }

    /// Parses a snapshot from JSON.
    pub fn from_json(json: &str) -> Result<Self, SnapshotError> {
        serde_json::from_str(json).map_err(|e| SnapshotError::Json(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScubaOperator;
    use scuba_motion::{LocationUpdate, ObjectClass, QuerySpec};
    use scuba_stream::ContinuousOperator;

    const CN: Point = Point {
        x: 1000.0,
        y: 500.0,
    };

    fn busy_engine() -> ClusterEngine {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        for i in 0..60u64 {
            let x = 50.0 + (i * 37 % 900) as f64;
            let y = 50.0 + (i * 61 % 900) as f64;
            if i % 2 == 0 {
                e.process_update(&LocationUpdate::object(
                    ObjectId(i),
                    Point::new(x, y),
                    i % 5,
                    20.0 + (i % 3) as f64,
                    CN,
                    ObjectAttrs {
                        class: ObjectClass::ALL[(i % 6) as usize],
                    },
                ));
            } else {
                e.process_update(&LocationUpdate::query(
                    QueryId(i),
                    Point::new(x, y),
                    i % 5,
                    20.0 + (i % 3) as f64,
                    CN,
                    QueryAttrs {
                        spec: QuerySpec::square_range(10.0 + (i % 4) as f64),
                    },
                ));
            }
        }
        e
    }

    #[test]
    fn capture_restore_roundtrip_preserves_everything() {
        let original = busy_engine();
        let snapshot = EngineSnapshot::capture(&original);
        let restored = snapshot.restore().expect("restores");
        restored.check_invariants();

        assert_eq!(restored.cluster_count(), original.cluster_count());
        assert_eq!(restored.home().len(), original.home().len());
        assert_eq!(restored.objects().len(), original.objects().len());
        assert_eq!(restored.queries().len(), original.queries().len());
        assert_eq!(restored.next_cluster_id(), original.next_cluster_id());
        assert_eq!(restored.updates_processed(), original.updates_processed());
        // Capturing again yields an identical snapshot — nothing lost.
        assert_eq!(EngineSnapshot::capture(&restored), snapshot);
    }

    #[test]
    fn restored_engine_produces_identical_results() {
        use crate::join::JoinContext;
        let original = busy_engine();
        let restored = EngineSnapshot::capture(&original).restore().unwrap();
        let run = |e: &ClusterEngine| {
            JoinContext {
                store: e.store(),
                grid: e.grid(),
                queries: e.queries(),
                shedding: e.params().shedding,
                theta_d: e.params().theta_d,
                member_filter: e.params().member_filter,
                parallelism: e.params().parallelism,
                kernel: e.params().kernel,
            }
            .run()
            .results
        };
        assert_eq!(run(&original), run(&restored));
    }

    /// An adaptive-index engine snapshots like any other: `params.index`
    /// rides along, restore rebuilds the adaptive grid from the restored
    /// params, and (after a re-balance on both sides) the refined index
    /// answers the join identically.
    #[test]
    fn adaptive_engine_roundtrips_with_its_index() {
        use crate::index::IndexKind;
        let params = ScubaParams::default()
            .with_index(IndexKind::Adaptive)
            .with_split_merge(8, 2);
        let mut original = ClusterEngine::new(params, Rect::square(1000.0));
        for i in 0..60u64 {
            // A deliberate hotspot so the adaptive grid actually refines.
            let x = 450.0 + (i * 7 % 100) as f64;
            let y = 450.0 + (i * 13 % 100) as f64;
            original.process_update(&LocationUpdate::object(
                ObjectId(i),
                Point::new(x, y),
                0,
                20.0 + (i % 3) as f64,
                CN,
                ObjectAttrs::default(),
            ));
        }
        let snapshot = EngineSnapshot::capture(&original);
        let mut restored = snapshot.restore().expect("restores");
        assert_eq!(restored.params().index, IndexKind::Adaptive);
        restored.check_invariants();
        original.rebalance_index();
        restored.rebalance_index();

        use crate::join::JoinContext;
        let run = |e: &ClusterEngine| {
            JoinContext {
                store: e.store(),
                grid: e.grid(),
                queries: e.queries(),
                shedding: e.params().shedding,
                theta_d: e.params().theta_d,
                member_filter: e.params().member_filter,
                parallelism: e.params().parallelism,
                kernel: e.params().kernel,
            }
            .run()
            .results
        };
        assert_eq!(run(&original), run(&restored));
        // Capturing again yields an identical snapshot — nothing lost.
        assert_eq!(EngineSnapshot::capture(&restored), snapshot);
    }

    #[test]
    fn json_roundtrip() {
        let snapshot = EngineSnapshot::capture(&busy_engine());
        let parsed = EngineSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(parsed, snapshot);
        parsed.restore().unwrap().check_invariants();
    }

    #[test]
    fn restored_engine_keeps_running() {
        let original = busy_engine();
        let snapshot = EngineSnapshot::capture(&original);
        let restored = snapshot.restore().unwrap();

        // Wrap both in operators and continue the stream identically.
        let mut a = ScubaOperator::from_engine(original);
        let mut b = ScubaOperator::from_engine(restored);
        for i in 100..140u64 {
            let u = LocationUpdate::object(
                ObjectId(i),
                Point::new((i * 13 % 900) as f64 + 50.0, 500.0),
                6,
                25.0,
                CN,
                ObjectAttrs::default(),
            );
            a.process_update(&u);
            b.process_update(&u);
        }
        assert_eq!(a.evaluate(8).results, b.evaluate(8).results);
        a.engine().check_invariants();
        b.engine().check_invariants();
    }

    #[test]
    fn corrupt_snapshots_rejected() {
        let mut snapshot = EngineSnapshot::capture(&busy_engine());
        // Duplicate a cluster id.
        let dup = snapshot.clusters[0].clone();
        snapshot.clusters.push(dup);
        assert!(matches!(
            snapshot.restore(),
            Err(SnapshotError::Inconsistent(_))
        ));

        let mut snapshot = EngineSnapshot::capture(&busy_engine());
        snapshot.next_cluster_id = 0; // ids no longer below the counter
        if !snapshot.clusters.is_empty() {
            assert!(matches!(
                snapshot.restore(),
                Err(SnapshotError::Inconsistent(_))
            ));
        }

        assert!(matches!(
            EngineSnapshot::from_json("{not json"),
            Err(SnapshotError::Json(_))
        ));
    }

    #[test]
    fn snapshot_errors_implement_std_error() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(SnapshotError::Json("eof".into())),
            Box::new(SnapshotError::NotACheckpoint),
            Box::new(SnapshotError::VersionMismatch {
                found: 9,
                supported: 1,
            }),
            Box::new(SnapshotError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            }),
            Box::new(SnapshotError::Truncated),
            Box::new(SnapshotError::ShardMismatch {
                found: 2,
                expected: 4,
            }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn empty_engine_roundtrips() {
        let e = ClusterEngine::new(ScubaParams::default(), Rect::square(10.0));
        let restored = EngineSnapshot::capture(&e).restore().unwrap();
        assert_eq!(restored.cluster_count(), 0);
        restored.check_invariants();
    }
}
