//! Moving clusters (paper §3.1).
//!
//! A moving cluster abstracts a set of moving objects and queries that
//! travel closely together: it records a centroid, a covering radius, the
//! shared destination connection node, the average speed, and its members'
//! positions *relative to the centroid* in polar coordinates.
//!
//! Two kinds of centroid movement must be distinguished:
//!
//! * **rigid relocation** (post-join maintenance): the whole cluster
//!   advances along its velocity vector; members implicitly translate with
//!   the centroid, so their relative coordinates stay valid;
//! * **membership adjustment**: absorbing a member pulls the centroid
//!   toward it while existing members do *not* move. The paper handles this
//!   with a per-cluster *transformation vector* applied lazily; we implement
//!   it exactly: the cluster accumulates `total_drift`, each member stores
//!   the drift at capture time, and materialising a member's absolute
//!   position subtracts the drift accumulated since its capture.
//!
//! Invariant maintained throughout: every un-shed member's materialised
//! position lies within `radius` of the centroid (checked by property
//! tests). The radius never shrinks while members remain — a conservative
//! over-approximation that keeps the join-between filter sound.

use serde::{Deserialize, Serialize};

use scuba_motion::{EntityRef, LocationUpdate};
use scuba_spatial::{Circle, FxHashMap, Point, Polar, Time, Vector};

/// Identifier of a moving cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClusterId(pub u64);

/// One cluster member.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Member {
    /// The entity this member represents.
    pub entity: EntityRef,
    /// The entity's reported speed at its last update.
    pub speed: f64,
    /// Relative position (polar, pole at the centroid at capture time), or
    /// `None` when the position was load-shed (§5).
    pub rel: Option<Polar>,
    /// Timestamp of the entity's most recent update (drives TTL eviction).
    pub last_seen: Time,
    /// Value of the cluster's `total_drift` when `rel` was captured.
    drift_mark: Vector,
}

impl Member {
    /// Whether this member's position was load-shed.
    #[inline]
    pub fn is_shed(&self) -> bool {
        self.rel.is_none()
    }

    /// The drift mark captured with this member's relative position
    /// (snapshot support; see [`MovingCluster::from_parts`]).
    #[inline]
    pub fn drift_mark(&self) -> Vector {
        self.drift_mark
    }
}

/// A moving cluster of objects and queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovingCluster {
    /// Cluster id (`m.cid`).
    pub cid: ClusterId,
    centroid: Point,
    radius: f64,
    cn_loc: Point,
    ave_speed: f64,
    members: Vec<Member>,
    member_index: FxHashMap<EntityRef, u32>,
    object_count: usize,
    query_count: usize,
    total_drift: Vector,
    created_at: Time,
    /// Largest bounding radius among query members' range specs. Never
    /// shrinks (conservative under member removal). See
    /// [`MovingCluster::effective_region`].
    max_query_radius: f64,
}

impl MovingCluster {
    /// Creates a single-member cluster from its founding update: "the
    /// object forms its own cluster, with the centroid at the current
    /// location of the object, and the radius = 0" (§3.2 step 2).
    ///
    /// `shed` discards the founder's relative position immediately (it is
    /// at the pole, so any active nucleus sheds it).
    pub fn found(cid: ClusterId, founder: &LocationUpdate, shed: bool) -> Self {
        let mut cluster = MovingCluster {
            cid,
            centroid: founder.loc,
            radius: 0.0,
            cn_loc: founder.cn_loc,
            ave_speed: founder.speed,
            members: Vec::with_capacity(4),
            member_index: FxHashMap::default(),
            object_count: 0,
            query_count: 0,
            total_drift: Vector::ZERO,
            created_at: founder.time,
            max_query_radius: 0.0,
        };
        cluster.note_query_radius(founder);
        cluster.push_member(
            founder.entity,
            founder.speed,
            if shed { None } else { Some(Polar::AT_POLE) },
            founder.time,
        );
        cluster
    }

    // ---- accessors ---------------------------------------------------------

    /// Current centroid position (`m.loc_t`).
    #[inline]
    pub fn centroid(&self) -> Point {
        self.centroid
    }

    /// Covering radius (`m.r`).
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The circular region of the cluster.
    #[inline]
    pub fn region(&self) -> Circle {
        Circle::new(self.centroid, self.radius)
    }

    /// Largest bounding radius among query members' ranges.
    #[inline]
    pub fn max_query_radius(&self) -> f64 {
        self.max_query_radius
    }

    /// The cluster region inflated by the reach of its widest range query.
    ///
    /// The paper's Algorithm 2 tests plain region overlap and claims that
    /// pruned pairs "are guaranteed to not join at an individual level" —
    /// but a query's *range* extends beyond the cluster circle that covers
    /// only the query's position, so the plain test can prune real results.
    /// Registering clusters in the grid by this inflated region (and using
    /// it on the query side of the overlap test) restores the guarantee.
    #[inline]
    pub fn effective_region(&self) -> Circle {
        Circle::new(self.centroid, self.radius + self.max_query_radius)
    }

    /// The destination connection node (`m.cnloc`).
    #[inline]
    pub fn cn_loc(&self) -> Point {
        self.cn_loc
    }

    /// Average member speed (`m.avespeed`).
    #[inline]
    pub fn ave_speed(&self) -> f64 {
        self.ave_speed
    }

    /// Number of members (`m.n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of object members (`|m.oids|`).
    #[inline]
    pub fn object_count(&self) -> usize {
        self.object_count
    }

    /// Number of query members (`|m.qids|`).
    #[inline]
    pub fn query_count(&self) -> usize {
        self.query_count
    }

    /// Whether the cluster contains both objects and queries — the
    /// precondition for a same-cluster join-within (Algorithm 1, step 14).
    #[inline]
    pub fn is_mixed(&self) -> bool {
        self.object_count > 0 && self.query_count > 0
    }

    /// Creation time of the cluster.
    #[inline]
    pub fn created_at(&self) -> Time {
        self.created_at
    }

    /// The members.
    #[inline]
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// Whether `entity` is a member.
    #[inline]
    pub fn contains(&self, entity: EntityRef) -> bool {
        self.member_index.contains_key(&entity)
    }

    /// The member record for `entity`.
    pub fn member(&self, entity: EntityRef) -> Option<&Member> {
        self.member_index
            .get(&entity)
            .map(|&i| &self.members[i as usize])
    }

    /// Materialises a member's absolute position by applying the lazy
    /// transformation (centroid + relative offset − drift accumulated since
    /// capture). `None` for shed members.
    pub fn member_position(&self, member: &Member) -> Option<Point> {
        member
            .rel
            .map(|rel| self.centroid + rel.offset() - (self.total_drift - member.drift_mark))
    }

    /// The cluster's velocity vector: toward its destination node at the
    /// average member speed (zero once the destination is reached).
    pub fn velocity(&self) -> Vector {
        (self.cn_loc - self.centroid).with_length(self.ave_speed)
    }

    /// Expiration time (`m.exptime`): "the time when the cluster reaches
    /// the m.cnloc travelling at m.avespeed" (§3.1). `None` for clusters
    /// that cannot make progress (zero average speed away from the node).
    pub fn expiration_time(&self, now: Time) -> Option<f64> {
        let dist = self.centroid.distance(&self.cn_loc);
        if dist == 0.0 {
            return Some(now as f64);
        }
        if self.ave_speed <= 0.0 {
            return None;
        }
        Some(now as f64 + dist / self.ave_speed)
    }

    /// Whether advancing by `dt` time units would carry the cluster past
    /// its destination node — the post-join dissolution criterion ("If at
    /// time T+Δ the cluster passes its destination node, the cluster gets
    /// dissolved", §4.2).
    pub fn passes_destination_within(&self, dt: f64) -> bool {
        self.centroid.distance(&self.cn_loc) <= self.ave_speed * dt
    }

    // ---- membership --------------------------------------------------------

    /// Checks the three §3.2 step-3 conditions for absorbing an update:
    /// same direction, within Θ_D of the centroid, speed within Θ_S of the
    /// cluster average.
    pub fn can_absorb(
        &self,
        update: &LocationUpdate,
        theta_d: f64,
        theta_s: f64,
        cnloc_tolerance: f64,
    ) -> bool {
        // 1. Same direction: identical destination connection node.
        if update.cn_loc.distance_sq(&self.cn_loc) > cnloc_tolerance * cnloc_tolerance {
            return false;
        }
        // 2. Distance: ||o.loc − m.loc|| ≤ Θ_D.
        if update.loc.distance_sq(&self.centroid) > theta_d * theta_d {
            return false;
        }
        // 3. Speed: |o.speed − m.avespeed| ≤ Θ_S.
        (update.speed - self.ave_speed).abs() <= theta_s
    }

    /// Absorbs an update as a new member (§3.2 step 4): the centroid is
    /// pulled toward the new position, the average speed is recomputed, the
    /// radius grows if needed and the member count increments.
    ///
    /// `shed` discards the new member's relative position (load shedding at
    /// admission, §5).
    ///
    /// # Panics
    ///
    /// Panics if the entity is already a member (callers route updates from
    /// existing members through [`MovingCluster::update_member`]).
    pub fn absorb(&mut self, update: &LocationUpdate, shed: bool) {
        assert!(
            !self.contains(update.entity),
            "entity {} is already a member of cluster {:?}",
            update.entity,
            self.cid
        );
        let n_new = (self.members.len() + 1) as f64;
        // Incremental centroid: c' = c + (p − c)/n.
        let delta = (update.loc - self.centroid) / n_new;
        self.centroid += delta;
        self.total_drift += delta;
        // Existing members' materialised positions are unchanged (the drift
        // bookkeeping cancels the shift), but their distance to the *new*
        // centroid may have grown by up to |δ|.
        self.radius += delta.norm();
        let dist_new = update.loc.distance(&self.centroid);
        if dist_new > self.radius {
            self.radius = dist_new;
        }
        // Incremental mean speed.
        self.ave_speed += (update.speed - self.ave_speed) / n_new;

        let rel = if shed {
            None
        } else {
            Some(Polar::from_cartesian(&self.centroid, &update.loc))
        };
        self.note_query_radius(update);
        self.push_member(update.entity, update.speed, rel, update.time);
    }

    /// Refreshes an existing member from a new update: recaptures its
    /// relative position (or sheds it), updates its speed contribution to
    /// the average, and grows the radius if the member moved outward.
    ///
    /// Returns `false` when the entity is not a member.
    pub fn update_member(&mut self, update: &LocationUpdate, shed: bool) -> bool {
        let Some(&idx) = self.member_index.get(&update.entity) else {
            return false;
        };
        self.note_query_radius(update);
        let n = self.members.len() as f64;
        let member = &mut self.members[idx as usize];
        self.ave_speed += (update.speed - member.speed) / n;
        member.speed = update.speed;
        member.last_seen = update.time;
        if shed {
            member.rel = None;
        } else {
            member.rel = Some(Polar::from_cartesian(&self.centroid, &update.loc));
            member.drift_mark = self.total_drift;
            let dist = update.loc.distance(&self.centroid);
            if dist > self.radius {
                self.radius = dist;
            }
        }
        true
    }

    /// Removes a member ("objects and queries can enter or leave a moving
    /// cluster at any time", §3.1), adjusting counts and average speed. The
    /// radius is left unchanged — a conservative over-approximation.
    ///
    /// Returns the removed member, or `None` if the entity was not one.
    pub fn remove_member(&mut self, entity: EntityRef) -> Option<Member> {
        let idx = self.member_index.remove(&entity)? as usize;
        let member = self.members.swap_remove(idx);
        if let Some(moved) = self.members.get(idx) {
            self.member_index.insert(moved.entity, idx as u32);
        }
        match entity {
            EntityRef::Object(_) => self.object_count -= 1,
            EntityRef::Query(_) => self.query_count -= 1,
        }
        let n = self.members.len() as f64;
        if n > 0.0 {
            self.ave_speed = (self.ave_speed * (n + 1.0) - member.speed) / n;
        } else {
            self.ave_speed = 0.0;
        }
        Some(member)
    }

    /// Rigidly translates the cluster along its velocity vector for `dt`
    /// time units (post-join relocation, §4.2 / Fig. 7f). Members move with
    /// the centroid; relative coordinates stay valid. Movement stops at the
    /// destination node rather than overshooting.
    ///
    /// Returns whether the centroid actually moved — a stationary cluster
    /// (zero average speed) stays bit-identical across epochs, which the
    /// incremental join exploits to keep it cache-clean.
    pub fn advance(&mut self, dt: f64) -> bool {
        let before = self.centroid;
        let step = self.ave_speed * dt.max(0.0);
        let dist = self.centroid.distance(&self.cn_loc);
        if step >= dist {
            self.centroid = self.cn_loc;
        } else {
            self.centroid += self.velocity() * dt;
        }
        self.centroid.x != before.x || self.centroid.y != before.y
    }

    /// Recomputes the radius exactly as the maximum member distance from
    /// the current centroid, shrinking the conservative bound accumulated
    /// by incremental absorption (each absorb grows the radius by the full
    /// centroid shift |δ| instead of re-measuring every member — cheap on
    /// the per-update hot path, but the slack compounds and would wreck the
    /// join-between pre-filter's selectivity).
    ///
    /// `shed_floor` bounds the unknown positions of shed members: they were
    /// within the nucleus (radius ≤ `shed_floor`) when shed and ride along
    /// rigidly, so the radius never shrinks below it while shed members
    /// remain. Call with the active Θ_N (or 0.0 when shedding is off).
    pub fn tighten(&mut self, shed_floor: f64) {
        let mut max_d_sq: f64 = 0.0;
        let mut any_shed = false;
        for member in &self.members {
            match member.rel {
                Some(rel) => {
                    let pos = self.centroid + rel.offset() - (self.total_drift - member.drift_mark);
                    max_d_sq = max_d_sq.max(pos.distance_sq(&self.centroid));
                }
                None => any_shed = true,
            }
        }
        let mut tight = max_d_sq.sqrt();
        if any_shed {
            tight = tight.max(shed_floor.min(self.radius));
        }
        // Only shrink — growth is already tracked exactly.
        if tight < self.radius {
            self.radius = tight;
        }
    }

    /// Sheds the positions of all members within `nucleus_radius` of the
    /// centroid, returning how many positions were discarded.
    pub fn shed_nucleus(&mut self, nucleus_radius: f64) -> usize {
        let mut shed = 0;
        let centroid = self.centroid;
        let total_drift = self.total_drift;
        for member in &mut self.members {
            if let Some(rel) = member.rel {
                let pos = centroid + rel.offset() - (total_drift - member.drift_mark);
                if pos.distance(&centroid) <= nucleus_radius {
                    member.rel = None;
                    shed += 1;
                }
            }
        }
        shed
    }

    /// Estimated heap footprint in bytes. Shed members store no position,
    /// which is where the §5 memory saving shows up.
    pub fn estimated_bytes(&self) -> usize {
        let fixed = std::mem::size_of::<MovingCluster>();
        let per_member = std::mem::size_of::<Member>();
        let index = self.member_index.len()
            * (std::mem::size_of::<EntityRef>() + std::mem::size_of::<u32>() + 8);
        // `rel` is stored inline in Member for speed; the estimate models a
        // deployment where positional state lives out of line, so a shed
        // member saves its polar coordinates *and* its drift mark — only
        // the id and speed (needed for the cluster averages) remain.
        let shed_savings = self.members.iter().filter(|m| m.is_shed()).count()
            * (std::mem::size_of::<Polar>() + std::mem::size_of::<Vector>());
        fixed + self.members.capacity() * per_member + index - shed_savings
    }

    /// The accumulated transformation vector (snapshot support).
    #[inline]
    pub fn total_drift(&self) -> Vector {
        self.total_drift
    }

    /// Reconstructs a cluster from raw snapshot parts, rebuilding the
    /// member index and kind counts. Counterpart of reading the public
    /// accessors plus [`MovingCluster::members`]; used by
    /// [`crate::snapshot`] to restore checkpointed engines.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        cid: ClusterId,
        centroid: Point,
        radius: f64,
        cn_loc: Point,
        ave_speed: f64,
        created_at: Time,
        max_query_radius: f64,
        total_drift: Vector,
        members: Vec<Member>,
    ) -> Self {
        let mut member_index = FxHashMap::default();
        let mut object_count = 0;
        let mut query_count = 0;
        for (i, m) in members.iter().enumerate() {
            member_index.insert(m.entity, i as u32);
            match m.entity {
                EntityRef::Object(_) => object_count += 1,
                EntityRef::Query(_) => query_count += 1,
            }
        }
        MovingCluster {
            cid,
            centroid,
            radius: radius.max(0.0),
            cn_loc,
            ave_speed,
            members,
            member_index,
            object_count,
            query_count,
            total_drift,
            created_at,
            max_query_radius: max_query_radius.max(0.0),
        }
    }

    /// Builds a snapshot-ready member record (inverse of the accessors).
    pub fn member_from_parts(
        entity: EntityRef,
        speed: f64,
        rel: Option<Polar>,
        last_seen: Time,
        drift_mark: Vector,
    ) -> Member {
        Member {
            entity,
            speed,
            rel,
            last_seen,
            drift_mark,
        }
    }

    /// Records the reach of a query member's range spec.
    fn note_query_radius(&mut self, update: &LocationUpdate) {
        if let scuba_motion::EntityAttrs::Query(attrs) = &update.attrs {
            let r = attrs.spec.bounding_radius();
            if r > self.max_query_radius {
                self.max_query_radius = r;
            }
        }
    }

    fn push_member(&mut self, entity: EntityRef, speed: f64, rel: Option<Polar>, seen: Time) {
        match entity {
            EntityRef::Object(_) => self.object_count += 1,
            EntityRef::Query(_) => self.query_count += 1,
        }
        self.member_index.insert(entity, self.members.len() as u32);
        self.members.push(Member {
            entity,
            speed,
            rel,
            last_seen: seen,
            drift_mark: self.total_drift,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_motion::{ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec};

    fn obj_update(id: u64, loc: Point, speed: f64, cn: Point) -> LocationUpdate {
        LocationUpdate::object(ObjectId(id), loc, 0, speed, cn, ObjectAttrs::default())
    }

    fn qry_update(id: u64, loc: Point, speed: f64, cn: Point) -> LocationUpdate {
        LocationUpdate::query(
            QueryId(id),
            loc,
            0,
            speed,
            cn,
            QueryAttrs {
                spec: QuerySpec::square_range(10.0),
            },
        )
    }

    const CN: Point = Point { x: 1000.0, y: 0.0 };

    fn founder() -> MovingCluster {
        MovingCluster::found(
            ClusterId(1),
            &obj_update(1, Point::new(0.0, 0.0), 30.0, CN),
            false,
        )
    }

    #[test]
    fn founding_matches_paper_step2() {
        let c = founder();
        assert_eq!(c.len(), 1);
        assert_eq!(c.radius(), 0.0);
        assert!(c.centroid().approx_eq(&Point::new(0.0, 0.0)));
        assert!(c.cn_loc().approx_eq(&CN));
        assert_eq!(c.ave_speed(), 30.0);
        assert_eq!(c.object_count(), 1);
        assert_eq!(c.query_count(), 0);
        assert!(!c.is_mixed());
    }

    #[test]
    fn can_absorb_checks_all_three_conditions() {
        let c = founder();
        let good = obj_update(2, Point::new(50.0, 0.0), 35.0, CN);
        assert!(c.can_absorb(&good, 100.0, 10.0, 1e-6));

        // Wrong direction.
        let wrong_cn = obj_update(2, Point::new(50.0, 0.0), 35.0, Point::new(0.0, 1000.0));
        assert!(!c.can_absorb(&wrong_cn, 100.0, 10.0, 1e-6));

        // Too far.
        let far = obj_update(2, Point::new(150.0, 0.0), 35.0, CN);
        assert!(!c.can_absorb(&far, 100.0, 10.0, 1e-6));

        // Too fast.
        let fast = obj_update(2, Point::new(50.0, 0.0), 45.0, CN);
        assert!(!c.can_absorb(&fast, 100.0, 10.0, 1e-6));

        // Boundary cases are inclusive.
        let at_theta_d = obj_update(2, Point::new(100.0, 0.0), 30.0, CN);
        assert!(c.can_absorb(&at_theta_d, 100.0, 10.0, 1e-6));
        let at_theta_s = obj_update(2, Point::new(50.0, 0.0), 40.0, CN);
        assert!(c.can_absorb(&at_theta_s, 100.0, 10.0, 1e-6));
    }

    #[test]
    fn absorb_adjusts_centroid_speed_radius_count() {
        let mut c = founder();
        c.absorb(&obj_update(2, Point::new(60.0, 0.0), 40.0, CN), false);
        assert_eq!(c.len(), 2);
        // Centroid pulled halfway toward the new member.
        assert!(c.centroid().approx_eq(&Point::new(30.0, 0.0)));
        assert_eq!(c.ave_speed(), 35.0);
        // Radius covers both members (30 each side; plus drift slack).
        assert!(c.radius() >= 30.0);
    }

    #[test]
    fn member_positions_survive_centroid_adjustment() {
        let mut c = founder();
        let p1 = Point::new(0.0, 0.0);
        let p2 = Point::new(60.0, 0.0);
        let p3 = Point::new(30.0, 30.0);
        c.absorb(&obj_update(2, p2, 30.0, CN), false);
        c.absorb(&obj_update(3, p3, 30.0, CN), false);
        // All three materialise at their true positions despite two
        // centroid adjustments.
        let m1 = c.member(EntityRef::Object(ObjectId(1))).unwrap();
        let m2 = c.member(EntityRef::Object(ObjectId(2))).unwrap();
        let m3 = c.member(EntityRef::Object(ObjectId(3))).unwrap();
        assert!(c.member_position(m1).unwrap().distance(&p1) < 1e-9);
        assert!(c.member_position(m2).unwrap().distance(&p2) < 1e-9);
        assert!(c.member_position(m3).unwrap().distance(&p3) < 1e-9);
    }

    #[test]
    fn radius_covers_all_members() {
        let mut c = founder();
        let points = [
            Point::new(60.0, 0.0),
            Point::new(-40.0, 20.0),
            Point::new(10.0, -70.0),
            Point::new(35.0, 35.0),
        ];
        for (i, p) in points.iter().enumerate() {
            c.absorb(&obj_update(i as u64 + 2, *p, 30.0, CN), false);
        }
        for m in c.members() {
            let pos = c.member_position(m).unwrap();
            assert!(
                pos.distance(&c.centroid()) <= c.radius() + 1e-9,
                "member at {pos:?} outside radius {}",
                c.radius()
            );
        }
    }

    #[test]
    fn mixed_cluster_counts() {
        let mut c = founder();
        c.absorb(&qry_update(7, Point::new(10.0, 0.0), 30.0, CN), false);
        assert!(c.is_mixed());
        assert_eq!(c.object_count(), 1);
        assert_eq!(c.query_count(), 1);
    }

    #[test]
    fn rigid_advance_translates_members() {
        let mut c = founder();
        c.absorb(&obj_update(2, Point::new(60.0, 0.0), 30.0, CN), false);
        let before: Vec<Point> = c
            .members()
            .iter()
            .map(|m| c.member_position(m).unwrap())
            .collect();
        let centroid_before = c.centroid();
        c.advance(2.0); // ave speed 30 → moves 60 units toward (1000, 0)
        let moved = c.centroid() - centroid_before;
        assert!((moved.norm() - 60.0).abs() < 1e-9);
        for (m, old) in c.members().iter().zip(before) {
            let new = c.member_position(m).unwrap();
            assert!((new - old).approx_eq(&moved));
        }
    }

    #[test]
    fn advance_does_not_overshoot_destination() {
        let mut c = MovingCluster::found(
            ClusterId(1),
            &obj_update(1, Point::new(990.0, 0.0), 30.0, CN),
            false,
        );
        assert!(c.passes_destination_within(2.0));
        c.advance(2.0);
        assert!(c.centroid().approx_eq(&CN));
    }

    #[test]
    fn expiration_time() {
        let c = founder(); // 1000 units at speed 30
        let exp = c.expiration_time(10).unwrap();
        assert!((exp - (10.0 + 1000.0 / 30.0)).abs() < 1e-9);

        let mut stalled = founder();
        stalled.remove_member(EntityRef::Object(ObjectId(1)));
        assert_eq!(stalled.ave_speed(), 0.0);
        assert_eq!(stalled.expiration_time(0), None);
    }

    #[test]
    fn velocity_points_at_destination() {
        let c = founder();
        let v = c.velocity();
        assert!((v.norm() - 30.0).abs() < 1e-9);
        assert!(v.dx > 0.0 && v.dy.abs() < 1e-12);
    }

    #[test]
    fn update_member_refreshes_position_and_speed() {
        let mut c = founder();
        c.absorb(&obj_update(2, Point::new(60.0, 0.0), 40.0, CN), false);
        assert!(c.update_member(&obj_update(2, Point::new(80.0, 0.0), 50.0, CN), false));
        let m = c.member(EntityRef::Object(ObjectId(2))).unwrap();
        assert!(
            c.member_position(m)
                .unwrap()
                .distance(&Point::new(80.0, 0.0))
                < 1e-9
        );
        assert_eq!(m.speed, 50.0);
        // ave = (30 + 50) / 2
        assert!((c.ave_speed() - 40.0).abs() < 1e-9);
        // Unknown entity.
        assert!(!c.update_member(&obj_update(99, Point::ORIGIN, 1.0, CN), false));
    }

    #[test]
    fn remove_member_adjusts_counts_and_speed() {
        let mut c = founder();
        c.absorb(&obj_update(2, Point::new(60.0, 0.0), 40.0, CN), false);
        c.absorb(&qry_update(3, Point::new(30.0, 0.0), 35.0, CN), false);
        assert!((c.ave_speed() - 35.0).abs() < 1e-9);

        let removed = c.remove_member(EntityRef::Object(ObjectId(2))).unwrap();
        assert_eq!(removed.speed, 40.0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.object_count(), 1);
        assert_eq!(c.query_count(), 1);
        assert!((c.ave_speed() - 32.5).abs() < 1e-9);

        // Remaining members still materialise correctly after swap_remove.
        let m3 = c.member(EntityRef::Query(QueryId(3))).unwrap();
        assert!(
            c.member_position(m3)
                .unwrap()
                .distance(&Point::new(30.0, 0.0))
                < 1e-9
        );

        assert!(c.remove_member(EntityRef::Object(ObjectId(2))).is_none());
    }

    #[test]
    fn remove_last_member_empties_cluster() {
        let mut c = founder();
        c.remove_member(EntityRef::Object(ObjectId(1))).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.ave_speed(), 0.0);
        assert_eq!(c.object_count(), 0);
    }

    #[test]
    #[should_panic(expected = "already a member")]
    fn double_absorb_panics() {
        let mut c = founder();
        c.absorb(&obj_update(1, Point::new(10.0, 0.0), 30.0, CN), false);
    }

    #[test]
    fn shed_nucleus_discards_inner_positions() {
        let mut c = founder(); // member 1 at centroid
        c.absorb(&obj_update(2, Point::new(80.0, 0.0), 30.0, CN), false);
        c.absorb(&obj_update(3, Point::new(-80.0, 0.0), 30.0, CN), false);
        // Centroid is ~(0, 0); members 2 and 3 are ~80 away, member 1 ~0.
        let shed = c.shed_nucleus(40.0);
        assert_eq!(shed, 1);
        let m1 = c.member(EntityRef::Object(ObjectId(1))).unwrap();
        assert!(m1.is_shed());
        assert!(c.member_position(m1).is_none());
        // Shedding again does nothing.
        assert_eq!(c.shed_nucleus(40.0), 0);
    }

    #[test]
    fn founding_with_shed_true() {
        let c = MovingCluster::found(
            ClusterId(9),
            &obj_update(1, Point::new(0.0, 0.0), 30.0, CN),
            true,
        );
        assert!(c.members()[0].is_shed());
    }

    #[test]
    fn shed_members_reduce_estimated_bytes() {
        let mut kept = founder();
        let mut shed = founder();
        for i in 2..20 {
            let u = obj_update(i, Point::new(i as f64, 0.0), 30.0, CN);
            kept.absorb(&u, false);
            shed.absorb(&u, true);
        }
        assert!(shed.estimated_bytes() < kept.estimated_bytes());
    }

    #[test]
    fn update_member_can_shed() {
        let mut c = founder();
        c.absorb(&obj_update(2, Point::new(10.0, 0.0), 30.0, CN), false);
        assert!(c.update_member(&obj_update(2, Point::new(12.0, 0.0), 30.0, CN), true));
        assert!(c.member(EntityRef::Object(ObjectId(2))).unwrap().is_shed());
    }

    #[test]
    fn numeric_stability_over_many_membership_changes() {
        // Thousands of absorb/update/remove cycles must not degrade the
        // drift-compensated member positions: the lazy transformation is
        // pure summation, so error growth should stay near machine epsilon.
        let mut c = founder();
        for round in 0..500u64 {
            let id = 1000 + (round % 40);
            let x = (round % 97) as f64 - 48.0;
            let y = (round % 89) as f64 - 44.0;
            let u = obj_update(id, Point::new(x, y), 30.0, CN);
            if c.contains(EntityRef::Object(ObjectId(id))) {
                if round % 3 == 0 {
                    c.remove_member(EntityRef::Object(ObjectId(id)));
                } else {
                    c.update_member(&u, false);
                }
            } else if u.loc.distance(&c.centroid()) <= 100.0 {
                c.absorb(&u, false);
            }
        }
        // Re-derive each member's position and verify the radius invariant
        // plus positional coherence (within floating error of Θ_D-scale
        // arithmetic).
        for m in c.members() {
            let pos = c.member_position(m).expect("unshed");
            assert!(
                pos.distance(&c.centroid()) <= c.radius() + 1e-6,
                "member escaped the radius"
            );
            assert!(pos.x.is_finite() && pos.y.is_finite());
        }
        // The founder is still exactly reconstructible: it has never moved.
        if let Some(m1) = c.member(EntityRef::Object(ObjectId(1))) {
            let pos = c.member_position(m1).unwrap();
            assert!(
                pos.distance(&Point::new(0.0, 0.0)) < 1e-6,
                "founder drifted to {pos:?}"
            );
        }
    }

    #[test]
    fn tighten_after_churn_shrinks_radius() {
        let mut c = founder();
        for i in 2..40u64 {
            let x = (i % 10) as f64 * 10.0;
            c.absorb(&obj_update(i, Point::new(x, 0.0), 30.0, CN), false);
        }
        // Remove the far members; the conservative radius stays large.
        for i in 2..40u64 {
            let Some(m) = c.member(EntityRef::Object(ObjectId(i))) else {
                continue;
            };
            if c.member_position(m).unwrap().x > 40.0 {
                c.remove_member(EntityRef::Object(ObjectId(i)));
            }
        }
        let before = c.radius();
        c.tighten(0.0);
        assert!(c.radius() <= before);
        // All remaining members covered exactly.
        let max_d = c
            .members()
            .iter()
            .map(|m| c.member_position(m).unwrap().distance(&c.centroid()))
            .fold(0.0f64, f64::max);
        assert!((c.radius() - max_d).abs() < 1e-9);
    }
}
