//! The SCUBA operator: three-phase execution (paper §4.2, Fig. 6).
//!
//! * **cluster pre-join maintenance** — runs continuously between
//!   evaluations: every incoming location update is clustered incrementally
//!   ([`ContinuousOperator::process_update`] →
//!   [`crate::clustering::ClusterEngine::process_update`]);
//! * **cluster-based joining** — when Δ expires, join-between + join-within
//!   over the ClusterGrid ([`crate::join::JoinContext`]);
//! * **cluster post-join maintenance** — dissolve expired clusters and
//!   relocate survivors along their velocity vectors for the next interval.

use scuba_motion::LocationUpdate;
use scuba_spatial::{Rect, Time};
use scuba_stream::{ContinuousOperator, EvaluationReport, PhaseBreakdown, StageStats, Stopwatch};

use crate::clustering::{ClusterEngine, ClusteringStats};
use crate::ingest::{IngestReport, IngestScratch};
use crate::join::{JoinCache, JoinContext, JoinScratch};
use crate::params::ScubaParams;
use crate::shedding::AdaptiveShedder;

/// Stage name: batch-ingest routing/classification (maintenance bucket).
/// `items_in` = batch size, `items_out` = interior updates planned on
/// shard workers, `tests` = boundary updates.
pub const STAGE_INGEST_ROUTE: &str = "ingest-route";
/// Stage name: parallel shard planning (maintenance bucket). `items_in` =
/// updates routed to shards, `items_out` = those whose plan survived
/// (`items_in − items_out` were demoted), `tests` = shard imbalance
/// (fullest stripe minus emptiest).
pub const STAGE_INGEST_SHARD: &str = "ingest-shard";
/// Stage name: sequential apply/fixup of a batch (maintenance bucket).
/// `items_in` = batch size, `items_out` = boundary updates processed the
/// slow way, `tests` = demotions.
pub const STAGE_INGEST_FIXUP: &str = "ingest-fixup";
/// Stage name: pre-join radius tightening (maintenance bucket).
pub const STAGE_PRE_JOIN_TIGHTEN: &str = "pre-join-tighten";
/// Stage name: continuous kNN evaluation alongside the range join.
pub const STAGE_KNN: &str = "knn";
/// Stage name: post-join cluster maintenance (dissolve + relocate).
pub const STAGE_POST_JOIN: &str = "post-join-maintenance";

/// The operator name for a parameter set; shared by both constructors so
/// shedding naming cannot drift between them.
fn operator_name(params: &ScubaParams) -> String {
    if params.shedding.is_active() {
        format!("SCUBA(shedding={:?})", params.shedding)
    } else {
        "SCUBA".to_string()
    }
}

/// The SCUBA continuous-query operator.
#[derive(Debug)]
pub struct ScubaOperator {
    engine: ClusterEngine,
    name: String,
    evaluations: u64,
    /// Optional memory-budget controller (§5's escalation behaviour).
    adaptive: Option<AdaptiveShedder>,
    /// Cross-epoch pair-result cache (active when `params.join_cache`).
    /// Always starts empty, including after a snapshot restore — the
    /// restored engine's epoch clock has no history to validate against.
    cache: JoinCache,
    /// Reusable joining-phase buffers; steady-state epochs allocate
    /// nothing.
    scratch: JoinScratch,
    /// Reusable sharded batch-ingestion buffers (see [`crate::ingest`]).
    ingest_scratch: IngestScratch,
    /// Ingest stage stats accumulated since the last evaluation; prepended
    /// to the next report's phase breakdown.
    pending_ingest: PhaseBreakdown,
}

impl ScubaOperator {
    /// Creates the operator over the given coverage area.
    pub fn new(params: ScubaParams, area: Rect) -> Self {
        Self::from_engine(ClusterEngine::new(params, area))
    }

    /// Wraps an existing (e.g. snapshot-restored) clustering engine in an
    /// operator.
    pub fn from_engine(engine: ClusterEngine) -> Self {
        let name = operator_name(engine.params());
        ScubaOperator {
            engine,
            name,
            evaluations: 0,
            adaptive: None,
            cache: JoinCache::new(),
            scratch: JoinScratch::new(),
            ingest_scratch: IngestScratch::default(),
            pending_ingest: PhaseBreakdown::new(),
        }
    }

    /// Attaches a memory-budget controller: after each evaluation the
    /// operator compares its estimated footprint against `budget_bytes`
    /// and escalates (or relaxes) the shedding mode accordingly,
    /// immediately discarding nucleus positions on escalation.
    pub fn with_memory_budget(mut self, budget_bytes: usize) -> Self {
        self.adaptive = Some(AdaptiveShedder::new(budget_bytes));
        self.name = format!("{}(budget={budget_bytes}B)", self.name);
        self
    }

    /// The currently active shedding mode (reflects adaptive escalation).
    pub fn current_shedding(&self) -> crate::shedding::SheddingMode {
        self.engine.params().shedding
    }

    /// Read access to the clustering state (used by the kNN / aggregate
    /// extensions and by diagnostics).
    pub fn engine(&self) -> &ClusterEngine {
        &self.engine
    }

    /// Clustering activity counters.
    pub fn clustering_stats(&self) -> ClusteringStats {
        self.engine.stats()
    }

    /// Number of evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Read access to the cross-epoch join cache (diagnostics, tests).
    pub fn join_cache(&self) -> &JoinCache {
        &self.cache
    }

    /// Accumulates one batch's ingest counters into the stats prepended to
    /// the next evaluation report.
    fn record_ingest(&mut self, r: &IngestReport) {
        self.pending_ingest.push(
            StageStats::maintenance(STAGE_INGEST_ROUTE)
                .with_wall(r.route_time)
                .with_items(r.total, r.interior)
                .with_tests(r.boundary),
        );
        self.pending_ingest.push(
            StageStats::maintenance(STAGE_INGEST_SHARD)
                .with_wall(r.shard_time)
                .with_items(r.interior + r.demoted, r.interior)
                .with_tests(r.shard_imbalance),
        );
        self.pending_ingest.push(
            StageStats::maintenance(STAGE_INGEST_FIXUP)
                .with_wall(r.fixup_time)
                .with_items(r.total, r.boundary)
                .with_tests(r.demoted),
        );
    }
}

impl ContinuousOperator for ScubaOperator {
    fn process_update(&mut self, update: &LocationUpdate) {
        self.engine.process_update(update);
    }

    fn process_batch(&mut self, updates: &[LocationUpdate]) {
        let shards = self.engine.params().effective_ingest_shards();
        if shards <= 1 || updates.len() <= 1 {
            for update in updates {
                self.engine.process_update(update);
            }
            return;
        }
        let report = crate::ingest::ingest_batch(
            &mut self.engine,
            updates,
            shards,
            &mut self.ingest_scratch,
        );
        self.record_ingest(&report);
    }

    fn evaluate(&mut self, now: Time) -> EvaluationReport {
        self.evaluations += 1;
        // Ingest stages accumulated since the last evaluation lead the
        // report, mirroring their position in the pipeline.
        let mut phases = std::mem::take(&mut self.pending_ingest);
        let clusters_before = self.engine.cluster_count() as u64;

        // Tail of phase 1: tighten cluster radii so the join-between filter
        // sees exact regions (counted as maintenance, not join).
        let sw = Stopwatch::start();
        if self.engine.params().tighten_radii {
            self.engine.pre_join_tighten();
        }
        phases.push(
            StageStats::maintenance(STAGE_PRE_JOIN_TIGHTEN)
                .with_wall(sw.elapsed())
                .with_items(clusters_before, clusters_before),
        );

        // Phase 2: cluster-based joining (the staged pipeline), incremental
        // across epochs when the join cache is enabled.
        let ctx = JoinContext {
            clusters: self.engine.clusters(),
            grid: self.engine.grid(),
            queries: self.engine.queries(),
            shedding: self.engine.params().shedding,
            theta_d: self.engine.params().theta_d,
            member_filter: self.engine.params().member_filter,
            parallelism: self.engine.params().parallelism,
        };
        let epochs = self
            .engine
            .params()
            .join_cache
            .then(|| self.engine.epochs());
        let mut join = ctx.run_cached(epochs, &mut self.cache, &mut self.scratch);
        phases.extend(std::mem::take(&mut join.stages));
        // Extension: answer registered kNN queries alongside the range
        // join (zero-cost when the workload has none).
        let sw = Stopwatch::start();
        let knn = crate::knn::evaluate_continuous(&self.engine);
        let knn_found = knn.len() as u64;
        if !knn.is_empty() {
            join.results.extend(knn);
            join.results.sort_unstable();
            join.results.dedup();
        }
        phases.push(
            StageStats::join(STAGE_KNN)
                .with_wall(sw.elapsed())
                .with_items(knn_found, knn_found),
        );

        // Phase 3: post-join maintenance.
        let sw = Stopwatch::start();
        self.engine.post_join_maintenance(now);
        let mut memory_bytes = self.engine.estimated_bytes();
        if let Some(adaptive) = &mut self.adaptive {
            if let Some(mode) = adaptive.observe(memory_bytes) {
                self.engine.set_shedding(mode);
                // Escalation takes effect immediately: discard nucleus
                // positions now rather than waiting for fresh updates.
                if mode.is_active() {
                    self.engine.shed_now();
                    memory_bytes = self.engine.estimated_bytes();
                }
            }
        }
        phases.push(
            StageStats::maintenance(STAGE_POST_JOIN)
                .with_wall(sw.elapsed())
                .with_items(clusters_before, self.engine.cluster_count() as u64),
        );

        EvaluationReport {
            now,
            results: join.results,
            phases,
            memory_bytes,
            comparisons: join.comparisons,
            prefilter_tests: join.prefilter_tests,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn memory_bytes(&self) -> usize {
        self.engine.estimated_bytes()
    }

    fn clusters_live(&self) -> Option<usize> {
        Some(self.engine.cluster_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_motion::{ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec};
    use scuba_spatial::Point;
    use scuba_stream::{Executor, ExecutorConfig};

    const CN: Point = Point {
        x: 1000.0,
        y: 500.0,
    };

    fn obj(id: u64, x: f64, y: f64) -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            0,
            30.0,
            CN,
            ObjectAttrs::default(),
        )
    }

    fn qry(id: u64, x: f64, y: f64, side: f64) -> LocationUpdate {
        LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            0,
            30.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(side),
            },
        )
    }

    #[test]
    fn end_to_end_single_evaluation() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 504.0, 500.0, 20.0));
        let report = op.evaluate(2);
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.now, 2);
        assert!(report.memory_bytes > 0);
        assert!(report.comparisons >= 1);
        assert_eq!(op.evaluations(), 1);
    }

    #[test]
    fn report_carries_stage_breakdown() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 504.0, 500.0, 20.0));
        let report = op.evaluate(2);
        assert!(!report.phases.is_empty());
        assert!(report.phases.get(crate::join::STAGE_JOIN_WITHIN).is_some());
        assert!(report.phases.get(STAGE_PRE_JOIN_TIGHTEN).is_some());
        assert!(report.phases.get(STAGE_KNN).is_some());
        assert!(report.phases.get(STAGE_POST_JOIN).is_some());
        assert_eq!(
            report.total_time(),
            report.join_time() + report.maintenance_time()
        );
        assert_eq!(op.clusters_live(), Some(op.engine().cluster_count()));
    }

    #[test]
    fn works_under_executor() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        let mut t = 0u64;
        let mut source = move || {
            t += 1;
            vec![
                obj(1, 500.0 + t as f64 * 30.0, 500.0),
                qry(1, 503.0 + t as f64 * 30.0, 500.0, 20.0),
            ]
        };
        let exec = Executor::new(ExecutorConfig {
            delta: 2,
            duration: 6,
        });
        let run = exec.run(&mut source, &mut op);
        assert_eq!(run.evaluations.len(), 3);
        assert_eq!(run.updates_ingested, 12);
        // The object stays within the query range the whole time.
        for e in &run.evaluations {
            assert_eq!(e.results.len(), 1, "at t={}", e.now);
        }
    }

    #[test]
    fn name_reflects_shedding() {
        let plain = ScubaOperator::new(ScubaParams::default(), Rect::square(10.0));
        assert_eq!(plain.name(), "SCUBA");
        let shed = ScubaOperator::new(
            ScubaParams::default().with_shedding(crate::SheddingMode::Full),
            Rect::square(10.0),
        );
        assert!(shed.name().contains("shedding"));
    }

    #[test]
    fn post_join_runs_each_evaluation() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        op.process_update(&obj(1, 500.0, 500.0));
        let centroid_before = op.engine().clusters().values().next().unwrap().centroid();
        op.evaluate(2);
        let centroid_after = op.engine().clusters().values().next().unwrap().centroid();
        assert!(centroid_after.x > centroid_before.x, "cluster relocated");
    }

    #[test]
    fn invariants_hold_across_noisy_run() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        for round in 0..6u64 {
            for i in 0..50u64 {
                let x = (i * 37 % 900) as f64 + 50.0 + round as f64;
                let y = (i * 61 % 900) as f64 + 50.0;
                if i % 2 == 0 {
                    op.process_update(&obj(i, x, y));
                } else {
                    op.process_update(&qry(i, x, y, 30.0));
                }
            }
            op.engine().check_invariants();
            op.evaluate(round * 2 + 2);
            op.engine().check_invariants();
        }
    }

    #[test]
    fn stationary_workload_hits_join_cache() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        // Stationary convoy (zero speed, distant destination): nothing
        // mutates between evaluations, so epoch 2 replays epoch 1's pairs.
        for i in 0..5u64 {
            op.process_update(&LocationUpdate::object(
                ObjectId(i),
                Point::new(500.0 + i as f64, 500.0),
                0,
                0.0,
                CN,
                ObjectAttrs::default(),
            ));
        }
        op.process_update(&LocationUpdate::query(
            QueryId(1),
            Point::new(502.0, 501.0),
            0,
            0.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(20.0),
            },
        ));
        let first = op.evaluate(2);
        let warm = op.evaluate(4);
        assert_eq!(first.results, warm.results);
        assert!(!op.join_cache().is_empty());
        let within = warm.phases.get(crate::join::STAGE_JOIN_WITHIN).unwrap();
        assert!(within.cache_hits > 0, "clean pairs replay from the cache");
        assert_eq!(within.cache_misses, 0);
        assert_eq!(within.tests, 0, "no member work on a clean epoch");
    }

    #[test]
    fn cache_disabled_keeps_results_identical() {
        let run = |join_cache: bool| {
            let params = ScubaParams::default().with_join_cache(join_cache);
            let mut op = ScubaOperator::new(params, Rect::square(1000.0));
            let mut all = Vec::new();
            for round in 0..4u64 {
                for i in 0..30u64 {
                    let x = (i * 37 % 900) as f64 + 50.0 + round as f64;
                    let y = (i * 61 % 900) as f64 + 50.0;
                    if i % 2 == 0 {
                        op.process_update(&obj(i, x, y));
                    } else {
                        op.process_update(&qry(i, x, y, 30.0));
                    }
                }
                all.push(op.evaluate(round * 2 + 2).results);
            }
            all
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn adaptive_budget_escalates_shedding() {
        use crate::SheddingMode;
        // A budget far below what 200 tracked entities need.
        let mut op =
            ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0)).with_memory_budget(1);
        assert_eq!(op.current_shedding(), SheddingMode::None);
        for round in 0..5u64 {
            for i in 0..100u64 {
                op.process_update(&obj(i, 100.0 + (i % 50) as f64, 100.0 + round as f64));
                op.process_update(&qry(i, 600.0 + (i % 50) as f64, 600.0 + round as f64, 20.0));
            }
            op.evaluate((round + 1) * 2);
        }
        assert_eq!(
            op.current_shedding(),
            SheddingMode::Full,
            "unreachable budget should drive the ladder to Full"
        );
        assert!(op.name().contains("budget"));
        // Positions are actually gone.
        assert!(op
            .engine()
            .clusters()
            .values()
            .flat_map(|c| c.members())
            .all(|m| m.is_shed()));
    }

    #[test]
    fn generous_budget_never_sheds() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0))
            .with_memory_budget(usize::MAX);
        for i in 0..50u64 {
            op.process_update(&obj(i, 500.0 + (i % 20) as f64, 500.0));
        }
        op.evaluate(2);
        assert_eq!(op.current_shedding(), crate::SheddingMode::None);
    }
}
