//! The SCUBA operator: three-phase execution (paper §4.2, Fig. 6).
//!
//! * **cluster pre-join maintenance** — runs continuously between
//!   evaluations: every incoming location update is clustered incrementally
//!   ([`ContinuousOperator::process_update`] →
//!   [`crate::clustering::ClusterEngine::process_update`]);
//! * **cluster-based joining** — when Δ expires, join-between + join-within
//!   over the ClusterGrid ([`crate::join::JoinContext`]);
//! * **cluster post-join maintenance** — dissolve expired clusters and
//!   relocate survivors along their velocity vectors for the next interval.

use std::collections::VecDeque;
use std::time::Duration;

use scuba_motion::{ControlOp, EntityRef, LocationUpdate, QueryAttrs, QueryId, QuerySpec};
use scuba_spatial::{Point, Rect, Time};
use scuba_stream::{
    ContinuousOperator, EvaluationReport, PhaseBreakdown, RejectReason, StageStats, Stopwatch,
    UpdateValidator, ValidationPolicy, ValidationStats, Verdict,
};

use crate::clustering::{ClusterEngine, ClusteringStats};
use crate::ingest::{IngestReport, IngestScratch};
use crate::join::{JoinCache, JoinContext, JoinScratch};
use crate::overload::{OverloadConfig, OverloadController, OverloadCounters};
use crate::params::ScubaParams;
use crate::registry::{ControlGauges, QueryRegistry};
use crate::shedding::AdaptiveShedder;

/// Stage name: batch-ingest routing/classification (maintenance bucket).
/// `items_in` = batch size, `items_out` = interior updates planned on
/// shard workers, `tests` = boundary updates.
pub const STAGE_INGEST_ROUTE: &str = "ingest-route";
/// Stage name: parallel shard planning (maintenance bucket). `items_in` =
/// updates routed to shards, `items_out` = those whose plan survived
/// (`items_in − items_out` were demoted), `tests` = shard imbalance
/// (fullest stripe minus emptiest).
pub const STAGE_INGEST_SHARD: &str = "ingest-shard";
/// Stage name: sequential apply/fixup of a batch (maintenance bucket).
/// `items_in` = batch size, `items_out` = boundary updates processed the
/// slow way, `tests` = demotions.
pub const STAGE_INGEST_FIXUP: &str = "ingest-fixup";
/// Stage name: pre-join radius tightening (maintenance bucket).
pub const STAGE_PRE_JOIN_TIGHTEN: &str = "pre-join-tighten";
/// Stage name: continuous kNN evaluation alongside the range join.
pub const STAGE_KNN: &str = "knn";
/// Stage name: post-join cluster maintenance (dissolve + relocate).
pub const STAGE_POST_JOIN: &str = "post-join-maintenance";
/// Stage name: ingestion validation front-end (maintenance bucket).
/// `items_in` = updates inspected since the previous evaluation,
/// `items_out` = updates accepted (clamped repairs included), `tests` =
/// updates rejected into the dead-letter buffer.
pub const STAGE_VALIDATE: &str = "validate";
/// Stage name: overload-control decision (maintenance bucket). `items_in`
/// = the observed tick cost in µs, `items_out` = the deadline budget in
/// µs, `tests` = 1 on a deadline miss, 0 on a clean tick.
pub const STAGE_OVERLOAD: &str = "overload-control";
/// Stage name: incremental spatial-index re-balance (maintenance bucket;
/// a no-op stage for the uniform grid). Runs once per Δ between radius
/// tightening and the joining phase, so the adaptive grid's split/merge
/// decisions see the exact post-tighten regions.
pub const STAGE_GRID_REBALANCE: &str = "grid-rebalance";

/// The operator name for a parameter set; shared by both constructors so
/// shedding naming cannot drift between them.
fn operator_name(params: &ScubaParams) -> String {
    let mut name = if params.shedding.is_active() {
        format!("SCUBA(shedding={:?})", params.shedding)
    } else {
        "SCUBA".to_string()
    };
    if params.validation != ValidationPolicy::Off {
        name.push_str(&format!("(validate={})", params.validation.label()));
    }
    if let Some(us) = params.deadline_us {
        name.push_str(&format!("(deadline={us}us)"));
    }
    name
}

/// The SCUBA continuous-query operator.
#[derive(Debug)]
pub struct ScubaOperator {
    engine: ClusterEngine,
    name: String,
    evaluations: u64,
    /// Optional memory-budget controller (§5's escalation behaviour).
    adaptive: Option<AdaptiveShedder>,
    /// Cross-epoch pair-result cache (active when `params.join_cache`).
    /// Always starts empty, including after a snapshot restore — the
    /// restored engine's epoch clock has no history to validate against.
    cache: JoinCache,
    /// Reusable joining-phase buffers; steady-state epochs allocate
    /// nothing.
    scratch: JoinScratch,
    /// Reusable sharded batch-ingestion buffers (see [`crate::ingest`]).
    ingest_scratch: IngestScratch,
    /// Ingest stage stats accumulated since the last evaluation; prepended
    /// to the next report's phase breakdown.
    pending_ingest: PhaseBreakdown,
    /// Hardened ingestion front-end, active when
    /// [`ScubaParams::validation`] is not [`ValidationPolicy::Off`].
    validator: Option<UpdateValidator>,
    /// Validation counters at the previous evaluation, for per-interval
    /// deltas in the stage breakdown.
    vstats_mark: ValidationStats,
    /// Deadline-driven shedding controller, active when
    /// [`ScubaParams::deadline_us`] is set.
    overload: Option<OverloadController>,
    /// Ingest wall-time accumulated since the last evaluation; the
    /// overload controller charges it against the deadline alongside the
    /// evaluation itself. Only measured while a controller is attached.
    tick_ingest: Duration,
    /// Scripted per-evaluation tick costs (tests): each evaluation pops
    /// one entry in preference to the wall clock, making controller
    /// behaviour deterministic regardless of host speed.
    scripted_costs: VecDeque<Duration>,
    /// Fatal validation failure under [`ValidationPolicy::Abort`];
    /// reported through [`ContinuousOperator::fault`] and freezes all
    /// further ingestion.
    fatal: Option<String>,
    /// Reusable buffer of validated updates for batch ingestion.
    accepted_scratch: Vec<LocationUpdate>,
    /// The active query set: explicit control-plane lifecycle plus
    /// implicit registration by data-plane query updates. Carried in
    /// durable checkpoints (see [`crate::durability`]).
    registry: QueryRegistry,
}

impl ScubaOperator {
    /// Creates the operator over the given coverage area.
    pub fn new(params: ScubaParams, area: Rect) -> Self {
        Self::from_engine(ClusterEngine::new(params, area))
    }

    /// Wraps an existing (e.g. snapshot-restored) clustering engine in an
    /// operator.
    pub fn from_engine(engine: ClusterEngine) -> Self {
        let params = *engine.params();
        let name = operator_name(&params);
        let validator = (params.validation != ValidationPolicy::Off)
            .then(|| UpdateValidator::new(params.validation, engine.area()));
        let overload = params.deadline_us.map(|us| {
            OverloadController::new(OverloadConfig::with_deadline(Duration::from_micros(us)))
        });
        // Seed the registry from the engine's query table so a
        // snapshot-restored operator reports a truthful `active_queries`
        // gauge even without a checkpointed registry (the durable restore
        // path overwrites this with the exact checkpoint copy).
        let mut registry = QueryRegistry::new();
        let mut known: Vec<(QueryId, QuerySpec)> =
            engine.queries().iter().map(|(id, a)| (id, a.spec)).collect();
        known.sort_by_key(|(id, _)| *id);
        for (id, spec) in known {
            registry.observe(id, 0, spec, None);
        }
        ScubaOperator {
            engine,
            name,
            evaluations: 0,
            adaptive: None,
            cache: JoinCache::new(),
            scratch: JoinScratch::new(),
            ingest_scratch: IngestScratch::default(),
            pending_ingest: PhaseBreakdown::new(),
            validator,
            vstats_mark: ValidationStats::default(),
            overload,
            tick_ingest: Duration::ZERO,
            scripted_costs: VecDeque::new(),
            fatal: None,
            accepted_scratch: Vec::new(),
            registry,
        }
    }

    /// Attaches a memory-budget controller: after each evaluation the
    /// operator compares its estimated footprint against `budget_bytes`
    /// and escalates (or relaxes) the shedding mode accordingly,
    /// immediately discarding nucleus positions on escalation.
    pub fn with_memory_budget(mut self, budget_bytes: usize) -> Self {
        self.adaptive = Some(AdaptiveShedder::new(budget_bytes));
        self.name = format!("{}(budget={budget_bytes}B)", self.name);
        self
    }

    /// Attaches (or replaces) a deadline-driven overload controller with a
    /// custom config — [`ScubaParams::deadline_us`] covers the common case.
    pub fn with_overload(mut self, config: OverloadConfig) -> Self {
        if self.engine.params().deadline_us.is_none() {
            self.name = format!("{}(deadline={}us)", self.name, config.deadline.as_micros());
        }
        self.overload = Some(OverloadController::new(config));
        self
    }

    /// Scripts the overload controller's observed per-evaluation costs
    /// (tests, benchmarks): each evaluation pops one entry instead of
    /// reading the wall clock, so escalation behaviour is a pure function
    /// of the script. Once the script runs dry, measurement resumes.
    pub fn with_scripted_tick_costs(mut self, costs: Vec<Duration>) -> Self {
        self.scripted_costs = costs.into();
        self
    }

    /// The currently active shedding mode (reflects adaptive escalation).
    pub fn current_shedding(&self) -> crate::shedding::SheddingMode {
        self.engine.params().shedding
    }

    /// Read access to the clustering state (used by the kNN / aggregate
    /// extensions and by diagnostics).
    pub fn engine(&self) -> &ClusterEngine {
        &self.engine
    }

    /// Bytes currently reserved by the reusable joining-phase buffers.
    /// Stable across steady-state ticks — tests use it as evidence that
    /// evaluation allocates nothing once the scratch has warmed up.
    pub fn join_scratch_bytes(&self) -> usize {
        self.scratch.capacity_bytes()
    }

    /// Clustering activity counters.
    pub fn clustering_stats(&self) -> ClusteringStats {
        self.engine.stats()
    }

    /// Number of evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Read access to the cross-epoch join cache (diagnostics, tests).
    pub fn join_cache(&self) -> &JoinCache {
        &self.cache
    }

    /// The active query set and its churn counters.
    pub fn registry(&self) -> &QueryRegistry {
        &self.registry
    }

    /// Control-plane gauges (active/registered/deregistered/unknown).
    pub fn control_gauges(&self) -> ControlGauges {
        self.registry.gauges()
    }

    /// Replaces the registry wholesale — the durable restore path installs
    /// the exact checkpointed copy over the table-seeded default.
    pub fn set_registry(&mut self, registry: QueryRegistry) {
        self.registry = registry;
    }

    /// Deregisters one query: retires its cluster membership (dirtying
    /// exactly the cluster that held it, dissolving it if emptied),
    /// surgically purges its cached join rows, and drops its registry
    /// entry. Never flushes the cache globally. Returns whether any layer
    /// knew the query; unknown deregisters are counted and, when a
    /// validator is attached, quarantined as
    /// [`RejectReason::UnknownEntity`] dead letters.
    pub fn deregister_query(&mut self, qid: QueryId, now: Time) -> bool {
        let entity = EntityRef::Query(qid);
        let slot = self.engine.home().cluster_of(entity);
        let in_engine = self.engine.remove_entity(entity);
        let in_registry = self.registry.deregister(qid).is_some();
        if in_engine {
            if let Some(slot) = slot {
                self.cache.purge_slot(slot);
            }
        }
        let known = in_engine || in_registry;
        if !known {
            self.registry.note_unknown();
            if let Some(v) = &mut self.validator {
                // Synthesise a minimal record of the doomed op so the
                // dead-letter buffer can carry it like any other reject.
                let ghost = LocationUpdate::query(
                    qid,
                    Point::ORIGIN,
                    now,
                    0.0,
                    Point::ORIGIN,
                    QueryAttrs {
                        spec: QuerySpec::square_range(0.0),
                    },
                );
                v.quarantine_control(&ghost, RejectReason::UnknownEntity);
            }
        }
        known
    }

    /// Records data-plane query updates in the registry (implicit
    /// registration): a query that reports is active.
    fn observe_queries(&mut self, updates: &[LocationUpdate]) {
        for u in updates {
            if let (Some(qid), Some(spec)) = (u.entity.as_query(), u.query_spec()) {
                self.registry.observe(qid, u.time, spec, None);
            }
        }
    }

    /// The ingestion validator, when one is active
    /// ([`ScubaParams::validation`] ≠ `Off`); exposes dead letters and
    /// rejection counters.
    pub fn validator(&self) -> Option<&UpdateValidator> {
        self.validator.as_ref()
    }

    /// The deadline-driven overload controller, when one is attached.
    pub fn overload(&self) -> Option<&OverloadController> {
        self.overload.as_ref()
    }

    /// The overload controller's lifetime counters, when one is attached.
    pub fn overload_counters(&self) -> Option<OverloadCounters> {
        self.overload.as_ref().map(|c| c.counters())
    }

    /// Screens one update through the validator (when active). `None`
    /// means the update must not reach the engine; a fatal verdict also
    /// freezes the operator.
    fn screen(&mut self, update: &LocationUpdate) -> Option<LocationUpdate> {
        match &mut self.validator {
            None => Some(*update),
            Some(v) => match v.check(update) {
                Verdict::Accept(clean) => Some(clean),
                Verdict::Reject(_) => None,
                Verdict::Fatal(reason) => {
                    self.fatal = Some(format!(
                        "validation abort: {reason} update from {:?} at t={}",
                        update.entity, update.time
                    ));
                    None
                }
            },
        }
    }

    /// Ingests already-validated updates, through the sharded batch path
    /// when configured. Validation happens strictly before sharding, so
    /// sharded ingestion stays bit-identical to the sequential walk under
    /// every policy.
    fn ingest_accepted(&mut self, updates: &[LocationUpdate]) {
        self.observe_queries(updates);
        let shards = self.engine.params().effective_ingest_shards();
        if shards <= 1 || updates.len() <= 1 {
            for update in updates {
                self.engine.process_update(update);
            }
            return;
        }
        let report = crate::ingest::ingest_batch(
            &mut self.engine,
            updates,
            shards,
            &mut self.ingest_scratch,
        );
        self.record_ingest(&report);
    }

    /// Accumulates one batch's ingest counters into the stats prepended to
    /// the next evaluation report.
    fn record_ingest(&mut self, r: &IngestReport) {
        self.pending_ingest.push(
            StageStats::maintenance(STAGE_INGEST_ROUTE)
                .with_wall(r.route_time)
                .with_items(r.total, r.interior)
                .with_tests(r.boundary),
        );
        self.pending_ingest.push(
            StageStats::maintenance(STAGE_INGEST_SHARD)
                .with_wall(r.shard_time)
                .with_items(r.interior + r.demoted, r.interior)
                .with_tests(r.shard_imbalance),
        );
        self.pending_ingest.push(
            StageStats::maintenance(STAGE_INGEST_FIXUP)
                .with_wall(r.fixup_time)
                .with_items(r.total, r.boundary)
                .with_tests(r.demoted),
        );
    }
}

impl ContinuousOperator for ScubaOperator {
    fn process_update(&mut self, update: &LocationUpdate) {
        if self.fatal.is_some() {
            return;
        }
        let sw = self.overload.is_some().then(Stopwatch::start);
        if let Some(clean) = self.screen(update) {
            self.observe_queries(std::slice::from_ref(&clean));
            self.engine.process_update(&clean);
        }
        if let Some(sw) = sw {
            self.tick_ingest += sw.elapsed();
        }
    }

    fn process_batch(&mut self, updates: &[LocationUpdate]) {
        if self.fatal.is_some() {
            return;
        }
        let sw = self.overload.is_some().then(Stopwatch::start);
        if self.validator.is_some() {
            let mut accepted = std::mem::take(&mut self.accepted_scratch);
            accepted.clear();
            for update in updates {
                if self.fatal.is_some() {
                    // Abort: nothing past the fatal update is ingested.
                    break;
                }
                if let Some(clean) = self.screen(update) {
                    accepted.push(clean);
                }
            }
            self.ingest_accepted(&accepted);
            self.accepted_scratch = accepted;
        } else {
            self.ingest_accepted(updates);
        }
        if let Some(sw) = sw {
            self.tick_ingest += sw.elapsed();
        }
    }

    fn apply_control(&mut self, ops: &[ControlOp], now: Time) {
        if self.fatal.is_some() {
            return;
        }
        for op in ops {
            match op {
                ControlOp::Register(u) | ControlOp::Update(u) => {
                    if u.entity.as_query().is_some() {
                        // The carried update flows through the normal
                        // screened ingest path: validation applies, the
                        // registry observes, the clusterer absorbs.
                        self.process_update(u);
                    } else {
                        // Malformed: a register/update carrying an object.
                        self.registry.note_unknown();
                        if let Some(v) = &mut self.validator {
                            v.quarantine_control(u, RejectReason::UnknownEntity);
                        }
                    }
                }
                ControlOp::Deregister(qid) => {
                    self.deregister_query(*qid, now);
                }
            }
        }
    }

    fn evaluate(&mut self, now: Time) -> EvaluationReport {
        self.evaluations += 1;
        let sw_tick = Stopwatch::start();
        // Ingest stages accumulated since the last evaluation lead the
        // report, mirroring their position in the pipeline — and the
        // validation front-end leads the ingest stages.
        let mut phases = PhaseBreakdown::new();
        if let Some(v) = &self.validator {
            let s = v.stats();
            let m = std::mem::replace(&mut self.vstats_mark, s);
            phases.push(
                StageStats::maintenance(STAGE_VALIDATE)
                    .with_items(s.seen - m.seen, s.accepted - m.accepted)
                    .with_tests(s.rejected_total() - m.rejected_total()),
            );
        }
        phases.absorb(&std::mem::take(&mut self.pending_ingest));
        let clusters_before = self.engine.cluster_count() as u64;

        // Tail of phase 1: tighten cluster radii so the join-between filter
        // sees exact regions (counted as maintenance, not join).
        let sw = Stopwatch::start();
        if self.engine.params().tighten_radii {
            self.engine.pre_join_tighten();
        }
        phases.push(
            StageStats::maintenance(STAGE_PRE_JOIN_TIGHTEN)
                .with_wall(sw.elapsed())
                .with_items(clusters_before, clusters_before),
        );

        // Incremental index re-balance: split hot cells / merge cooled ones
        // at a fixed point of the pipeline (adaptive grid only; the uniform
        // grid no-ops). Only per-Δ, so no tick pays a full rebuild storm.
        let sw = Stopwatch::start();
        self.engine.rebalance_index();
        phases.push(
            StageStats::maintenance(STAGE_GRID_REBALANCE)
                .with_wall(sw.elapsed())
                .with_items(clusters_before, clusters_before),
        );

        // Phase 2: cluster-based joining (the staged pipeline), incremental
        // across epochs when the join cache is enabled.
        let ctx = JoinContext {
            store: self.engine.store(),
            grid: self.engine.grid(),
            queries: self.engine.queries(),
            shedding: self.engine.params().shedding,
            theta_d: self.engine.params().theta_d,
            member_filter: self.engine.params().member_filter,
            parallelism: self.engine.params().parallelism,
            kernel: self.engine.params().kernel,
        };
        let epochs = self
            .engine
            .params()
            .join_cache
            .then(|| self.engine.epochs());
        let mut join = ctx.run_cached(epochs, &mut self.cache, &mut self.scratch);
        phases.extend(std::mem::take(&mut join.stages));
        // Extension: answer registered kNN queries alongside the range
        // join (zero-cost when the workload has none).
        let sw = Stopwatch::start();
        let knn = crate::knn::evaluate_continuous(&self.engine);
        let knn_found = knn.len() as u64;
        if !knn.is_empty() {
            join.results.extend(knn);
            join.results.sort_unstable();
            join.results.dedup();
        }
        phases.push(
            StageStats::join(STAGE_KNN)
                .with_wall(sw.elapsed())
                .with_items(knn_found, knn_found),
        );

        // Phase 3: post-join maintenance.
        let sw = Stopwatch::start();
        self.engine.post_join_maintenance(now);
        // Reconcile engine-side evictions (TTL, dissolves that removed the
        // attrs entry) back into the registry: a query the engine no
        // longer knows is no longer active.
        {
            let engine = &self.engine;
            self.registry
                .retain(|qid, _| engine.queries().get(qid).is_some());
        }
        let mut memory_bytes = self.engine.estimated_bytes();
        if let Some(adaptive) = &mut self.adaptive {
            if let Some(mode) = adaptive.observe(memory_bytes) {
                self.engine.set_shedding(mode);
                // Escalation takes effect immediately: discard nucleus
                // positions now rather than waiting for fresh updates.
                if mode.is_active() {
                    self.engine.shed_now();
                    memory_bytes = self.engine.estimated_bytes();
                }
            }
        }
        phases.push(
            StageStats::maintenance(STAGE_POST_JOIN)
                .with_wall(sw.elapsed())
                .with_items(clusters_before, self.engine.cluster_count() as u64),
        );

        // Overload control: charge this evaluation plus the interval's
        // ingest time against the deadline and walk the shedding ladder.
        if let Some(ctrl) = &mut self.overload {
            let measured = sw_tick.elapsed() + self.tick_ingest;
            let cost = self.scripted_costs.pop_front().unwrap_or(measured);
            self.tick_ingest = Duration::ZERO;
            let decision = ctrl.observe(cost);
            if decision.changed() {
                self.engine.set_shedding(decision.mode_after);
                // Escalation takes effect immediately, like the memory
                // controller above.
                if decision.escalated() && decision.mode_after.is_active() {
                    self.engine.shed_now();
                    memory_bytes = self.engine.estimated_bytes();
                }
            }
            phases.push(
                StageStats::maintenance(STAGE_OVERLOAD)
                    .with_items(cost.as_micros() as u64, ctrl.deadline().as_micros() as u64)
                    .with_tests(decision.missed as u64),
            );
        }

        EvaluationReport {
            now,
            results: join.results,
            phases,
            memory_bytes,
            comparisons: join.comparisons,
            prefilter_tests: join.prefilter_tests,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn memory_bytes(&self) -> usize {
        self.engine.estimated_bytes()
    }

    fn clusters_live(&self) -> Option<usize> {
        Some(self.engine.cluster_count())
    }

    fn fault(&self) -> Option<String> {
        self.fatal.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_motion::{ObjectAttrs, ObjectId, QueryAttrs, QueryId, QuerySpec};
    use scuba_spatial::Point;
    use scuba_stream::{Executor, ExecutorConfig};

    const CN: Point = Point {
        x: 1000.0,
        y: 500.0,
    };

    fn obj(id: u64, x: f64, y: f64) -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            0,
            30.0,
            CN,
            ObjectAttrs::default(),
        )
    }

    fn qry(id: u64, x: f64, y: f64, side: f64) -> LocationUpdate {
        LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            0,
            30.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(side),
            },
        )
    }

    #[test]
    fn end_to_end_single_evaluation() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 504.0, 500.0, 20.0));
        let report = op.evaluate(2);
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.now, 2);
        assert!(report.memory_bytes > 0);
        assert!(report.comparisons >= 1);
        assert_eq!(op.evaluations(), 1);
    }

    #[test]
    fn report_carries_stage_breakdown() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        op.process_update(&obj(1, 500.0, 500.0));
        op.process_update(&qry(1, 504.0, 500.0, 20.0));
        let report = op.evaluate(2);
        assert!(!report.phases.is_empty());
        assert!(report.phases.get(crate::join::STAGE_JOIN_WITHIN).is_some());
        assert!(report.phases.get(STAGE_PRE_JOIN_TIGHTEN).is_some());
        assert!(report.phases.get(STAGE_KNN).is_some());
        assert!(report.phases.get(STAGE_POST_JOIN).is_some());
        assert_eq!(
            report.total_time(),
            report.join_time() + report.maintenance_time()
        );
        assert_eq!(op.clusters_live(), Some(op.engine().cluster_count()));
    }

    #[test]
    fn works_under_executor() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        let mut t = 0u64;
        let mut source = move || {
            t += 1;
            vec![
                obj(1, 500.0 + t as f64 * 30.0, 500.0),
                qry(1, 503.0 + t as f64 * 30.0, 500.0, 20.0),
            ]
        };
        let exec = Executor::new(ExecutorConfig {
            delta: 2,
            duration: 6,
        });
        let run = exec.run(&mut source, &mut op);
        assert_eq!(run.evaluations.len(), 3);
        assert_eq!(run.updates_ingested, 12);
        // The object stays within the query range the whole time.
        for e in &run.evaluations {
            assert_eq!(e.results.len(), 1, "at t={}", e.now);
        }
    }

    #[test]
    fn name_reflects_shedding() {
        let plain = ScubaOperator::new(ScubaParams::default(), Rect::square(10.0));
        assert_eq!(plain.name(), "SCUBA");
        let shed = ScubaOperator::new(
            ScubaParams::default().with_shedding(crate::SheddingMode::Full),
            Rect::square(10.0),
        );
        assert!(shed.name().contains("shedding"));
    }

    #[test]
    fn post_join_runs_each_evaluation() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        op.process_update(&obj(1, 500.0, 500.0));
        let centroid_before = op.engine().clusters().values().next().unwrap().centroid();
        op.evaluate(2);
        let centroid_after = op.engine().clusters().values().next().unwrap().centroid();
        assert!(centroid_after.x > centroid_before.x, "cluster relocated");
    }

    #[test]
    fn invariants_hold_across_noisy_run() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        for round in 0..6u64 {
            for i in 0..50u64 {
                let x = (i * 37 % 900) as f64 + 50.0 + round as f64;
                let y = (i * 61 % 900) as f64 + 50.0;
                if i % 2 == 0 {
                    op.process_update(&obj(i, x, y));
                } else {
                    op.process_update(&qry(i, x, y, 30.0));
                }
            }
            op.engine().check_invariants();
            op.evaluate(round * 2 + 2);
            op.engine().check_invariants();
        }
    }

    #[test]
    fn stationary_workload_hits_join_cache() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        // Stationary convoy (zero speed, distant destination): nothing
        // mutates between evaluations, so epoch 2 replays epoch 1's pairs.
        for i in 0..5u64 {
            op.process_update(&LocationUpdate::object(
                ObjectId(i),
                Point::new(500.0 + i as f64, 500.0),
                0,
                0.0,
                CN,
                ObjectAttrs::default(),
            ));
        }
        op.process_update(&LocationUpdate::query(
            QueryId(1),
            Point::new(502.0, 501.0),
            0,
            0.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(20.0),
            },
        ));
        let first = op.evaluate(2);
        let warm = op.evaluate(4);
        assert_eq!(first.results, warm.results);
        assert!(!op.join_cache().is_empty());
        let within = warm.phases.get(crate::join::STAGE_JOIN_WITHIN).unwrap();
        assert!(within.cache_hits > 0, "clean pairs replay from the cache");
        assert_eq!(within.cache_misses, 0);
        assert_eq!(within.tests, 0, "no member work on a clean epoch");
    }

    #[test]
    fn cache_disabled_keeps_results_identical() {
        let run = |join_cache: bool| {
            let params = ScubaParams::default().with_join_cache(join_cache);
            let mut op = ScubaOperator::new(params, Rect::square(1000.0));
            let mut all = Vec::new();
            for round in 0..4u64 {
                for i in 0..30u64 {
                    let x = (i * 37 % 900) as f64 + 50.0 + round as f64;
                    let y = (i * 61 % 900) as f64 + 50.0;
                    if i % 2 == 0 {
                        op.process_update(&obj(i, x, y));
                    } else {
                        op.process_update(&qry(i, x, y, 30.0));
                    }
                }
                all.push(op.evaluate(round * 2 + 2).results);
            }
            all
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn adaptive_budget_escalates_shedding() {
        use crate::SheddingMode;
        // A budget far below what 200 tracked entities need.
        let mut op =
            ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0)).with_memory_budget(1);
        assert_eq!(op.current_shedding(), SheddingMode::None);
        for round in 0..5u64 {
            for i in 0..100u64 {
                op.process_update(&obj(i, 100.0 + (i % 50) as f64, 100.0 + round as f64));
                op.process_update(&qry(i, 600.0 + (i % 50) as f64, 600.0 + round as f64, 20.0));
            }
            op.evaluate((round + 1) * 2);
        }
        assert_eq!(
            op.current_shedding(),
            SheddingMode::Full,
            "unreachable budget should drive the ladder to Full"
        );
        assert!(op.name().contains("budget"));
        // Positions are actually gone.
        assert!(op
            .engine()
            .clusters()
            .values()
            .flat_map(|c| c.members())
            .all(|m| m.is_shed()));
    }

    #[test]
    fn validation_rejects_without_touching_engine_state() {
        use scuba_stream::RejectReason;
        let params = ScubaParams::default().with_validation(crate::ValidationPolicy::Reject);
        let mut op = ScubaOperator::new(params, Rect::square(1000.0));
        assert!(op.name().contains("validate=reject"));
        op.process_update(&obj(1, 500.0, 500.0));
        let clusters = op.engine().cluster_count();
        // NaN coordinate, out-of-region point, replayed key: all rejected.
        op.process_update(&obj(2, f64::NAN, 500.0));
        op.process_update(&obj(3, 5000.0, 500.0));
        op.process_update(&obj(1, 501.0, 500.0)); // duplicate (t=0, obj 1)
        assert_eq!(op.engine().cluster_count(), clusters);
        op.engine().check_invariants();
        let v = op.validator().expect("validator attached");
        assert_eq!(v.stats().rejected_total(), 3);
        assert_eq!(v.stats().rejected(RejectReason::DuplicateKey), 1);
        assert_eq!(v.dead_letter_len(), 3);
        // The stage breakdown carries the interval's validation counters.
        let report = op.evaluate(2);
        let row = report.phases.get(STAGE_VALIDATE).expect("validate row");
        assert_eq!(row.items_in, 4);
        assert_eq!(row.items_out, 1);
        assert_eq!(row.tests, 3);
        // Deltas reset per interval.
        let report = op.evaluate(4);
        let row = report.phases.get(STAGE_VALIDATE).unwrap();
        assert_eq!(row.items_in, 0);
    }

    #[test]
    fn validation_applies_before_sharded_ingest() {
        // A malformed update inside a large batch must be filtered under
        // both the sequential and the sharded path, leaving identical
        // engine states.
        let run = |shards: usize| {
            let params = ScubaParams::default()
                .with_validation(crate::ValidationPolicy::Reject)
                .with_ingest_shards(shards);
            let mut op = ScubaOperator::new(params, Rect::square(1000.0));
            let mut batch: Vec<LocationUpdate> = (0..40u64)
                .map(|i| {
                    obj(
                        i,
                        50.0 + (i * 23 % 900) as f64,
                        50.0 + (i * 41 % 900) as f64,
                    )
                })
                .collect();
            batch.push(obj(100, f64::NAN, 2.0));
            batch.push(obj(101, -999.0, 2.0));
            op.process_batch(&batch);
            op.engine().check_invariants();
            (
                op.evaluate(2).results,
                op.validator().unwrap().stats().rejected_total(),
            )
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn abort_policy_freezes_the_operator() {
        let params = ScubaParams::default().with_validation(crate::ValidationPolicy::Abort);
        let mut op = ScubaOperator::new(params, Rect::square(1000.0));
        assert_eq!(op.fault(), None);
        op.process_batch(&[
            obj(1, 500.0, 500.0),
            obj(2, f64::NAN, 0.0),
            obj(3, 400.0, 400.0),
        ]);
        let reason = op.fault().expect("fatal fault reported");
        assert!(reason.contains("non-finite-coord"), "{reason}");
        // The update before the fault landed; the one after did not, and
        // later batches are ignored entirely.
        let seen = op.engine().cluster_count();
        assert!(seen >= 1);
        op.process_batch(&[obj(4, 300.0, 300.0)]);
        op.process_update(&obj(5, 200.0, 200.0));
        assert_eq!(op.engine().cluster_count(), seen);
    }

    #[test]
    fn overload_controller_escalates_and_relaxes_on_scripted_costs() {
        use crate::SheddingMode;
        let budget = Duration::from_micros(100);
        let slow = Duration::from_micros(500);
        let fast = Duration::from_micros(10);
        let params = ScubaParams::default().with_deadline_us(Some(100));
        let mut op = ScubaOperator::new(params, Rect::square(1000.0))
            .with_scripted_tick_costs(vec![slow, slow, fast, fast, fast]);
        assert!(op.name().contains("deadline=100us"));
        assert_eq!(op.overload().unwrap().deadline(), budget);
        for round in 0..5u64 {
            op.process_update(&obj(round, 100.0 + round as f64, 100.0));
            let report = op.evaluate((round + 1) * 2);
            let row = report.phases.get(STAGE_OVERLOAD).expect("overload row");
            assert_eq!(row.items_out, 100, "deadline budget in µs");
            if round == 1 {
                // Second consecutive miss: escalated, positions shed now.
                assert_eq!(op.current_shedding(), SheddingMode::Partial { eta: 0.25 });
                assert_eq!(row.tests, 1);
            }
        }
        // Three clean ticks relaxed back down.
        assert_eq!(op.current_shedding(), SheddingMode::None);
        let k = op.overload_counters().unwrap();
        assert_eq!(k.ticks, 5);
        assert_eq!(k.misses, 2);
        assert_eq!(k.escalations, 1);
        assert_eq!(k.relaxations, 1);
    }

    #[test]
    fn overload_escalation_sheds_positions_immediately() {
        let slow = Duration::from_micros(900);
        let params = ScubaParams::default().with_deadline_us(Some(1));
        let mut op = ScubaOperator::new(params, Rect::square(1000.0))
            .with_scripted_tick_costs(vec![slow; 20]);
        for round in 0..10u64 {
            for i in 0..40u64 {
                op.process_update(&obj(i, 100.0 + (i % 20) as f64, 100.0 + round as f64));
            }
            op.evaluate((round + 1) * 2);
            op.engine().check_invariants();
        }
        assert_eq!(op.current_shedding(), crate::SheddingMode::Full);
        assert!(op
            .engine()
            .clusters()
            .values()
            .flat_map(|c| c.members())
            .all(|m| m.is_shed()));
    }

    #[test]
    fn no_deadline_means_no_overload_row() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        op.process_update(&obj(1, 500.0, 500.0));
        let report = op.evaluate(2);
        assert!(report.phases.get(STAGE_OVERLOAD).is_none());
        assert!(report.phases.get(STAGE_VALIDATE).is_none());
        assert_eq!(op.overload_counters(), None);
        assert!(op.validator().is_none());
    }

    #[test]
    fn control_lifecycle_registers_and_deregisters() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        op.process_update(&obj(1, 500.0, 500.0));
        op.apply_control(&[ControlOp::Register(qry(7, 504.0, 500.0, 20.0))], 1);
        let g = op.control_gauges();
        assert_eq!(g.active_queries, 1);
        assert_eq!(g.registered_total, 1);
        assert_eq!(op.registry().get(QueryId(7)).unwrap().registered_at, 0);
        assert_eq!(op.evaluate(2).results.len(), 1);

        op.apply_control(&[ControlOp::Deregister(QueryId(7))], 3);
        let g = op.control_gauges();
        assert_eq!(g.active_queries, 0);
        assert_eq!(g.deregistered_total, 1);
        assert!(op.evaluate(4).results.is_empty(), "query is gone");
        op.engine().check_invariants();
    }

    #[test]
    fn data_plane_updates_register_implicitly() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        op.process_batch(&[obj(1, 500.0, 500.0), qry(3, 504.0, 500.0, 20.0)]);
        let g = op.control_gauges();
        assert_eq!(g.active_queries, 1);
        assert_eq!(g.registered_total, 1);
        // A refresh does not re-register.
        op.process_update(&LocationUpdate::query(
            QueryId(3),
            Point::new(505.0, 500.0),
            1,
            30.0,
            CN,
            QueryAttrs {
                spec: QuerySpec::square_range(20.0),
            },
        ));
        assert_eq!(op.control_gauges().registered_total, 1);
    }

    #[test]
    fn unknown_deregister_lands_in_dead_letters() {
        use scuba_stream::RejectReason;
        let params = ScubaParams::default().with_validation(crate::ValidationPolicy::Reject);
        let mut op = ScubaOperator::new(params, Rect::square(1000.0));
        op.apply_control(&[ControlOp::Deregister(QueryId(99))], 1);
        assert_eq!(op.control_gauges().unknown_total, 1);
        let v = op.validator().unwrap();
        assert_eq!(v.stats().rejected(RejectReason::UnknownEntity), 1);
        assert_eq!(v.dead_letter_len(), 1);
        // Without a validator the op is still counted, never dropped
        // silently.
        let mut bare = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        bare.apply_control(&[ControlOp::Deregister(QueryId(99))], 1);
        assert_eq!(bare.control_gauges().unknown_total, 1);
    }

    #[test]
    fn deregister_purges_cached_rows_without_global_flush() {
        // Two independent convoys, each with its own query: deregistering
        // one query must purge only its cluster's cached pairs.
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        let mut feed = |op: &mut ScubaOperator, base: f64, qid: u64| {
            for i in 0..4u64 {
                op.process_update(&LocationUpdate::object(
                    ObjectId(qid * 100 + i),
                    Point::new(base + i as f64, base),
                    0,
                    0.0,
                    CN,
                    ObjectAttrs::default(),
                ));
            }
            op.process_update(&LocationUpdate::query(
                QueryId(qid),
                Point::new(base + 1.0, base + 1.0),
                0,
                0.0,
                CN,
                QueryAttrs {
                    spec: QuerySpec::square_range(20.0),
                },
            ));
        };
        feed(&mut op, 200.0, 1);
        feed(&mut op, 700.0, 2);
        op.evaluate(2);
        op.evaluate(4);
        let cached_before = op.join_cache().len();
        assert!(cached_before > 0, "warm cache");
        op.apply_control(&[ControlOp::Deregister(QueryId(1))], 5);
        assert!(
            !op.join_cache().is_empty(),
            "deregister must not flush the whole cache"
        );
        assert!(op.join_cache().len() < cached_before, "its rows fell");
        // The surviving query still answers, bit-identically.
        let results = op.evaluate(6).results;
        assert!(results.iter().all(|m| m.query == QueryId(2)));
        assert!(!results.is_empty());
        op.engine().check_invariants();
    }

    #[test]
    fn generous_budget_never_sheds() {
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0))
            .with_memory_budget(usize::MAX);
        for i in 0..50u64 {
            op.process_update(&obj(i, 500.0 + (i % 20) as f64, 500.0));
        }
        op.evaluate(2);
        assert_eq!(op.current_shedding(), crate::SheddingMode::None);
    }
}
