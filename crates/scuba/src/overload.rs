//! Deadline-driven adaptive overload control.
//!
//! The paper's §5 triggers load shedding from *memory* pressure
//! ([`crate::shedding::AdaptiveShedder`]). A streaming deployment has a
//! second budget: each Δ-period's work must finish before the next period's
//! updates arrive, or the operator falls permanently behind. The
//! [`OverloadController`] watches the measured evaluation + ingest
//! wall-time of every tick against a configurable deadline and walks the
//! same shedding ladder:
//!
//! * **escalate** one rung after [`OverloadConfig::escalate_after`]
//!   *consecutive* deadline misses (a single slow tick — a GC pause, a cold
//!   cache — does not shed data);
//! * **relax** one rung after [`OverloadConfig::relax_after`] consecutive
//!   clean ticks (hysteresis, so the mode does not oscillate around the
//!   deadline).
//!
//! The controller is a pure state machine over observed durations — it
//! never reads a clock itself — so tests drive it with scripted timings
//! and production feeds it `Stopwatch` measurements.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::shedding::SheddingMode;

/// Tuning for the [`OverloadController`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Per-evaluation wall-time budget (evaluation + ingest since the
    /// previous evaluation).
    pub deadline: Duration,
    /// Consecutive deadline misses before escalating one rung.
    pub escalate_after: u32,
    /// Consecutive clean ticks before relaxing one rung.
    pub relax_after: u32,
    /// Shedding ladder, ordered least → most aggressive (must be
    /// non-empty; the controller starts at rung 0).
    pub ladder: Vec<SheddingMode>,
}

impl OverloadConfig {
    /// The default ladder shared with [`crate::shedding::AdaptiveShedder`]:
    /// `None → η=0.25 → η=0.5 → η=0.75 → Full`.
    pub fn default_ladder() -> Vec<SheddingMode> {
        vec![
            SheddingMode::None,
            SheddingMode::Partial { eta: 0.25 },
            SheddingMode::Partial { eta: 0.5 },
            SheddingMode::Partial { eta: 0.75 },
            SheddingMode::Full,
        ]
    }

    /// Config with the default ladder and hysteresis (escalate after 2
    /// consecutive misses, relax after 3 consecutive clean ticks).
    pub fn with_deadline(deadline: Duration) -> Self {
        OverloadConfig {
            deadline,
            escalate_after: 2,
            relax_after: 3,
            ladder: OverloadConfig::default_ladder(),
        }
    }
}

/// Lifetime counters of an [`OverloadController`], for reports and `--json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OverloadCounters {
    /// Ticks observed.
    pub ticks: u64,
    /// Ticks whose cost exceeded the deadline.
    pub misses: u64,
    /// Rung increases (None → Partial, Partial → Full, …).
    pub escalations: u64,
    /// Rung decreases.
    pub relaxations: u64,
}

/// One observation's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadDecision {
    /// The tick cost that was observed.
    pub observed: Duration,
    /// Whether it exceeded the deadline.
    pub missed: bool,
    /// Shedding mode before the observation.
    pub mode_before: SheddingMode,
    /// Shedding mode after (equal to `mode_before` unless the controller
    /// moved).
    pub mode_after: SheddingMode,
}

impl OverloadDecision {
    /// Whether the controller changed mode on this observation.
    pub fn changed(&self) -> bool {
        self.mode_before != self.mode_after
    }

    /// Whether the mode became more aggressive.
    pub fn escalated(&self) -> bool {
        self.changed() && self.missed
    }

    /// Whether the mode became less aggressive.
    pub fn relaxed(&self) -> bool {
        self.changed() && !self.missed
    }
}

/// The deadline-driven shedding state machine (see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadController {
    config: OverloadConfig,
    level: usize,
    consecutive_misses: u32,
    consecutive_clean: u32,
    counters: OverloadCounters,
}

impl OverloadController {
    /// Creates a controller at the bottom rung of the config's ladder.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty or a hysteresis threshold is zero —
    /// both are programming errors, not runtime conditions.
    pub fn new(config: OverloadConfig) -> Self {
        assert!(
            !config.ladder.is_empty(),
            "overload ladder must be non-empty"
        );
        assert!(
            config.escalate_after >= 1 && config.relax_after >= 1,
            "overload hysteresis thresholds must be >= 1"
        );
        OverloadController {
            config,
            level: 0,
            consecutive_misses: 0,
            consecutive_clean: 0,
            counters: OverloadCounters::default(),
        }
    }

    /// The configured deadline.
    pub fn deadline(&self) -> Duration {
        self.config.deadline
    }

    /// The currently selected mode.
    pub fn current(&self) -> SheddingMode {
        self.config.ladder[self.level]
    }

    /// Lifetime counters.
    pub fn counters(&self) -> OverloadCounters {
        self.counters
    }

    /// Whether the controller sits at the top rung — further misses cannot
    /// shed more.
    pub fn saturated(&self) -> bool {
        self.level + 1 == self.config.ladder.len()
    }

    /// Feeds one tick's measured cost; returns what (if anything) changed.
    pub fn observe(&mut self, cost: Duration) -> OverloadDecision {
        let mode_before = self.current();
        let missed = cost > self.config.deadline;
        self.counters.ticks += 1;
        if missed {
            self.counters.misses += 1;
            self.consecutive_clean = 0;
            self.consecutive_misses += 1;
            if self.consecutive_misses >= self.config.escalate_after {
                self.consecutive_misses = 0;
                if self.level + 1 < self.config.ladder.len() {
                    self.level += 1;
                    self.counters.escalations += 1;
                }
            }
        } else {
            self.consecutive_misses = 0;
            self.consecutive_clean += 1;
            if self.consecutive_clean >= self.config.relax_after {
                self.consecutive_clean = 0;
                if self.level > 0 {
                    self.level -= 1;
                    self.counters.relaxations += 1;
                }
            }
        }
        OverloadDecision {
            observed: cost,
            missed,
            mode_before,
            mode_after: self.current(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(deadline_us: u64) -> OverloadController {
        OverloadController::new(OverloadConfig::with_deadline(Duration::from_micros(
            deadline_us,
        )))
    }

    const SLOW: Duration = Duration::from_micros(150);
    const FAST: Duration = Duration::from_micros(10);

    #[test]
    fn starts_at_the_bottom_rung() {
        let c = controller(100);
        assert_eq!(c.current(), SheddingMode::None);
        assert_eq!(c.deadline(), Duration::from_micros(100));
        assert!(!c.saturated());
        assert_eq!(c.counters(), OverloadCounters::default());
    }

    #[test]
    fn one_miss_does_not_escalate() {
        let mut c = controller(100);
        let d = c.observe(SLOW);
        assert!(d.missed);
        assert!(!d.changed());
        assert_eq!(c.current(), SheddingMode::None);
        assert_eq!(c.counters().misses, 1);
    }

    #[test]
    fn consecutive_misses_escalate_one_rung_at_a_time() {
        let mut c = controller(100);
        c.observe(SLOW);
        let d = c.observe(SLOW);
        assert!(d.escalated());
        assert_eq!(d.mode_before, SheddingMode::None);
        assert_eq!(d.mode_after, SheddingMode::Partial { eta: 0.25 });
        // The streak resets after an escalation: two more misses needed.
        assert!(!c.observe(SLOW).changed());
        assert!(c.observe(SLOW).escalated());
        assert_eq!(c.current(), SheddingMode::Partial { eta: 0.5 });
        assert_eq!(c.counters().escalations, 2);
    }

    #[test]
    fn a_clean_tick_breaks_the_miss_streak() {
        let mut c = controller(100);
        c.observe(SLOW);
        c.observe(FAST);
        assert!(!c.observe(SLOW).changed(), "streak was broken");
        assert_eq!(c.current(), SheddingMode::None);
    }

    #[test]
    fn relaxes_after_enough_clean_ticks() {
        let mut c = controller(100);
        c.observe(SLOW);
        c.observe(SLOW);
        assert_eq!(c.current(), SheddingMode::Partial { eta: 0.25 });
        c.observe(FAST);
        c.observe(FAST);
        let d = c.observe(FAST);
        assert!(d.relaxed());
        assert_eq!(c.current(), SheddingMode::None);
        assert_eq!(c.counters().relaxations, 1);
    }

    #[test]
    fn a_miss_breaks_the_clean_streak() {
        let mut c = controller(100);
        c.observe(SLOW);
        c.observe(SLOW); // Partial 0.25
        c.observe(FAST);
        c.observe(FAST);
        c.observe(SLOW); // clean streak reset (miss streak now 1)
        c.observe(FAST);
        c.observe(FAST);
        assert_eq!(c.current(), SheddingMode::Partial { eta: 0.25 });
        assert!(c.observe(FAST).relaxed());
    }

    #[test]
    fn saturates_at_full_and_floors_at_none() {
        let mut c = controller(100);
        for _ in 0..20 {
            c.observe(SLOW);
        }
        assert_eq!(c.current(), SheddingMode::Full);
        assert!(c.saturated());
        assert_eq!(c.counters().escalations, 4, "ladder has 4 upward moves");
        for _ in 0..40 {
            c.observe(FAST);
        }
        assert_eq!(c.current(), SheddingMode::None);
        assert_eq!(c.counters().relaxations, 4);
        // More clean ticks at the floor change nothing.
        assert!(!c.observe(FAST).changed());
    }

    #[test]
    fn exact_deadline_is_not_a_miss() {
        let mut c = controller(100);
        assert!(!c.observe(Duration::from_micros(100)).missed);
        assert!(c.observe(Duration::from_micros(101)).missed);
    }

    #[test]
    fn counters_track_every_tick() {
        let mut c = controller(100);
        c.observe(SLOW);
        c.observe(FAST);
        c.observe(SLOW);
        let k = c.counters();
        assert_eq!(k.ticks, 3);
        assert_eq!(k.misses, 2);
    }

    #[test]
    fn deterministic_given_identical_timings() {
        let script: Vec<Duration> = (0..50)
            .map(|i| {
                if i % 7 < 4 {
                    Duration::from_micros(150)
                } else {
                    Duration::from_micros(20)
                }
            })
            .collect();
        let run = |script: &[Duration]| {
            let mut c = controller(100);
            let decisions: Vec<OverloadDecision> = script.iter().map(|&d| c.observe(d)).collect();
            (decisions, c.counters(), c.current())
        };
        assert_eq!(run(&script), run(&script));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_ladder_panics() {
        let _ = OverloadController::new(OverloadConfig {
            deadline: Duration::from_micros(1),
            escalate_after: 1,
            relax_after: 1,
            ladder: vec![],
        });
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn zero_hysteresis_panics() {
        let _ = OverloadController::new(OverloadConfig {
            deadline: Duration::from_micros(1),
            escalate_after: 0,
            relax_after: 1,
            ladder: OverloadConfig::default_ladder(),
        });
    }
}
