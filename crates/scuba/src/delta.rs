//! Incremental result output — the paper's §8 future work ("we plan to …
//! enhance SCUBA to produce results incrementally").
//!
//! A continuous query's consumer rarely wants the full answer set every Δ;
//! it wants what *changed*: objects that entered a query's range
//! (`added`, the positive delta) and objects that left it (`removed`, the
//! negative delta). [`DeltaTracker`] turns the engine's per-interval
//! snapshots into exactly that, in a single merge pass over the sorted
//! result vectors the join already produces.

use serde::{Deserialize, Serialize};

use scuba_spatial::Time;
use scuba_stream::QueryMatch;

/// The change between two consecutive evaluations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResultDelta {
    /// Evaluation time this delta belongs to.
    pub now: Time,
    /// Matches present now but not in the previous evaluation.
    pub added: Vec<QueryMatch>,
    /// Matches present previously but gone now.
    pub removed: Vec<QueryMatch>,
}

impl ResultDelta {
    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total number of change records.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

/// Converts a stream of full result snapshots into deltas.
///
/// # Examples
///
/// ```
/// use scuba::DeltaTracker;
/// use scuba_motion::{ObjectId, QueryId};
/// use scuba_stream::QueryMatch;
///
/// let m = |q, o| QueryMatch::new(QueryId(q), ObjectId(o));
/// let mut tracker = DeltaTracker::new();
///
/// let d1 = tracker.observe(2, &[m(1, 1), m(1, 2)]);
/// assert_eq!(d1.added.len(), 2);
///
/// let d2 = tracker.observe(4, &[m(1, 2), m(2, 9)]);
/// assert_eq!(d2.added, vec![m(2, 9)]);
/// assert_eq!(d2.removed, vec![m(1, 1)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeltaTracker {
    /// Previous snapshot, sorted and deduplicated.
    previous: Vec<QueryMatch>,
}

impl DeltaTracker {
    /// Creates a tracker with an empty previous snapshot (the first
    /// observation reports every match as `added`).
    pub fn new() -> Self {
        Self::default()
    }

    /// The last observed snapshot.
    pub fn current(&self) -> &[QueryMatch] {
        &self.previous
    }

    /// Observes one evaluation's results (any order, duplicates allowed)
    /// and returns the delta against the previous observation.
    pub fn observe(&mut self, now: Time, results: &[QueryMatch]) -> ResultDelta {
        let mut snapshot: Vec<QueryMatch> = results.to_vec();
        snapshot.sort_unstable();
        snapshot.dedup();
        self.observe_sorted(now, snapshot)
    }

    /// Like [`DeltaTracker::observe`] but takes an already sorted,
    /// deduplicated snapshot (what [`crate::join::JoinContext::run`]
    /// produces), avoiding the re-sort.
    pub fn observe_sorted(&mut self, now: Time, snapshot: Vec<QueryMatch>) -> ResultDelta {
        debug_assert!(snapshot.windows(2).all(|w| w[0] < w[1]), "input not sorted");
        let mut delta = ResultDelta {
            now,
            ..Default::default()
        };
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.previous.len() && j < snapshot.len() {
            match self.previous[i].cmp(&snapshot[j]) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    delta.removed.push(self.previous[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    delta.added.push(snapshot[j]);
                    j += 1;
                }
            }
        }
        delta.removed.extend_from_slice(&self.previous[i..]);
        delta.added.extend_from_slice(&snapshot[j..]);
        self.previous = snapshot;
        delta
    }

    /// Reconstructs the current snapshot from a starting state plus a
    /// sequence of deltas — the consumer-side inverse of `observe`.
    pub fn replay(initial: &[QueryMatch], deltas: &[ResultDelta]) -> Vec<QueryMatch> {
        let mut state: Vec<QueryMatch> = initial.to_vec();
        state.sort_unstable();
        state.dedup();
        for d in deltas {
            for r in &d.removed {
                if let Ok(pos) = state.binary_search(r) {
                    state.remove(pos);
                }
            }
            for a in &d.added {
                if let Err(pos) = state.binary_search(a) {
                    state.insert(pos, *a);
                }
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_motion::{ObjectId, QueryId};

    fn m(q: u64, o: u64) -> QueryMatch {
        QueryMatch::new(QueryId(q), ObjectId(o))
    }

    #[test]
    fn first_observation_is_all_added() {
        let mut t = DeltaTracker::new();
        let d = t.observe(2, &[m(1, 1), m(1, 2)]);
        assert_eq!(d.added, vec![m(1, 1), m(1, 2)]);
        assert!(d.removed.is_empty());
        assert_eq!(d.now, 2);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn steady_state_is_empty_delta() {
        let mut t = DeltaTracker::new();
        t.observe(2, &[m(1, 1), m(2, 2)]);
        let d = t.observe(4, &[m(1, 1), m(2, 2)]);
        assert!(d.is_empty());
    }

    #[test]
    fn add_and_remove_detected() {
        let mut t = DeltaTracker::new();
        t.observe(2, &[m(1, 1), m(1, 2), m(2, 1)]);
        let d = t.observe(4, &[m(1, 2), m(2, 1), m(3, 3)]);
        assert_eq!(d.removed, vec![m(1, 1)]);
        assert_eq!(d.added, vec![m(3, 3)]);
    }

    #[test]
    fn everything_removed() {
        let mut t = DeltaTracker::new();
        t.observe(2, &[m(1, 1)]);
        let d = t.observe(4, &[]);
        assert_eq!(d.removed, vec![m(1, 1)]);
        assert!(d.added.is_empty());
        assert!(t.current().is_empty());
    }

    #[test]
    fn unsorted_duplicated_input_tolerated() {
        let mut t = DeltaTracker::new();
        let d = t.observe(2, &[m(2, 1), m(1, 1), m(1, 1)]);
        assert_eq!(d.added, vec![m(1, 1), m(2, 1)]);
        assert_eq!(t.current(), &[m(1, 1), m(2, 1)]);
    }

    #[test]
    fn replay_reconstructs_state() {
        let mut t = DeltaTracker::new();
        let snapshots: Vec<Vec<QueryMatch>> = vec![
            vec![m(1, 1), m(1, 2)],
            vec![m(1, 2), m(2, 2)],
            vec![],
            vec![m(3, 3)],
        ];
        let mut deltas = Vec::new();
        for (i, s) in snapshots.iter().enumerate() {
            deltas.push(t.observe((i as u64 + 1) * 2, s));
        }
        let replayed = DeltaTracker::replay(&[], &deltas);
        assert_eq!(replayed, *snapshots.last().unwrap());
        // Replay from a mid-stream state using the tail of the deltas.
        let replayed_tail = DeltaTracker::replay(&snapshots[1], &deltas[2..]);
        assert_eq!(replayed_tail, *snapshots.last().unwrap());
    }

    /// Every operator's stage-4 output must be sorted and deduplicated, so
    /// the merge-based `observe_sorted` fast path and the re-sorting
    /// `observe` path must produce identical deltas from it.
    #[test]
    fn observe_paths_agree_on_every_operator() {
        use crate::ops::{OperatorKind, OpsConfig};
        use crate::ScubaParams;
        use scuba_motion::{LocationUpdate, ObjectAttrs, QueryAttrs, QuerySpec};
        use scuba_spatial::{Point, Rect};

        let cn = Point::new(1000.0, 500.0);
        let config = OpsConfig::new(ScubaParams::default(), Rect::square(1000.0));
        for kind in OperatorKind::ALL {
            let mut op = config.build(kind);
            let mut sorted_tracker = DeltaTracker::new();
            let mut plain_tracker = DeltaTracker::new();
            for round in 0..4u64 {
                for i in 0..25u64 {
                    let x = ((i * 83 + round * 131) % 1000) as f64;
                    let y = ((i * 47 + round * 59) % 1000) as f64;
                    let u = if i % 3 == 0 {
                        LocationUpdate::query(
                            QueryId(i),
                            Point::new(x, y),
                            round * 2,
                            20.0,
                            cn,
                            QueryAttrs {
                                spec: QuerySpec::square_range(120.0),
                            },
                        )
                    } else {
                        LocationUpdate::object(
                            ObjectId(i),
                            Point::new(x, y),
                            round * 2,
                            20.0,
                            cn,
                            ObjectAttrs::default(),
                        )
                    };
                    op.process_update(&u);
                }
                let now = (round + 1) * 2;
                let results = op.evaluate(now).results;
                let plain = plain_tracker.observe(now, &results);
                let fast = sorted_tracker.observe_sorted(now, results);
                assert_eq!(plain, fast, "{kind:?} at t={now}");
            }
        }
    }

    #[test]
    fn works_with_engine_output() {
        use crate::{ScubaOperator, ScubaParams};
        use scuba_motion::{LocationUpdate, ObjectAttrs, QueryAttrs, QuerySpec};
        use scuba_spatial::{Point, Rect};
        use scuba_stream::ContinuousOperator;

        let cn = Point::new(1000.0, 500.0);
        let mut op = ScubaOperator::new(ScubaParams::default(), Rect::square(1000.0));
        let mut tracker = DeltaTracker::new();

        // t=2: object inside the query range.
        op.process_update(&LocationUpdate::object(
            ObjectId(1),
            Point::new(500.0, 500.0),
            1,
            30.0,
            cn,
            ObjectAttrs::default(),
        ));
        op.process_update(&LocationUpdate::query(
            QueryId(1),
            Point::new(505.0, 500.0),
            1,
            30.0,
            cn,
            QueryAttrs {
                spec: QuerySpec::square_range(20.0),
            },
        ));
        let r1 = op.evaluate(2);
        let d1 = tracker.observe_sorted(2, r1.results);
        assert_eq!(d1.added, vec![m(1, 1)]);

        // t=4: object reported far away → match disappears.
        op.process_update(&LocationUpdate::object(
            ObjectId(1),
            Point::new(100.0, 100.0),
            3,
            30.0,
            cn,
            ObjectAttrs::default(),
        ));
        op.process_update(&LocationUpdate::query(
            QueryId(1),
            Point::new(505.0, 500.0),
            3,
            30.0,
            cn,
            QueryAttrs {
                spec: QuerySpec::square_range(20.0),
            },
        ));
        let r2 = op.evaluate(4);
        let d2 = tracker.observe_sorted(4, r2.results);
        assert_eq!(d2.removed, vec![m(1, 1)]);
        assert!(d2.added.is_empty());
    }
}
