//! The cluster-based joining phase (paper §4, Algorithms 1–3).
//!
//! The phase runs as an explicit four-stage pipeline, each stage emitting
//! a [`StageStats`] record:
//!
//! 1. **pair discovery** — the ClusterGrid cell walk, materialising the
//!    unique cluster-slot pairs sharing at least one cell. Each candidate
//!    pair packs into one `u64` key; sorting + dedup of the reused key
//!    buffer replaces the old retained hash table, so the stage holds *no*
//!    cross-round state that could accumulate keys for dissolved clusters;
//! 2. **join-between** (Algorithm 2) — the circle/circle overlap
//!    pre-filter, evaluated as a sweep over the [`ClusterStore`]'s SoA
//!    centroid/radius columns (no per-pair pointer chase). Pairs whose
//!    regions do not overlap are pruned: their members are *guaranteed*
//!    not to join individually (the cluster region covers all member
//!    positions);
//! 3. **join-within** (Algorithm 3) — the exact object×query join over the
//!    members of both clusters. Before any member work, each surviving
//!    pair consults the [`JoinCache`]: if neither cluster has mutated
//!    since the pair's cached result was computed (per the engine's
//!    [`EpochTracker`]), the cached matches are replayed verbatim —
//!    bit-identical, because a clean cluster's materialisation is
//!    bit-identical too. Cache misses materialise members once per epoch
//!    into a flat SoA arena and run the exact join, partitioned across
//!    scoped worker threads (work-stealing over an atomic cursor) when
//!    [`JoinContext::parallelism`] > 1;
//! 4. **result merge** — sort + dedup of the worker outputs, which makes
//!    the result set independent of thread count, of pair order and of the
//!    replayed/computed split.
//!
//! The per-tick path is hash-free: pairs are slot pairs, the cache is a
//! per-left-slot sorted row table, and the arena index is a dense stamped
//! per-slot table. Slot reuse is safe everywhere the cache is concerned —
//! dissolving forgets the slot's epoch mark (`u64::MAX` = always dirty)
//! and re-occupying it stamps a fresh clock value past any cached
//! `computed_at`, so stale entries can never revalidate (see
//! [`crate::store`]); unused entries are swept at the end of each round.
//!
//! Two engineering notes relative to the paper's pseudo-code:
//!
//! * Algorithm 3 joins the member *union* of both clusters, and Algorithm 1
//!   additionally runs a same-cluster join-within for mixed clusters — with
//!   the union semantics intra-cluster pairs would be compared once per
//!   overlapping partner. We compare *cross* pairs in the pair join and
//!   intra pairs exactly once in the same-cluster join; combined with the
//!   final dedup this produces the identical result set with fewer
//!   comparisons.
//! * Clusters sharing several grid cells would be joined once per shared
//!   cell; the sorted key dedup collapses the duplicates.
//!
//! Load shedding (§5) surfaces here: members whose relative position was
//! discarded are approximated **by their cluster centroid** — "individual
//! locations of the members can be discarded if need be, yet would still be
//! sufficiently approximated from the location of their cluster centroid"
//! (§1). Because every shed member of a cluster shares that single
//! approximate position, one predicate evaluation answers *all* of them at
//! once: a query region is tested against the centroid once and the verdict
//! fans out to the whole shed set, which is exactly why "the fewer relative
//! positions are maintained, the fewer individual joins need to be
//! performed" (§6.6). (§5 also sketches a coarser reading — assume all
//! members of overlapping clusters join — but that cross-product semantics
//! collapses accuracy to ~13 % on the default workload, far below the ~79 %
//! the paper reports at η = 50 %, so the centroid reading is the one
//! consistent with the paper's own measurements; see DESIGN.md.)

use std::sync::atomic::{AtomicUsize, Ordering};

use scuba_motion::{ObjectId, QueryId, QuerySpec};
use scuba_spatial::{Circle, Point, Rect};
use scuba_stream::{QueryMatch, StageStats, Stopwatch};

use crate::index::{DiscoveryScratch, SpatialIndex};
use crate::kernel::{self, pack_pair, KernelKind, PairTile};
use crate::shedding::SheddingMode;
use crate::store::{ClusterSlot, ClusterStore, EpochTracker};
use crate::tables::QueriesTable;

/// Stage name: grid cell walk + sorted pair dedup.
pub const STAGE_PAIR_DISCOVERY: &str = "pair-discovery";
/// Stage name: cluster-pair overlap pre-filter (Algorithm 2).
pub const STAGE_JOIN_BETWEEN: &str = "join-between";
/// Stage name: exact member join over surviving pairs (Algorithm 3).
pub const STAGE_JOIN_WITHIN: &str = "join-within";
/// Stage name: sort + dedup of raw matches.
pub const STAGE_RESULT_MERGE: &str = "result-merge";

/// What one joining phase produced and how much work it did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinOutput {
    /// Deduplicated query answers.
    pub results: Vec<QueryMatch>,
    /// Exact object×query pair tests performed (join-within work). Pairs
    /// replayed from the [`JoinCache`] contribute nothing here — the
    /// counter measures work actually done this epoch.
    pub comparisons: u64,
    /// Coarse filter tests performed: cluster-pair overlap tests
    /// (join-between) plus member-vs-cluster reach tests inside
    /// join-within.
    pub prefilter_tests: u64,
    /// Cluster pairs pruned by join-between.
    pub pairs_pruned: u64,
    /// Cluster pairs that proceeded to join-within.
    pub pairs_joined: u64,
    /// Surviving pairs replayed from the [`JoinCache`].
    pub cache_hits: u64,
    /// Surviving pairs computed for lack of a valid cache entry.
    pub cache_misses: u64,
    /// Cache entries invalidated this epoch (inputs mutated, pair
    /// separated, or a cluster dissolved). Zero when caching is off.
    pub cache_invalidations: u64,
    /// Per-stage cost accounting, in pipeline order (pair discovery,
    /// join-between, join-within, result merge).
    pub stages: Vec<StageStats>,
}

/// Borrowed view of everything the joining phase needs. Decoupled from
/// [`crate::clustering::ClusterEngine`] so the K-means extension (§6.4) can
/// drive the identical join over offline-built clusters.
#[derive(Debug, Clone, Copy)]
pub struct JoinContext<'a> {
    /// The cluster store: slab, SoA hot columns and the epoch clock.
    pub store: &'a ClusterStore,
    /// The spatial index driving the candidate-cell loop (uniform grid or
    /// adaptive split/merge grid, behind the trait).
    pub grid: &'a dyn SpatialIndex,
    /// Query attributes (range extents).
    pub queries: &'a QueriesTable,
    /// Active shedding mode. The shed/exact split is carried by the
    /// cluster members themselves; recorded here for diagnostics.
    pub shedding: SheddingMode,
    /// Distance threshold Θ_D (bounds the centroid-approximation error of
    /// shed members; recorded for diagnostics).
    pub theta_d: f64,
    /// Whether to apply the member-vs-cluster reach filter inside
    /// join-within (sound either way; `false` reverts to Algorithm 3's
    /// plain nested loop for ablation).
    pub member_filter: bool,
    /// Worker threads for the join-within stage. 1 runs the serial path;
    /// n > 1 lets n scoped threads steal cache-miss pairs from a shared
    /// atomic cursor. The result set and all work counters are identical
    /// for every value.
    pub parallelism: usize,
    /// Which join-kernel implementation runs the join-between pre-filter
    /// and the join-within inner loops. Results and work counters are
    /// bit-identical for every kind (only the lane counters differ); see
    /// [`crate::kernel`].
    pub kernel: KernelKind,
}

/// Slot-pair-keyed cache of join-within results, carried across epochs.
///
/// Entries live in per-left-slot rows sorted by right slot, so the hot
/// lookup is one indexed load plus a binary search over a short row — no
/// hashing. Each entry stores the raw matches one surviving cluster pair
/// produced plus the [`EpochTracker`] clock value it was computed at. On
/// the next round the pair replays the stored matches iff *both* clusters
/// are still clean (no join-relevant mutation since `computed_at`) — in
/// that case the materialised member state is bit-identical to last
/// round's, so the replay is bit-identical to recomputation.
///
/// Entries whose pair does not survive a round (separated regions, pruned,
/// or a dissolved cluster) are swept at the end of that round, so the
/// cache never retains entries for clusters that no longer co-occur —
/// its size is bounded by the current surviving-pair population. Slot
/// reuse between rounds cannot revalidate a stale entry: the epoch clock
/// reads reused slots as dirty (see [`crate::store`]).
#[derive(Debug, Default)]
pub struct JoinCache {
    /// `rows[left_slot]` = (right_slot, entry), sorted by right slot.
    rows: Vec<Vec<(u32, CacheEntry)>>,
    live: usize,
    round: u64,
}

#[derive(Debug)]
struct CacheEntry {
    matches: Vec<QueryMatch>,
    /// Epoch-clock value the matches were computed at.
    computed_at: u64,
    /// Cache round the entry was last hit or refreshed.
    last_used: u64,
}

impl JoinCache {
    /// An empty cache.
    pub fn new() -> Self {
        JoinCache::default()
    }

    /// Number of cached pair results.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Drops every entry (row allocations are kept).
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.clear();
        }
        self.live = 0;
    }

    /// Grows the row table to cover left slots `0..n`.
    fn ensure_slots(&mut self, n: usize) {
        if self.rows.len() < n {
            self.rows.resize_with(n, Vec::new);
        }
    }

    /// The entry for `(left, right)`, if cached.
    fn get(&self, left: ClusterSlot, right: ClusterSlot) -> Option<&CacheEntry> {
        let row = self.rows.get(left.index())?;
        let i = row.binary_search_by_key(&right.0, |e| e.0).ok()?;
        Some(&row[i].1)
    }

    /// Mutable access to the entry for `(left, right)`, if cached.
    fn get_mut(&mut self, left: ClusterSlot, right: ClusterSlot) -> Option<&mut CacheEntry> {
        let row = self.rows.get_mut(left.index())?;
        let i = row.binary_search_by_key(&right.0, |e| e.0).ok()?;
        Some(&mut row[i].1)
    }

    /// Stores (or refreshes) the entry for `(left, right)`.
    fn upsert(
        &mut self,
        left: ClusterSlot,
        right: ClusterSlot,
        matches: &[QueryMatch],
        computed_at: u64,
        round: u64,
    ) {
        let row = &mut self.rows[left.index()];
        match row.binary_search_by_key(&right.0, |e| e.0) {
            Ok(i) => {
                let e = &mut row[i].1;
                e.matches.clear();
                e.matches.extend_from_slice(matches);
                e.computed_at = computed_at;
                e.last_used = round;
            }
            Err(i) => {
                row.insert(
                    i,
                    (
                        right.0,
                        CacheEntry {
                            matches: matches.to_vec(),
                            computed_at,
                            last_used: round,
                        },
                    ),
                );
                self.live += 1;
            }
        }
    }

    /// Physically drops every cached pair involving `slot` — its own row
    /// and every entry where it appears as the right side — returning how
    /// many entries fell.
    ///
    /// This is the control plane's surgical purge: when a query
    /// deregisters, only the pairs of the cluster that held it are
    /// retired; the rest of the cache keeps replaying. (Epoch validation
    /// alone would already refuse to *replay* those pairs after the
    /// membership `touch`, but the purge also drops the cached rows
    /// mentioning the dead query so they cannot outlive it in memory.)
    pub fn purge_slot(&mut self, slot: ClusterSlot) -> usize {
        let mut removed = 0;
        if let Some(row) = self.rows.get_mut(slot.index()) {
            removed += row.len();
            row.clear();
        }
        for (left, row) in self.rows.iter_mut().enumerate() {
            if left == slot.index() {
                continue;
            }
            if let Ok(i) = row.binary_search_by_key(&slot.0, |e| e.0) {
                row.remove(i);
                removed += 1;
            }
        }
        self.live -= removed;
        removed
    }

    /// Drops every entry not used in `round`, returning how many fell.
    fn sweep(&mut self, round: u64) -> usize {
        let mut removed = 0;
        for row in &mut self.rows {
            let before = row.len();
            row.retain(|(_, e)| e.last_used == round);
            removed += before - row.len();
        }
        self.live -= removed;
        removed
    }

    /// Estimated heap footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        let row_header = std::mem::size_of::<Vec<(u32, CacheEntry)>>();
        let per_entry = std::mem::size_of::<(u32, CacheEntry)>();
        self.rows.len() * row_header
            + self
                .rows
                .iter()
                .flat_map(|row| row.iter())
                .map(|(_, e)| per_entry + e.matches.capacity() * std::mem::size_of::<QueryMatch>())
                .sum::<usize>()
    }
}

/// Reusable working memory for the joining phase, owned by the operator
/// and handed to [`JoinContext::run_cached`] every epoch.
///
/// Holds the packed pair-key buffer of stage 1, the pair/task lists, the
/// SoA materialisation arena of stage 3 and one scratch block per worker
/// thread. In steady state an epoch performs no allocation: every buffer
/// is cleared (length 0) but keeps its capacity, and nothing here carries
/// per-cluster state across rounds.
#[derive(Debug, Default)]
pub struct JoinScratch {
    /// Stage-1 buffer: packed candidate pair keys, sorted + deduped in
    /// place each round.
    pairs: Vec<u64>,
    /// Stage-2 output: pairs surviving join-between.
    tasks: Vec<(ClusterSlot, ClusterSlot)>,
    /// Stage-3 input: surviving pairs without a valid cache entry.
    miss_tasks: Vec<(ClusterSlot, ClusterSlot)>,
    /// Stage-2 gather tile of the wide pre-filter kernel.
    tile: PairTile,
    /// Stage-1 buffers handed to the index's discovery walk (the adaptive
    /// grid's per-leaf membership lists).
    discovery: DiscoveryScratch,
    /// Per-epoch SoA materialisation of member positions.
    arena: MatArena,
    /// One scratch block per join-within worker.
    workers: Vec<WorkerScratch>,
}

impl JoinScratch {
    /// Fresh scratch with no reserved capacity (grows on first use).
    pub fn new() -> Self {
        JoinScratch::default()
    }

    /// Bytes of heap currently reserved across every scratch buffer —
    /// pair keys, task lists, the kernel tile, discovery buffers, the
    /// materialisation arena and all worker blocks.
    ///
    /// The steady-state contract is that this value stops changing once
    /// the workload shape settles: an epoch clears lengths but never
    /// shrinks or grows capacity, so a stable reading across ticks is
    /// evidence the tick path performed no allocation.
    pub fn capacity_bytes(&self) -> usize {
        use std::mem::size_of;
        let arena = &self.arena;
        let arena_bytes = arena.stamp.capacity() * size_of::<u64>()
            + arena.slot_entry.capacity() * size_of::<u32>()
            + arena.entries.capacity() * size_of::<MatEntry>()
            + (arena.obj_ids.capacity() + arena.shed_obj_ids.capacity()) * size_of::<ObjectId>()
            + (arena.obj_x.capacity() + arena.obj_y.capacity()) * size_of::<f64>()
            + arena.queries.capacity() * size_of::<ExactQuery>()
            + arena.group_regions.capacity() * size_of::<Rect>()
            + arena.group_qid_spans.capacity() * size_of::<(u32, u32)>()
            + arena.group_qids.capacity() * size_of::<QueryId>()
            + arena.pending_groups.capacity() * size_of::<(u32, QueryId)>()
            + arena.group_counts.capacity() * size_of::<u32>();
        let workers: usize = self
            .workers
            .iter()
            .map(|w| {
                w.results.capacity() * size_of::<QueryMatch>()
                    + w.active.capacity() * size_of::<u32>()
                    + w.records.capacity() * size_of::<PairRec>()
            })
            .sum();
        self.pairs.capacity() * size_of::<u64>()
            + (self.tasks.capacity() + self.miss_tasks.capacity())
                * size_of::<(ClusterSlot, ClusterSlot)>()
            + self.tile.capacity_bytes()
            + self.discovery.capacity_bytes()
            + arena_bytes
            + workers
    }
}

/// An exact (un-shed) range-query member with its region precomputed.
#[derive(Debug, Clone, Copy)]
struct ExactQuery {
    qid: QueryId,
    pos: Point,
    region: Rect,
    bounding_radius: f64,
}

/// Span-based view of one cluster materialised into the [`MatArena`].
#[derive(Debug, Clone, Copy)]
struct MatEntry {
    slot: ClusterSlot,
    /// Span into `obj_ids`/`obj_x`/`obj_y`.
    objs: (u32, u32),
    /// Span into `shed_obj_ids`.
    shed_objs: (u32, u32),
    /// Span into `queries`.
    queries: (u32, u32),
    /// Span into `group_regions`/`group_qid_spans`.
    groups: (u32, u32),
    /// The centroid (approximate position of every shed member).
    centroid: Point,
    /// The cluster's (tight) circular region.
    region: Circle,
    /// `region` inflated by the widest member query's reach — anything an
    /// object must touch to possibly match one of this cluster's queries.
    reach: Circle,
}

impl MatEntry {
    fn has_objects(&self) -> bool {
        self.objs.0 != self.objs.1 || self.shed_objs.0 != self.shed_objs.1
    }

    fn has_queries(&self) -> bool {
        self.queries.0 != self.queries.1 || self.groups.0 != self.groups.1
    }
}

/// Flat SoA arena holding every materialised cluster of one epoch.
///
/// Member positions live in parallel `x`/`y`/`id` arrays so the inner
/// containment loops stream over contiguous memory; per-cluster views are
/// `(start, end)` spans ([`MatEntry`]) reached through a dense stamped
/// per-slot index (no hashing). All vectors are cleared — not deallocated
/// — between epochs.
#[derive(Debug, Default)]
struct MatArena {
    /// Per-slot epoch stamp: `slot` is materialised this epoch iff
    /// `stamp[slot] == epoch`.
    stamp: Vec<u64>,
    /// Per-slot index into `entries`, valid when stamped.
    slot_entry: Vec<u32>,
    epoch: u64,
    entries: Vec<MatEntry>,
    obj_ids: Vec<ObjectId>,
    obj_x: Vec<f64>,
    obj_y: Vec<f64>,
    shed_obj_ids: Vec<ObjectId>,
    queries: Vec<ExactQuery>,
    /// Shed range queries grouped by identical region (one region per
    /// distinct spec, centred on the centroid): region per group …
    group_regions: Vec<Rect>,
    /// … and the span of `group_qids` holding that group's members.
    group_qid_spans: Vec<(u32, u32)>,
    group_qids: Vec<QueryId>,
    /// Scratch for the two-pass group build (local group index, qid).
    pending_groups: Vec<(u32, QueryId)>,
    /// Scratch: per-local-group member counts, then fill cursors.
    group_counts: Vec<u32>,
}

impl MatArena {
    /// Starts a new epoch covering slots `0..capacity`.
    fn clear(&mut self, capacity: usize) {
        self.epoch += 1;
        if self.stamp.len() < capacity {
            self.stamp.resize(capacity, 0);
            self.slot_entry.resize(capacity, 0);
        }
        self.entries.clear();
        self.obj_ids.clear();
        self.obj_x.clear();
        self.obj_y.clear();
        self.shed_obj_ids.clear();
        self.queries.clear();
        self.group_regions.clear();
        self.group_qid_spans.clear();
        self.group_qids.clear();
    }

    /// The entry for `slot`, if materialised this epoch.
    fn entry(&self, slot: ClusterSlot) -> Option<&MatEntry> {
        if self.stamp.get(slot.index()) == Some(&self.epoch) {
            Some(&self.entries[self.slot_entry[slot.index()] as usize])
        } else {
            None
        }
    }
}

/// Per-worker working memory: raw matches, the active-query index buffer
/// and the per-pair result spans (for cache refresh), plus work counters.
#[derive(Debug, Default)]
struct WorkerScratch {
    results: Vec<QueryMatch>,
    /// Indices into `MatArena::queries` of the partner queries that
    /// survived the reach filter for the current object cluster.
    active: Vec<u32>,
    records: Vec<PairRec>,
    comparisons: u64,
    reach_tests: u64,
    /// Lane slots the wide member kernel processed (padding included);
    /// zero on the scalar path.
    lane_slots: u64,
    /// Lane slots that carried a live object.
    lanes_used: u64,
}

impl WorkerScratch {
    fn reset(&mut self) {
        self.results.clear();
        self.active.clear();
        self.records.clear();
        self.comparisons = 0;
        self.reach_tests = 0;
        self.lane_slots = 0;
        self.lanes_used = 0;
    }
}

/// One computed pair and the span of the worker's `results` it produced.
#[derive(Debug, Clone, Copy)]
struct PairRec {
    left: ClusterSlot,
    right: ClusterSlot,
    start: u32,
    end: u32,
}

impl<'a> JoinContext<'a> {
    /// Runs the full joining phase (Algorithm 1, steps 8–21) as the
    /// four-stage pipeline described in the module docs, from scratch:
    /// no dirty-epoch information, so every surviving pair is computed.
    ///
    /// Convenience wrapper over [`JoinContext::run_cached`] for callers
    /// without cross-epoch state (the K-means extension, one-shot tests).
    pub fn run(&self) -> JoinOutput {
        let mut cache = JoinCache::new();
        let mut scratch = JoinScratch::new();
        self.run_cached(None, &mut cache, &mut scratch)
    }

    /// Runs the joining phase incrementally.
    ///
    /// `epochs` is the store's per-slot mutation clock; `None` disables
    /// caching entirely (every pair is computed, nothing is stored, the
    /// cache counters stay zero). With `Some`, surviving pairs whose two
    /// clusters are both clean since the pair's cached epoch replay their
    /// cached matches; the rest are recomputed and refreshed in `cache`.
    /// `scratch` supplies every reusable buffer, so steady-state epochs
    /// allocate nothing.
    ///
    /// The output — result set *and* every counter except the cache
    /// statistics themselves — is bit-identical to [`JoinContext::run`]
    /// modulo the work counters measuring only work actually performed
    /// (`comparisons`, `prefilter_tests` and the stage `tests` shrink by
    /// exactly the replayed pairs' share).
    pub fn run_cached(
        &self,
        epochs: Option<&EpochTracker>,
        cache: &mut JoinCache,
        scratch: &mut JoinScratch,
    ) -> JoinOutput {
        let mut out = JoinOutput::default();
        let mut sw = Stopwatch::start();

        // Stage 1 — pair discovery: cell walk + sorted pair dedup.
        let (entries_walked, candidates) = self.discover_pairs(scratch);
        let discovered = scratch.pairs.len() as u64;
        out.stages.push(
            StageStats::join(STAGE_PAIR_DISCOVERY)
                .with_wall(sw.lap())
                .with_items(entries_walked, discovered)
                .with_tests(candidates),
        );

        // Stage 2 — join-between: the overlap pre-filter (Algorithm 2),
        // dispatched to the scalar or tiled wide kernel. Same-cluster
        // pairs survive only for mixed clusters (Algorithm 1, step 14);
        // cross pairs survive the joinable-kind check and the
        // region-overlap test. Vacant slots carry zero member counts, so
        // stale grid entries (if any) drop out at the kind check. Both
        // kernels emit identical survivors and counters (see
        // [`crate::kernel`]).
        let pf = {
            let JoinScratch {
                pairs, tasks, tile, ..
            } = &mut *scratch;
            kernel::join_between_filter(&self.store.columns(), pairs, self.kernel, tile, tasks)
        };
        out.prefilter_tests += pf.tests;
        out.pairs_pruned += pf.pruned;
        out.pairs_joined += pf.joined;
        let between_tests = out.prefilter_tests;
        out.stages.push(
            StageStats::join(STAGE_JOIN_BETWEEN)
                .with_wall(sw.lap())
                .with_items(discovered, scratch.tasks.len() as u64)
                .with_tests(between_tests)
                .with_lanes(pf.lane_slots, pf.lanes_used),
        );

        // Stage 3 — join-within: replay clean pairs from the cache, run
        // the exact member join (Algorithm 3) over the misses.
        cache.round += 1;
        let round = cache.round;
        let clock = epochs.map(EpochTracker::clock);
        if epochs.is_some() {
            cache.ensure_slots(self.store.capacity());
        }
        scratch.miss_tasks.clear();
        for &(left, right) in &scratch.tasks {
            let valid = epochs.is_some_and(|ep| {
                cache.get(left, right).is_some_and(|e| {
                    ep.clean_since(left, e.computed_at) && ep.clean_since(right, e.computed_at)
                })
            });
            if valid {
                let entry = cache
                    .get_mut(left, right)
                    .expect("validity implies presence");
                entry.last_used = round;
                out.results.extend_from_slice(&entry.matches);
                out.cache_hits += 1;
            } else {
                if epochs.is_some() {
                    if cache.get(left, right).is_some() {
                        // A stale entry: its inputs mutated.
                        out.cache_invalidations += 1;
                    }
                    out.cache_misses += 1;
                }
                scratch.miss_tasks.push((left, right));
            }
        }

        // Materialise every cluster a miss needs, exactly once, serially,
        // into the shared SoA arena; the workers only read it.
        let used = {
            let JoinScratch {
                miss_tasks,
                arena,
                workers,
                ..
            } = &mut *scratch;
            arena.clear(self.store.capacity());
            for &(left, right) in miss_tasks.iter() {
                self.materialize_into(left, arena);
                if right != left {
                    self.materialize_into(right, arena);
                }
            }
            self.join_misses(miss_tasks, arena, workers)
        };

        // Fold the workers: counters, raw matches, and cache refreshes.
        let mut within_lane_slots = 0u64;
        let mut within_lanes_used = 0u64;
        for ws in scratch.workers.iter().take(used) {
            out.comparisons += ws.comparisons;
            out.prefilter_tests += ws.reach_tests;
            within_lane_slots += ws.lane_slots;
            within_lanes_used += ws.lanes_used;
            if epochs.is_some() {
                let clock = clock.expect("clock captured with epochs");
                for rec in &ws.records {
                    let matches = &ws.results[rec.start as usize..rec.end as usize];
                    cache.upsert(rec.left, rec.right, matches, clock, round);
                }
            }
            out.results.extend_from_slice(&ws.results);
        }

        // Sweep entries whose pair did not survive this round: the pair
        // separated, was pruned, or one of its clusters dissolved.
        if epochs.is_some() {
            out.cache_invalidations += cache.sweep(round) as u64;
        }

        let raw = out.results.len() as u64;
        out.stages.push(
            StageStats::join(STAGE_JOIN_WITHIN)
                .with_wall(sw.lap())
                .with_items(scratch.tasks.len() as u64, raw)
                .with_tests(out.comparisons + (out.prefilter_tests - between_tests))
                .with_cache(out.cache_hits, out.cache_misses, out.cache_invalidations)
                .with_lanes(within_lane_slots, within_lanes_used),
        );

        // Stage 4 — result merge: sort + dedup, which also erases any
        // worker-interleaving (and the replayed/computed split) of the raw
        // matches.
        out.results.sort_unstable();
        out.results.dedup();
        out.stages.push(
            StageStats::join(STAGE_RESULT_MERGE)
                .with_wall(sw.lap())
                .with_items(raw, out.results.len() as u64),
        );
        out
    }

    /// Stage 1: walks the index candidate cell by candidate cell (base
    /// cells for the uniform grid, leaves for refined cells of the adaptive
    /// grid), packing each co-resident slot pair (self-pairs included) into
    /// a `u64` key, then sorts + dedups the reused key buffer in place.
    /// Returns `(entries_walked, candidates)`.
    fn discover_pairs(&self, scratch: &mut JoinScratch) -> (u64, u64) {
        let JoinScratch {
            pairs, discovery, ..
        } = &mut *scratch;
        pairs.clear();
        let mut entries_walked = 0u64;
        let mut candidates = 0u64;
        self.grid
            .for_each_candidate_cell_with(discovery, &mut |cell| {
                entries_walked += cell.len() as u64;
                for (i, &left) in cell.iter().enumerate() {
                    for &right in &cell[i..] {
                        candidates += 1;
                        pairs.push(pack_pair(left, right));
                    }
                }
            });
        pairs.sort_unstable();
        pairs.dedup();
        (entries_walked, candidates)
    }

    /// Stage 3 kernel: runs the member join over every cache-miss pair,
    /// serially or across `parallelism` scoped worker threads stealing
    /// tasks from a shared atomic cursor. Returns how many worker scratch
    /// blocks hold output.
    ///
    /// Parallel execution is deterministic in everything the caller can
    /// observe: the miss list is fixed before dispatch, per-pair
    /// comparison and reach-test counts do not depend on which worker
    /// handles the pair (all read the same arena), the counters merge
    /// commutatively, and the raw matches are sorted and deduped by the
    /// merge stage.
    fn join_misses(
        &self,
        miss_tasks: &[(ClusterSlot, ClusterSlot)],
        arena: &MatArena,
        workers: &mut Vec<WorkerScratch>,
    ) -> usize {
        let used = self.parallelism.max(1).min(miss_tasks.len().max(1));
        if workers.len() < used {
            workers.resize_with(used, WorkerScratch::default);
        }
        for ws in workers.iter_mut() {
            ws.reset();
        }
        if used <= 1 {
            let ws = &mut workers[0];
            for &(left, right) in miss_tasks {
                self.join_pair(arena, left, right, ws);
            }
            return 1;
        }

        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for ws in workers.iter_mut().take(used) {
                let ctx = *self;
                let cursor = &cursor;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(left, right)) = miss_tasks.get(i) else {
                        break;
                    };
                    ctx.join_pair(arena, left, right, ws);
                });
            }
        });
        used
    }

    /// Joins one cache-miss pair: the same-cluster join for `(c, c)`
    /// tasks, otherwise L-objects × R-queries and R-objects × L-queries.
    /// Records the produced result span for the cache refresh.
    fn join_pair(
        &self,
        arena: &MatArena,
        left: ClusterSlot,
        right: ClusterSlot,
        ws: &mut WorkerScratch,
    ) {
        let start = ws.results.len() as u32;
        if let (Some(&m_l), Some(&m_r)) = (arena.entry(left), arena.entry(right)) {
            if left == right {
                self.join_members(arena, &m_l, &m_l, ws);
            } else {
                self.join_members(arena, &m_l, &m_r, ws);
                self.join_members(arena, &m_r, &m_l, ws);
            }
        }
        ws.records.push(PairRec {
            left,
            right,
            start,
            end: ws.results.len() as u32,
        });
    }

    /// Joins `objects_of`'s objects against `queries_of`'s queries, both
    /// read from the arena.
    ///
    /// For *cross*-cluster pairs a member-level pre-filter (not in the
    /// paper's Algorithm 3, which does the full nested loop) skips objects
    /// outside the partner's query reach and queries whose inflated region
    /// cannot touch the partner's cluster circle. Both checks are sound:
    /// they can only discard pairs the exact predicate would reject, since
    /// every member — shed members sit at the centroid — lies within its
    /// cluster circle.
    ///
    /// Shed members amortise: all shed objects of a cluster share the
    /// centroid position, so one region test answers the whole set, and
    /// likewise for each distinct shed-query spec.
    fn join_members(
        &self,
        arena: &MatArena,
        objects_of: &MatEntry,
        queries_of: &MatEntry,
        ws: &mut WorkerScratch,
    ) {
        if !objects_of.has_objects() || !queries_of.has_queries() {
            return;
        }
        // The reach filters are no-ops within a single cluster (every
        // member is inside its own region by construction), and disabled
        // entirely when ablating.
        let skip_filters = objects_of.slot == queries_of.slot || !self.member_filter;

        // Exact queries that can reach the object cluster at all.
        ws.active.clear();
        for qi in queries_of.queries.0..queries_of.queries.1 {
            let q = &arena.queries[qi as usize];
            if !skip_filters {
                ws.reach_tests += 1;
                let reach = Circle::new(
                    objects_of.region.center,
                    objects_of.region.radius + q.bounding_radius,
                );
                if !reach.contains(&q.pos) {
                    continue;
                }
            }
            ws.active.push(qi);
        }

        // 1. Exact objects × exact queries, streaming the SoA arrays —
        //    either pair-at-a-time or in lane-width chunks over the
        //    arena's x/y columns. Both produce the same match multiset
        //    (the wide path emits query-major within a chunk; the merge
        //    stage sorts) and identical `reach_tests`/`comparisons`.
        if !ws.active.is_empty() {
            match self.kernel.effective() {
                KernelKind::Scalar => {
                    for i in objects_of.objs.0 as usize..objects_of.objs.1 as usize {
                        let p = Point::new(arena.obj_x[i], arena.obj_y[i]);
                        if !skip_filters {
                            ws.reach_tests += 1;
                            if !queries_of.reach.contains(&p) {
                                continue;
                            }
                        }
                        let oid = arena.obj_ids[i];
                        for &qi in &ws.active {
                            let q = &arena.queries[qi as usize];
                            ws.comparisons += 1;
                            if q.region.contains(&p) {
                                ws.results.push(QueryMatch::new(q.qid, oid));
                            }
                        }
                    }
                }
                KernelKind::Simd => {
                    self.join_exact_wide(arena, objects_of, queries_of, skip_filters, ws);
                }
            }
        }

        let shed_objs =
            &arena.shed_obj_ids[objects_of.shed_objs.0 as usize..objects_of.shed_objs.1 as usize];

        // 2. Shed objects (all at the centroid) × exact queries: one test
        //    per query answers every shed object.
        if !shed_objs.is_empty() {
            for &qi in &ws.active {
                let q = &arena.queries[qi as usize];
                ws.comparisons += 1;
                if q.region.contains(&objects_of.centroid) {
                    for &oid in shed_objs {
                        ws.results.push(QueryMatch::new(q.qid, oid));
                    }
                }
            }
        }

        // 3. Shed query groups (regions centred on the query cluster's
        //    centroid).
        for g in queries_of.groups.0 as usize..queries_of.groups.1 as usize {
            let region = &arena.group_regions[g];
            let (qs, qe) = arena.group_qid_spans[g];
            let qids = &arena.group_qids[qs as usize..qe as usize];
            // 3a. Exact objects.
            for i in objects_of.objs.0 as usize..objects_of.objs.1 as usize {
                let p = Point::new(arena.obj_x[i], arena.obj_y[i]);
                ws.comparisons += 1;
                if region.contains(&p) {
                    let oid = arena.obj_ids[i];
                    for &qid in qids {
                        ws.results.push(QueryMatch::new(qid, oid));
                    }
                }
            }
            // 3b. Shed objects: a single centroid-in-region test answers
            //     the full cross product.
            if !shed_objs.is_empty() {
                ws.comparisons += 1;
                if region.contains(&objects_of.centroid) {
                    for &qid in qids {
                        for &oid in shed_objs {
                            ws.results.push(QueryMatch::new(qid, oid));
                        }
                    }
                }
            }
        }
    }

    /// The wide variant of join-within section 1: exact objects stream in
    /// [`kernel::LANES`]-wide chunks over the arena's `obj_x`/`obj_y`
    /// columns. Per chunk, the partner-reach filter computes a pass mask
    /// branch-free (same `distance² ≤ radius²` comparison as
    /// [`Circle::contains`]); then each active query tests its rectangle
    /// against all passing lanes (same inclusive comparisons as
    /// [`Rect::contains`]). Counters match the scalar loop exactly:
    /// one reach test per object, one comparison per (passing object,
    /// active query).
    fn join_exact_wide(
        &self,
        arena: &MatArena,
        objects_of: &MatEntry,
        queries_of: &MatEntry,
        skip_filters: bool,
        ws: &mut WorkerScratch,
    ) {
        let os = objects_of.objs.0 as usize;
        let oe = objects_of.objs.1 as usize;
        let xs = &arena.obj_x[os..oe];
        let ys = &arena.obj_y[os..oe];
        let reach = queries_of.reach;
        let r2 = reach.radius * reach.radius;
        let mut pass = [false; kernel::LANES];
        let mut i = 0;
        while i < xs.len() {
            let lanes = kernel::LANES.min(xs.len() - i);
            let xc = &xs[i..i + lanes];
            let yc = &ys[i..i + lanes];
            if skip_filters {
                pass[..lanes].fill(true);
            } else {
                ws.reach_tests += lanes as u64;
                for k in 0..lanes {
                    let dx = reach.center.x - xc[k];
                    let dy = reach.center.y - yc[k];
                    pass[k] = dx * dx + dy * dy <= r2;
                }
            }
            ws.lane_slots += kernel::LANES as u64;
            ws.lanes_used += lanes as u64;
            let passing = pass[..lanes].iter().filter(|&&b| b).count() as u64;
            ws.comparisons += passing * ws.active.len() as u64;
            if passing > 0 {
                for &qi in &ws.active {
                    let q = &arena.queries[qi as usize];
                    let r = q.region;
                    for k in 0..lanes {
                        if pass[k]
                            && xc[k] >= r.min.x
                            && xc[k] <= r.max.x
                            && yc[k] >= r.min.y
                            && yc[k] <= r.max.y
                        {
                            ws.results
                                .push(QueryMatch::new(q.qid, arena.obj_ids[os + i + k]));
                        }
                    }
                }
            }
            i += lanes;
        }
    }

    /// Applies the lazy transformation to every member of the cluster at
    /// `slot` — "we refrain from constantly updating the relative
    /// positions of the cluster members, as this info is not needed,
    /// unless a join-within is to be performed" (§3.1) — writing flat SoA
    /// spans into the arena. Shed members materialise at the centroid.
    /// Idempotent per epoch.
    fn materialize_into(&self, slot: ClusterSlot, arena: &mut MatArena) {
        if arena.entry(slot).is_some() {
            return;
        }
        let Some(cluster) = self.store.get(slot) else {
            return;
        };
        let centroid = cluster.centroid();
        let objs_start = arena.obj_ids.len() as u32;
        let shed_start = arena.shed_obj_ids.len() as u32;
        let queries_start = arena.queries.len() as u32;
        let groups_start = arena.group_regions.len() as u32;
        arena.pending_groups.clear();
        arena.group_counts.clear();

        for member in cluster.members() {
            let pos = cluster.member_position(member);
            match member.entity {
                scuba_motion::EntityRef::Object(oid) => match pos {
                    Some(p) => {
                        arena.obj_ids.push(oid);
                        arena.obj_x.push(p.x);
                        arena.obj_y.push(p.y);
                    }
                    None => arena.shed_obj_ids.push(oid),
                },
                scuba_motion::EntityRef::Query(qid) => {
                    let Some(attrs) = self.queries.get(qid) else {
                        continue; // query unknown to the table; skip
                    };
                    let QuerySpec::Range { .. } = attrs.spec else {
                        continue; // kNN queries are answered by the knn module
                    };
                    match pos {
                        Some(p) => arena.queries.push(ExactQuery {
                            qid,
                            pos: p,
                            region: attrs
                                .spec
                                .region_at(p)
                                .expect("range spec always has a region"),
                            bounding_radius: attrs.spec.bounding_radius(),
                        }),
                        None => {
                            let region = attrs
                                .spec
                                .region_at(centroid)
                                .expect("range spec always has a region");
                            let local = match arena.group_regions[groups_start as usize..]
                                .iter()
                                .position(|r| *r == region)
                            {
                                Some(i) => i,
                                None => {
                                    arena.group_regions.push(region);
                                    arena.group_counts.push(0);
                                    arena.group_regions.len() - 1 - groups_start as usize
                                }
                            };
                            arena.group_counts[local] += 1;
                            arena.pending_groups.push((local as u32, qid));
                        }
                    }
                }
            }
        }

        // Second pass of the group build: prefix offsets, then fill each
        // group's contiguous qid span in member order (count-then-fill, no
        // per-group vectors).
        let qid_base = arena.group_qids.len() as u32;
        let mut offset = 0u32;
        for &count in &arena.group_counts {
            arena
                .group_qid_spans
                .push((qid_base + offset, qid_base + offset + count));
            offset += count;
        }
        arena
            .group_qids
            .resize((qid_base + offset) as usize, QueryId(0));
        for c in &mut arena.group_counts {
            *c = 0;
        }
        let pending = std::mem::take(&mut arena.pending_groups);
        for &(local, qid) in &pending {
            let span = arena.group_qid_spans[(groups_start + local) as usize];
            let cursor = arena.group_counts[local as usize];
            arena.group_qids[(span.0 + cursor) as usize] = qid;
            arena.group_counts[local as usize] = cursor + 1;
        }
        arena.pending_groups = pending;

        let region = cluster.region();
        arena.stamp[slot.index()] = arena.epoch;
        arena.slot_entry[slot.index()] = arena.entries.len() as u32;
        arena.entries.push(MatEntry {
            slot,
            objs: (objs_start, arena.obj_ids.len() as u32),
            shed_objs: (shed_start, arena.shed_obj_ids.len() as u32),
            queries: (queries_start, arena.queries.len() as u32),
            groups: (groups_start, arena.group_regions.len() as u32),
            centroid,
            region,
            reach: Circle::new(region.center, region.radius + cluster.max_query_radius()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::ClusterEngine;
    use crate::params::ScubaParams;
    use scuba_motion::{LocationUpdate, ObjectAttrs, QueryAttrs};
    use scuba_spatial::Rect;
    use scuba_stream::PhaseKind;

    const CN_EAST: Point = Point {
        x: 1000.0,
        y: 500.0,
    };
    const CN_WEST: Point = Point { x: 0.0, y: 500.0 };

    fn obj(id: u64, x: f64, y: f64, speed: f64, cn: Point) -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            0,
            speed,
            cn,
            ObjectAttrs::default(),
        )
    }

    fn qry(id: u64, x: f64, y: f64, speed: f64, cn: Point, side: f64) -> LocationUpdate {
        LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            0,
            speed,
            cn,
            QueryAttrs {
                spec: QuerySpec::square_range(side),
            },
        )
    }

    fn ctx(engine: &ClusterEngine) -> JoinContext<'_> {
        JoinContext {
            store: engine.store(),
            grid: engine.grid(),
            queries: engine.queries(),
            shedding: engine.params().shedding,
            theta_d: engine.params().theta_d,
            member_filter: engine.params().member_filter,
            parallelism: engine.params().parallelism,
            kernel: engine.params().kernel,
        }
    }

    #[test]
    fn same_cluster_match_found() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 505.0, 500.0, 30.0, CN_EAST, 20.0)); // covers ±10
        let out = ctx(&e).run();
        assert_eq!(out.results, vec![QueryMatch::new(QueryId(1), ObjectId(1))]);
        assert!(out.comparisons >= 1);
    }

    #[test]
    fn same_cluster_non_match_when_outside_range() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 530.0, 500.0, 30.0, CN_EAST, 20.0)); // 30 > 10
        let out = ctx(&e).run();
        assert!(out.results.is_empty());
        assert_eq!(out.comparisons, 1);
    }

    #[test]
    fn pure_clusters_skip_within_join() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&obj(2, 505.0, 500.0, 30.0, CN_EAST));
        let out = ctx(&e).run();
        assert_eq!(out.comparisons, 0);
        assert!(out.results.is_empty());
    }

    #[test]
    fn cross_cluster_join_between_and_within() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        // Cluster A: objects heading east; Cluster B: query heading west,
        // close enough that the regions overlap.
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&obj(2, 506.0, 500.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 503.0, 501.0, 30.0, CN_WEST, 20.0));
        assert_eq!(e.cluster_count(), 2);
        let out = ctx(&e).run();
        // One cluster-pair overlap test plus member-level reach tests.
        assert!(out.prefilter_tests >= 1);
        assert_eq!(out.pairs_joined, 1);
        assert_eq!(out.pairs_pruned, 0);
        // Both objects fall inside the 20-unit query range.
        assert_eq!(
            out.results,
            vec![
                QueryMatch::new(QueryId(1), ObjectId(1)),
                QueryMatch::new(QueryId(1), ObjectId(2)),
            ]
        );
    }

    #[test]
    fn join_between_prunes_distant_clusters_in_same_cell() {
        // Coarse grid (1 cell) so both clusters share the cell, but far
        // apart so the overlap test prunes them.
        let params = ScubaParams::default().with_grid_cells(1);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        e.process_update(&obj(1, 100.0, 100.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 900.0, 900.0, 30.0, CN_WEST, 20.0));
        let out = ctx(&e).run();
        assert_eq!(out.prefilter_tests, 1);
        assert_eq!(out.pairs_pruned, 1);
        assert_eq!(out.comparisons, 0, "join-within skipped");
        assert!(out.results.is_empty());
    }

    #[test]
    fn clusters_in_disjoint_cells_never_tested() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        e.process_update(&obj(1, 100.0, 100.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 900.0, 900.0, 30.0, CN_WEST, 20.0));
        let out = ctx(&e).run();
        assert_eq!(out.prefilter_tests, 0);
        assert_eq!(out.comparisons, 0);
    }

    #[test]
    fn pair_spanning_multiple_cells_joined_once() {
        // Big query range and a coarse-ish grid: both clusters overlap
        // several cells; the sorted key dedup must collapse them.
        let params = ScubaParams::default().with_grid_cells(4);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        for i in 0..5 {
            e.process_update(&obj(i, 450.0 + i as f64 * 20.0, 500.0, 30.0, CN_EAST));
        }
        e.process_update(&qry(1, 510.0, 505.0, 30.0, CN_WEST, 400.0));
        let out = ctx(&e).run();
        // All 5 objects match exactly once.
        assert_eq!(out.results.len(), 5);
        assert_eq!(out.pairs_joined, 1);
    }

    #[test]
    fn full_shedding_matches_by_region() {
        let params = ScubaParams::default().with_shedding(SheddingMode::Full);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 505.0, 500.0, 30.0, CN_EAST, 20.0));
        let out = ctx(&e).run();
        // Under full shedding both positions are gone; the nucleus overlap
        // reports the (true) match.
        assert_eq!(out.results, vec![QueryMatch::new(QueryId(1), ObjectId(1))]);
    }

    #[test]
    fn full_shedding_can_produce_false_positives() {
        let params = ScubaParams::default()
            .with_shedding(SheddingMode::Full)
            .with_grid_cells(10);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        // Object and query in the same cluster but 90 units apart — an
        // exact join would not match a 20-unit range.
        e.process_update(&obj(1, 460.0, 500.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 550.0, 500.0, 30.0, CN_EAST, 20.0));
        let out = ctx(&e).run();
        assert_eq!(
            out.results,
            vec![QueryMatch::new(QueryId(1), ObjectId(1))],
            "nucleus approximation over-reports"
        );

        // Ground truth without shedding finds nothing.
        let mut exact = ClusterEngine::new(
            ScubaParams::default().with_grid_cells(10),
            Rect::square(1000.0),
        );
        exact.process_update(&obj(1, 460.0, 500.0, 30.0, CN_EAST));
        exact.process_update(&qry(1, 550.0, 500.0, 30.0, CN_EAST, 20.0));
        let truth = ctx(&exact).run();
        assert!(truth.results.is_empty());
    }

    #[test]
    fn partial_shedding_mixed_exact_and_approximate() {
        let params = ScubaParams::default().with_shedding(SheddingMode::Partial { eta: 0.2 });
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST)); // founder, shed
        e.process_update(&obj(2, 580.0, 500.0, 30.0, CN_EAST)); // r≈80 kept
        e.process_update(&qry(1, 587.0, 500.0, 30.0, CN_EAST, 20.0)); // kept
        let out = ctx(&e).run();
        // Object 2 (exact, at 580) falls in the query region [577, 597].
        // Object 1 is shed: its nucleus (radius η·Θ_D = 20 around the final
        // centroid x ≈ 555.7) reaches only x ≈ 575.7 < 577, so the
        // approximation correctly rejects it.
        assert_eq!(out.results, vec![QueryMatch::new(QueryId(1), ObjectId(2))]);
    }

    #[test]
    fn knn_specs_are_skipped_by_range_join() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        let knn_q = LocationUpdate::query(
            QueryId(5),
            Point::new(501.0, 500.0),
            0,
            30.0,
            CN_EAST,
            QueryAttrs {
                spec: QuerySpec::Knn { k: 2 },
            },
        );
        e.process_update(&knn_q);
        let out = ctx(&e).run();
        assert!(out.results.is_empty());
    }

    #[test]
    fn results_are_sorted_and_deduped() {
        let mut e = ClusterEngine::new(
            ScubaParams::default().with_grid_cells(4),
            Rect::square(1000.0),
        );
        for i in 0..3 {
            e.process_update(&obj(i, 500.0 + i as f64, 500.0, 30.0, CN_EAST));
        }
        for q in 0..2 {
            e.process_update(&qry(q, 500.0 + q as f64, 501.0, 30.0, CN_EAST, 50.0));
        }
        let out = ctx(&e).run();
        assert_eq!(out.results.len(), 6);
        let mut sorted = out.results.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, out.results);
    }

    #[test]
    fn stages_are_emitted_in_pipeline_order() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 505.0, 500.0, 30.0, CN_EAST, 20.0));
        let out = ctx(&e).run();
        let names: Vec<&str> = out.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                STAGE_PAIR_DISCOVERY,
                STAGE_JOIN_BETWEEN,
                STAGE_JOIN_WITHIN,
                STAGE_RESULT_MERGE,
            ]
        );
        assert!(out.stages.iter().all(|s| s.kind == PhaseKind::Join));
        // Data-flow bookkeeping: the merge stage's output is the final
        // result set, and join-within's unit work matches the counters.
        let merge = &out.stages[3];
        assert_eq!(merge.items_out, out.results.len() as u64);
        let within = &out.stages[2];
        let between = &out.stages[1];
        assert_eq!(
            within.tests + between.tests,
            out.comparisons + out.prefilter_tests
        );
    }

    #[test]
    fn parallel_join_matches_serial() {
        // A dozen object/query convoys scattered along a line: several
        // surviving pairs to partition across workers.
        let params = ScubaParams::default().with_grid_cells(8);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        for i in 0..12u64 {
            let x = 80.0 * i as f64 + 40.0;
            e.process_update(&obj(i, x, 500.0, 30.0, CN_EAST));
            e.process_update(&obj(100 + i, x + 5.0, 505.0, 30.0, CN_EAST));
            e.process_update(&qry(i, x + 2.0, 502.0, 30.0, CN_WEST, 60.0));
        }
        let serial = ctx(&e).run();
        assert!(!serial.results.is_empty());
        for workers in [2usize, 4, 8] {
            let mut parallel_ctx = ctx(&e);
            parallel_ctx.parallelism = workers;
            let parallel = parallel_ctx.run();
            assert_eq!(parallel.results, serial.results, "workers={workers}");
            assert_eq!(parallel.comparisons, serial.comparisons);
            assert_eq!(parallel.prefilter_tests, serial.prefilter_tests);
            assert_eq!(parallel.pairs_joined, serial.pairs_joined);
            assert_eq!(parallel.pairs_pruned, serial.pairs_pruned);
        }
    }

    /// The wide kernel must reproduce the scalar run bit-for-bit: result
    /// set, every work counter, and the survivor bookkeeping.
    #[test]
    fn wide_kernel_run_matches_scalar() {
        let params = ScubaParams::default().with_grid_cells(8);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        for i in 0..12u64 {
            let x = 80.0 * i as f64 + 40.0;
            e.process_update(&obj(i, x, 500.0, 30.0, CN_EAST));
            e.process_update(&obj(100 + i, x + 5.0, 505.0, 30.0, CN_EAST));
            e.process_update(&qry(i, x + 2.0, 502.0, 30.0, CN_WEST, 60.0));
        }
        let mut scalar_ctx = ctx(&e);
        scalar_ctx.kernel = KernelKind::Scalar;
        let scalar = scalar_ctx.run();
        assert!(!scalar.results.is_empty());

        let mut wide_ctx = ctx(&e);
        wide_ctx.kernel = KernelKind::Simd;
        let wide = wide_ctx.run();
        assert_eq!(wide.results, scalar.results);
        assert_eq!(wide.comparisons, scalar.comparisons);
        assert_eq!(wide.prefilter_tests, scalar.prefilter_tests);
        assert_eq!(wide.pairs_joined, scalar.pairs_joined);
        assert_eq!(wide.pairs_pruned, scalar.pairs_pruned);
        assert_eq!(wide.cache_hits, scalar.cache_hits);
        assert_eq!(wide.cache_misses, scalar.cache_misses);
    }

    #[test]
    fn clean_epoch_replays_from_cache_bit_identically() {
        let params = ScubaParams::default().with_grid_cells(8);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        for i in 0..6u64 {
            let x = 120.0 * i as f64 + 60.0;
            e.process_update(&obj(i, x, 500.0, 30.0, CN_EAST));
            e.process_update(&qry(i, x + 2.0, 502.0, 30.0, CN_WEST, 60.0));
        }
        let mut cache = JoinCache::new();
        let mut scratch = JoinScratch::new();

        let cold = ctx(&e).run_cached(Some(e.epochs()), &mut cache, &mut scratch);
        assert!(cold.cache_hits == 0 && cold.cache_misses > 0);
        assert!(!cold.results.is_empty());
        assert!(!cache.is_empty());

        // Nothing mutated between rounds: every surviving pair replays.
        let warm = ctx(&e).run_cached(Some(e.epochs()), &mut cache, &mut scratch);
        assert_eq!(warm.results, cold.results);
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.cache_hits, cold.cache_misses);
        assert_eq!(warm.comparisons, 0, "no member work on a clean epoch");
        // And a from-scratch run still agrees.
        assert_eq!(ctx(&e).run().results, warm.results);
    }

    #[test]
    fn mutation_invalidates_only_touched_pairs() {
        let params = ScubaParams::default().with_grid_cells(8);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        for i in 0..6u64 {
            let x = 120.0 * i as f64 + 60.0;
            e.process_update(&obj(i, x, 500.0, 30.0, CN_EAST));
            e.process_update(&qry(i, x + 2.0, 502.0, 30.0, CN_WEST, 60.0));
        }
        let mut cache = JoinCache::new();
        let mut scratch = JoinScratch::new();
        let cold = ctx(&e).run_cached(Some(e.epochs()), &mut cache, &mut scratch);

        // Refresh one object: exactly its cluster's pairs recompute.
        e.process_update(&obj(0, 61.0, 500.0, 30.0, CN_EAST));
        let warm = ctx(&e).run_cached(Some(e.epochs()), &mut cache, &mut scratch);
        assert!(warm.cache_hits > 0, "untouched pairs replay");
        assert!(warm.cache_misses > 0, "touched pair recomputes");
        assert!(warm.cache_misses < cold.cache_misses);
        assert_eq!(warm.results, ctx(&e).run().results);
    }

    #[test]
    fn disabled_cache_matches_enabled_results() {
        let params = ScubaParams::default().with_grid_cells(8);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        for i in 0..6u64 {
            let x = 120.0 * i as f64 + 60.0;
            e.process_update(&obj(i, x, 500.0, 30.0, CN_EAST));
            e.process_update(&qry(i, x + 2.0, 502.0, 30.0, CN_WEST, 60.0));
        }
        let mut cache = JoinCache::new();
        let mut scratch = JoinScratch::new();
        ctx(&e).run_cached(Some(e.epochs()), &mut cache, &mut scratch);
        let cached = ctx(&e).run_cached(Some(e.epochs()), &mut cache, &mut scratch);
        let plain = ctx(&e).run();
        assert_eq!(cached.results, plain.results);
        assert_eq!(plain.cache_hits, 0);
        assert_eq!(plain.cache_misses, 0);
        assert_eq!(plain.cache_invalidations, 0);
    }

    #[test]
    fn cache_stays_bounded_under_cluster_churn() {
        // Clusters dissolve and respawn (reusing slots) every round; the
        // end-of-round sweep must keep the cache proportional to the live
        // surviving-pair population, never accumulating dead entries.
        let params = ScubaParams::default().with_grid_cells(8);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        let mut cache = JoinCache::new();
        let mut scratch = JoinScratch::new();
        let mut max_len = 0usize;
        for round in 0..30u64 {
            // Two co-located convoys that re-form each round after the
            // maintenance pass dissolves whoever reached its destination.
            for i in 0..4u64 {
                let x = 400.0 + i as f64 * 6.0 + (round % 3) as f64;
                let mut o = obj(i, x, 500.0, 30.0, CN_EAST);
                o.time = round;
                e.process_update(&o);
                let mut q = qry(i, x + 2.0, 502.0, 30.0, CN_WEST, 40.0);
                q.time = round;
                e.process_update(&q);
            }
            let out = ctx(&e).run_cached(Some(e.epochs()), &mut cache, &mut scratch);
            assert!(
                cache.len() as u64 <= out.cache_hits + out.cache_misses,
                "round {round}: {} cached entries but only {} surviving pairs",
                cache.len(),
                out.cache_hits + out.cache_misses
            );
            max_len = max_len.max(cache.len());
            e.post_join_maintenance(round);
        }
        assert!(max_len > 0, "the cache did see entries");
    }
}
