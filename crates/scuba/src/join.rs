//! The cluster-based joining phase (paper §4, Algorithms 1–3).
//!
//! The phase runs as an explicit four-stage pipeline, each stage emitting
//! a [`StageStats`] record:
//!
//! 1. **pair discovery** — the ClusterGrid cell walk plus seen-pair dedup,
//!    materialising the unique cluster pairs sharing at least one cell;
//! 2. **join-between** (Algorithm 2) — the circle/circle overlap
//!    pre-filter. Pairs whose regions do not overlap are pruned: their
//!    members are *guaranteed* not to join individually (the cluster
//!    region covers all member positions);
//! 3. **join-within** (Algorithm 3) — the exact object×query join over the
//!    members of both clusters, materialising relative positions lazily.
//!    This is the embarrassingly parallel kernel: surviving pairs are
//!    independent, so [`JoinContext::parallelism`] > 1 partitions them
//!    across scoped worker threads fed by a crossbeam channel;
//! 4. **result merge** — sort + dedup of the worker outputs, which makes
//!    the result set independent of thread count and of pair order.
//!
//! Two engineering notes relative to the paper's pseudo-code:
//!
//! * Algorithm 3 joins the member *union* of both clusters, and Algorithm 1
//!   additionally runs a same-cluster join-within for mixed clusters — with
//!   the union semantics intra-cluster pairs would be compared once per
//!   overlapping partner. We compare *cross* pairs in the pair join and
//!   intra pairs exactly once in the same-cluster join; combined with the
//!   final dedup this produces the identical result set with fewer
//!   comparisons.
//! * Clusters sharing several grid cells would be joined once per shared
//!   cell; a seen-pair set deduplicates the work.
//!
//! Load shedding (§5) surfaces here: members whose relative position was
//! discarded are approximated **by their cluster centroid** — "individual
//! locations of the members can be discarded if need be, yet would still be
//! sufficiently approximated from the location of their cluster centroid"
//! (§1). Because every shed member of a cluster shares that single
//! approximate position, one predicate evaluation answers *all* of them at
//! once: a query region is tested against the centroid once and the verdict
//! fans out to the whole shed set, which is exactly why "the fewer relative
//! positions are maintained, the fewer individual joins need to be
//! performed" (§6.6). (§5 also sketches a coarser reading — assume all
//! members of overlapping clusters join — but that cross-product semantics
//! collapses accuracy to ~13 % on the default workload, far below the ~79 %
//! the paper reports at η = 50 %, so the centroid reading is the one
//! consistent with the paper's own measurements; see DESIGN.md.)

use scuba_motion::{ObjectId, QueryId, QuerySpec};
use scuba_spatial::{Circle, FxHashMap, FxHashSet, Point, Rect};
use scuba_stream::{QueryMatch, StageStats, Stopwatch};

use crate::cluster::{ClusterId, MovingCluster};
use crate::grid::ClusterGrid;
use crate::shedding::SheddingMode;
use crate::tables::QueriesTable;

/// Stage name: grid cell walk + seen-pair dedup.
pub const STAGE_PAIR_DISCOVERY: &str = "pair-discovery";
/// Stage name: cluster-pair overlap pre-filter (Algorithm 2).
pub const STAGE_JOIN_BETWEEN: &str = "join-between";
/// Stage name: exact member join over surviving pairs (Algorithm 3).
pub const STAGE_JOIN_WITHIN: &str = "join-within";
/// Stage name: sort + dedup of raw matches.
pub const STAGE_RESULT_MERGE: &str = "result-merge";

/// What one joining phase produced and how much work it did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinOutput {
    /// Deduplicated query answers.
    pub results: Vec<QueryMatch>,
    /// Exact object×query pair tests performed (join-within work).
    pub comparisons: u64,
    /// Coarse filter tests performed: cluster-pair overlap tests
    /// (join-between) plus member-vs-cluster reach tests inside
    /// join-within.
    pub prefilter_tests: u64,
    /// Cluster pairs pruned by join-between.
    pub pairs_pruned: u64,
    /// Cluster pairs that proceeded to join-within.
    pub pairs_joined: u64,
    /// Per-stage cost accounting, in pipeline order (pair discovery,
    /// join-between, join-within, result merge).
    pub stages: Vec<StageStats>,
}

/// Borrowed view of everything the joining phase needs. Decoupled from
/// [`crate::clustering::ClusterEngine`] so the K-means extension (§6.4) can
/// drive the identical join over offline-built clusters.
#[derive(Debug, Clone, Copy)]
pub struct JoinContext<'a> {
    /// Live clusters by id.
    pub clusters: &'a FxHashMap<ClusterId, MovingCluster>,
    /// The cluster grid driving the cell loop.
    pub grid: &'a ClusterGrid,
    /// Query attributes (range extents).
    pub queries: &'a QueriesTable,
    /// Active shedding mode. The shed/exact split is carried by the
    /// cluster members themselves; recorded here for diagnostics.
    pub shedding: SheddingMode,
    /// Distance threshold Θ_D (bounds the centroid-approximation error of
    /// shed members; recorded for diagnostics).
    pub theta_d: f64,
    /// Whether to apply the member-vs-cluster reach filter inside
    /// join-within (sound either way; `false` reverts to Algorithm 3's
    /// plain nested loop for ablation).
    pub member_filter: bool,
    /// Worker threads for the join-within stage. 1 runs today's serial
    /// path (with a shared materialisation cache); n > 1 partitions the
    /// surviving pairs across n scoped threads. The result set and all
    /// work counters are identical for every value.
    pub parallelism: usize,
}

/// An exact (un-shed) range-query member with its region precomputed.
struct ExactQuery {
    qid: QueryId,
    pos: Point,
    region: Rect,
    bounding_radius: f64,
}

/// A cluster's members materialised into absolute coordinates.
struct Materialized {
    cid: ClusterId,
    /// Objects with known positions.
    exact_objects: Vec<(ObjectId, Point)>,
    /// Shed objects — all approximated at the centroid.
    shed_objects: Vec<ObjectId>,
    /// Range queries with known positions.
    exact_queries: Vec<ExactQuery>,
    /// Shed range queries grouped by spec: their region is centred on the
    /// centroid, so one region per distinct spec answers the whole group.
    shed_query_groups: Vec<(Rect, Vec<QueryId>)>,
    /// The centroid (approximate position of every shed member).
    centroid: Point,
    /// The cluster's (tight) circular region.
    region: Circle,
    /// `region` inflated by the widest member query's reach — anything an
    /// object must touch to possibly match one of this cluster's queries.
    reach: Circle,
}

impl Materialized {
    fn has_objects(&self) -> bool {
        !self.exact_objects.is_empty() || !self.shed_objects.is_empty()
    }

    fn has_queries(&self) -> bool {
        !self.exact_queries.is_empty() || !self.shed_query_groups.is_empty()
    }
}

/// The unique cluster pairs found by the cell walk, plus walk counters.
struct Discovery {
    pairs: Vec<(ClusterId, ClusterId)>,
    /// Total cluster entries visited across non-empty cells.
    entries_walked: u64,
    /// Candidate pair occurrences examined (before seen-pair dedup).
    candidates: u64,
}

/// Accumulator for the join-within kernel: one per worker, merged
/// commutatively afterwards.
#[derive(Default)]
struct WithinAcc {
    results: Vec<QueryMatch>,
    comparisons: u64,
    reach_tests: u64,
}

impl WithinAcc {
    fn absorb(&mut self, other: WithinAcc) {
        self.results.extend(other.results);
        self.comparisons += other.comparisons;
        self.reach_tests += other.reach_tests;
    }
}

impl<'a> JoinContext<'a> {
    /// Runs the full joining phase (Algorithm 1, steps 8–21) as the
    /// four-stage pipeline described in the module docs.
    pub fn run(&self) -> JoinOutput {
        let mut out = JoinOutput::default();
        let mut sw = Stopwatch::start();

        // Stage 1 — pair discovery: cell walk + seen-pair dedup.
        let discovery = self.discover_pairs();
        let discovered = discovery.pairs.len() as u64;
        out.stages.push(
            StageStats::join(STAGE_PAIR_DISCOVERY)
                .with_wall(sw.lap())
                .with_items(discovery.entries_walked, discovered)
                .with_tests(discovery.candidates),
        );

        // Stage 2 — join-between: the overlap pre-filter (Algorithm 2).
        let tasks = self.join_between(&discovery.pairs, &mut out);
        let between_tests = out.prefilter_tests;
        out.stages.push(
            StageStats::join(STAGE_JOIN_BETWEEN)
                .with_wall(sw.lap())
                .with_items(discovered, tasks.len() as u64)
                .with_tests(between_tests),
        );

        // Stage 3 — join-within: the exact member join (Algorithm 3),
        // partitioned across workers when parallelism > 1.
        let within = self.join_within(&tasks);
        out.comparisons = within.comparisons;
        out.prefilter_tests += within.reach_tests;
        out.results = within.results;
        let raw = out.results.len() as u64;
        out.stages.push(
            StageStats::join(STAGE_JOIN_WITHIN)
                .with_wall(sw.lap())
                .with_items(tasks.len() as u64, raw)
                .with_tests(within.comparisons + within.reach_tests),
        );

        // Stage 4 — result merge: sort + dedup, which also erases any
        // worker-interleaving of the raw matches.
        out.results.sort_unstable();
        out.results.dedup();
        out.stages.push(
            StageStats::join(STAGE_RESULT_MERGE)
                .with_wall(sw.lap())
                .with_items(raw, out.results.len() as u64),
        );
        out
    }

    /// Stage 1: walks the grid cell by cell and collects each cluster pair
    /// sharing a cell exactly once (self-pairs included), in first-seen
    /// order.
    fn discover_pairs(&self) -> Discovery {
        let mut seen: FxHashSet<(ClusterId, ClusterId)> = FxHashSet::default();
        let mut pairs = Vec::new();
        let mut entries_walked = 0u64;
        let mut candidates = 0u64;
        for (_, cell) in self.grid.iter_nonempty() {
            entries_walked += cell.len() as u64;
            for (i, &left) in cell.iter().enumerate() {
                for &right in &cell[i..] {
                    candidates += 1;
                    let key = if left <= right {
                        (left, right)
                    } else {
                        (right, left)
                    };
                    if seen.insert(key) {
                        pairs.push(key);
                    }
                }
            }
        }
        Discovery {
            pairs,
            entries_walked,
            candidates,
        }
    }

    /// Stage 2: filters the discovered pairs down to the ones join-within
    /// must examine. Same-cluster pairs survive only for mixed clusters
    /// (Algorithm 1, step 14); cross pairs survive the joinable-kind check
    /// and the region-overlap test (Algorithm 2). Updates the pair
    /// counters and overlap-test count on `out`.
    fn join_between(
        &self,
        pairs: &[(ClusterId, ClusterId)],
        out: &mut JoinOutput,
    ) -> Vec<(ClusterId, ClusterId)> {
        let mut tasks = Vec::with_capacity(pairs.len());
        for &(left, right) in pairs {
            let (Some(m_l), Some(m_r)) = (self.clusters.get(&left), self.clusters.get(&right))
            else {
                continue; // stale grid entry
            };

            if left == right {
                // Same-cluster join-within only for mixed clusters.
                if m_l.is_mixed() {
                    tasks.push((left, right));
                }
                continue;
            }

            // Only cross-kind pairs can produce results (Algorithm 1,
            // step 18).
            let joinable = (m_l.object_count() > 0 && m_r.query_count() > 0)
                || (m_l.query_count() > 0 && m_r.object_count() > 0);
            if !joinable {
                continue;
            }

            // The overlap pre-filter, with the query side inflated by its
            // widest range so pruned pairs really cannot produce results
            // (see MovingCluster::effective_region).
            out.prefilter_tests += 1;
            let can_match = m_l.region().overlaps(&m_r.effective_region())
                || m_r.region().overlaps(&m_l.effective_region());
            if !can_match {
                out.pairs_pruned += 1;
                continue;
            }
            out.pairs_joined += 1;
            tasks.push((left, right));
        }
        tasks
    }

    /// Stage 3: runs the member join over every surviving pair, serially
    /// or across `parallelism` scoped worker threads.
    ///
    /// Parallel execution is deterministic in everything the caller can
    /// observe: per-pair comparison and reach-test counts do not depend on
    /// which worker (or which materialisation cache) handles the pair, the
    /// counters merge commutatively, and the raw matches are sorted and
    /// deduped by the merge stage.
    fn join_within(&self, tasks: &[(ClusterId, ClusterId)]) -> WithinAcc {
        let workers = self.parallelism.max(1).min(tasks.len().max(1));
        if workers <= 1 {
            let mut acc = WithinAcc::default();
            let mut cache: FxHashMap<ClusterId, Materialized> = FxHashMap::default();
            for &(left, right) in tasks {
                self.join_task(left, right, &mut cache, &mut acc);
            }
            return acc;
        }

        let (task_tx, task_rx) = crossbeam::channel::unbounded::<(ClusterId, ClusterId)>();
        for &pair in tasks {
            task_tx.send(pair).expect("task receiver alive");
        }
        drop(task_tx);

        let mut merged = WithinAcc::default();
        std::thread::scope(|scope| {
            let (result_tx, result_rx) = crossbeam::channel::unbounded::<WithinAcc>();
            for _ in 0..workers {
                let rx = task_rx.clone();
                let tx = result_tx.clone();
                let ctx = *self;
                scope.spawn(move || {
                    let mut acc = WithinAcc::default();
                    let mut cache: FxHashMap<ClusterId, Materialized> = FxHashMap::default();
                    for (left, right) in rx.iter() {
                        ctx.join_task(left, right, &mut cache, &mut acc);
                    }
                    let _ = tx.send(acc);
                });
            }
            drop(result_tx);
            for acc in result_rx.iter() {
                merged.absorb(acc);
            }
        });
        merged
    }

    /// Joins one surviving pair: the same-cluster join for `(c, c)` tasks,
    /// otherwise L-objects × R-queries and R-objects × L-queries.
    fn join_task(
        &self,
        left: ClusterId,
        right: ClusterId,
        cache: &mut FxHashMap<ClusterId, Materialized>,
        acc: &mut WithinAcc,
    ) {
        let (Some(m_l), Some(m_r)) = (self.clusters.get(&left), self.clusters.get(&right)) else {
            return; // stale grid entry
        };

        if left == right {
            let member_filter = self.member_filter;
            let mat = self.materialize_cached(m_l, cache);
            Self::join_members(mat, mat, member_filter, acc);
            return;
        }

        self.materialize_cached(m_l, cache);
        self.materialize_cached(m_r, cache);
        let mat_l = &cache[&left];
        let mat_r = &cache[&right];
        Self::join_members(mat_l, mat_r, self.member_filter, acc);
        Self::join_members(mat_r, mat_l, self.member_filter, acc);
    }

    /// Joins `objects_of`'s objects against `queries_of`'s queries.
    ///
    /// For *cross*-cluster pairs a member-level pre-filter (not in the
    /// paper's Algorithm 3, which does the full nested loop) skips objects
    /// outside the partner's query reach and queries whose inflated region
    /// cannot touch the partner's cluster circle. Both checks are sound:
    /// they can only discard pairs the exact predicate would reject, since
    /// every member — shed members sit at the centroid — lies within its
    /// cluster circle.
    ///
    /// Shed members amortise: all shed objects of a cluster share the
    /// centroid position, so one region test answers the whole set, and
    /// likewise for each distinct shed-query spec.
    fn join_members(
        objects_of: &Materialized,
        queries_of: &Materialized,
        member_filter: bool,
        acc: &mut WithinAcc,
    ) {
        if !objects_of.has_objects() || !queries_of.has_queries() {
            return;
        }
        // The reach filters are no-ops within a single cluster (every
        // member is inside its own region by construction), and disabled
        // entirely when ablating.
        let skip_filters = objects_of.cid == queries_of.cid || !member_filter;

        // Exact queries that can reach the object cluster at all.
        let mut active: Vec<&ExactQuery> = Vec::with_capacity(queries_of.exact_queries.len());
        for q in &queries_of.exact_queries {
            if !skip_filters {
                acc.reach_tests += 1;
                let reach = Circle::new(
                    objects_of.region.center,
                    objects_of.region.radius + q.bounding_radius,
                );
                if !reach.contains(&q.pos) {
                    continue;
                }
            }
            active.push(q);
        }

        // 1. Exact objects × exact queries.
        if !active.is_empty() {
            for &(oid, p) in &objects_of.exact_objects {
                if !skip_filters {
                    acc.reach_tests += 1;
                    if !queries_of.reach.contains(&p) {
                        continue;
                    }
                }
                for q in &active {
                    acc.comparisons += 1;
                    if q.region.contains(&p) {
                        acc.results.push(QueryMatch::new(q.qid, oid));
                    }
                }
            }
        }

        // 2. Shed objects (all at the centroid) × exact queries: one test
        //    per query answers every shed object.
        if !objects_of.shed_objects.is_empty() {
            for q in &active {
                acc.comparisons += 1;
                if q.region.contains(&objects_of.centroid) {
                    for &oid in &objects_of.shed_objects {
                        acc.results.push(QueryMatch::new(q.qid, oid));
                    }
                }
            }
        }

        // 3. Shed query groups (regions centred on the query cluster's
        //    centroid).
        for (region, qids) in &queries_of.shed_query_groups {
            // 3a. Exact objects.
            for &(oid, p) in &objects_of.exact_objects {
                acc.comparisons += 1;
                if region.contains(&p) {
                    for &qid in qids {
                        acc.results.push(QueryMatch::new(qid, oid));
                    }
                }
            }
            // 3b. Shed objects: a single centroid-in-region test answers
            //     the full cross product.
            if !objects_of.shed_objects.is_empty() {
                acc.comparisons += 1;
                if region.contains(&objects_of.centroid) {
                    for &qid in qids {
                        for &oid in &objects_of.shed_objects {
                            acc.results.push(QueryMatch::new(qid, oid));
                        }
                    }
                }
            }
        }
    }

    fn materialize_cached<'c>(
        &self,
        cluster: &MovingCluster,
        cache: &'c mut FxHashMap<ClusterId, Materialized>,
    ) -> &'c Materialized {
        cache
            .entry(cluster.cid)
            .or_insert_with(|| self.materialize(cluster))
    }

    /// Applies the lazy transformation to every member — "we refrain from
    /// constantly updating the relative positions of the cluster members,
    /// as this info is not needed, unless a join-within is to be performed"
    /// (§3.1). Shed members materialise at the centroid.
    fn materialize(&self, cluster: &MovingCluster) -> Materialized {
        let centroid = cluster.centroid();
        let mut exact_objects = Vec::with_capacity(cluster.object_count());
        let mut shed_objects = Vec::new();
        let mut exact_queries = Vec::with_capacity(cluster.query_count());
        let mut shed_query_groups: Vec<(Rect, Vec<QueryId>)> = Vec::new();

        for member in cluster.members() {
            let pos = cluster.member_position(member);
            match member.entity {
                scuba_motion::EntityRef::Object(oid) => match pos {
                    Some(p) => exact_objects.push((oid, p)),
                    None => shed_objects.push(oid),
                },
                scuba_motion::EntityRef::Query(qid) => {
                    let Some(attrs) = self.queries.get(qid) else {
                        continue; // query unknown to the table; skip
                    };
                    let QuerySpec::Range { .. } = attrs.spec else {
                        continue; // kNN queries are answered by the knn module
                    };
                    match pos {
                        Some(p) => exact_queries.push(ExactQuery {
                            qid,
                            pos: p,
                            region: attrs
                                .spec
                                .region_at(p)
                                .expect("range spec always has a region"),
                            bounding_radius: attrs.spec.bounding_radius(),
                        }),
                        None => {
                            let region = attrs
                                .spec
                                .region_at(centroid)
                                .expect("range spec always has a region");
                            match shed_query_groups.iter_mut().find(|(r, _)| *r == region) {
                                Some((_, qids)) => qids.push(qid),
                                None => shed_query_groups.push((region, vec![qid])),
                            }
                        }
                    }
                }
            }
        }
        let region = cluster.region();
        Materialized {
            cid: cluster.cid,
            exact_objects,
            shed_objects,
            exact_queries,
            shed_query_groups,
            centroid,
            region,
            reach: Circle::new(region.center, region.radius + cluster.max_query_radius()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::ClusterEngine;
    use crate::params::ScubaParams;
    use scuba_motion::{LocationUpdate, ObjectAttrs, QueryAttrs};
    use scuba_spatial::Rect;
    use scuba_stream::PhaseKind;

    const CN_EAST: Point = Point {
        x: 1000.0,
        y: 500.0,
    };
    const CN_WEST: Point = Point { x: 0.0, y: 500.0 };

    fn obj(id: u64, x: f64, y: f64, speed: f64, cn: Point) -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            0,
            speed,
            cn,
            ObjectAttrs::default(),
        )
    }

    fn qry(id: u64, x: f64, y: f64, speed: f64, cn: Point, side: f64) -> LocationUpdate {
        LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            0,
            speed,
            cn,
            QueryAttrs {
                spec: QuerySpec::square_range(side),
            },
        )
    }

    fn ctx(engine: &ClusterEngine) -> JoinContext<'_> {
        JoinContext {
            clusters: engine.clusters(),
            grid: engine.grid(),
            queries: engine.queries(),
            shedding: engine.params().shedding,
            theta_d: engine.params().theta_d,
            member_filter: engine.params().member_filter,
            parallelism: engine.params().parallelism,
        }
    }

    #[test]
    fn same_cluster_match_found() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 505.0, 500.0, 30.0, CN_EAST, 20.0)); // covers ±10
        let out = ctx(&e).run();
        assert_eq!(out.results, vec![QueryMatch::new(QueryId(1), ObjectId(1))]);
        assert!(out.comparisons >= 1);
    }

    #[test]
    fn same_cluster_non_match_when_outside_range() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 530.0, 500.0, 30.0, CN_EAST, 20.0)); // 30 > 10
        let out = ctx(&e).run();
        assert!(out.results.is_empty());
        assert_eq!(out.comparisons, 1);
    }

    #[test]
    fn pure_clusters_skip_within_join() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&obj(2, 505.0, 500.0, 30.0, CN_EAST));
        let out = ctx(&e).run();
        assert_eq!(out.comparisons, 0);
        assert!(out.results.is_empty());
    }

    #[test]
    fn cross_cluster_join_between_and_within() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        // Cluster A: objects heading east; Cluster B: query heading west,
        // close enough that the regions overlap.
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&obj(2, 506.0, 500.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 503.0, 501.0, 30.0, CN_WEST, 20.0));
        assert_eq!(e.cluster_count(), 2);
        let out = ctx(&e).run();
        // One cluster-pair overlap test plus member-level reach tests.
        assert!(out.prefilter_tests >= 1);
        assert_eq!(out.pairs_joined, 1);
        assert_eq!(out.pairs_pruned, 0);
        // Both objects fall inside the 20-unit query range.
        assert_eq!(
            out.results,
            vec![
                QueryMatch::new(QueryId(1), ObjectId(1)),
                QueryMatch::new(QueryId(1), ObjectId(2)),
            ]
        );
    }

    #[test]
    fn join_between_prunes_distant_clusters_in_same_cell() {
        // Coarse grid (1 cell) so both clusters share the cell, but far
        // apart so the overlap test prunes them.
        let params = ScubaParams::default().with_grid_cells(1);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        e.process_update(&obj(1, 100.0, 100.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 900.0, 900.0, 30.0, CN_WEST, 20.0));
        let out = ctx(&e).run();
        assert_eq!(out.prefilter_tests, 1);
        assert_eq!(out.pairs_pruned, 1);
        assert_eq!(out.comparisons, 0, "join-within skipped");
        assert!(out.results.is_empty());
    }

    #[test]
    fn clusters_in_disjoint_cells_never_tested() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        e.process_update(&obj(1, 100.0, 100.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 900.0, 900.0, 30.0, CN_WEST, 20.0));
        let out = ctx(&e).run();
        assert_eq!(out.prefilter_tests, 0);
        assert_eq!(out.comparisons, 0);
    }

    #[test]
    fn pair_spanning_multiple_cells_joined_once() {
        // Big query range and a coarse-ish grid: both clusters overlap
        // several cells; the seen-set must dedup.
        let params = ScubaParams::default().with_grid_cells(4);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        for i in 0..5 {
            e.process_update(&obj(i, 450.0 + i as f64 * 20.0, 500.0, 30.0, CN_EAST));
        }
        e.process_update(&qry(1, 510.0, 505.0, 30.0, CN_WEST, 400.0));
        let out = ctx(&e).run();
        // All 5 objects match exactly once.
        assert_eq!(out.results.len(), 5);
        assert_eq!(out.pairs_joined, 1);
    }

    #[test]
    fn full_shedding_matches_by_region() {
        let params = ScubaParams::default().with_shedding(SheddingMode::Full);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 505.0, 500.0, 30.0, CN_EAST, 20.0));
        let out = ctx(&e).run();
        // Under full shedding both positions are gone; the nucleus overlap
        // reports the (true) match.
        assert_eq!(out.results, vec![QueryMatch::new(QueryId(1), ObjectId(1))]);
    }

    #[test]
    fn full_shedding_can_produce_false_positives() {
        let params = ScubaParams::default()
            .with_shedding(SheddingMode::Full)
            .with_grid_cells(10);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        // Object and query in the same cluster but 90 units apart — an
        // exact join would not match a 20-unit range.
        e.process_update(&obj(1, 460.0, 500.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 550.0, 500.0, 30.0, CN_EAST, 20.0));
        let out = ctx(&e).run();
        assert_eq!(
            out.results,
            vec![QueryMatch::new(QueryId(1), ObjectId(1))],
            "nucleus approximation over-reports"
        );

        // Ground truth without shedding finds nothing.
        let mut exact = ClusterEngine::new(
            ScubaParams::default().with_grid_cells(10),
            Rect::square(1000.0),
        );
        exact.process_update(&obj(1, 460.0, 500.0, 30.0, CN_EAST));
        exact.process_update(&qry(1, 550.0, 500.0, 30.0, CN_EAST, 20.0));
        let truth = ctx(&exact).run();
        assert!(truth.results.is_empty());
    }

    #[test]
    fn partial_shedding_mixed_exact_and_approximate() {
        let params = ScubaParams::default().with_shedding(SheddingMode::Partial { eta: 0.2 });
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST)); // founder, shed
        e.process_update(&obj(2, 580.0, 500.0, 30.0, CN_EAST)); // r≈80 kept
        e.process_update(&qry(1, 587.0, 500.0, 30.0, CN_EAST, 20.0)); // kept
        let out = ctx(&e).run();
        // Object 2 (exact, at 580) falls in the query region [577, 597].
        // Object 1 is shed: its nucleus (radius η·Θ_D = 20 around the final
        // centroid x ≈ 555.7) reaches only x ≈ 575.7 < 577, so the
        // approximation correctly rejects it.
        assert_eq!(out.results, vec![QueryMatch::new(QueryId(1), ObjectId(2))]);
    }

    #[test]
    fn knn_specs_are_skipped_by_range_join() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        let knn_q = LocationUpdate::query(
            QueryId(5),
            Point::new(501.0, 500.0),
            0,
            30.0,
            CN_EAST,
            QueryAttrs {
                spec: QuerySpec::Knn { k: 2 },
            },
        );
        e.process_update(&knn_q);
        let out = ctx(&e).run();
        assert!(out.results.is_empty());
    }

    #[test]
    fn results_are_sorted_and_deduped() {
        let mut e = ClusterEngine::new(
            ScubaParams::default().with_grid_cells(4),
            Rect::square(1000.0),
        );
        for i in 0..3 {
            e.process_update(&obj(i, 500.0 + i as f64, 500.0, 30.0, CN_EAST));
        }
        for q in 0..2 {
            e.process_update(&qry(q, 500.0 + q as f64, 501.0, 30.0, CN_EAST, 50.0));
        }
        let out = ctx(&e).run();
        assert_eq!(out.results.len(), 6);
        let mut sorted = out.results.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, out.results);
    }

    #[test]
    fn stages_are_emitted_in_pipeline_order() {
        let mut e = ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0));
        e.process_update(&obj(1, 500.0, 500.0, 30.0, CN_EAST));
        e.process_update(&qry(1, 505.0, 500.0, 30.0, CN_EAST, 20.0));
        let out = ctx(&e).run();
        let names: Vec<&str> = out.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                STAGE_PAIR_DISCOVERY,
                STAGE_JOIN_BETWEEN,
                STAGE_JOIN_WITHIN,
                STAGE_RESULT_MERGE,
            ]
        );
        assert!(out.stages.iter().all(|s| s.kind == PhaseKind::Join));
        // Data-flow bookkeeping: the merge stage's output is the final
        // result set, and join-within's unit work matches the counters.
        let merge = &out.stages[3];
        assert_eq!(merge.items_out, out.results.len() as u64);
        let within = &out.stages[2];
        let between = &out.stages[1];
        assert_eq!(
            within.tests + between.tests,
            out.comparisons + out.prefilter_tests
        );
    }

    #[test]
    fn parallel_join_matches_serial() {
        // A dozen object/query convoys scattered along a line: several
        // surviving pairs to partition across workers.
        let params = ScubaParams::default().with_grid_cells(8);
        let mut e = ClusterEngine::new(params, Rect::square(1000.0));
        for i in 0..12u64 {
            let x = 80.0 * i as f64 + 40.0;
            e.process_update(&obj(i, x, 500.0, 30.0, CN_EAST));
            e.process_update(&obj(100 + i, x + 5.0, 505.0, 30.0, CN_EAST));
            e.process_update(&qry(i, x + 2.0, 502.0, 30.0, CN_WEST, 60.0));
        }
        let serial = ctx(&e).run();
        assert!(!serial.results.is_empty());
        for workers in [2usize, 4, 8] {
            let mut parallel_ctx = ctx(&e);
            parallel_ctx.parallelism = workers;
            let parallel = parallel_ctx.run();
            assert_eq!(parallel.results, serial.results, "workers={workers}");
            assert_eq!(parallel.comparisons, serial.comparisons);
            assert_eq!(parallel.prefilter_tests, serial.prefilter_tests);
            assert_eq!(parallel.pairs_joined, serial.pairs_joined);
            assert_eq!(parallel.pairs_pruned, serial.pairs_pruned);
        }
    }
}
