//! Cluster-assisted k-nearest-neighbour queries — the §1 extension.
//!
//! "For kNN queries, moving clusters that are not intersecting with other
//! moving clusters and contain at least k members can be assumed to contain
//! nearest members of the query object."
//!
//! [`knn_for_query`] implements that shortcut: when the query's own cluster
//! is isolated (its region overlaps no other cluster) and holds at least
//! `k` object members, the answer is computed within the cluster alone;
//! otherwise it falls back to a scan over all clusters. Shed members are
//! approximated by their cluster centroid (consistent with §5's
//! cluster-as-summary semantics).

use scuba_motion::{ObjectId, QueryId};
use scuba_spatial::Point;

use crate::cluster::MovingCluster;
use crate::clustering::ClusterEngine;

/// One nearest neighbour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The neighbouring object.
    pub object: ObjectId,
    /// Distance from the query position (approximate for shed members).
    pub distance: f64,
}

/// A kNN answer with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnAnswer {
    /// Up to `k` nearest objects, closest first.
    pub neighbors: Vec<Neighbor>,
    /// Whether the isolated-cluster shortcut answered the query without a
    /// global scan.
    pub used_cluster_shortcut: bool,
}

/// Evaluates every *registered, currently clustered* kNN query and returns
/// the answers as `(query, object)` result tuples — making kNN a
/// first-class continuous query type alongside range queries (the range
/// join skips `QuerySpec::Knn` members; this is their evaluation path).
pub fn evaluate_continuous(engine: &ClusterEngine) -> Vec<scuba_stream::QueryMatch> {
    let mut results = Vec::new();
    for (qid, attrs) in engine.queries().iter() {
        let scuba_motion::QuerySpec::Knn { k } = attrs.spec else {
            continue;
        };
        if let Some(answer) = knn_for_query(engine, qid, k as usize) {
            for n in answer.neighbors {
                results.push(scuba_stream::QueryMatch::new(qid, n.object));
            }
        }
    }
    results
}

/// Answers a kNN query for a registered query entity.
///
/// Returns `None` when the query is not currently clustered (no update has
/// been seen for it).
///
/// The shortcut candidate is the query's own cluster when it holds enough
/// objects; otherwise any cluster whose region covers the query's position
/// and holds ≥ k objects (with pure single-kind clusters the query's own
/// cluster never contains objects, but the query may be travelling inside
/// an object convoy).
pub fn knn_for_query(engine: &ClusterEngine, query: QueryId, k: usize) -> Option<KnnAnswer> {
    let slot = engine.home().cluster_of(query.into())?;
    let cluster = engine.cluster_at(slot)?;
    let member = cluster.member(query.into())?;
    let center = cluster
        .member_position(member)
        .unwrap_or_else(|| cluster.centroid());
    let candidate = if cluster.object_count() >= k {
        Some(slot)
    } else {
        engine
            .grid()
            .clusters_near(&center)
            .iter()
            .copied()
            .find(|other| {
                engine
                    .cluster_at(*other)
                    .is_some_and(|c| c.object_count() >= k && c.region().contains(&center))
            })
    };
    Some(knn_at(engine, center, k, candidate))
}

/// Answers a kNN query around an arbitrary position. `home_cluster` is the
/// slot of the cluster the query travels in, if known.
pub fn knn_at(
    engine: &ClusterEngine,
    center: Point,
    k: usize,
    home_cluster: Option<crate::store::ClusterSlot>,
) -> KnnAnswer {
    if k == 0 {
        return KnnAnswer {
            neighbors: Vec::new(),
            used_cluster_shortcut: false,
        };
    }

    // Shortcut: isolated home cluster with enough object members.
    if let Some(slot) = home_cluster {
        if let Some(cluster) = engine.cluster_at(slot) {
            if cluster.object_count() >= k && is_isolated(engine, cluster) {
                let mut neighbors = collect_neighbors(cluster, &center);
                truncate_k(&mut neighbors, k);
                return KnnAnswer {
                    neighbors,
                    used_cluster_shortcut: true,
                };
            }
        }
    }

    // Fallback: scan every cluster's members.
    let mut neighbors: Vec<Neighbor> = Vec::new();
    for cluster in engine.clusters().values() {
        neighbors.extend(collect_neighbors(cluster, &center));
    }
    truncate_k(&mut neighbors, k);
    KnnAnswer {
        neighbors,
        used_cluster_shortcut: false,
    }
}

/// Whether the cluster's region overlaps no other cluster's region.
fn is_isolated(engine: &ClusterEngine, cluster: &MovingCluster) -> bool {
    let region = cluster.region();
    engine
        .clusters()
        .values()
        .filter(|other| other.cid != cluster.cid)
        .all(|other| !region.overlaps(&other.region()))
}

fn collect_neighbors(cluster: &MovingCluster, center: &Point) -> Vec<Neighbor> {
    cluster
        .members()
        .iter()
        .filter_map(|m| {
            let oid = match m.entity {
                scuba_motion::EntityRef::Object(oid) => oid,
                scuba_motion::EntityRef::Query(_) => return None,
            };
            let pos = cluster
                .member_position(m)
                .unwrap_or_else(|| cluster.centroid());
            Some(Neighbor {
                object: oid,
                distance: pos.distance(center),
            })
        })
        .collect()
}

fn truncate_k(neighbors: &mut Vec<Neighbor>, k: usize) {
    neighbors.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("distances are finite")
            .then_with(|| a.object.cmp(&b.object))
    });
    neighbors.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ScubaParams;
    use scuba_motion::{LocationUpdate, ObjectAttrs, QueryAttrs, QuerySpec};
    use scuba_spatial::Rect;

    const CN_E: Point = Point {
        x: 1000.0,
        y: 500.0,
    };
    const CN_W: Point = Point { x: 0.0, y: 500.0 };

    fn obj(id: u64, x: f64, y: f64, cn: Point) -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(id),
            Point::new(x, y),
            0,
            30.0,
            cn,
            ObjectAttrs::default(),
        )
    }

    fn knn_query(id: u64, x: f64, y: f64, k: u32, cn: Point) -> LocationUpdate {
        LocationUpdate::query(
            QueryId(id),
            Point::new(x, y),
            0,
            30.0,
            cn,
            QueryAttrs {
                spec: QuerySpec::Knn { k },
            },
        )
    }

    fn engine() -> ClusterEngine {
        ClusterEngine::new(ScubaParams::default(), Rect::square(1000.0))
    }

    #[test]
    fn shortcut_used_for_isolated_cluster() {
        let mut e = engine();
        e.process_update(&knn_query(1, 500.0, 500.0, 2, CN_E));
        e.process_update(&obj(1, 505.0, 500.0, CN_E));
        e.process_update(&obj(2, 510.0, 500.0, CN_E));
        e.process_update(&obj(3, 520.0, 500.0, CN_E));
        // A far-away unrelated cluster.
        e.process_update(&obj(9, 50.0, 50.0, CN_W));

        let answer = knn_for_query(&e, QueryId(1), 2).unwrap();
        assert!(answer.used_cluster_shortcut);
        assert_eq!(answer.neighbors.len(), 2);
        assert_eq!(answer.neighbors[0].object, ObjectId(1));
        assert_eq!(answer.neighbors[1].object, ObjectId(2));
        assert!(answer.neighbors[0].distance <= answer.neighbors[1].distance);
    }

    #[test]
    fn fallback_when_cluster_too_small() {
        let mut e = engine();
        e.process_update(&knn_query(1, 500.0, 500.0, 3, CN_E));
        e.process_update(&obj(1, 505.0, 500.0, CN_E));
        // Other objects are in a different cluster (other direction).
        e.process_update(&obj(2, 510.0, 500.0, CN_W));
        e.process_update(&obj(3, 515.0, 500.0, CN_W));

        let answer = knn_for_query(&e, QueryId(1), 3).unwrap();
        assert!(!answer.used_cluster_shortcut);
        assert_eq!(answer.neighbors.len(), 3);
        // Global scan still returns globally nearest objects.
        assert_eq!(answer.neighbors[0].object, ObjectId(1));
    }

    #[test]
    fn fallback_when_clusters_overlap() {
        let mut e = engine();
        e.process_update(&knn_query(1, 500.0, 500.0, 1, CN_E));
        e.process_update(&obj(1, 505.0, 500.0, CN_E));
        e.process_update(&obj(2, 507.0, 500.0, CN_E));
        // Overlapping cluster heading the other way.
        e.process_update(&obj(3, 506.0, 501.0, CN_W));
        e.process_update(&obj(4, 509.0, 501.0, CN_W));

        let answer = knn_for_query(&e, QueryId(1), 1).unwrap();
        assert!(!answer.used_cluster_shortcut, "clusters overlap");
        assert_eq!(answer.neighbors.len(), 1);
    }

    #[test]
    fn unknown_query_returns_none() {
        let e = engine();
        assert!(knn_for_query(&e, QueryId(42), 3).is_none());
    }

    #[test]
    fn k_zero_is_empty() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, CN_E));
        let answer = knn_at(&e, Point::new(500.0, 500.0), 0, None);
        assert!(answer.neighbors.is_empty());
    }

    #[test]
    fn k_exceeding_population_returns_all() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, CN_E));
        e.process_update(&obj(2, 100.0, 100.0, CN_W));
        let answer = knn_at(&e, Point::new(500.0, 500.0), 10, None);
        assert_eq!(answer.neighbors.len(), 2);
        assert_eq!(answer.neighbors[0].object, ObjectId(1));
    }

    #[test]
    fn queries_are_not_neighbors() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, CN_E));
        e.process_update(&knn_query(7, 501.0, 500.0, 5, CN_E));
        let answer = knn_at(&e, Point::new(500.0, 500.0), 5, None);
        assert_eq!(answer.neighbors.len(), 1);
        assert_eq!(answer.neighbors[0].object, ObjectId(1));
    }

    #[test]
    fn distances_are_exact_for_unshed_members() {
        let mut e = engine();
        e.process_update(&obj(1, 503.0, 504.0, CN_E));
        let answer = knn_at(&e, Point::new(500.0, 500.0), 1, None);
        assert!((answer.neighbors[0].distance - 5.0).abs() < 1e-9);
    }

    #[test]
    fn evaluate_continuous_answers_all_knn_queries() {
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, CN_E));
        e.process_update(&obj(2, 510.0, 500.0, CN_E));
        e.process_update(&knn_query(1, 502.0, 500.0, 1, CN_E));
        e.process_update(&knn_query(2, 509.0, 500.0, 2, CN_E));
        let mut results = evaluate_continuous(&e);
        results.sort_unstable();
        // Q1 wants 1 neighbour (object 1 is nearest), Q2 wants 2.
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].query, QueryId(1));
        assert_eq!(results[0].object, ObjectId(1));
        assert!(results[1..].iter().all(|m| m.query == QueryId(2)));
    }

    #[test]
    fn evaluate_continuous_ignores_range_queries() {
        use scuba_motion::QuerySpec;
        let mut e = engine();
        e.process_update(&obj(1, 500.0, 500.0, CN_E));
        e.process_update(&LocationUpdate::query(
            QueryId(9),
            Point::new(501.0, 500.0),
            0,
            30.0,
            CN_E,
            QueryAttrs {
                spec: QuerySpec::square_range(10.0),
            },
        ));
        assert!(evaluate_continuous(&e).is_empty());
    }
}
