//! The generational cluster store: a dense slab of [`MovingCluster`]s with
//! parallel structure-of-arrays hot columns.
//!
//! Every layer that walks clusters per Δ — the join-between circle
//! pre-filter, the join cache, load shedding, maintenance — used to chase a
//! `FxHashMap<ClusterId, MovingCluster>` entry per touch. The store replaces
//! that with:
//!
//! * a **slab** (`Vec<Option<MovingCluster>>`) addressed by dense
//!   [`ClusterSlot`] handles, with a LIFO free list so dissolved slots are
//!   reused and the slab stays compact under churn;
//! * **generation counters** per slot, bumped on every reuse, so stale
//!   handles are detectable (debug assertions; the epoch clock below makes
//!   reuse safe for the cache even without checking generations);
//! * **SoA hot columns** (centroid x/y, radius, effective radius, velocity,
//!   member counts) kept in sync on every mutation, so the join-between
//!   pre-filter is a linear sweep over contiguous `f64` columns;
//! * the dense [`EpochTracker`] — one `u64` mutation mark per slot under a
//!   global monotonic clock.
//!
//! [`ClusterId`] remains the public, on-disk identity: snapshots, JSON, and
//! reports are keyed and ordered by id, never by slot. Slots are an
//! in-memory addressing scheme that a restart is free to reassign — which is
//! exactly why [`crate::snapshot`] stores ids and rebuilds slots on restore.
//!
//! ## Why slot reuse cannot corrupt the join cache
//!
//! The cache keys entries by slot pair and validates them against the
//! epoch clock. Both dissolving a cluster (`forget` → `u64::MAX`) and
//! inserting into a reused slot (`touch` → a fresh clock value strictly
//! greater than any `computed_at` recorded earlier) make
//! [`EpochTracker::clean_since`] return `false` for every stale entry, so a
//! reused slot always recomputes its pairs. Generations are therefore a
//! debugging aid, not a correctness requirement.

use scuba_spatial::FxHashMap;

use crate::cluster::{ClusterId, MovingCluster};

/// A dense handle addressing a live cluster inside the [`ClusterStore`]'s
/// slab. Slots are reused after dissolution; they are process-local and
/// never serialised ([`ClusterId`] is the durable identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterSlot(pub u32);

impl ClusterSlot {
    /// The slot's raw slab index.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-cluster mutation clock, dense over store slots.
///
/// `touch` stamps a slot with a fresh value of a global monotonically
/// increasing clock; `clean_since(slot, epoch)` answers "has this slot
/// mutated since `epoch`?" in one indexed load. Forgotten (dissolved)
/// slots carry `u64::MAX`, which is never `<=` any observed epoch, so they
/// always read as dirty.
#[derive(Debug, Clone, Default)]
pub struct EpochTracker {
    clock: u64,
    marks: Vec<u64>,
}

/// Mark for a slot that has never been touched or has been forgotten:
/// always dirty.
const NEVER: u64 = u64::MAX;

impl EpochTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        EpochTracker::default()
    }

    /// The current clock value: strictly increases with every mutation
    /// anywhere in the store.
    #[inline]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Records a mutation of `slot` at a fresh clock value.
    pub fn touch(&mut self, slot: ClusterSlot) {
        self.clock += 1;
        let i = slot.index();
        if i >= self.marks.len() {
            self.marks.resize(i + 1, NEVER);
        }
        self.marks[i] = self.clock;
    }

    /// Forgets `slot` (cluster dissolved): it reads as dirty forever after,
    /// until a new cluster occupies the slot and touches it.
    pub fn forget(&mut self, slot: ClusterSlot) {
        if let Some(m) = self.marks.get_mut(slot.index()) {
            *m = NEVER;
        }
    }

    /// The clock value of `slot`'s last mutation, or `u64::MAX` when the
    /// slot was never touched (or was forgotten).
    #[inline]
    pub fn mark(&self, slot: ClusterSlot) -> u64 {
        self.marks.get(slot.index()).copied().unwrap_or(NEVER)
    }

    /// Whether `slot` has *not* mutated since `epoch` (a previously
    /// observed clock value).
    #[inline]
    pub fn clean_since(&self, slot: ClusterSlot, epoch: u64) -> bool {
        self.mark(slot) <= epoch
    }

    /// Bytes of heap held by the tracker.
    pub fn estimated_bytes(&self) -> usize {
        self.marks.capacity() * std::mem::size_of::<u64>()
    }
}

/// Borrowed views of the store's SoA hot columns, indexed by slot. Vacant
/// slots hold zeros; callers only index them through live slot handles.
#[derive(Debug, Clone, Copy)]
pub struct StoreColumns<'a> {
    /// Centroid x per slot.
    pub cx: &'a [f64],
    /// Centroid y per slot.
    pub cy: &'a [f64],
    /// Covering radius per slot ([`MovingCluster::region`]).
    pub radius: &'a [f64],
    /// Effective radius per slot — radius + widest member-query reach
    /// ([`MovingCluster::effective_region`]).
    pub eff_radius: &'a [f64],
    /// Velocity x per slot.
    pub vx: &'a [f64],
    /// Velocity y per slot.
    pub vy: &'a [f64],
    /// Total member count per slot.
    pub member_count: &'a [u32],
    /// Object members per slot.
    pub object_count: &'a [u32],
    /// Query members per slot.
    pub query_count: &'a [u32],
}

impl StoreColumns<'_> {
    /// Slots every column covers (the store's [`ClusterStore::capacity`]).
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.cx.len()
    }

    /// Whether the columns cover no slots.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.cx.is_empty()
    }

    /// Pre-filter geometry of slot index `i`:
    /// `(cx, cy, radius, eff_radius)`. Bounds-checked.
    #[inline(always)]
    pub fn circle_at(&self, i: usize) -> (f64, f64, f64, f64) {
        (self.cx[i], self.cy[i], self.radius[i], self.eff_radius[i])
    }

    /// Member-kind counts of slot index `i`:
    /// `(object_count, query_count)`. Bounds-checked.
    #[inline(always)]
    pub fn counts_at(&self, i: usize) -> (u32, u32) {
        (self.object_count[i], self.query_count[i])
    }

    /// [`StoreColumns::circle_at`] without bounds checks, for the join
    /// kernel's gather loop (four loads per candidate pair; the checks are
    /// measurable there). Guarded by a `debug_assert` in debug builds.
    ///
    /// # Safety
    ///
    /// `i` must be less than [`StoreColumns::len`]. Slot indexes obtained
    /// from live [`ClusterSlot`] handles of the store these columns were
    /// borrowed from always satisfy this.
    #[inline(always)]
    #[allow(unsafe_code)]
    pub unsafe fn circle_at_unchecked(&self, i: usize) -> (f64, f64, f64, f64) {
        debug_assert!(i < self.len(), "slot index {i} out of column bounds");
        // SAFETY: i < len() is the caller's contract, debug-asserted above;
        // all four columns are the same length.
        unsafe {
            (
                *self.cx.get_unchecked(i),
                *self.cy.get_unchecked(i),
                *self.radius.get_unchecked(i),
                *self.eff_radius.get_unchecked(i),
            )
        }
    }

    /// [`StoreColumns::counts_at`] without bounds checks.
    ///
    /// # Safety
    ///
    /// `i` must be less than [`StoreColumns::len`] (debug-asserted).
    #[inline(always)]
    #[allow(unsafe_code)]
    pub unsafe fn counts_at_unchecked(&self, i: usize) -> (u32, u32) {
        debug_assert!(i < self.len(), "slot index {i} out of column bounds");
        // SAFETY: i < len() is the caller's contract, debug-asserted above.
        unsafe {
            (
                *self.object_count.get_unchecked(i),
                *self.query_count.get_unchecked(i),
            )
        }
    }
}

/// The generational slab of live clusters plus SoA hot columns and the
/// dense epoch clock. See the module docs for the design.
#[derive(Debug, Clone, Default)]
pub struct ClusterStore {
    slots: Vec<Option<MovingCluster>>,
    generations: Vec<u32>,
    /// Vacant slot indexes, LIFO so churn reuses hot memory.
    free: Vec<u32>,
    /// Cold-path id → slot lookup (snapshots, diagnostics, kNN home
    /// resolution). Never consulted inside the per-tick join loops.
    by_id: FxHashMap<ClusterId, u32>,
    cx: Vec<f64>,
    cy: Vec<f64>,
    radius: Vec<f64>,
    eff_radius: Vec<f64>,
    vx: Vec<f64>,
    vy: Vec<f64>,
    member_count: Vec<u32>,
    object_count: Vec<u32>,
    query_count: Vec<u32>,
    epochs: EpochTracker,
    live: usize,
}

impl ClusterStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ClusterStore::default()
    }

    /// Number of live clusters.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no clusters are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots the slab spans (live + vacant). Dense tables sized
    /// off this bound cover every handle the store can currently produce.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The generation of `slot`: bumped each time the slot is reused.
    pub fn generation(&self, slot: ClusterSlot) -> u32 {
        self.generations.get(slot.index()).copied().unwrap_or(0)
    }

    /// The dense mutation clock.
    pub fn epochs(&self) -> &EpochTracker {
        &self.epochs
    }

    /// Records a mutation of `slot` on the epoch clock (callers that
    /// mutate through [`ClusterStore::update`] still decide themselves
    /// whether the mutation is cache-relevant).
    pub fn touch(&mut self, slot: ClusterSlot) {
        debug_assert!(self.contains(slot), "touch of vacant slot {slot:?}");
        self.epochs.touch(slot);
    }

    /// Inserts a cluster, returning its slot. Reuses a vacant slot when one
    /// exists (bumping its generation); the insertion counts as a mutation
    /// on the epoch clock. The cluster's id must not already be present.
    pub fn insert(&mut self, cluster: MovingCluster) -> ClusterSlot {
        let i = match self.free.pop() {
            Some(i) => {
                let i = i as usize;
                debug_assert!(self.slots[i].is_none(), "free list pointed at a live slot");
                self.generations[i] = self.generations[i].wrapping_add(1);
                i
            }
            None => {
                self.slots.push(None);
                self.generations.push(0);
                self.cx.push(0.0);
                self.cy.push(0.0);
                self.radius.push(0.0);
                self.eff_radius.push(0.0);
                self.vx.push(0.0);
                self.vy.push(0.0);
                self.member_count.push(0);
                self.object_count.push(0);
                self.query_count.push(0);
                self.slots.len() - 1
            }
        };
        let prev = self.by_id.insert(cluster.cid, i as u32);
        debug_assert!(prev.is_none(), "duplicate cluster id {:?}", cluster.cid);
        self.slots[i] = Some(cluster);
        self.live += 1;
        let slot = ClusterSlot(i as u32);
        self.sync_columns(slot);
        self.epochs.touch(slot);
        slot
    }

    /// Removes the cluster at `slot`, freeing the slot for reuse and
    /// forgetting its epoch mark.
    pub fn remove(&mut self, slot: ClusterSlot) -> MovingCluster {
        let i = slot.index();
        let cluster = self.slots[i].take().expect("remove of vacant slot");
        self.by_id.remove(&cluster.cid);
        self.cx[i] = 0.0;
        self.cy[i] = 0.0;
        self.radius[i] = 0.0;
        self.eff_radius[i] = 0.0;
        self.vx[i] = 0.0;
        self.vy[i] = 0.0;
        self.member_count[i] = 0;
        self.object_count[i] = 0;
        self.query_count[i] = 0;
        self.free.push(slot.0);
        self.epochs.forget(slot);
        self.live -= 1;
        cluster
    }

    /// Whether `slot` currently holds a cluster.
    pub fn contains(&self, slot: ClusterSlot) -> bool {
        self.slots.get(slot.index()).is_some_and(|s| s.is_some())
    }

    /// The cluster at `slot`, if the slot is live.
    pub fn get(&self, slot: ClusterSlot) -> Option<&MovingCluster> {
        self.slots.get(slot.index()).and_then(|s| s.as_ref())
    }

    /// Mutates the cluster at `slot` through a closure and re-syncs the
    /// slot's SoA columns afterwards. This is the only mutation path — it
    /// cannot leave columns stale.
    pub fn update<R>(&mut self, slot: ClusterSlot, f: impl FnOnce(&mut MovingCluster) -> R) -> R {
        let cluster = self.slots[slot.index()]
            .as_mut()
            .expect("update of vacant slot");
        let r = f(cluster);
        self.sync_columns(slot);
        r
    }

    /// The slot currently holding cluster `id` (cold path: hashes).
    pub fn slot_of(&self, id: ClusterId) -> Option<ClusterSlot> {
        self.by_id.get(&id).map(|&i| ClusterSlot(i))
    }

    /// The cluster with identity `id` (cold path: hashes).
    pub fn get_by_id(&self, id: ClusterId) -> Option<&MovingCluster> {
        self.slot_of(id).and_then(|slot| self.get(slot))
    }

    /// Live `(slot, cluster)` pairs in slot order. Slot order is
    /// deterministic for a given mutation history but *not* id order;
    /// anything user-visible must sort by [`ClusterId`] (snapshots do).
    pub fn iter(&self) -> impl Iterator<Item = (ClusterSlot, &MovingCluster)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|c| (ClusterSlot(i as u32), c)))
    }

    /// Live clusters in slot order.
    pub fn values(&self) -> impl Iterator<Item = &MovingCluster> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Live cluster ids in slot order.
    pub fn keys(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.values().map(|c| c.cid)
    }

    /// Live slots in slot order.
    pub fn slots(&self) -> impl Iterator<Item = ClusterSlot> + '_ {
        self.iter().map(|(slot, _)| slot)
    }

    /// Borrowed SoA hot columns, all `capacity()` long.
    #[inline]
    pub fn columns(&self) -> StoreColumns<'_> {
        StoreColumns {
            cx: &self.cx,
            cy: &self.cy,
            radius: &self.radius,
            eff_radius: &self.eff_radius,
            vx: &self.vx,
            vy: &self.vy,
            member_count: &self.member_count,
            object_count: &self.object_count,
            query_count: &self.query_count,
        }
    }

    /// Bytes of heap held by the slab, columns and id map (clusters
    /// included).
    pub fn estimated_bytes(&self) -> usize {
        let clusters: usize = self.values().map(MovingCluster::estimated_bytes).sum();
        let slab = self.slots.capacity() * std::mem::size_of::<Option<MovingCluster>>();
        let f64_cols = 6 * self.cx.capacity() * std::mem::size_of::<f64>();
        let u32_cols = 3 * self.member_count.capacity() * std::mem::size_of::<u32>()
            + self.generations.capacity() * std::mem::size_of::<u32>()
            + self.free.capacity() * std::mem::size_of::<u32>();
        let by_id = self.by_id.capacity() * (std::mem::size_of::<ClusterId>() + 12);
        clusters + slab + f64_cols + u32_cols + by_id + self.epochs.estimated_bytes()
    }

    /// Re-derives the SoA entries for `slot` from its cluster.
    fn sync_columns(&mut self, slot: ClusterSlot) {
        let i = slot.index();
        let c = self.slots[i].as_ref().expect("sync of vacant slot");
        let centroid = c.centroid();
        let v = c.velocity();
        self.cx[i] = centroid.x;
        self.cy[i] = centroid.y;
        self.radius[i] = c.radius();
        self.eff_radius[i] = c.radius() + c.max_query_radius();
        self.vx[i] = v.dx;
        self.vy[i] = v.dy;
        self.member_count[i] = c.len() as u32;
        self.object_count[i] = c.object_count() as u32;
        self.query_count[i] = c.query_count() as u32;
    }

    /// Exhaustive internal-coherence check (tests and
    /// [`crate::clustering::ClusterEngine::check_invariants`]): the id map
    /// is a bijection onto live slots, the free list covers exactly the
    /// vacant slots, and every column matches a fresh derivation.
    pub fn check_coherent(&self) {
        assert_eq!(
            self.live,
            self.slots.iter().filter(|s| s.is_some()).count(),
            "live count drifted"
        );
        assert_eq!(self.by_id.len(), self.live, "id map size drifted");
        let mut free_seen = vec![false; self.slots.len()];
        for &i in &self.free {
            assert!(
                self.slots[i as usize].is_none(),
                "free list points at live slot {i}"
            );
            assert!(!free_seen[i as usize], "slot {i} on the free list twice");
            free_seen[i as usize] = true;
        }
        assert_eq!(
            self.free.len(),
            self.slots.len() - self.live,
            "free list does not cover all vacant slots"
        );
        for (slot, c) in self.iter() {
            assert_eq!(
                self.slot_of(c.cid),
                Some(slot),
                "id map disagrees for {:?}",
                c.cid
            );
            let i = slot.index();
            let centroid = c.centroid();
            let v = c.velocity();
            assert_eq!(self.cx[i].to_bits(), centroid.x.to_bits());
            assert_eq!(self.cy[i].to_bits(), centroid.y.to_bits());
            assert_eq!(self.radius[i].to_bits(), c.radius().to_bits());
            assert_eq!(
                self.eff_radius[i].to_bits(),
                (c.radius() + c.max_query_radius()).to_bits()
            );
            assert_eq!(self.vx[i].to_bits(), v.dx.to_bits());
            assert_eq!(self.vy[i].to_bits(), v.dy.to_bits());
            assert_eq!(self.member_count[i], c.len() as u32);
            assert_eq!(self.object_count[i], c.object_count() as u32);
            assert_eq!(self.query_count[i], c.query_count() as u32);
            assert_ne!(
                self.epochs.mark(slot),
                NEVER,
                "live slot {slot:?} has no epoch mark"
            );
        }
    }
}

/// Content equality by cluster identity: two stores are equal when they
/// hold the same clusters under the same ids, regardless of slot layout or
/// free-list history. (A restored store compares equal to the original even
/// though its slots were reassigned.)
impl PartialEq for ClusterStore {
    fn eq(&self, other: &Self) -> bool {
        self.live == other.live && self.values().all(|c| other.get_by_id(c.cid) == Some(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_motion::{LocationUpdate, ObjectAttrs, ObjectId};
    use scuba_spatial::Point;

    fn cluster(id: u64, x: f64) -> MovingCluster {
        let update = LocationUpdate::object(
            ObjectId(id),
            Point::new(x, 50.0),
            0,
            10.0,
            Point::new(1000.0, 50.0),
            ObjectAttrs::default(),
        );
        MovingCluster::found(ClusterId(id), &update, false)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = ClusterStore::new();
        let a = s.insert(cluster(1, 10.0));
        let b = s.insert(cluster(2, 20.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a).unwrap().cid, ClusterId(1));
        assert_eq!(s.get_by_id(ClusterId(2)).unwrap().cid, ClusterId(2));
        assert_eq!(s.slot_of(ClusterId(1)), Some(a));
        let gone = s.remove(a);
        assert_eq!(gone.cid, ClusterId(1));
        assert_eq!(s.len(), 1);
        assert!(s.get(a).is_none());
        assert!(s.slot_of(ClusterId(1)).is_none());
        assert_eq!(s.get(b).unwrap().cid, ClusterId(2));
        s.check_coherent();
    }

    #[test]
    fn slots_are_reused_with_bumped_generations() {
        let mut s = ClusterStore::new();
        let a = s.insert(cluster(1, 10.0));
        let g0 = s.generation(a);
        s.remove(a);
        let b = s.insert(cluster(2, 20.0));
        assert_eq!(a, b, "vacant slot is reused");
        assert_eq!(s.generation(b), g0 + 1, "reuse bumps the generation");
        assert_eq!(s.capacity(), 1, "slab did not grow");
        s.check_coherent();
    }

    #[test]
    fn reused_slot_reads_dirty_on_the_epoch_clock() {
        let mut s = ClusterStore::new();
        let a = s.insert(cluster(1, 10.0));
        let observed = s.epochs().clock();
        assert!(s.epochs().clean_since(a, observed));
        s.remove(a);
        assert!(
            !s.epochs().clean_since(a, observed),
            "forgotten slot reads dirty"
        );
        let b = s.insert(cluster(2, 20.0));
        assert_eq!(a, b);
        assert!(
            !s.epochs().clean_since(b, observed),
            "reused slot was touched past the observed epoch"
        );
    }

    #[test]
    fn columns_track_mutations() {
        let mut s = ClusterStore::new();
        let a = s.insert(cluster(1, 10.0));
        let cols = s.columns();
        assert_eq!(cols.cx[a.index()], 10.0);
        assert_eq!(cols.object_count[a.index()], 1);
        // Absorb a second member through update(): columns re-sync.
        let u = LocationUpdate::object(
            ObjectId(9),
            Point::new(14.0, 50.0),
            1,
            10.0,
            Point::new(1000.0, 50.0),
            ObjectAttrs::default(),
        );
        s.update(a, |c| c.absorb(&u, false));
        let cols = s.columns();
        assert_eq!(cols.cx[a.index()], 12.0, "centroid moved");
        assert_eq!(cols.member_count[a.index()], 2);
        assert!(cols.radius[a.index()] > 0.0);
        s.check_coherent();
    }

    /// The unchecked column getters must agree with the safe getters on
    /// every in-bounds index, live or vacant (the kernel only feeds them
    /// live slots, but the contract is the whole column).
    #[test]
    #[allow(unsafe_code)]
    fn unchecked_getters_agree_with_safe_getters() {
        let mut s = ClusterStore::new();
        let a = s.insert(cluster(1, 10.0));
        s.insert(cluster(2, 20.0));
        let c = s.insert(cluster(3, 30.0));
        s.remove(a); // leave a vacant (zeroed) slot in the middle
        s.update(c, |cl| {
            let u = LocationUpdate::object(
                ObjectId(9),
                Point::new(34.0, 50.0),
                1,
                10.0,
                Point::new(1000.0, 50.0),
                ObjectAttrs::default(),
            );
            cl.absorb(&u, false);
        });
        let cols = s.columns();
        assert_eq!(cols.len(), s.capacity());
        for i in 0..cols.len() {
            // SAFETY: i < cols.len() by the loop bound.
            let (ux, uy, ur, ue) = unsafe { cols.circle_at_unchecked(i) };
            let (sx, sy, sr, se) = cols.circle_at(i);
            assert_eq!(
                (ux.to_bits(), uy.to_bits(), ur.to_bits(), ue.to_bits()),
                (sx.to_bits(), sy.to_bits(), sr.to_bits(), se.to_bits()),
                "circle_at mismatch at slot {i}"
            );
            // SAFETY: as above.
            let uc = unsafe { cols.counts_at_unchecked(i) };
            assert_eq!(uc, cols.counts_at(i), "counts_at mismatch at slot {i}");
        }
    }

    #[test]
    fn equality_ignores_slot_layout() {
        let mut a = ClusterStore::new();
        a.insert(cluster(1, 10.0));
        let s2 = a.insert(cluster(2, 20.0));
        a.remove(s2);
        a.insert(cluster(3, 30.0)); // reuses slot 1

        let mut b = ClusterStore::new();
        b.insert(cluster(3, 30.0));
        b.insert(cluster(1, 10.0));
        assert_eq!(a, b, "same content, different layout");
        b.insert(cluster(2, 20.0));
        assert_ne!(a, b);
    }

    #[test]
    fn iteration_is_slot_ordered_and_live_only() {
        let mut s = ClusterStore::new();
        let a = s.insert(cluster(5, 10.0));
        s.insert(cluster(6, 20.0));
        s.insert(cluster(7, 30.0));
        s.remove(a);
        let ids: Vec<ClusterId> = s.keys().collect();
        assert_eq!(ids, vec![ClusterId(6), ClusterId(7)]);
        let slots: Vec<ClusterSlot> = s.slots().collect();
        assert_eq!(slots, vec![ClusterSlot(1), ClusterSlot(2)]);
    }
}
