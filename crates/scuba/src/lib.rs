//! # SCUBA — Scalable Cluster-Based Algorithm for continuous spatio-temporal queries
//!
//! A from-scratch Rust reproduction of
//! *"SCUBA: Scalable Cluster-Based Algorithm for Evaluating Continuous
//! Spatio-Temporal Queries on Moving Objects"* (Nehme & Rundensteiner,
//! EDBT 2006).
//!
//! SCUBA evaluates very large sets of continuous range queries over
//! streams of moving-object location updates by grouping *both* objects and
//! queries into **moving clusters** — groups sharing direction (the same
//! next connection node), speed (within Θ_S), and position (within Θ_D of
//! the cluster centroid). Query evaluation then proceeds in two steps every
//! Δ time units:
//!
//! 1. **join-between** — a cheap circle/circle overlap pre-filter between
//!    cluster regions that prunes true negatives wholesale;
//! 2. **join-within** — the exact object×query spatial join, run only for
//!    cluster pairs that survived the pre-filter (and for mixed single
//!    clusters).
//!
//! Because clusters summarise their members, they double as a
//! **load-shedding** mechanism: members near the centroid can have their
//! individual positions discarded and be approximated by a nested *nucleus*
//! region, trading bounded accuracy for time and memory.
//!
//! ## Crate layout
//!
//! | module | paper section | contents |
//! |--------|---------------|----------|
//! | [`params`] | §3.1, §6.1 | Θ_D, Θ_S, Δ, grid granularity, shedding policy |
//! | [`cluster`] | §3.1 | [`MovingCluster`]: centroid, radius, polar members, velocity, expiry |
//! | [`grid`] | §4.1 | `ClusterGrid`: the N×N index of cluster regions |
//! | [`index`] | §4.1 | [`SpatialIndex`] trait + adaptive split/merge grid |
//! | [`store`] | §4.1 | [`ClusterStore`]: generational slab + SoA hot columns + epoch clock |
//! | [`tables`] | §4.1 | ObjectsTable, QueriesTable, ClusterHome |
//! | [`clustering`] | §3.2 | the five-step incremental (Leader–Follower) clusterer |
//! | [`join`] | §4, Algs 1–3 | join-between + join-within |
//! | [`kernel`] | §4.2 | scalar and tiled lane-parallel join-between pre-filter kernels |
//! | [`engine`] | §4.2 | the three-phase [`ScubaOperator`] |
//! | [`baseline`] | §6 | the regular grid-based operator SCUBA is compared to (plus the §6-literal point-hashed variant) |
//! | [`qindex`] | §7 | the Query-Indexing baseline over an R-tree (related work \[29\]) |
//! | [`registry`] | §8 | [`QueryRegistry`]: the durable active query set, fed by the `ControlOp` stream |
//! | [`shard`] | §8 | [`ShardedScubaOperator`]: stripe-owned stores with boundary-ghost handoff |
//! | [`sina`] | §7 | the SINA-style incrementally-maintained grid baseline (related work \[24\]) |
//! | [`vci`] | §7 | the Velocity-Constrained Indexing baseline (related work \[29\]) |
//! | [`snapshot`] | — | JSON-safe engine checkpoint/restore (restart without re-learning clusters) |
//! | [`shedding`] | §5 | nucleus-based load-shedding policy |
//! | [`overload`] | §5 | deadline-driven controller escalating/relaxing the shedding mode |
//! | [`accuracy`] | §6.6 | false-positive/negative accounting vs. unshed truth |
//! | [`delta`] | §8 | incremental result output (added/removed per interval) |
//! | [`kmeans`] | §6.4 | non-incremental K-means clustering extension |
//! | [`knn`] | §1 | cluster-assisted k-nearest-neighbour extension |
//! | [`aggregate`] | §1 | cluster-as-summary aggregate queries extension |
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use scuba::{ScubaOperator, ScubaParams};
//! use scuba_generator::{WorkloadConfig, WorkloadGenerator};
//! use scuba_roadnet::{CityConfig, SyntheticCity};
//! use scuba_stream::{ContinuousOperator, Executor, ExecutorConfig};
//!
//! // A small synthetic city and a workload of objects + range queries.
//! let city = SyntheticCity::build(CityConfig::small());
//! let area = city.network.extent().unwrap();
//! let mut gen = WorkloadGenerator::new(
//!     Arc::new(city.network),
//!     WorkloadConfig::small(),
//! );
//!
//! // SCUBA with the paper's default thresholds, evaluated every 2 ticks.
//! let mut scuba = ScubaOperator::new(ScubaParams::default(), area);
//! let executor = Executor::new(ExecutorConfig { delta: 2, duration: 10 });
//! let report = executor.run(&mut || gen.tick(), &mut scuba);
//! println!(
//!     "{} evaluations, {} result tuples",
//!     report.evaluations.len(),
//!     report.total_results(),
//! );
//! ```

// `deny`, not `forbid`: the store's debug_assert-guarded unchecked column
// getters and their kernel call sites carry narrow `#[allow(unsafe_code)]`
// grants; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accuracy;
pub mod aggregate;
pub mod baseline;
pub mod cluster;
pub mod clustering;
pub mod delta;
pub mod durability;
pub mod engine;
pub mod grid;
pub mod index;
pub(crate) mod ingest;
pub mod join;
pub mod kernel;
pub mod kmeans;
pub mod knn;
pub mod ops;
pub mod overload;
pub mod params;
pub mod qindex;
pub mod registry;
pub mod shard;
pub mod shedding;
pub mod sina;
pub mod snapshot;
pub mod store;
pub mod tables;
pub mod vci;

pub use accuracy::AccuracyReport;
pub use baseline::{PointHashedGridOperator, RegularGridOperator};
pub use cluster::{ClusterId, Member, MovingCluster};
pub use delta::{DeltaTracker, ResultDelta};
pub use durability::{
    recover, resume, run_supervised, CheckpointState, DurabilityError, DurabilityStats,
    DurableOperator, HealthSnapshot, JournalFrame, JournalSegment, JournalWriter, NoObserver,
    Recovery, Resumed, SuperviseConfig, SuperviseObserver, SupervisedOutcome, TickFailure,
};
pub use engine::ScubaOperator;
pub use index::{AdaptiveGrid, AnyIndex, DiscoveryScratch, IndexKind, SpatialIndex};
pub use join::{JoinCache, JoinContext, JoinScratch};
pub use kernel::KernelKind;
pub use ops::{OperatorKind, OpsConfig};
pub use overload::{OverloadConfig, OverloadController, OverloadCounters, OverloadDecision};
pub use params::{ParamsError, ProbeScope, ScubaParams};
pub use qindex::QueryIndexOperator;
pub use registry::{ControlGauges, QueryRecord, QueryRegistry};
pub use shard::{ShardedScubaOperator, WorkerFailure};
pub use shedding::{AdaptiveShedder, SheddingMode};
pub use sina::IncrementalGridOperator;
pub use snapshot::{EngineSnapshot, SnapshotError};
pub use store::{ClusterSlot, ClusterStore, EpochTracker, StoreColumns};
pub use vci::{VciConfig, VciOperator};

// Ingestion-hardening policy lives in the stream substrate but is part of
// this crate's parameter surface ([`ScubaParams::validation`]).
pub use scuba_stream::ValidationPolicy;
