//! Compact binary encoding of location updates.
//!
//! The stream substrate transports updates between the generator and the
//! query engine; in a deployed system these records would cross a network.
//! The encoding is a fixed little-endian layout:
//!
//! ```text
//! kind:u8  id:u64  x:f64 y:f64  t:u64  speed:f64  cnx:f64 cny:f64  attrs…
//! attrs(object): class:u8
//! attrs(range query): 0:u8 width:f64 height:f64
//! attrs(knn query):   1:u8 k:u32
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use scuba_spatial::Point;

use crate::ids::{ObjectId, QueryId};
use crate::update::{
    EntityAttrs, LocationUpdate, ObjectAttrs, ObjectClass, QueryAttrs, QuerySpec,
};

const KIND_OBJECT: u8 = 0;
const KIND_QUERY: u8 = 1;

const SPEC_RANGE: u8 = 0;
const SPEC_KNN: u8 = 1;

/// Errors raised while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the layout requires.
    Truncated,
    /// An unknown discriminant byte.
    BadTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated update record"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn class_to_byte(c: ObjectClass) -> u8 {
    match c {
        ObjectClass::Car => 0,
        ObjectClass::Truck => 1,
        ObjectClass::Bus => 2,
        ObjectClass::Pedestrian => 3,
        ObjectClass::Child => 4,
        ObjectClass::Emergency => 5,
    }
}

fn class_from_byte(b: u8) -> Result<ObjectClass, DecodeError> {
    Ok(match b {
        0 => ObjectClass::Car,
        1 => ObjectClass::Truck,
        2 => ObjectClass::Bus,
        3 => ObjectClass::Pedestrian,
        4 => ObjectClass::Child,
        5 => ObjectClass::Emergency,
        other => return Err(DecodeError::BadTag(other)),
    })
}

/// Encodes one update, appending to `buf`.
pub fn encode_into(update: &LocationUpdate, buf: &mut BytesMut) {
    let (kind, id) = match update.entity {
        crate::ids::EntityRef::Object(ObjectId(id)) => (KIND_OBJECT, id),
        crate::ids::EntityRef::Query(QueryId(id)) => (KIND_QUERY, id),
    };
    buf.put_u8(kind);
    buf.put_u64_le(id);
    buf.put_f64_le(update.loc.x);
    buf.put_f64_le(update.loc.y);
    buf.put_u64_le(update.time);
    buf.put_f64_le(update.speed);
    buf.put_f64_le(update.cn_loc.x);
    buf.put_f64_le(update.cn_loc.y);
    match &update.attrs {
        EntityAttrs::Object(ObjectAttrs { class }) => {
            buf.put_u8(class_to_byte(*class));
        }
        EntityAttrs::Query(QueryAttrs { spec }) => match *spec {
            QuerySpec::Range { width, height } => {
                buf.put_u8(SPEC_RANGE);
                buf.put_f64_le(width);
                buf.put_f64_le(height);
            }
            QuerySpec::Knn { k } => {
                buf.put_u8(SPEC_KNN);
                buf.put_u32_le(k);
            }
        },
    }
}

/// Encodes one update into a fresh buffer.
pub fn encode(update: &LocationUpdate) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    encode_into(update, &mut buf);
    buf.freeze()
}

/// Decodes one update from the front of `buf`, consuming its bytes.
pub fn decode(buf: &mut impl Buf) -> Result<LocationUpdate, DecodeError> {
    const FIXED: usize = 1 + 8 + 8 + 8 + 8 + 8 + 8 + 8;
    if buf.remaining() < FIXED + 1 {
        return Err(DecodeError::Truncated);
    }
    let kind = buf.get_u8();
    let id = buf.get_u64_le();
    let loc = Point::new(buf.get_f64_le(), buf.get_f64_le());
    let time = buf.get_u64_le();
    let speed = buf.get_f64_le();
    let cn_loc = Point::new(buf.get_f64_le(), buf.get_f64_le());
    match kind {
        KIND_OBJECT => {
            let class = class_from_byte(buf.get_u8())?;
            Ok(LocationUpdate::object(
                ObjectId(id),
                loc,
                time,
                speed,
                cn_loc,
                ObjectAttrs { class },
            ))
        }
        KIND_QUERY => {
            let spec_tag = buf.get_u8();
            let spec = match spec_tag {
                SPEC_RANGE => {
                    if buf.remaining() < 16 {
                        return Err(DecodeError::Truncated);
                    }
                    QuerySpec::Range {
                        width: buf.get_f64_le(),
                        height: buf.get_f64_le(),
                    }
                }
                SPEC_KNN => {
                    if buf.remaining() < 4 {
                        return Err(DecodeError::Truncated);
                    }
                    QuerySpec::Knn {
                        k: buf.get_u32_le(),
                    }
                }
                other => return Err(DecodeError::BadTag(other)),
            };
            Ok(LocationUpdate::query(
                QueryId(id),
                loc,
                time,
                speed,
                cn_loc,
                QueryAttrs { spec },
            ))
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_object() -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(42),
            Point::new(1.5, -2.5),
            100,
            33.25,
            Point::new(500.0, 600.0),
            ObjectAttrs {
                class: ObjectClass::Bus,
            },
        )
    }

    fn sample_range_query() -> LocationUpdate {
        LocationUpdate::query(
            QueryId(7),
            Point::new(9.0, 8.0),
            101,
            15.0,
            Point::new(0.0, 0.0),
            QueryAttrs {
                spec: QuerySpec::Range {
                    width: 20.0,
                    height: 10.0,
                },
            },
        )
    }

    fn sample_knn_query() -> LocationUpdate {
        LocationUpdate::query(
            QueryId(8),
            Point::new(-1.0, -1.0),
            102,
            10.0,
            Point::new(50.0, 50.0),
            QueryAttrs {
                spec: QuerySpec::Knn { k: 3 },
            },
        )
    }

    #[test]
    fn roundtrip_object() {
        let u = sample_object();
        let bytes = encode(&u);
        let mut buf = bytes;
        assert_eq!(decode(&mut buf).unwrap(), u);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn roundtrip_range_query() {
        let u = sample_range_query();
        let mut bytes = encode(&u);
        assert_eq!(decode(&mut bytes).unwrap(), u);
    }

    #[test]
    fn roundtrip_knn_query() {
        let u = sample_knn_query();
        let mut bytes = encode(&u);
        assert_eq!(decode(&mut bytes).unwrap(), u);
    }

    #[test]
    fn stream_of_updates() {
        let updates = [sample_object(), sample_range_query(), sample_knn_query()];
        let mut buf = BytesMut::new();
        for u in &updates {
            encode_into(u, &mut buf);
        }
        let mut bytes = buf.freeze();
        for u in &updates {
            assert_eq!(&decode(&mut bytes).unwrap(), u);
        }
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn truncated_is_rejected() {
        let bytes = encode(&sample_object());
        for cut in 0..bytes.len() {
            let mut partial = bytes.slice(0..cut);
            assert!(
                decode(&mut partial).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn bad_kind_rejected() {
        let mut bytes = BytesMut::from(&encode(&sample_object())[..]);
        bytes[0] = 99;
        let mut buf = bytes.freeze();
        assert_eq!(decode(&mut buf), Err(DecodeError::BadTag(99)));
    }

    #[test]
    fn bad_class_rejected() {
        let encoded = encode(&sample_object());
        let mut bytes = BytesMut::from(&encoded[..]);
        let last = bytes.len() - 1;
        bytes[last] = 200;
        let mut buf = bytes.freeze();
        assert_eq!(decode(&mut buf), Err(DecodeError::BadTag(200)));
    }

    #[test]
    fn all_object_classes_roundtrip() {
        for class in ObjectClass::ALL {
            let mut u = sample_object();
            u.attrs = EntityAttrs::Object(ObjectAttrs { class });
            let mut bytes = encode(&u);
            assert_eq!(decode(&mut bytes).unwrap(), u);
        }
    }
}
