//! Identifiers for moving objects and moving queries.

use serde::{Deserialize, Serialize};

/// Identifier of a moving object (`o.oid` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// Identifier of a continuous moving query (`q.qid` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(pub u64);

/// A reference to either kind of moving entity.
///
/// SCUBA clusters objects and queries together ("we group both moving
/// objects and moving queries into moving clusters", §3.1) but must keep
/// the kinds apart inside a cluster because joins only pair objects with
/// queries, never object/object or query/query (Algorithm 1, steps 14/18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EntityRef {
    /// A moving object.
    Object(ObjectId),
    /// A moving query.
    Query(QueryId),
}

impl EntityRef {
    /// Whether this references an object.
    #[inline]
    pub fn is_object(&self) -> bool {
        matches!(self, EntityRef::Object(_))
    }

    /// Whether this references a query.
    #[inline]
    pub fn is_query(&self) -> bool {
        matches!(self, EntityRef::Query(_))
    }

    /// The raw numeric id, losing the kind.
    #[inline]
    pub fn raw(&self) -> u64 {
        match self {
            EntityRef::Object(ObjectId(id)) => *id,
            EntityRef::Query(QueryId(id)) => *id,
        }
    }

    /// The object id, if this is an object reference.
    #[inline]
    pub fn as_object(&self) -> Option<ObjectId> {
        match self {
            EntityRef::Object(id) => Some(*id),
            EntityRef::Query(_) => None,
        }
    }

    /// The query id, if this is a query reference.
    #[inline]
    pub fn as_query(&self) -> Option<QueryId> {
        match self {
            EntityRef::Query(id) => Some(*id),
            EntityRef::Object(_) => None,
        }
    }
}

impl From<ObjectId> for EntityRef {
    fn from(id: ObjectId) -> Self {
        EntityRef::Object(id)
    }
}

impl From<QueryId> for EntityRef {
    fn from(id: QueryId) -> Self {
        EntityRef::Query(id)
    }
}

impl std::fmt::Display for EntityRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntityRef::Object(ObjectId(id)) => write!(f, "O{id}"),
            EntityRef::Query(QueryId(id)) => write!(f, "Q{id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let o: EntityRef = ObjectId(3).into();
        let q: EntityRef = QueryId(3).into();
        assert!(o.is_object() && !o.is_query());
        assert!(q.is_query() && !q.is_object());
    }

    #[test]
    fn same_raw_different_kind_are_distinct() {
        let o: EntityRef = ObjectId(7).into();
        let q: EntityRef = QueryId(7).into();
        assert_ne!(o, q);
        assert_eq!(o.raw(), q.raw());
    }

    #[test]
    fn narrowing_accessors() {
        let o: EntityRef = ObjectId(1).into();
        assert_eq!(o.as_object(), Some(ObjectId(1)));
        assert_eq!(o.as_query(), None);
        let q: EntityRef = QueryId(2).into();
        assert_eq!(q.as_query(), Some(QueryId(2)));
        assert_eq!(q.as_object(), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(EntityRef::from(ObjectId(12)).to_string(), "O12");
        assert_eq!(EntityRef::from(QueryId(4)).to_string(), "Q4");
    }

    #[test]
    fn usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(EntityRef::from(ObjectId(1)), "a");
        m.insert(EntityRef::from(QueryId(1)), "b");
        assert_eq!(m.len(), 2);
    }
}
