//! Motion model for the SCUBA reproduction.
//!
//! Implements paper §2 "Background on the Motion Model": moving objects (and
//! moving queries) travel in a piecewise-linear manner along the road
//! network, and report *location updates* of the form
//! `(oid, loc_t, t, speed, cnloc, attrs)` — identity, current position,
//! timestamp, current speed, the *connection node* the entity will reach
//! next (its current destination, stable until reached), and descriptive
//! attributes.
//!
//! Modules:
//!
//! * [`ids`] — object/query identifier types; SCUBA treats both kinds of
//!   entity uniformly during clustering but joins them asymmetrically.
//! * [`update`] — the [`LocationUpdate`] record and entity attributes,
//!   including the range-query extent carried by query updates.
//! * [`trajectory`] — [`PiecewiseMotion`]: advancing a position along a
//!   polyline of connection nodes at a given speed, leg by leg.
//! * [`wire`] — compact binary encoding of updates for the stream
//!   substrate.
//! * [`control`] — the query-lifecycle control plane ([`ControlOp`]):
//!   register/deregister/update operations flowing beside the data plane.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod control;
pub mod ids;
pub mod trajectory;
pub mod update;
pub mod wire;

pub use control::ControlOp;
pub use ids::{EntityRef, ObjectId, QueryId};
pub use trajectory::{MotionError, PiecewiseMotion};
pub use update::{EntityAttrs, LocationUpdate, ObjectAttrs, ObjectClass, QueryAttrs, QuerySpec};
