//! Location updates and entity attributes.
//!
//! Paper §2: "moving objects location updates arrive via data streams and
//! have the following form `(o.oid, o.loc_t, o.t, o.speed, o.cnloc,
//! o.attrs)` … A continuously running query is represented in a similar
//! form `(q.qid, q.loc_t, q.t, q.speed, q.cnloc, q.attrs)`. Unlike for the
//! objects, `q.attrs` represents a set of query-specific attributes (e.g.,
//! size of the range query)."

use serde::{Deserialize, Serialize};

use scuba_spatial::{Point, Rect, Speed, Time};

use crate::ids::{EntityRef, ObjectId, QueryId};

/// Descriptive class of a moving object (the paper's example attributes:
/// "child, red car").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ObjectClass {
    /// A private car (the default).
    #[default]
    Car,
    /// A truck.
    Truck,
    /// A bus.
    Bus,
    /// A pedestrian.
    Pedestrian,
    /// A child (the paper's safety-monitoring example).
    Child,
    /// Emergency vehicle.
    Emergency,
}

impl ObjectClass {
    /// All classes, for generators and tests.
    pub const ALL: [ObjectClass; 6] = [
        ObjectClass::Car,
        ObjectClass::Truck,
        ObjectClass::Bus,
        ObjectClass::Pedestrian,
        ObjectClass::Child,
        ObjectClass::Emergency,
    ];
}

/// Attributes carried by object updates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ObjectAttrs {
    /// The object's descriptive class.
    pub class: ObjectClass,
}

/// What a continuous query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QuerySpec {
    /// A range query: a `width × height` rectangle centred on the query's
    /// moving position. The primary query type of the paper.
    Range {
        /// Full extent along x, spatial units.
        width: f64,
        /// Full extent along y, spatial units.
        height: f64,
    },
    /// A k-nearest-neighbours query (paper §1 sketches how clusters answer
    /// these; implemented as an extension).
    Knn {
        /// Number of neighbours requested.
        k: u32,
    },
}

impl QuerySpec {
    /// A square range query of the given side.
    pub fn square_range(side: f64) -> Self {
        QuerySpec::Range {
            width: side,
            height: side,
        }
    }

    /// The query region when centred at `center`, for range queries.
    pub fn region_at(&self, center: Point) -> Option<Rect> {
        match *self {
            QuerySpec::Range { width, height } => Some(Rect::centered(center, width, height)),
            QuerySpec::Knn { .. } => None,
        }
    }

    /// Radius of the smallest circle containing the query region (half the
    /// rectangle diagonal). Zero for kNN queries, whose "region" is a point
    /// until evaluated.
    pub fn bounding_radius(&self) -> f64 {
        match *self {
            QuerySpec::Range { width, height } => 0.5 * (width * width + height * height).sqrt(),
            QuerySpec::Knn { .. } => 0.0,
        }
    }
}

/// Attributes carried by query updates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryAttrs {
    /// The query's specification (range extent or k).
    pub spec: QuerySpec,
}

/// Attributes of either entity kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EntityAttrs {
    /// Object attributes.
    Object(ObjectAttrs),
    /// Query attributes.
    Query(QueryAttrs),
}

/// A single location update from a moving object or moving query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationUpdate {
    /// Which entity reported.
    pub entity: EntityRef,
    /// Position at `time` (`loc_t`).
    pub loc: Point,
    /// Timestamp of the update, in time units (`t`).
    pub time: Time,
    /// Current speed in spatial units per time unit (`speed`).
    pub speed: Speed,
    /// Position of the connection node the entity is heading to
    /// (`cnloc`) — "the position of the connection node in the road network
    /// that \[will\] next be reached by the moving object (its current
    /// destination)". Stable until the node is reached (§2: "the network is
    /// stable").
    pub cn_loc: Point,
    /// Descriptive attributes; kind always matches `entity`.
    pub attrs: EntityAttrs,
}

impl LocationUpdate {
    /// Builds an object update.
    pub fn object(
        id: ObjectId,
        loc: Point,
        time: Time,
        speed: Speed,
        cn_loc: Point,
        attrs: ObjectAttrs,
    ) -> Self {
        LocationUpdate {
            entity: id.into(),
            loc,
            time,
            speed,
            cn_loc,
            attrs: EntityAttrs::Object(attrs),
        }
    }

    /// Builds a query update.
    pub fn query(
        id: QueryId,
        loc: Point,
        time: Time,
        speed: Speed,
        cn_loc: Point,
        attrs: QueryAttrs,
    ) -> Self {
        LocationUpdate {
            entity: id.into(),
            loc,
            time,
            speed,
            cn_loc,
            attrs: EntityAttrs::Query(attrs),
        }
    }

    /// Whether entity kind and attribute kind agree (violations indicate a
    /// construction bug; the constructors above cannot produce them).
    pub fn is_consistent(&self) -> bool {
        matches!(
            (self.entity, &self.attrs),
            (EntityRef::Object(_), EntityAttrs::Object(_))
                | (EntityRef::Query(_), EntityAttrs::Query(_))
        )
    }

    /// The query spec, when this is a query update.
    pub fn query_spec(&self) -> Option<QuerySpec> {
        match self.attrs {
            EntityAttrs::Query(QueryAttrs { spec }) => Some(spec),
            EntityAttrs::Object(_) => None,
        }
    }

    /// The query region at the reported position, for range-query updates.
    pub fn query_region(&self) -> Option<Rect> {
        self.query_spec().and_then(|s| s.region_at(self.loc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj_update() -> LocationUpdate {
        LocationUpdate::object(
            ObjectId(1),
            Point::new(10.0, 20.0),
            5,
            30.0,
            Point::new(100.0, 20.0),
            ObjectAttrs::default(),
        )
    }

    fn qry_update(side: f64) -> LocationUpdate {
        LocationUpdate::query(
            QueryId(2),
            Point::new(10.0, 20.0),
            5,
            30.0,
            Point::new(100.0, 20.0),
            QueryAttrs {
                spec: QuerySpec::square_range(side),
            },
        )
    }

    #[test]
    fn constructors_are_consistent() {
        assert!(obj_update().is_consistent());
        assert!(qry_update(8.0).is_consistent());
    }

    #[test]
    fn inconsistent_update_detected() {
        let mut u = obj_update();
        u.attrs = EntityAttrs::Query(QueryAttrs {
            spec: QuerySpec::square_range(1.0),
        });
        assert!(!u.is_consistent());
    }

    #[test]
    fn query_region_centred_on_location() {
        let u = qry_update(8.0);
        let r = u.query_region().unwrap();
        assert!(r.center().approx_eq(&u.loc));
        assert_eq!(r.width(), 8.0);
        assert_eq!(r.height(), 8.0);
    }

    #[test]
    fn object_has_no_query_region() {
        assert!(obj_update().query_region().is_none());
        assert!(obj_update().query_spec().is_none());
    }

    #[test]
    fn knn_spec_has_no_region() {
        let spec = QuerySpec::Knn { k: 5 };
        assert!(spec.region_at(Point::ORIGIN).is_none());
        assert_eq!(spec.bounding_radius(), 0.0);
    }

    #[test]
    fn bounding_radius_is_half_diagonal() {
        let spec = QuerySpec::Range {
            width: 6.0,
            height: 8.0,
        };
        assert!((spec.bounding_radius() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn range_region_contains_its_center() {
        let spec = QuerySpec::square_range(10.0);
        let c = Point::new(3.0, -7.0);
        assert!(spec.region_at(c).unwrap().contains(&c));
    }
}
