//! The control plane: typed query-lifecycle operations.
//!
//! Location updates are the *data plane* — a high-volume stream of
//! positions. Query registration and cancellation are a second, much
//! thinner stream of **control operations** flowing beside it:
//!
//! * [`ControlOp::Register`] — a query enters the system, carrying its
//!   first location update (position, speed, destination, spec);
//! * [`ControlOp::Update`] — a registered query changes its spec or
//!   reports out-of-band (the data plane also refreshes positions; this
//!   variant exists so a control channel can drive spec changes without
//!   synthesising data-plane traffic);
//! * [`ControlOp::Deregister`] — a query leaves; its cluster membership,
//!   cached join rows and registry entry must be retired.
//!
//! Ordering contract: every consumer applies a tick's control ops
//! **before** that tick's data batch. The generator, the executor loop,
//! the supervised durable loop and journal replay all follow this rule, so
//! a churned run is reproducible from (controls, updates) alone.
//!
//! The wire encoding reuses the [`crate::wire`] update layout for carried
//! updates, prefixed by a one-byte op tag:
//!
//! ```text
//! register:   0:u8  update…
//! deregister: 1:u8  qid:u64
//! update:     2:u8  update…
//! ```

use bytes::{Buf, BufMut, BytesMut};

use crate::ids::QueryId;
use crate::update::LocationUpdate;
use crate::wire::{self, DecodeError};

const OP_REGISTER: u8 = 0;
const OP_DEREGISTER: u8 = 1;
const OP_UPDATE: u8 = 2;

/// One query-lifecycle operation on the control stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlOp {
    /// Register a query, delivering its initial location update. The
    /// carried update must be a query update (`EntityRef::Query`).
    Register(LocationUpdate),
    /// Deregister a query: retire its membership, cached rows and registry
    /// entry. Deregistering an unknown query is not an error at this layer
    /// — consumers route it to their dead-letter accounting.
    Deregister(QueryId),
    /// Out-of-band refresh of a registered query (e.g. a spec change).
    Update(LocationUpdate),
}

impl ControlOp {
    /// The query this operation concerns, when the carried update is a
    /// query update (`None` for a malformed Register/Update carrying an
    /// object — consumers treat those as dead letters).
    pub fn query_id(&self) -> Option<QueryId> {
        match self {
            ControlOp::Register(u) | ControlOp::Update(u) => u.entity.as_query(),
            ControlOp::Deregister(qid) => Some(*qid),
        }
    }
}

/// Encodes one control op, appending to `buf`.
pub fn encode_into(op: &ControlOp, buf: &mut BytesMut) {
    match op {
        ControlOp::Register(u) => {
            buf.put_u8(OP_REGISTER);
            wire::encode_into(u, buf);
        }
        ControlOp::Deregister(QueryId(id)) => {
            buf.put_u8(OP_DEREGISTER);
            buf.put_u64_le(*id);
        }
        ControlOp::Update(u) => {
            buf.put_u8(OP_UPDATE);
            wire::encode_into(u, buf);
        }
    }
}

/// Decodes one control op from the front of `buf`, consuming its bytes.
pub fn decode(buf: &mut impl Buf) -> Result<ControlOp, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    match buf.get_u8() {
        OP_REGISTER => Ok(ControlOp::Register(wire::decode(buf)?)),
        OP_DEREGISTER => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(ControlOp::Deregister(QueryId(buf.get_u64_le())))
        }
        OP_UPDATE => Ok(ControlOp::Update(wire::decode(buf)?)),
        other => Err(DecodeError::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{QueryAttrs, QuerySpec};
    use scuba_spatial::Point;

    fn sample_register() -> ControlOp {
        ControlOp::Register(LocationUpdate::query(
            QueryId(11),
            Point::new(3.0, 4.0),
            5,
            12.5,
            Point::new(100.0, 100.0),
            QueryAttrs {
                spec: QuerySpec::square_range(30.0),
            },
        ))
    }

    #[test]
    fn roundtrip_all_ops() {
        let ops = [
            sample_register(),
            ControlOp::Deregister(QueryId(7)),
            ControlOp::Update(LocationUpdate::query(
                QueryId(11),
                Point::new(5.0, 6.0),
                6,
                12.5,
                Point::new(100.0, 100.0),
                QueryAttrs {
                    spec: QuerySpec::Knn { k: 4 },
                },
            )),
        ];
        let mut buf = BytesMut::new();
        for op in &ops {
            encode_into(op, &mut buf);
        }
        let mut bytes = buf.freeze();
        for op in &ops {
            assert_eq!(&decode(&mut bytes).unwrap(), op);
        }
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn truncated_is_rejected() {
        let mut buf = BytesMut::new();
        encode_into(&sample_register(), &mut buf);
        let bytes = buf.freeze();
        for cut in 0..bytes.len() {
            let mut partial = bytes.slice(0..cut);
            assert!(
                decode(&mut partial).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn bad_op_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        buf.put_u64_le(1);
        let mut bytes = buf.freeze();
        assert_eq!(decode(&mut bytes), Err(DecodeError::BadTag(9)));
    }

    #[test]
    fn query_id_resolves_per_variant() {
        assert_eq!(sample_register().query_id(), Some(QueryId(11)));
        assert_eq!(
            ControlOp::Deregister(QueryId(3)).query_id(),
            Some(QueryId(3))
        );
    }
}
