//! Piecewise-linear motion along a polyline of connection nodes.
//!
//! Paper §2: objects "move in a piecewise linear manner in a road network".
//! A [`PiecewiseMotion`] walks a precomputed route (a polyline of connection
//! node positions) at a constant speed, crossing leg boundaries within a
//! single step when the step distance spans several short legs. The
//! current *target* waypoint is the entity's `cnloc`.

use serde::{Deserialize, Serialize};

use scuba_spatial::{Point, Speed};

/// Errors constructing a motion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MotionError {
    /// The waypoint list was empty.
    NoWaypoints,
    /// The speed was negative or non-finite.
    BadSpeed,
}

impl std::fmt::Display for MotionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MotionError::NoWaypoints => write!(f, "motion requires at least one waypoint"),
            MotionError::BadSpeed => write!(f, "speed must be finite and non-negative"),
        }
    }
}

impl std::error::Error for MotionError {}

/// State of an entity moving along a fixed polyline at constant speed.
///
/// # Examples
///
/// ```
/// use scuba_motion::PiecewiseMotion;
/// use scuba_spatial::Point;
///
/// // An L-shaped trip: 10 units east, then 10 units north, at speed 2.
/// let mut m = PiecewiseMotion::new(
///     vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(10.0, 10.0)],
///     2.0,
/// ).unwrap();
///
/// m.advance(6.0); // 12 units: crosses the corner
/// assert!(m.position().approx_eq(&Point::new(10.0, 2.0)));
/// assert!(m.cn_loc().approx_eq(&Point::new(10.0, 10.0))); // next connection node
/// assert!(m.advance(10.0)); // arrives
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseMotion {
    waypoints: Vec<Point>,
    /// Index of the waypoint currently being approached. When
    /// `next_idx == waypoints.len()` the motion has arrived.
    next_idx: usize,
    pos: Point,
    speed: Speed,
}

impl PiecewiseMotion {
    /// Creates a motion starting at the first waypoint.
    pub fn new(waypoints: Vec<Point>, speed: Speed) -> Result<Self, MotionError> {
        if waypoints.is_empty() {
            return Err(MotionError::NoWaypoints);
        }
        if !speed.is_finite() || speed < 0.0 {
            return Err(MotionError::BadSpeed);
        }
        let pos = waypoints[0];
        Ok(PiecewiseMotion {
            waypoints,
            next_idx: 1,
            pos,
            speed,
        })
    }

    /// Current position.
    #[inline]
    pub fn position(&self) -> Point {
        self.pos
    }

    /// Current speed.
    #[inline]
    pub fn speed(&self) -> Speed {
        self.speed
    }

    /// Changes the travel speed (e.g. when turning onto a different road
    /// class).
    pub fn set_speed(&mut self, speed: Speed) -> Result<(), MotionError> {
        if !speed.is_finite() || speed < 0.0 {
            return Err(MotionError::BadSpeed);
        }
        self.speed = speed;
        Ok(())
    }

    /// The connection node currently being approached — the entity's
    /// `cnloc`. After arrival this stays at the final waypoint (the paper's
    /// generator immediately re-routes arrived objects; until then the
    /// destination *is* the current node).
    #[inline]
    pub fn cn_loc(&self) -> Point {
        let idx = self.next_idx.min(self.waypoints.len() - 1);
        self.waypoints[idx]
    }

    /// Whether the final waypoint has been reached.
    #[inline]
    pub fn arrived(&self) -> bool {
        self.next_idx >= self.waypoints.len()
    }

    /// Remaining distance along the polyline to the final waypoint.
    pub fn remaining_distance(&self) -> f64 {
        if self.arrived() {
            return 0.0;
        }
        let mut total = self.pos.distance(&self.waypoints[self.next_idx]);
        for w in self.waypoints[self.next_idx..].windows(2) {
            total += w[0].distance(&w[1]);
        }
        total
    }

    /// The full waypoint list.
    #[inline]
    pub fn waypoints(&self) -> &[Point] {
        &self.waypoints
    }

    /// Advances the motion by `dt` time units, crossing as many legs as the
    /// travelled distance covers. Returns `true` if the entity arrived at
    /// (or was already at) the final waypoint during this step.
    pub fn advance(&mut self, dt: f64) -> bool {
        let mut budget = self.speed * dt.max(0.0);
        while self.next_idx < self.waypoints.len() {
            let target = self.waypoints[self.next_idx];
            let leg = self.pos.distance(&target);
            if budget < leg {
                // Partial progress along the current leg.
                if leg > 0.0 {
                    self.pos = self.pos.lerp(&target, budget / leg);
                }
                return false;
            }
            budget -= leg;
            self.pos = target;
            self.next_idx += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> PiecewiseMotion {
        // 0,0 -> 10,0 -> 10,10
        PiecewiseMotion::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
            ],
            2.0,
        )
        .unwrap()
    }

    #[test]
    fn starts_at_first_waypoint() {
        let m = l_shape();
        assert!(m.position().approx_eq(&Point::new(0.0, 0.0)));
        assert!(m.cn_loc().approx_eq(&Point::new(10.0, 0.0)));
        assert!(!m.arrived());
        assert_eq!(m.remaining_distance(), 20.0);
    }

    #[test]
    fn advances_within_leg() {
        let mut m = l_shape();
        assert!(!m.advance(2.0)); // 4 units
        assert!(m.position().approx_eq(&Point::new(4.0, 0.0)));
        assert!(m.cn_loc().approx_eq(&Point::new(10.0, 0.0)));
        assert!((m.remaining_distance() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn crosses_leg_boundary_in_one_step() {
        let mut m = l_shape();
        assert!(!m.advance(6.0)); // 12 units: 10 on leg 1, 2 on leg 2
        assert!(m.position().approx_eq(&Point::new(10.0, 2.0)));
        assert!(m.cn_loc().approx_eq(&Point::new(10.0, 10.0)));
    }

    #[test]
    fn exact_landing_on_node_switches_target() {
        let mut m = l_shape();
        assert!(!m.advance(5.0)); // exactly 10 units
        assert!(m.position().approx_eq(&Point::new(10.0, 0.0)));
        assert!(m.cn_loc().approx_eq(&Point::new(10.0, 10.0)));
    }

    #[test]
    fn arrives_and_clamps() {
        let mut m = l_shape();
        assert!(m.advance(100.0));
        assert!(m.arrived());
        assert!(m.position().approx_eq(&Point::new(10.0, 10.0)));
        assert!(m.cn_loc().approx_eq(&Point::new(10.0, 10.0)));
        assert_eq!(m.remaining_distance(), 0.0);
        // Further advancing is a no-op that still reports arrival.
        assert!(m.advance(1.0));
        assert!(m.position().approx_eq(&Point::new(10.0, 10.0)));
    }

    #[test]
    fn multi_step_equals_single_step() {
        let mut a = l_shape();
        let mut b = l_shape();
        a.advance(7.3);
        for _ in 0..73 {
            b.advance(0.1);
        }
        assert!(a.position().distance(&b.position()) < 1e-9);
    }

    #[test]
    fn zero_speed_never_moves() {
        let mut m = PiecewiseMotion::new(vec![Point::ORIGIN, Point::new(5.0, 0.0)], 0.0).unwrap();
        assert!(!m.advance(100.0));
        assert!(m.position().approx_eq(&Point::ORIGIN));
    }

    #[test]
    fn single_waypoint_is_arrived() {
        let m = PiecewiseMotion::new(vec![Point::new(3.0, 4.0)], 1.0).unwrap();
        assert!(m.arrived());
        assert!(m.cn_loc().approx_eq(&Point::new(3.0, 4.0)));
        assert_eq!(m.remaining_distance(), 0.0);
    }

    #[test]
    fn constructor_validation() {
        assert_eq!(
            PiecewiseMotion::new(vec![], 1.0),
            Err(MotionError::NoWaypoints)
        );
        assert_eq!(
            PiecewiseMotion::new(vec![Point::ORIGIN], -1.0),
            Err(MotionError::BadSpeed)
        );
        assert_eq!(
            PiecewiseMotion::new(vec![Point::ORIGIN], f64::NAN),
            Err(MotionError::BadSpeed)
        );
    }

    #[test]
    fn set_speed_validation() {
        let mut m = l_shape();
        assert!(m.set_speed(5.0).is_ok());
        assert_eq!(m.speed(), 5.0);
        assert_eq!(m.set_speed(f64::INFINITY), Err(MotionError::BadSpeed));
    }

    #[test]
    fn duplicate_waypoints_are_crossed() {
        let mut m = PiecewiseMotion::new(
            vec![
                Point::ORIGIN,
                Point::ORIGIN,
                Point::new(2.0, 0.0),
            ],
            1.0,
        )
        .unwrap();
        assert!(!m.advance(1.0));
        assert!(m.position().approx_eq(&Point::new(1.0, 0.0)));
    }

    #[test]
    fn negative_dt_is_clamped() {
        let mut m = l_shape();
        m.advance(-5.0);
        assert!(m.position().approx_eq(&Point::new(0.0, 0.0)));
    }
}
