//! Property-based tests for the motion model and wire codec.

use bytes::BytesMut;
use proptest::prelude::*;

use scuba_motion::{
    wire, LocationUpdate, ObjectAttrs, ObjectClass, ObjectId, PiecewiseMotion, QueryAttrs,
    QueryId, QuerySpec,
};
use scuba_spatial::Point;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1e4..1e4f64, -1e4..1e4f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_update() -> impl Strategy<Value = LocationUpdate> {
    (
        any::<u64>(),
        arb_point(),
        any::<u64>(),
        0.0..200.0f64,
        arb_point(),
        prop_oneof![
            (0usize..6).prop_map(|i| AttrsChoice::Object(ObjectClass::ALL[i])),
            (0.0..500.0f64, 0.0..500.0f64)
                .prop_map(|(w, h)| AttrsChoice::Range(w, h)),
            (1u32..100).prop_map(AttrsChoice::Knn),
        ],
    )
        .prop_map(|(id, loc, time, speed, cn, choice)| match choice {
            AttrsChoice::Object(class) => LocationUpdate::object(
                ObjectId(id),
                loc,
                time,
                speed,
                cn,
                ObjectAttrs { class },
            ),
            AttrsChoice::Range(w, h) => LocationUpdate::query(
                QueryId(id),
                loc,
                time,
                speed,
                cn,
                QueryAttrs {
                    spec: QuerySpec::Range {
                        width: w,
                        height: h,
                    },
                },
            ),
            AttrsChoice::Knn(k) => LocationUpdate::query(
                QueryId(id),
                loc,
                time,
                speed,
                cn,
                QueryAttrs {
                    spec: QuerySpec::Knn { k },
                },
            ),
        })
}

#[derive(Debug, Clone)]
enum AttrsChoice {
    Object(ObjectClass),
    Range(f64, f64),
    Knn(u32),
}

fn arb_waypoints() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(), 1..12)
}

proptest! {
    // ---- wire codec ---------------------------------------------------------

    #[test]
    fn wire_roundtrip(update in arb_update()) {
        let mut bytes = wire::encode(&update);
        let decoded = wire::decode(&mut bytes).unwrap();
        prop_assert_eq!(decoded, update);
        prop_assert_eq!(bytes.len(), 0, "decoder must consume the record");
    }

    #[test]
    fn wire_roundtrip_batched(updates in prop::collection::vec(arb_update(), 0..20)) {
        let mut buf = BytesMut::new();
        for u in &updates {
            wire::encode_into(u, &mut buf);
        }
        let mut bytes = buf.freeze();
        for u in &updates {
            prop_assert_eq!(&wire::decode(&mut bytes).unwrap(), u);
        }
    }

    #[test]
    fn wire_truncation_always_errors(update in arb_update(), cut_fraction in 0.0..1.0f64) {
        let bytes = wire::encode(&update);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            let mut partial = bytes.slice(0..cut);
            prop_assert!(wire::decode(&mut partial).is_err());
        }
    }

    #[test]
    fn updates_from_constructors_are_consistent(update in arb_update()) {
        prop_assert!(update.is_consistent());
    }

    // ---- piecewise motion ---------------------------------------------------

    #[test]
    fn advance_distance_is_bounded_by_speed(
        waypoints in arb_waypoints(),
        speed in 0.0..100.0f64,
        dt in 0.0..10.0f64,
    ) {
        let mut m = PiecewiseMotion::new(waypoints, speed).unwrap();
        let before = m.position();
        m.advance(dt);
        // Along the polyline the budget is speed·dt; straight-line
        // displacement can only be shorter.
        prop_assert!(before.distance(&m.position()) <= speed * dt + 1e-6);
    }

    #[test]
    fn remaining_distance_decreases_monotonically(
        waypoints in arb_waypoints(),
        speed in 0.1..100.0f64,
        steps in 1usize..20,
    ) {
        let mut m = PiecewiseMotion::new(waypoints, speed).unwrap();
        let mut last = m.remaining_distance();
        for _ in 0..steps {
            m.advance(0.5);
            let now = m.remaining_distance();
            prop_assert!(now <= last + 1e-9);
            last = now;
        }
    }

    #[test]
    fn split_steps_equal_one_big_step(
        waypoints in arb_waypoints(),
        speed in 0.1..50.0f64,
        dt in 0.1..5.0f64,
        pieces in 1usize..10,
    ) {
        let mut whole = PiecewiseMotion::new(waypoints.clone(), speed).unwrap();
        let mut split = PiecewiseMotion::new(waypoints, speed).unwrap();
        whole.advance(dt);
        for _ in 0..pieces {
            split.advance(dt / pieces as f64);
        }
        prop_assert!(whole.position().distance(&split.position()) < 1e-6);
    }

    #[test]
    fn eventually_arrives(waypoints in arb_waypoints(), speed in 1.0..100.0f64) {
        let mut m = PiecewiseMotion::new(waypoints.clone(), speed).unwrap();
        let total: f64 = waypoints.windows(2).map(|w| w[0].distance(&w[1])).sum();
        let arrived = m.advance(total / speed + 1.0);
        prop_assert!(arrived);
        prop_assert!(m.arrived());
        prop_assert!(m.position().distance(waypoints.last().unwrap()) < 1e-6);
        prop_assert_eq!(m.remaining_distance(), 0.0);
    }

    #[test]
    fn cn_loc_is_always_a_waypoint(
        waypoints in arb_waypoints(),
        speed in 0.1..50.0f64,
        dt in 0.0..100.0f64,
    ) {
        let mut m = PiecewiseMotion::new(waypoints.clone(), speed).unwrap();
        m.advance(dt);
        let cn = m.cn_loc();
        prop_assert!(
            waypoints.iter().any(|w| w.distance(&cn) < 1e-9),
            "cn_loc {:?} not in waypoint list", cn
        );
    }

    #[test]
    fn position_stays_on_polyline_bbox(
        waypoints in arb_waypoints(),
        speed in 0.1..50.0f64,
        dt in 0.0..100.0f64,
    ) {
        let mut bbox = scuba_spatial::Rect::from_corners(waypoints[0], waypoints[0]);
        for w in &waypoints {
            bbox = bbox.union(&scuba_spatial::Rect::from_corners(*w, *w));
        }
        let mut m = PiecewiseMotion::new(waypoints, speed).unwrap();
        m.advance(dt);
        prop_assert!(bbox.inflate(1e-9).contains(&m.position()));
    }
}
