//! Property-based tests for the motion model and wire codec.

use bytes::BytesMut;
use proptest::prelude::*;

use scuba_motion::{
    wire, LocationUpdate, ObjectAttrs, ObjectClass, ObjectId, PiecewiseMotion, QueryAttrs,
    QueryId, QuerySpec,
};
use scuba_spatial::Point;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1e4..1e4f64, -1e4..1e4f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_update() -> impl Strategy<Value = LocationUpdate> {
    (
        any::<u64>(),
        arb_point(),
        any::<u64>(),
        0.0..200.0f64,
        arb_point(),
        prop_oneof![
            (0usize..6).prop_map(|i| AttrsChoice::Object(ObjectClass::ALL[i])),
            (0.0..500.0f64, 0.0..500.0f64)
                .prop_map(|(w, h)| AttrsChoice::Range(w, h)),
            (1u32..100).prop_map(AttrsChoice::Knn),
        ],
    )
        .prop_map(|(id, loc, time, speed, cn, choice)| match choice {
            AttrsChoice::Object(class) => LocationUpdate::object(
                ObjectId(id),
                loc,
                time,
                speed,
                cn,
                ObjectAttrs { class },
            ),
            AttrsChoice::Range(w, h) => LocationUpdate::query(
                QueryId(id),
                loc,
                time,
                speed,
                cn,
                QueryAttrs {
                    spec: QuerySpec::Range {
                        width: w,
                        height: h,
                    },
                },
            ),
            AttrsChoice::Knn(k) => LocationUpdate::query(
                QueryId(id),
                loc,
                time,
                speed,
                cn,
                QueryAttrs {
                    spec: QuerySpec::Knn { k },
                },
            ),
        })
}

#[derive(Debug, Clone)]
enum AttrsChoice {
    Object(ObjectClass),
    Range(f64, f64),
    Knn(u32),
}

fn arb_waypoints() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(), 1..12)
}

proptest! {
    // ---- wire codec ---------------------------------------------------------

    #[test]
    fn wire_roundtrip(update in arb_update()) {
        let mut bytes = wire::encode(&update);
        let decoded = wire::decode(&mut bytes).unwrap();
        prop_assert_eq!(decoded, update);
        prop_assert_eq!(bytes.len(), 0, "decoder must consume the record");
    }

    #[test]
    fn wire_roundtrip_batched(updates in prop::collection::vec(arb_update(), 0..20)) {
        let mut buf = BytesMut::new();
        for u in &updates {
            wire::encode_into(u, &mut buf);
        }
        let mut bytes = buf.freeze();
        for u in &updates {
            prop_assert_eq!(&wire::decode(&mut bytes).unwrap(), u);
        }
    }

    #[test]
    fn wire_truncation_always_errors(update in arb_update(), cut_fraction in 0.0..1.0f64) {
        let bytes = wire::encode(&update);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            let mut partial = bytes.slice(0..cut);
            prop_assert!(wire::decode(&mut partial).is_err());
        }
    }

    #[test]
    fn updates_from_constructors_are_consistent(update in arb_update()) {
        prop_assert!(update.is_consistent());
    }

    /// Extreme finite coordinates survive the codec bit-exactly: the
    /// fixed little-endian f64 layout must not normalise huge magnitudes,
    /// subnormals, or negative zero. (Ghost exchange between shard owners
    /// rides on this format; a single flipped bit moves an entity to a
    /// different stripe.)
    #[test]
    fn wire_roundtrip_extreme_coords(
        update in arb_update(),
        xi in 0usize..7,
        yi in 0usize..7,
        ti in prop_oneof![Just(0u64), Just(u64::MAX), any::<u64>()],
    ) {
        const EXTREMES: [f64; 7] = [
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            -0.0,
            0.0,
            1e308,
        ];
        let mut u = update;
        u.loc = Point::new(EXTREMES[xi], EXTREMES[yi]);
        u.cn_loc = Point::new(EXTREMES[yi], EXTREMES[xi]);
        u.time = ti;
        let mut bytes = wire::encode(&u);
        let decoded = wire::decode(&mut bytes).unwrap();
        // Bit-level equality: `==` on f64 would let -0.0 alias 0.0.
        prop_assert_eq!(decoded.loc.x.to_bits(), u.loc.x.to_bits());
        prop_assert_eq!(decoded.loc.y.to_bits(), u.loc.y.to_bits());
        prop_assert_eq!(decoded.cn_loc.x.to_bits(), u.cn_loc.x.to_bits());
        prop_assert_eq!(decoded.cn_loc.y.to_bits(), u.cn_loc.y.to_bits());
        prop_assert_eq!(decoded.time, u.time);
        prop_assert_eq!(decoded, u);
    }

    /// Duplicate `(time, entity)` records are legal on the wire — the
    /// stream layer resolves them by arrival order, so the codec must
    /// deliver every copy, unmerged and in order.
    #[test]
    fn wire_preserves_duplicate_time_entity_records(
        base in arb_update(),
        sides in prop::collection::vec(1.0..300.0f64, 2..6),
    ) {
        // Same entity id, same timestamp, different payloads.
        let copies: Vec<LocationUpdate> = sides
            .iter()
            .map(|&side| {
                let mut u = base;
                u.attrs = match u.attrs {
                    scuba_motion::EntityAttrs::Object(_) => u.attrs,
                    scuba_motion::EntityAttrs::Query(_) => {
                        scuba_motion::EntityAttrs::Query(QueryAttrs {
                            spec: QuerySpec::square_range(side),
                        })
                    }
                };
                u.loc = Point::new(u.loc.x + side, u.loc.y - side);
                u
            })
            .collect();
        let mut buf = BytesMut::new();
        for u in &copies {
            wire::encode_into(u, &mut buf);
        }
        let mut bytes = buf.freeze();
        for (i, u) in copies.iter().enumerate() {
            let decoded = wire::decode(&mut bytes).unwrap();
            prop_assert_eq!(&decoded, u, "copy {} merged or reordered", i);
            prop_assert_eq!((decoded.time, decoded.entity), (base.time, base.entity));
        }
        prop_assert_eq!(bytes.len(), 0);
    }

    // ---- piecewise motion ---------------------------------------------------

    #[test]
    fn advance_distance_is_bounded_by_speed(
        waypoints in arb_waypoints(),
        speed in 0.0..100.0f64,
        dt in 0.0..10.0f64,
    ) {
        let mut m = PiecewiseMotion::new(waypoints, speed).unwrap();
        let before = m.position();
        m.advance(dt);
        // Along the polyline the budget is speed·dt; straight-line
        // displacement can only be shorter.
        prop_assert!(before.distance(&m.position()) <= speed * dt + 1e-6);
    }

    #[test]
    fn remaining_distance_decreases_monotonically(
        waypoints in arb_waypoints(),
        speed in 0.1..100.0f64,
        steps in 1usize..20,
    ) {
        let mut m = PiecewiseMotion::new(waypoints, speed).unwrap();
        let mut last = m.remaining_distance();
        for _ in 0..steps {
            m.advance(0.5);
            let now = m.remaining_distance();
            prop_assert!(now <= last + 1e-9);
            last = now;
        }
    }

    #[test]
    fn split_steps_equal_one_big_step(
        waypoints in arb_waypoints(),
        speed in 0.1..50.0f64,
        dt in 0.1..5.0f64,
        pieces in 1usize..10,
    ) {
        let mut whole = PiecewiseMotion::new(waypoints.clone(), speed).unwrap();
        let mut split = PiecewiseMotion::new(waypoints, speed).unwrap();
        whole.advance(dt);
        for _ in 0..pieces {
            split.advance(dt / pieces as f64);
        }
        prop_assert!(whole.position().distance(&split.position()) < 1e-6);
    }

    #[test]
    fn eventually_arrives(waypoints in arb_waypoints(), speed in 1.0..100.0f64) {
        let mut m = PiecewiseMotion::new(waypoints.clone(), speed).unwrap();
        let total: f64 = waypoints.windows(2).map(|w| w[0].distance(&w[1])).sum();
        let arrived = m.advance(total / speed + 1.0);
        prop_assert!(arrived);
        prop_assert!(m.arrived());
        prop_assert!(m.position().distance(waypoints.last().unwrap()) < 1e-6);
        prop_assert_eq!(m.remaining_distance(), 0.0);
    }

    #[test]
    fn cn_loc_is_always_a_waypoint(
        waypoints in arb_waypoints(),
        speed in 0.1..50.0f64,
        dt in 0.0..100.0f64,
    ) {
        let mut m = PiecewiseMotion::new(waypoints.clone(), speed).unwrap();
        m.advance(dt);
        let cn = m.cn_loc();
        prop_assert!(
            waypoints.iter().any(|w| w.distance(&cn) < 1e-9),
            "cn_loc {:?} not in waypoint list", cn
        );
    }

    #[test]
    fn position_stays_on_polyline_bbox(
        waypoints in arb_waypoints(),
        speed in 0.1..50.0f64,
        dt in 0.0..100.0f64,
    ) {
        let mut bbox = scuba_spatial::Rect::from_corners(waypoints[0], waypoints[0]);
        for w in &waypoints {
            bbox = bbox.union(&scuba_spatial::Rect::from_corners(*w, *w));
        }
        let mut m = PiecewiseMotion::new(waypoints, speed).unwrap();
        m.advance(dt);
        prop_assert!(bbox.inflate(1e-9).contains(&m.position()));
    }
}
