//! Descriptive statistics over a road network.
//!
//! Used to sanity-check that a synthetic city (or an imported map) has the
//! structural properties the experiments assume: a connected graph, a
//! realistic degree distribution, and a meaningful split of road length
//! across functional classes (highways must exist for convoys to form and
//! live long, §3.1).

use serde::{Deserialize, Serialize};

use crate::network::{NodeId, RoadClass, RoadNetwork};
use crate::route::{RouteMetric, Router};

/// Summary statistics of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of connection nodes.
    pub nodes: usize,
    /// Number of road segments.
    pub edges: usize,
    /// Whether every node is reachable from node 0.
    pub connected: bool,
    /// Minimum node degree.
    pub min_degree: usize,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Mean node degree.
    pub mean_degree: f64,
    /// Total length per road class, in spatial units:
    /// `[highway, arterial, local]`.
    pub length_by_class: [f64; 3],
    /// Total network length.
    pub total_length: f64,
    /// Greatest travel-time route cost found among sampled node pairs (an
    /// estimate of the network diameter under the travel-time metric).
    pub diameter_estimate: f64,
}

impl NetworkStats {
    /// Computes the statistics. `diameter_samples` controls how many
    /// spread-out source nodes seed the diameter estimate (each runs one
    /// full Dijkstra).
    pub fn compute(net: &RoadNetwork, diameter_samples: usize) -> Self {
        let nodes = net.node_count();
        let edges = net.edge_count();

        let mut min_degree = usize::MAX;
        let mut max_degree = 0;
        let mut degree_sum = 0usize;
        for node in net.node_ids() {
            let d = net.degree(node);
            min_degree = min_degree.min(d);
            max_degree = max_degree.max(d);
            degree_sum += d;
        }
        if nodes == 0 {
            min_degree = 0;
        }

        let mut length_by_class = [0.0f64; 3];
        for e in net.edges() {
            let slot = match e.class {
                RoadClass::Highway => 0,
                RoadClass::Arterial => 1,
                RoadClass::Local => 2,
            };
            length_by_class[slot] += e.length;
        }
        let total_length: f64 = length_by_class.iter().sum();

        // Diameter estimate: route between spread-out sample nodes, take
        // the costliest pairwise route found.
        let mut diameter_estimate: f64 = 0.0;
        if nodes >= 2 && diameter_samples >= 2 {
            let stride = (nodes / diameter_samples).max(1);
            let samples: Vec<NodeId> = (0..nodes)
                .step_by(stride)
                .take(diameter_samples)
                .map(|i| NodeId(i as u32))
                .collect();
            let mut router = Router::new(net);
            for (i, &from) in samples.iter().enumerate() {
                for &to in &samples[i + 1..] {
                    if let Ok(Some(route)) = router.route(from, to, RouteMetric::TravelTime) {
                        diameter_estimate = diameter_estimate.max(route.cost);
                    }
                }
            }
        }

        NetworkStats {
            nodes,
            edges,
            connected: net.is_connected(),
            min_degree,
            max_degree,
            mean_degree: if nodes > 0 {
                degree_sum as f64 / nodes as f64
            } else {
                0.0
            },
            length_by_class,
            total_length,
            diameter_estimate,
        }
    }

    /// Fraction of the network length that is highway.
    pub fn highway_fraction(&self) -> f64 {
        if self.total_length == 0.0 {
            0.0
        } else {
            self.length_by_class[0] / self.total_length
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{CityConfig, SyntheticCity};
    use scuba_spatial::Point;

    #[test]
    fn small_city_stats() {
        let city = SyntheticCity::build(CityConfig::small());
        let stats = NetworkStats::compute(&city.network, 6);
        assert_eq!(stats.nodes, city.network.node_count());
        assert_eq!(stats.edges, city.network.edge_count());
        assert!(stats.connected);
        assert!(stats.min_degree >= 2, "lattice corners have degree 2");
        assert!(stats.max_degree >= 4, "interior nodes have degree >= 4");
        assert!(stats.mean_degree > 2.0);
        assert!(stats.total_length > 0.0);
        // All three classes present in the default small city.
        assert!(stats.length_by_class.iter().all(|&l| l > 0.0));
        let frac = stats.highway_fraction();
        assert!(frac > 0.0 && frac < 1.0, "highway fraction {frac}");
        assert!(stats.diameter_estimate > 0.0);
    }

    #[test]
    fn degree_sum_is_twice_edges() {
        let city = SyntheticCity::build(CityConfig::small());
        let stats = NetworkStats::compute(&city.network, 2);
        let degree_sum = stats.mean_degree * stats.nodes as f64;
        assert!((degree_sum - 2.0 * stats.edges as f64).abs() < 1e-6);
    }

    #[test]
    fn empty_network() {
        let net = RoadNetwork::new();
        let stats = NetworkStats::compute(&net, 4);
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.min_degree, 0);
        assert_eq!(stats.mean_degree, 0.0);
        assert_eq!(stats.diameter_estimate, 0.0);
        assert_eq!(stats.highway_fraction(), 0.0);
    }

    #[test]
    fn single_class_network() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(Point::new(0.0, 0.0));
        let b = net.add_node(Point::new(100.0, 0.0));
        net.add_edge(a, b, RoadClass::Highway).unwrap();
        let stats = NetworkStats::compute(&net, 2);
        assert_eq!(stats.length_by_class, [100.0, 0.0, 0.0]);
        assert_eq!(stats.highway_fraction(), 1.0);
        // Diameter = 100 units at highway speed.
        assert!((stats.diameter_estimate - 100.0 / RoadClass::Highway.speed_limit()).abs() < 1e-9);
    }

    #[test]
    fn diameter_grows_with_city_size() {
        let small = SyntheticCity::build(CityConfig {
            blocks: 4,
            ..CityConfig::small()
        });
        let large = SyntheticCity::build(CityConfig {
            blocks: 12,
            extent: 3000.0,
            ..CityConfig::small()
        });
        let s = NetworkStats::compute(&small.network, 5).diameter_estimate;
        let l = NetworkStats::compute(&large.network, 5).diameter_estimate;
        assert!(l > s, "larger city, longer diameter: {l} vs {s}");
    }
}
