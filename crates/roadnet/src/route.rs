//! Shortest-path routing over the road network.
//!
//! The generator routes every object from a spawn node to a destination
//! node; the resulting node sequence is exactly the piecewise-linear
//! trajectory of the paper's motion model, and each intermediate node is the
//! object's `cnloc` while it travels toward it.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::network::{NetworkError, NodeId, RoadNetwork, RoadSegment};

/// Which edge weight the router minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteMetric {
    /// Minimise total euclidean length.
    Distance,
    /// Minimise total free-flow travel time (drivers prefer highways even
    /// when geometrically longer — this is the default and produces the
    /// highway-convoy behaviour that makes clustering effective).
    TravelTime,
}

impl RouteMetric {
    #[inline]
    fn weight(&self, seg: &RoadSegment) -> f64 {
        match self {
            RouteMetric::Distance => seg.length,
            RouteMetric::TravelTime => seg.travel_time(),
        }
    }
}

/// A computed route: the node sequence from origin to destination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Visited connection nodes, origin first, destination last.
    /// Always contains at least one node (origin == destination).
    pub nodes: Vec<NodeId>,
    /// Total cost under the metric the route was computed with.
    pub cost: f64,
    /// Total euclidean length in spatial units.
    pub length: f64,
}

impl Route {
    /// Number of segments (legs) in the route.
    #[inline]
    pub fn leg_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Origin node.
    #[inline]
    pub fn origin(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination node.
    #[inline]
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("route has at least one node")
    }
}

/// Max-heap entry ordered by *smallest* cost (reverse ordering).
#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the cheapest first.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("route costs are finite")
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra router with reusable scratch buffers.
///
/// # Examples
///
/// ```
/// use scuba_roadnet::{CityConfig, RouteMetric, Router, SyntheticCity};
/// use scuba_spatial::Point;
///
/// let city = SyntheticCity::build(CityConfig::small());
/// let from = city.network.nearest_node(&Point::new(0.0, 0.0)).unwrap();
/// let to = city.network.nearest_node(&Point::new(1000.0, 1000.0)).unwrap();
///
/// let mut router = Router::new(&city.network);
/// let route = router.route(from, to, RouteMetric::TravelTime).unwrap().unwrap();
/// assert_eq!(route.origin(), from);
/// assert_eq!(route.destination(), to);
/// assert!(route.length >= 2000.0 - 1.0); // at least the Manhattan distance
/// ```
///
/// The generator computes tens of thousands of routes at workload-setup
/// time; reusing the distance/parent arrays across calls keeps that phase
/// allocation-free after the first route.
#[derive(Debug)]
pub struct Router<'a> {
    net: &'a RoadNetwork,
    dist: Vec<f64>,
    parent: Vec<Option<NodeId>>,
    visited_epoch: Vec<u32>,
    epoch: u32,
}

impl<'a> Router<'a> {
    /// Creates a router over `net`.
    pub fn new(net: &'a RoadNetwork) -> Self {
        let n = net.node_count();
        Router {
            net,
            dist: vec![f64::INFINITY; n],
            parent: vec![None; n],
            visited_epoch: vec![0; n],
            epoch: 0,
        }
    }

    /// Computes the cheapest route from `from` to `to` under `metric`.
    ///
    /// Returns `Err(UnknownNode)` for out-of-range ids and `Ok(None)` when
    /// the destination is unreachable.
    pub fn route(
        &mut self,
        from: NodeId,
        to: NodeId,
        metric: RouteMetric,
    ) -> Result<Option<Route>, NetworkError> {
        let n = self.net.node_count();
        if from.0 as usize >= n {
            return Err(NetworkError::UnknownNode(from));
        }
        if to.0 as usize >= n {
            return Err(NetworkError::UnknownNode(to));
        }

        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: reset the lazily-versioned arrays.
            self.visited_epoch.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;

        self.touch(from, 0.0, None);
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            cost: 0.0,
            node: from,
        });

        while let Some(HeapEntry { cost, node }) = heap.pop() {
            if node == to {
                return Ok(Some(self.build_route(from, to, cost)));
            }
            if cost > self.dist[node.0 as usize] {
                continue; // stale entry
            }
            for (next, seg) in self.net.neighbors(node) {
                let next_cost = cost + metric.weight(seg);
                let idx = next.0 as usize;
                let known = if self.visited_epoch[idx] == epoch {
                    self.dist[idx]
                } else {
                    f64::INFINITY
                };
                if next_cost < known {
                    self.touch(next, next_cost, Some(node));
                    heap.push(HeapEntry {
                        cost: next_cost,
                        node: next,
                    });
                }
            }
        }
        Ok(None)
    }

    #[inline]
    fn touch(&mut self, node: NodeId, cost: f64, parent: Option<NodeId>) {
        let idx = node.0 as usize;
        self.dist[idx] = cost;
        self.parent[idx] = parent;
        self.visited_epoch[idx] = self.epoch;
    }

    fn build_route(&self, from: NodeId, to: NodeId, cost: f64) -> Route {
        let mut nodes = vec![to];
        let mut cur = to;
        while cur != from {
            cur = self.parent[cur.0 as usize].expect("parent chain reaches origin");
            nodes.push(cur);
        }
        nodes.reverse();
        let length = nodes
            .windows(2)
            .map(|w| {
                let a = self.net.position(w[0]).expect("route node exists");
                let b = self.net.position(w[1]).expect("route node exists");
                a.distance(b)
            })
            .sum();
        Route {
            nodes,
            cost,
            length,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RoadClass;
    use scuba_spatial::Point;

    /// A 2x2 block grid:
    ///
    /// ```text
    ///   6 -- 7 -- 8      nodes at (0|50|100, 0|50|100)
    ///   |    |    |
    ///   3 -- 4 -- 5
    ///   |    |    |
    ///   0 -- 1 -- 2
    /// ```
    fn grid() -> RoadNetwork {
        let mut net = RoadNetwork::new();
        for y in 0..3 {
            for x in 0..3 {
                net.add_node(Point::new(x as f64 * 50.0, y as f64 * 50.0));
            }
        }
        let id = |x: u32, y: u32| NodeId(y * 3 + x);
        for y in 0..3 {
            for x in 0..3 {
                if x < 2 {
                    net.add_edge(id(x, y), id(x + 1, y), RoadClass::Local).unwrap();
                }
                if y < 2 {
                    net.add_edge(id(x, y), id(x, y + 1), RoadClass::Local).unwrap();
                }
            }
        }
        net
    }

    #[test]
    fn trivial_route_is_single_node() {
        let net = grid();
        let mut router = Router::new(&net);
        let r = router
            .route(NodeId(4), NodeId(4), RouteMetric::Distance)
            .unwrap()
            .unwrap();
        assert_eq!(r.nodes, vec![NodeId(4)]);
        assert_eq!(r.cost, 0.0);
        assert_eq!(r.leg_count(), 0);
    }

    #[test]
    fn manhattan_distance_on_grid() {
        let net = grid();
        let mut router = Router::new(&net);
        let r = router
            .route(NodeId(0), NodeId(8), RouteMetric::Distance)
            .unwrap()
            .unwrap();
        assert_eq!(r.cost, 200.0); // 4 legs of 50
        assert_eq!(r.length, 200.0);
        assert_eq!(r.leg_count(), 4);
        assert_eq!(r.origin(), NodeId(0));
        assert_eq!(r.destination(), NodeId(8));
        // Path is monotone: consecutive nodes are grid neighbours.
        for w in r.nodes.windows(2) {
            let a = net.position(w[0]).unwrap();
            let b = net.position(w[1]).unwrap();
            assert_eq!(a.distance(b), 50.0);
        }
    }

    #[test]
    fn travel_time_prefers_highway_detour() {
        // Straight local road 0->1 (100 units @15) vs detour over highway
        // nodes 0->2->3->1 (300 units @60): detour is faster.
        let mut net = RoadNetwork::new();
        let n0 = net.add_node(Point::new(0.0, 0.0));
        let n1 = net.add_node(Point::new(100.0, 0.0));
        let n2 = net.add_node(Point::new(0.0, 100.0));
        let n3 = net.add_node(Point::new(100.0, 100.0));
        net.add_edge(n0, n1, RoadClass::Local).unwrap();
        net.add_edge(n0, n2, RoadClass::Highway).unwrap();
        net.add_edge(n2, n3, RoadClass::Highway).unwrap();
        net.add_edge(n3, n1, RoadClass::Highway).unwrap();

        let mut router = Router::new(&net);
        let by_dist = router
            .route(n0, n1, RouteMetric::Distance)
            .unwrap()
            .unwrap();
        assert_eq!(by_dist.nodes, vec![n0, n1]);

        let by_time = router
            .route(n0, n1, RouteMetric::TravelTime)
            .unwrap()
            .unwrap();
        assert_eq!(by_time.nodes, vec![n0, n2, n3, n1]);
        assert!((by_time.cost - 300.0 / 60.0).abs() < 1e-12);
        assert_eq!(by_time.length, 300.0);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut net = grid();
        let island = net.add_node(Point::new(999.0, 999.0));
        let mut router = Router::new(&net);
        assert_eq!(
            router.route(NodeId(0), island, RouteMetric::Distance).unwrap(),
            None
        );
    }

    #[test]
    fn unknown_node_is_error() {
        let net = grid();
        let mut router = Router::new(&net);
        assert!(router
            .route(NodeId(0), NodeId(1000), RouteMetric::Distance)
            .is_err());
        assert!(router
            .route(NodeId(1000), NodeId(0), RouteMetric::Distance)
            .is_err());
    }

    #[test]
    fn router_is_reusable_across_queries() {
        let net = grid();
        let mut router = Router::new(&net);
        for _ in 0..3 {
            let a = router
                .route(NodeId(0), NodeId(8), RouteMetric::Distance)
                .unwrap()
                .unwrap();
            let b = router
                .route(NodeId(8), NodeId(0), RouteMetric::Distance)
                .unwrap()
                .unwrap();
            assert_eq!(a.cost, b.cost);
        }
    }

    #[test]
    fn route_cost_matches_recomputed_weights() {
        let net = grid();
        let mut router = Router::new(&net);
        let r = router
            .route(NodeId(2), NodeId(6), RouteMetric::TravelTime)
            .unwrap()
            .unwrap();
        // 4 legs of 50 units at Local speed (15): cost = 200/15.
        assert!((r.cost - 200.0 / 15.0).abs() < 1e-9);
    }
}
